//! Workspace facade for the OZZ (SOSP '24) reproduction.
//!
//! Re-exports the public API of every crate in the workspace so examples and
//! downstream users can depend on a single package:
//!
//! - [`oemu`] — in-vivo out-of-order execution emulation (§3 of the paper);
//! - [`kmem`] — simulated kernel memory, allocator, and bug-detecting
//!   oracles (KASAN/lockdep analogs);
//! - [`ksched`] — the deterministic custom scheduler (§4.4.1);
//! - [`kernelsim`] — the miniature kernel with the paper's subsystems and
//!   seeded OOO bugs;
//! - [`ozz`] — the fuzzer: STI generation, profiling, scheduling hints
//!   (Algorithms 1 & 2), hypothetical memory barrier tests (§4);
//! - [`baselines`] — interleaving-only fuzzing, in-vitro analysis,
//!   KCSAN-like sampling, OFence-like static matching (§6.4, §7);
//! - [`litmus`] — LKMM litmus harness validating OEMU's reordering rules.

pub use baselines;
pub use kernelsim;
pub use kmem;
pub use ksched;
pub use litmus;
pub use oemu;
pub use ozz;
