//! Property-based LKMM compliance: random litmus programs explored
//! exhaustively must satisfy the memory-model invariants of §3.3/§10.1
//! under *every* combination of OEMU controls.

use litmus::{Litmus, Op};
use oemu::{LoadAnn, StoreAnn};
use proptest::prelude::*;

/// Generator for one litmus thread program over `nvars` variables.
fn arb_op(nvars: usize, reg_base: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nvars, 1u64..4).prop_map(|(var, val)| Op::Store {
            var,
            val,
            ann: StoreAnn::Plain,
        }),
        (0..nvars, 1u64..4).prop_map(|(var, val)| Op::Store {
            var,
            val,
            ann: StoreAnn::Release,
        }),
        (0..nvars, 0..2usize).prop_map(move |(var, r)| Op::Load {
            reg: reg_base + r,
            var,
            ann: LoadAnn::Plain,
        }),
        (0..nvars, 0..2usize).prop_map(move |(var, r)| Op::Load {
            reg: reg_base + r,
            var,
            ann: LoadAnn::ReadOnce,
        }),
        Just(Op::Wmb),
        Just(Op::Rmb),
        Just(Op::Mb),
    ]
}

fn arb_litmus() -> impl Strategy<Value = Litmus> {
    let nvars = 2usize;
    (
        proptest::collection::vec(arb_op(nvars, 0), 1..4),
        proptest::collection::vec(arb_op(nvars, 2), 1..4),
    )
        .prop_map(move |(t0, t1)| Litmus {
            name: "random",
            threads: vec![t0, t1],
            nvars,
            nregs: 4,
        })
}

/// Values a program can legitimately produce: the initial zero or any
/// stored constant.
fn stored_values(t: &Litmus) -> Vec<u64> {
    let mut vals = vec![0];
    for prog in &t.threads {
        for op in prog {
            if let Op::Store { val, .. } = op {
                vals.push(*val);
            }
        }
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No out-of-thin-air values: every register outcome holds either the
    /// initial zero or a value some store wrote.
    #[test]
    fn no_out_of_thin_air(t in arb_litmus()) {
        let legal = stored_values(&t);
        for outcome in t.explore() {
            for v in outcome {
                prop_assert!(legal.contains(&v), "thin-air value {v}");
            }
        }
    }

    /// Barrier monotonicity: inserting smp_mb between every pair of ops
    /// never *adds* outcomes — barriers only restrict behaviour.
    #[test]
    fn full_barriers_only_restrict(t in arb_litmus()) {
        let strengthened = Litmus {
            name: "strengthened",
            threads: t
                .threads
                .iter()
                .map(|prog| {
                    let mut out = Vec::new();
                    for op in prog {
                        out.push(*op);
                        out.push(Op::Mb);
                    }
                    out
                })
                .collect(),
            nvars: t.nvars,
            nregs: t.nregs,
        };
        let weak = t.explore();
        let strong = strengthened.explore();
        prop_assert!(
            strong.is_subset(&weak),
            "smp_mb added outcomes: {:?}",
            strong.difference(&weak).collect::<Vec<_>>()
        );
    }

    /// In-order containment: the sequentially-consistent outcomes (ops
    /// executed atomically in some interleaving, which is what exploration
    /// with all-empty control sets yields) are always among the explored
    /// outcomes — weak memory only ever *adds* behaviours.
    #[test]
    fn sc_outcomes_are_preserved(t in arb_litmus()) {
        // Fully-fenced version = SC.
        let sc = Litmus {
            name: "sc",
            threads: t
                .threads
                .iter()
                .map(|prog| {
                    let mut out = Vec::new();
                    for op in prog {
                        out.push(*op);
                        out.push(Op::Mb);
                    }
                    out
                })
                .collect(),
            nvars: t.nvars,
            nregs: t.nregs,
        };
        let weak = t.explore();
        for outcome in sc.explore() {
            prop_assert!(weak.contains(&outcome), "SC outcome {outcome:?} lost");
        }
    }
}

/// Deterministic regression cases distilled from the properties.
#[test]
fn mp_shape_with_mixed_annotations() {
    // Release publication read by a plain load: the release orders the
    // writer but the plain reader may still be versioned (needs acquire or
    // rmb to be safe) — unless the address dependency is annotated.
    let t = Litmus {
        name: "rel+plain",
        threads: vec![
            vec![
                Op::Store {
                    var: 0,
                    val: 1,
                    ann: StoreAnn::Plain,
                },
                Op::Store {
                    var: 1,
                    val: 1,
                    ann: StoreAnn::Release,
                },
            ],
            vec![
                Op::Load {
                    reg: 0,
                    var: 1,
                    ann: LoadAnn::Plain,
                },
                Op::Load {
                    reg: 1,
                    var: 0,
                    ann: LoadAnn::Plain,
                },
            ],
        ],
        nvars: 2,
        nregs: 2,
    };
    assert!(
        t.reachable(&[1, 0]),
        "release alone does not order the reader (the Alpha rule)"
    );
}
