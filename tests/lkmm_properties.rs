//! Property-based LKMM compliance: random litmus programs explored
//! exhaustively must satisfy the memory-model invariants of §3.3/§10.1
//! under *every* combination of OEMU controls.
//!
//! Case generation is deterministic: each property runs an enumerated pass
//! (every single-op thread-pair over the op alphabet) plus a seeded
//! [`DetRng`] sweep. On failure the reproducing seed is printed before the
//! panic propagates.
//!
//! The whole suite runs under the process-default memory model
//! (`OZZ_MEMMODEL`, TSO when unset): these are invariants every emulated
//! model must satisfy, so CI runs the file once per model.

use std::panic::AssertUnwindSafe;

use kutil::DetRng;
use litmus::{Litmus, Op};
use oemu::{LoadAnn, MemoryModel, StoreAnn};

/// The memory model under test: whatever `OZZ_MEMMODEL` selects (TSO when
/// unset), so one binary covers all three models across CI runs.
fn model() -> MemoryModel {
    MemoryModel::from_env()
}

/// One random operation for a litmus thread program over `nvars`
/// variables, with registers drawn from `reg_base..reg_base + 2`.
fn arb_op(rng: &mut DetRng, nvars: usize, reg_base: usize) -> Op {
    match rng.gen_range(0..7u32) {
        0 => Op::Store {
            var: rng.gen_range(0..nvars),
            val: rng.gen_range(1u64..4),
            ann: StoreAnn::Plain,
        },
        1 => Op::Store {
            var: rng.gen_range(0..nvars),
            val: rng.gen_range(1u64..4),
            ann: StoreAnn::Release,
        },
        2 => Op::Load {
            reg: reg_base + rng.gen_range(0..2usize),
            var: rng.gen_range(0..nvars),
            ann: LoadAnn::Plain,
        },
        3 => Op::Load {
            reg: reg_base + rng.gen_range(0..2usize),
            var: rng.gen_range(0..nvars),
            ann: LoadAnn::ReadOnce,
        },
        4 => Op::Wmb,
        5 => Op::Rmb,
        _ => Op::Mb,
    }
}

const NVARS: usize = 2;

fn arb_litmus(rng: &mut DetRng) -> Litmus {
    let mut thread = |reg_base: usize| {
        let len = rng.gen_range(1..4usize);
        (0..len).map(|_| arb_op(rng, NVARS, reg_base)).collect()
    };
    let t0 = thread(0);
    let t1 = thread(2);
    Litmus {
        name: "random",
        threads: vec![t0, t1],
        nvars: NVARS,
        nregs: 4,
    }
}

/// Every operation kind over the reduced domain, for the enumerated pass.
fn op_alphabet(reg_base: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for var in 0..NVARS {
        for ann in [StoreAnn::Plain, StoreAnn::Release] {
            ops.push(Op::Store { var, val: 1, ann });
        }
        for ann in [LoadAnn::Plain, LoadAnn::ReadOnce] {
            ops.push(Op::Load {
                reg: reg_base,
                var,
                ann,
            });
        }
    }
    ops.push(Op::Wmb);
    ops.push(Op::Rmb);
    ops.push(Op::Mb);
    ops
}

/// Randomized cases per property (the old proptest case count).
const CASES: u64 = 48;

/// Enumerated single-op thread pairs (121 cases) plus `CASES` random
/// programs, all deterministic in (property salt, case index).
fn check_property(salt: u64, body: impl Fn(&Litmus)) {
    let (a0, a1) = (op_alphabet(0), op_alphabet(2));
    for (i, x) in a0.iter().enumerate() {
        for (j, y) in a1.iter().enumerate() {
            let t = Litmus {
                name: "enumerated",
                threads: vec![vec![*x], vec![*y]],
                nvars: NVARS,
                nregs: 4,
            };
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| body(&t)));
            if let Err(e) = r {
                eprintln!("property failed on enumerated pair ({i}, {j}): {t:?}");
                std::panic::resume_unwind(e);
            }
        }
    }
    for case in 0..CASES {
        let seed = salt.wrapping_mul(0x100_0000).wrapping_add(case);
        let t = arb_litmus(&mut DetRng::new(seed));
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| body(&t)));
        if let Err(e) = r {
            eprintln!("property failed with DetRng seed {seed}: {t:?}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Values a program can legitimately produce: the initial zero or any
/// stored constant.
fn stored_values(t: &Litmus) -> Vec<u64> {
    let mut vals = vec![0];
    for prog in &t.threads {
        for op in prog {
            if let Op::Store { val, .. } = op {
                vals.push(*val);
            }
        }
    }
    vals
}

/// No out-of-thin-air values: every register outcome holds either the
/// initial zero or a value some store wrote.
#[test]
fn no_out_of_thin_air() {
    check_property(1, |t| {
        let legal = stored_values(t);
        for outcome in t.explore_under(model()) {
            for v in outcome {
                assert!(legal.contains(&v), "thin-air value {v}");
            }
        }
    });
}

/// Barrier monotonicity: inserting smp_mb between every pair of ops
/// never *adds* outcomes — barriers only restrict behaviour.
#[test]
fn full_barriers_only_restrict() {
    check_property(2, |t| {
        let strengthened = Litmus {
            name: "strengthened",
            threads: t
                .threads
                .iter()
                .map(|prog| {
                    let mut out = Vec::new();
                    for op in prog {
                        out.push(*op);
                        out.push(Op::Mb);
                    }
                    out
                })
                .collect(),
            nvars: t.nvars,
            nregs: t.nregs,
        };
        let weak = t.explore_under(model());
        let strong = strengthened.explore_under(model());
        assert!(
            strong.is_subset(&weak),
            "smp_mb added outcomes: {:?}",
            strong.difference(&weak).collect::<Vec<_>>()
        );
    });
}

/// In-order containment: the sequentially-consistent outcomes (ops
/// executed atomically in some interleaving, which is what exploration
/// with all-empty control sets yields) are always among the explored
/// outcomes — weak memory only ever *adds* behaviours.
#[test]
fn sc_outcomes_are_preserved() {
    check_property(3, |t| {
        // Fully-fenced version = SC.
        let sc = Litmus {
            name: "sc",
            threads: t
                .threads
                .iter()
                .map(|prog| {
                    let mut out = Vec::new();
                    for op in prog {
                        out.push(*op);
                        out.push(Op::Mb);
                    }
                    out
                })
                .collect(),
            nvars: t.nvars,
            nregs: t.nregs,
        };
        let weak = t.explore_under(model());
        for outcome in sc.explore_under(model()) {
            assert!(weak.contains(&outcome), "SC outcome {outcome:?} lost");
        }
    });
}

/// Deterministic regression cases distilled from the properties.
#[test]
fn mp_shape_with_mixed_annotations() {
    // Release publication read by a plain load: the release orders the
    // writer but the plain reader may still be versioned (needs acquire or
    // rmb to be safe) — unless the address dependency is annotated.
    let t = Litmus {
        name: "rel+plain",
        threads: vec![
            vec![
                Op::Store {
                    var: 0,
                    val: 1,
                    ann: StoreAnn::Plain,
                },
                Op::Store {
                    var: 1,
                    val: 1,
                    ann: StoreAnn::Release,
                },
            ],
            vec![
                Op::Load {
                    reg: 0,
                    var: 1,
                    ann: LoadAnn::Plain,
                },
                Op::Load {
                    reg: 1,
                    var: 0,
                    ann: LoadAnn::Plain,
                },
            ],
        ],
        nvars: 2,
        nregs: 2,
    };
    assert!(
        t.reachable_under(model(), &[1, 0]),
        "release alone does not order the reader (the Alpha rule)"
    );
}
