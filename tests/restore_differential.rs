//! Differential pin for the dirty-journal restore path.
//!
//! The undo journal's contract is *invisibility*: an incremental restore
//! must land the machine on state byte-identical to what the full
//! `clone_from` fallback produces — for any workload, any memory model,
//! and either executor. These tests drive twin machines (one journaling,
//! one with `set_force_full_restore`) through identical randomized MTI
//! batches and compare [`Kctx::state_digest`] after every restore, then
//! pin the journal's edge cases: nested snapshots, restore-after-restore,
//! and `zero_range` over never-written words.
//!
//! Counter assertions ride along: the journaling twin must take *zero*
//! full-restore fallbacks (the benchmark's happy-path claim), while the
//! forced twin must take *only* fallbacks.
//!
//! [`Kctx::state_digest`]: kernelsim::Kctx::state_digest

use std::sync::Arc;

use kernelsim::{BugId, BugSwitches, ExecMode, Kctx, MemoryModel, PooledMachine};
use kutil::DetRng;
use oemu::{Iid, Tid};
use ozz::hints::calc_hints;
use ozz::mti::{build_mtis, Mti};
use ozz::profile_sti_on;
use ozz::sti::known_bug_sti;

/// Builds a deterministic MTI corpus for `bug` by profiling on `k`.
/// Profiling mutates the machine, so callers reset before comparing.
fn corpus(bug: BugId, k: &Arc<Kctx>, cap: usize) -> Vec<Mti> {
    let sti = known_bug_sti(bug).expect("table-4 sti");
    let traces = profile_sti_on(k, &sti);
    build_mtis(
        &sti,
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        cap,
    )
}

/// Boots the twins: `dirty` restores through the undo journal, `full` is
/// forced down the pre-journal `clone_from` path.
fn twins(model: MemoryModel, mode: ExecMode) -> (PooledMachine, PooledMachine) {
    let dirty = PooledMachine::boot_with_model(BugSwitches::all(), model);
    let full = PooledMachine::boot_with_model(BugSwitches::all(), model);
    dirty.kctx().set_exec_mode(mode);
    full.kctx().set_exec_mode(mode);
    full.kctx().set_force_full_restore(true);
    (dirty, full)
}

#[test]
fn incremental_restore_is_byte_identical_across_models_and_executors() {
    for (mi, model) in [MemoryModel::Tso, MemoryModel::Pso, MemoryModel::Arm]
        .into_iter()
        .enumerate()
    {
        for (ei, mode) in [ExecMode::Stepped, ExecMode::Threaded]
            .into_iter()
            .enumerate()
        {
            let (dirty, full) = twins(model, mode);
            let mtis = corpus(BugId::KnownWatchQueuePost, dirty.kctx(), 24);
            dirty.kctx().reset();
            full.kctx().reset();

            let snap_d = dirty.kctx().snapshot();
            let snap_f = full.kctx().snapshot();
            assert_eq!(
                dirty.kctx().state_digest(),
                full.kctx().state_digest(),
                "{model:?}/{mode:?}: twins diverged before any restore"
            );

            let mut rng = DetRng::new(0xd1ff + 16 * mi as u64 + ei as u64);
            for round in 0..6u32 {
                let batch = 1 + rng.gen_range(0..4u64);
                for _ in 0..batch {
                    let pick = rng.gen_range(0..mtis.len() as u64) as usize;
                    for m in [&dirty, &full] {
                        mtis[pick].run_setup(m.kctx());
                        mtis[pick].run_pair_pooled(m);
                    }
                }
                dirty.kctx().restore(&snap_d);
                full.kctx().restore(&snap_f);
                assert_eq!(
                    dirty.kctx().state_digest(),
                    full.kctx().state_digest(),
                    "{model:?}/{mode:?} round {round}: incremental restore \
                     landed on different state than the full path"
                );
            }

            let d = dirty.kctx().engine.stats();
            assert_eq!(
                d.restore_full_fallbacks, 0,
                "{model:?}/{mode:?}: the journaling twin fell back"
            );
            assert!(d.restores_incremental >= 6, "journal path never taken");
            assert!(d.restore_words_replayed > 0, "nothing was ever rolled back");
            let f = full.kctx().engine.stats();
            assert_eq!(
                f.restores_incremental, 0,
                "{model:?}/{mode:?}: the forced twin journaled"
            );
            assert!(f.restore_full_fallbacks >= 6);
        }
    }
}

#[test]
fn nested_snapshots_and_repeat_restores_match_the_full_path() {
    let (dirty, full) = twins(MemoryModel::Tso, ExecMode::Stepped);
    let mtis = corpus(BugId::KnownWatchQueuePost, dirty.kctx(), 12);
    dirty.kctx().reset();
    full.kctx().reset();

    let run = |pick: usize| {
        for m in [&dirty, &full] {
            mtis[pick].run_setup(m.kctx());
            mtis[pick].run_pair_pooled(m);
        }
    };
    let compare = |what: &str| {
        assert_eq!(
            dirty.kctx().state_digest(),
            full.kctx().state_digest(),
            "twins diverged after {what}"
        );
    };

    // Outer snapshot, mutate, inner snapshot, mutate.
    let outer_d = dirty.kctx().snapshot();
    let outer_f = full.kctx().snapshot();
    run(0);
    let inner_d = dirty.kctx().snapshot();
    let inner_f = full.kctx().snapshot();
    run(1);

    // Inner restore, then restore-after-restore with nothing in between:
    // the journal frame stays armed and replays an empty delta.
    dirty.kctx().restore(&inner_d);
    full.kctx().restore(&inner_f);
    compare("the inner restore");
    dirty.kctx().restore(&inner_d);
    full.kctx().restore(&inner_f);
    compare("a repeat restore with an empty delta");

    // Mutate again and unwind through both nesting levels.
    run(2);
    dirty.kctx().restore(&inner_d);
    full.kctx().restore(&inner_f);
    compare("a second inner restore");
    dirty.kctx().restore(&outer_d);
    full.kctx().restore(&outer_f);
    compare("the outer restore through a popped inner frame");

    // The outer frame is still armed: mutating and restoring again stays
    // incremental and exact.
    run(3);
    dirty.kctx().restore(&outer_d);
    full.kctx().restore(&outer_f);
    compare("an outer restore-after-restore");

    assert_eq!(dirty.kctx().engine.stats().restore_full_fallbacks, 0);
    assert!(dirty.kctx().engine.stats().restores_incremental >= 5);
}

#[test]
fn zero_range_over_never_written_words_restores_exactly() {
    // `kzalloc` zeroes fresh object words with `zero_range`; slots never
    // written before journal nothing (removing an absent key is a no-op),
    // so a restore across an allocate-write-free storm must still be
    // byte-exact and cheap.
    let (dirty, full) = twins(MemoryModel::Tso, ExecMode::Stepped);
    dirty.kctx().reset();
    full.kctx().reset();

    let snap_d = dirty.kctx().snapshot();
    let snap_f = full.kctx().snapshot();
    let baseline = dirty.kctx().state_digest();

    for m in [&dirty, &full] {
        let k = m.kctx();
        let mut addrs = Vec::new();
        for i in 0..8u64 {
            // Fresh heap objects: every word is zeroed by the allocator
            // without having ever been written.
            let a = k.kzalloc(64, "restore_differential");
            if i % 2 == 0 {
                k.write(Tid(0), Iid(900 + i), a + 8, 0xbeef ^ i);
            }
            addrs.push(a);
        }
        for (i, a) in addrs.iter().enumerate() {
            if i % 3 == 0 {
                k.kfree(Tid(0), *a);
            }
        }
    }
    assert_eq!(
        dirty.kctx().state_digest(),
        full.kctx().state_digest(),
        "twins diverged during the alloc/free storm"
    );

    dirty.kctx().restore(&snap_d);
    full.kctx().restore(&snap_f);
    assert_eq!(dirty.kctx().state_digest(), baseline);
    assert_eq!(full.kctx().state_digest(), baseline);
    assert_eq!(dirty.kctx().engine.stats().restore_full_fallbacks, 0);
}
