//! Reset fidelity: pooled machines are indistinguishable from fresh boots.
//!
//! The machine pool's contract is that [`Kctx::reset`] rolls a machine back
//! to *exact* boot state, so a campaign run on pooled, reset machines with
//! persistent CPU workers must produce byte-identical results to one that
//! boots a fresh machine and spawns fresh threads for every test. This is
//! the reproduction's analog of the paper's in-vivo guarantee: reusing a
//! long-lived VM across tests must not change what the tests observe.
//!
//! These tests run whole campaigns both ways and compare everything the
//! fuzzer reports: the full `FoundBug` map rendering (titles, diagnoses,
//! tests-to-find, hint ranks, pairs), the campaign statistics, and the
//! covered instrumentation sites.

use kernelsim::{BugId, BugSwitches, MachinePool, PooledMachine};
use ozz::fuzzer::{FuzzConfig, Fuzzer};
use ozz::hints::calc_hints;
use ozz::mti::build_mtis;
use ozz::profile_sti_on;
use ozz::sti::known_bug_sti;

/// Runs a campaign to `budget` MTIs with or without machine reuse and
/// renders every observable output.
fn campaign_outputs(seed: u64, budget: u64, reuse_machines: bool) -> (String, String, String) {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed,
        bugs: BugSwitches::all(),
        reuse_machines,
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
    }
    (
        format!("{:#?}", fuzzer.found()),
        format!("{:?}", fuzzer.stats()),
        format!("{:?}", fuzzer.coverage_iids()),
    )
}

#[test]
fn reset_equals_fresh_boot() {
    for seed in [2024, 7] {
        let pooled = campaign_outputs(seed, 400, true);
        let fresh = campaign_outputs(seed, 400, false);
        assert!(!pooled.0.is_empty());
        assert_eq!(
            pooled.0, fresh.0,
            "seed {seed}: pooled campaign found different bugs than fresh boots"
        );
        assert_eq!(
            pooled.1, fresh.1,
            "seed {seed}: campaign statistics diverged"
        );
        assert_eq!(pooled.2, fresh.2, "seed {seed}: coverage diverged");
    }
}

#[test]
fn pooled_campaign_boots_once_per_switch_set() {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::all(),
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < 200 {
        fuzzer.step();
    }
    assert_eq!(
        fuzzer.machine_boots(),
        1,
        "one switch set, sequential steps: a single machine serves the campaign"
    );
}

#[test]
fn pool_boots_once_per_distinct_switch_set_and_shelves_precisely() {
    // Every single-bug build is a distinct shelf key: the pool must boot
    // exactly once per key, then serve every later checkout from the
    // shelf — and its idle count must account for each shelved machine.
    let keys: Vec<BugSwitches> = BugId::NEW
        .iter()
        .chain(BugId::KNOWN.iter())
        .chain(BugId::EXTENDED.iter())
        .map(|&b| BugSwitches::only([b]))
        .collect();
    let pool = MachinePool::new();

    let machines: Vec<_> = keys.iter().map(|k| pool.checkout(k)).collect();
    assert_eq!(pool.boots(), keys.len() as u64, "one boot per distinct key");
    assert_eq!(pool.idle(), 0, "all machines are checked out");
    for m in machines {
        pool.checkin(m);
    }
    assert_eq!(pool.idle(), keys.len(), "every machine is shelved");

    let machines: Vec<_> = keys.iter().map(|k| pool.checkout(k)).collect();
    assert_eq!(
        pool.boots(),
        keys.len() as u64,
        "a full second sweep is served without a single new boot"
    );
    assert_eq!(pool.idle(), 0);
    for m in machines {
        pool.checkin(m);
    }

    // Two simultaneous checkouts of the SAME key cannot share a machine:
    // the second one is a miss and boots.
    let a = pool.checkout(&keys[0]);
    let b = pool.checkout(&keys[0]);
    assert_eq!(pool.boots(), keys.len() as u64 + 1);
    pool.checkin(a);
    pool.checkin(b);
    assert_eq!(pool.idle(), keys.len() + 1);
}

#[test]
fn checkout_after_oops_is_byte_identical_to_fresh_boot() {
    // Crash a pooled machine (a real oops, not just dirty state), check it
    // back in, and check it out again: the machine the pool hands back
    // must be indistinguishable — full state digest — from a fresh boot.
    let bugs = BugSwitches::only([BugId::KnownWatchQueuePost]);
    let pool = MachinePool::new();
    let m = pool.checkout(&bugs);

    let sti = known_bug_sti(BugId::KnownWatchQueuePost).expect("table-4 sti");
    let traces = profile_sti_on(m.kctx(), &sti);
    let mtis = build_mtis(
        &sti,
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        32,
    );
    let mut crashed = false;
    for mti in &mtis {
        m.kctx().reset();
        mti.run_setup(m.kctx());
        let out = mti.run_pair_pooled(&m);
        if !out.crashes.is_empty() {
            crashed = true;
            break;
        }
    }
    assert!(
        crashed,
        "the directed watch_queue sweep must oops the machine"
    );

    pool.checkin(m);
    let again = pool.checkout(&bugs);
    assert_eq!(
        pool.boots(),
        1,
        "the oopsed machine is reused, not replaced"
    );
    let fresh = PooledMachine::boot(bugs);
    assert_eq!(
        again.kctx().state_digest(),
        fresh.kctx().state_digest(),
        "post-oops reset left residue a fresh boot does not have"
    );
}
