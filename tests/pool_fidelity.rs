//! Reset fidelity: pooled machines are indistinguishable from fresh boots.
//!
//! The machine pool's contract is that [`Kctx::reset`] rolls a machine back
//! to *exact* boot state, so a campaign run on pooled, reset machines with
//! persistent CPU workers must produce byte-identical results to one that
//! boots a fresh machine and spawns fresh threads for every test. This is
//! the reproduction's analog of the paper's in-vivo guarantee: reusing a
//! long-lived VM across tests must not change what the tests observe.
//!
//! These tests run whole campaigns both ways and compare everything the
//! fuzzer reports: the full `FoundBug` map rendering (titles, diagnoses,
//! tests-to-find, hint ranks, pairs), the campaign statistics, and the
//! covered instrumentation sites.

use kernelsim::BugSwitches;
use ozz::fuzzer::{FuzzConfig, Fuzzer};

/// Runs a campaign to `budget` MTIs with or without machine reuse and
/// renders every observable output.
fn campaign_outputs(seed: u64, budget: u64, reuse_machines: bool) -> (String, String, String) {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed,
        bugs: BugSwitches::all(),
        reuse_machines,
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
    }
    (
        format!("{:#?}", fuzzer.found()),
        format!("{:?}", fuzzer.stats()),
        format!("{:?}", fuzzer.coverage_iids()),
    )
}

#[test]
fn reset_equals_fresh_boot() {
    for seed in [2024, 7] {
        let pooled = campaign_outputs(seed, 400, true);
        let fresh = campaign_outputs(seed, 400, false);
        assert!(!pooled.0.is_empty());
        assert_eq!(
            pooled.0, fresh.0,
            "seed {seed}: pooled campaign found different bugs than fresh boots"
        );
        assert_eq!(
            pooled.1, fresh.1,
            "seed {seed}: campaign statistics diverged"
        );
        assert_eq!(pooled.2, fresh.2, "seed {seed}: coverage diverged");
    }
}

#[test]
fn pooled_campaign_boots_once_per_switch_set() {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::all(),
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < 200 {
        fuzzer.step();
    }
    assert_eq!(
        fuzzer.machine_boots(),
        1,
        "one switch set, sequential steps: a single machine serves the campaign"
    );
}
