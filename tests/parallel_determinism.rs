//! Sharded-campaign determinism: parallelism must not cost reproducibility.
//!
//! The sharded runner (`ozz::parallel`) spreads one campaign over N worker
//! threads, yet its merged `FoundBug` map is specified to be a pure
//! function of `(seed, shards, budget)` — thread scheduling, core count,
//! and machine load must not leak into the result. These tests pin that
//! contract: byte-identical reruns at one and at four shards, exact
//! agreement with the serial `campaign()` at one shard, and a multi-shard
//! smoke test that actually finds the Figure 7 TLS bug.

use kernelsim::BugId;
use ozz::fuzzer::campaign;
use ozz::parallel::parallel_campaign;

/// Renders the merged found-bug map to bytes (titles, diagnoses, pairs,
/// counters — the full Debug serialization), as `tests/determinism.rs`
/// does for the serial campaign.
fn parallel_bytes(seed: u64, shards: usize, budget: u64) -> Vec<u8> {
    format!("{:#?}", parallel_campaign(seed, shards, budget).found).into_bytes()
}

#[test]
fn reruns_are_byte_identical_at_one_and_four_shards() {
    for shards in [1usize, 4] {
        let a = parallel_bytes(7, shards, 800);
        let b = parallel_bytes(7, shards, 800);
        assert!(!a.is_empty(), "shards={shards}: the budget finds something");
        assert_eq!(
            a, b,
            "shards={shards}: same (seed, shards, budget) diverged — \
             thread timing leaked into the merge"
        );
    }
}

#[test]
fn one_shard_reproduces_the_serial_campaign() {
    let serial = campaign(7, 800);
    let sharded = parallel_campaign(7, 1, 800);
    assert_eq!(
        format!("{:#?}", serial.found()).into_bytes(),
        format!("{:#?}", sharded.found).into_bytes(),
        "a one-shard campaign must replay the serial schedule byte-for-byte"
    );
    assert_eq!(serial.stats().mtis_run, sharded.stats.mtis_run);
    assert_eq!(serial.stats().stis_run, sharded.stats.stis_run);
    assert_eq!(serial.stats().coverage, sharded.stats.coverage);
}

#[test]
fn multi_shard_campaign_finds_the_figure7_tls_bug() {
    // Table 3 smoke test on the all-bugs kernel: four shards sharing a
    // budget comparable to the serial tests' must surface the TLS
    // sk_proto reordering (Figure 7), and the merged diagnosis carries a
    // store-barrier location like the serial one does.
    let report = parallel_campaign(7, 4, 6000);
    let bug = report
        .found
        .get(BugId::TlsSkProt.expected_title())
        .expect("four shards must find the Figure 7 bug within the budget");
    assert!(
        bug.barrier_location.contains("smp_wmb"),
        "diagnosis names the missing store barrier: {}",
        bug.barrier_location
    );
    // Every merged bug's tests-to-find fits inside its finding shard's
    // slice of the budget.
    for b in report.found.values() {
        assert!(b.tests_to_find <= 6000 / 4 + 1);
    }
}
