//! Campaign-service determinism: parallelism must not cost reproducibility.
//!
//! The work-stealing engine behind `ozz::campaign::CampaignBuilder`
//! spreads one campaign over N logical shards executed by M worker
//! threads, yet its merged `FoundBug` map is specified to be a pure
//! function of `(seed, shards, budget)` — worker count, thread
//! scheduling, core count, and machine load must not leak into the
//! result. These tests pin that contract: byte-identical reruns at one
//! and at four shards, worker-count invariance (1 worker vs one per
//! shard), exact agreement with the serial `campaign()` at one shard,
//! kill/resume transparency, and a multi-shard smoke test that actually
//! finds the Figure 7 TLS bug.

use kernelsim::{BugId, BugSwitches};
use ozz::campaign::{CampaignBuilder, CampaignReport};
use ozz::fuzzer::{FuzzConfig, Fuzzer};

/// Renders the merged found-bug map to bytes (titles, diagnoses, pairs,
/// counters — the full Debug serialization), as `tests/determinism.rs`
/// does for the serial campaign.
fn found_bytes(r: &CampaignReport) -> Vec<u8> {
    format!("{:#?}", r.found).into_bytes()
}

fn run(seed: u64, shards: usize, workers: usize, budget: u64) -> CampaignReport {
    CampaignBuilder::new(seed)
        .shards(shards)
        .workers(workers)
        .budget(budget)
        .run()
}

#[test]
fn reruns_are_byte_identical_at_one_and_four_shards() {
    for shards in [1usize, 4] {
        let a = found_bytes(&run(7, shards, shards, 800));
        let b = found_bytes(&run(7, shards, shards, 800));
        assert!(!a.is_empty(), "shards={shards}: the budget finds something");
        assert_eq!(
            a, b,
            "shards={shards}: same (seed, shards, budget) diverged — \
             thread timing leaked into the merge"
        );
    }
}

#[test]
fn worker_count_is_invisible_in_the_merge() {
    // Workers are a pure throughput knob: stealing batches across threads
    // must not change diagnoses, statistics, coverage, or the crash
    // database. (Steal counts and batch timings are observability-only
    // and deliberately excluded.)
    let render = |r: &CampaignReport| {
        (
            found_bytes(r),
            r.stats.clone(),
            r.coverage.clone(),
            r.crashes.to_text(),
            r.shard_stats
                .iter()
                .map(|s| (s.shard, s.fuzz.clone(), s.epochs, s.done))
                .collect::<Vec<_>>(),
        )
    };
    let inline = render(&run(7, 4, 1, 800));
    for workers in [2usize, 4, 8] {
        assert_eq!(
            inline,
            render(&run(7, 4, workers, 800)),
            "workers={workers} changed the merged campaign"
        );
    }
}

/// The serial Table 3 loop spelled with the plain [`Fuzzer`] surface:
/// fuzz the all-bugs kernel until every expected crash title is found or
/// the budget runs out. (This is what the retired `fuzzer::campaign()`
/// shim did; the loop lives here so the comparison below stays on
/// non-deprecated API.)
fn serial_campaign(seed: u64, max_tests: u64) -> Fuzzer {
    let expected: Vec<&str> = BugId::NEW.iter().map(|b| b.expected_title()).collect();
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed,
        bugs: BugSwitches::all(),
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < max_tests {
        fuzzer.step();
        if expected.iter().all(|t| fuzzer.found().contains_key(*t)) {
            break;
        }
    }
    fuzzer
}

#[test]
fn one_shard_reproduces_the_serial_campaign() {
    let serial = serial_campaign(7, 800);
    let sharded = run(7, 1, 1, 800);
    assert_eq!(
        format!("{:#?}", serial.found()).into_bytes(),
        found_bytes(&sharded),
        "a one-shard campaign must replay the serial schedule byte-for-byte"
    );
    assert_eq!(serial.stats().mtis_run, sharded.stats.mtis_run);
    assert_eq!(serial.stats().stis_run, sharded.stats.stis_run);
    assert_eq!(serial.stats().coverage, sharded.stats.coverage);
}

#[test]
fn kill_and_resume_are_invisible_in_the_merge() {
    // An in-memory kill/resume round trip: halting at a round boundary
    // and resuming from the attached checkpoint must land on the exact
    // campaign an uninterrupted run produces.
    let full = run(7, 3, 2, 700);
    let halted = CampaignBuilder::new(7)
        .shards(3)
        .workers(2)
        .budget(700)
        .halt_after_epochs(2)
        .run();
    assert!(halted.halted, "the campaign halts mid-budget");
    let resumed = CampaignBuilder::new(0)
        .resume(halted.checkpoint.expect("halt attaches a checkpoint"))
        .run();
    assert_eq!(found_bytes(&full), found_bytes(&resumed));
    assert_eq!(full.stats, resumed.stats);
    assert_eq!(full.coverage, resumed.coverage);
    assert_eq!(full.crashes, resumed.crashes);
    assert_eq!(full.rounds, resumed.rounds);
}

#[test]
fn multi_shard_campaign_finds_the_figure7_tls_bug() {
    // Table 3 smoke test on the all-bugs kernel: four shards sharing a
    // budget comparable to the serial tests' must surface the TLS
    // sk_proto reordering (Figure 7), and the merged diagnosis carries a
    // store-barrier location like the serial one does.
    let report = run(7, 4, 4, 6000);
    let bug = report
        .found
        .get(BugId::TlsSkProt.expected_title())
        .expect("four shards must find the Figure 7 bug within the budget");
    assert!(
        bug.barrier_location.contains("smp_wmb"),
        "diagnosis names the missing store barrier: {}",
        bug.barrier_location
    );
    // Every merged bug's tests-to-find fits inside its finding shard's
    // slice of the budget.
    for b in report.found.values() {
        assert!(b.tests_to_find <= 6000 / 4 + 1);
    }
    // The crash database deduplicated at least as many sightings as there
    // are diagnoses, and per-shard stats surface the campaign's shape.
    assert!(report.crashes.len() >= report.found.len());
    assert_eq!(report.shard_stats.len(), 4);
    assert!(report.shard_stats.iter().all(|s| s.epochs >= 1));
}
