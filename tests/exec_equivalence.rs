//! Executor equivalence: the threadless stepped executor is observably
//! byte-identical to the two-thread scheduler-serialised executor.
//!
//! PR 4 established that a recorded schedule is a *script* — a pure
//! function of the plan and the instrumented event stream, independent of
//! wall-clock timing. The stepped executor leans on exactly that
//! invariant: because a pair run contains at most one deliberate handoff,
//! the condvar handshake between two OS threads can be replaced by a
//! nested function call on a single thread without changing which access
//! runs when. These tests pin the consequence end to end: whole campaigns,
//! recorded traces, replay verdicts, oracle verdicts, and bounded
//! exhaustive explorations must match byte for byte across
//! [`ExecMode::Stepped`] and [`ExecMode::Threaded`].
//!
//! Each side constructs its mode explicitly (never via `OZZ_EXEC`), so the
//! comparison is valid regardless of the environment the suite runs under.

use std::collections::BTreeSet;

use kernelsim::{BugId, BugSwitches, ExecMode, ExecRequest, Kctx, MachinePool, Syscall};
use modelcheck::{explore_pair_with_mode, Bound};
use ozz::fuzzer::{FuzzConfig, Fuzzer};
use ozz::hints::calc_hints;
use ozz::mti::{build_mtis, Mti};
use ozz::sti::{known_bug_sti, Sti};
use ozz::{profile_sti, profile_sti_on};

/// The directed corpus used for trace/oracle comparisons: one bug per
/// reorder flavour, with the STI that provokes it (the golden-trace trio).
fn corpus() -> Vec<(BugId, Sti)> {
    use Syscall::*;
    vec![
        (
            BugId::TlsSkProt,
            Sti {
                calls: vec![
                    TlsInit { fd: 0 },
                    SetSockOpt { fd: 0 },
                    GetSockOpt { fd: 0 },
                ],
            },
        ),
        (
            BugId::RdsClearBit,
            Sti {
                calls: vec![RdsLoopXmit, RdsSendXmit, RdsLoopXmit],
            },
        ),
        (
            BugId::KnownWatchQueuePost,
            known_bug_sti(BugId::KnownWatchQueuePost).expect("table-4 sti"),
        ),
    ]
}

fn directed_mtis(bugs: BugSwitches, sti: &Sti) -> Vec<Mti> {
    let traces = profile_sti(sti, bugs);
    build_mtis(
        sti,
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        32,
    )
}

/// Runs a campaign to `budget` MTIs on the given executor and renders
/// every observable output.
fn campaign_outputs(seed: u64, budget: u64, mode: ExecMode) -> (String, String, String) {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed,
        bugs: BugSwitches::all(),
        exec_mode: mode,
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
    }
    (
        format!("{:#?}", fuzzer.found()),
        format!("{:?}", fuzzer.stats()),
        format!("{:?}", fuzzer.coverage_iids()),
    )
}

#[test]
fn stepped_campaign_equals_threaded_campaign() {
    for seed in [2024, 7] {
        let stepped = campaign_outputs(seed, 400, ExecMode::Stepped);
        let threaded = campaign_outputs(seed, 400, ExecMode::Threaded);
        assert!(!stepped.0.is_empty());
        assert_eq!(
            stepped.0, threaded.0,
            "seed {seed}: executors found different bugs"
        );
        assert_eq!(
            stepped.1, threaded.1,
            "seed {seed}: campaign statistics diverged"
        );
        assert_eq!(stepped.2, threaded.2, "seed {seed}: coverage diverged");
    }
}

#[test]
fn recorded_traces_and_digests_match_across_executors() {
    for (bug, sti) in corpus() {
        let bugs = BugSwitches::only([bug]);
        let mut crashed = false;
        for mti in &directed_mtis(bugs.clone(), &sti) {
            let run = |mode: ExecMode| {
                let k = Kctx::new(bugs.clone());
                k.set_exec_mode(mode);
                mti.run_recorded_on(&k)
            };
            let stepped = run(ExecMode::Stepped);
            let threaded = run(ExecMode::Threaded);
            assert_eq!(
                stepped.trace.to_text(),
                threaded.trace.to_text(),
                "{bug}: pair ({},{}) recorded different schedules",
                mti.i,
                mti.j
            );
            assert_eq!(
                format!("{:?}", stepped.outcome),
                format!("{:?}", threaded.outcome),
                "{bug}: pair ({},{}) outcomes diverged",
                mti.i,
                mti.j
            );
            assert_eq!(
                stepped.digest, threaded.digest,
                "{bug}: pair ({},{}) reached different kernel states",
                mti.i, mti.j
            );
            crashed |= stepped
                .outcome
                .crashes
                .iter()
                .any(|c| c.title == bug.expected_title());
        }
        assert!(crashed, "{bug}: directed sweep never crashed — vacuous");
    }
}

#[test]
fn replays_match_across_executors() {
    // Record each bug's crashing schedule once (stepped), then replay it
    // under both executors: same divergence verdict, same crashes, same
    // post-run digest. The stepped replayer handles every recorded log
    // (at most one switch); this also covers its dispatch path.
    for (bug, sti) in corpus() {
        let bugs = BugSwitches::only([bug]);
        let mtis = directed_mtis(bugs.clone(), &sti);
        let (mti, rec) = mtis
            .iter()
            .find_map(|mti| {
                let k = Kctx::new(bugs.clone());
                k.set_exec_mode(ExecMode::Stepped);
                let rec = mti.run_recorded_on(&k);
                rec.outcome
                    .crashes
                    .iter()
                    .any(|c| c.title == bug.expected_title())
                    .then_some((mti, rec))
            })
            .expect("directed sweep finds a crashing schedule");

        let replay = |mode: ExecMode| {
            let pool = MachinePool::new();
            let m = pool.checkout(&bugs);
            m.kctx().set_exec_mode(mode);
            mti.run_setup(m.kctx());
            let (a, b) = mti.pair();
            let (outcome, report) = m
                .execute(ExecRequest::replay(&rec.trace, a, b))
                .into_replayed();
            (
                format!("{outcome:?}"),
                format!("{report:?}"),
                m.kctx().state_digest(),
            )
        };
        let stepped = replay(ExecMode::Stepped);
        let threaded = replay(ExecMode::Threaded);
        assert_eq!(stepped, threaded, "{bug}: replay diverged across executors");
        assert_eq!(
            stepped.2, rec.digest,
            "{bug}: replay reached a different state than the recording"
        );
    }
}

#[test]
fn oracle_verdicts_match_across_executors() {
    // The oracle-matrix discipline on the directed corpus: on the buggy
    // kernel both executors surface the expected title; on the fixed
    // kernel neither does; and the full title sets agree exactly.
    fn sweep_titles(bugs: &BugSwitches, sti: &Sti, mode: ExecMode) -> BTreeSet<String> {
        let pool = MachinePool::new();
        let m = pool.checkout(bugs);
        m.kctx().set_exec_mode(mode);
        let traces = profile_sti_on(m.kctx(), sti);
        let mtis = build_mtis(
            sti,
            |i, j| calc_hints(&traces[i].events, &traces[j].events),
            32,
        );
        let mut titles = BTreeSet::new();
        for mti in &mtis {
            m.kctx().reset();
            mti.run_setup(m.kctx());
            let out = mti.run_pair_pooled(&m);
            titles.extend(out.crashes.iter().map(|c| c.title.clone()));
        }
        titles
    }

    for (bug, sti) in corpus() {
        for switches in [BugSwitches::only([bug]), BugSwitches::none()] {
            let stepped = sweep_titles(&switches, &sti, ExecMode::Stepped);
            let threaded = sweep_titles(&switches, &sti, ExecMode::Threaded);
            assert_eq!(stepped, threaded, "{bug}: verdicts diverged ({switches:?})");
            let buggy = switches.has(bug);
            assert_eq!(
                stepped.iter().any(|t| t == bug.expected_title()),
                buggy,
                "{bug}: wrong verdict on the {} kernel",
                if buggy { "buggy" } else { "fixed" }
            );
        }
    }
}

#[test]
fn modelcheck_explorations_match_across_executors() {
    let bugs = BugSwitches::only([BugId::KnownWatchQueuePost]);
    let sti = known_bug_sti(BugId::KnownWatchQueuePost).expect("table-4 sti");
    let bound = Bound {
        max_schedules: 64,
        ..Bound::default()
    };
    let mut any_crash = false;
    for j in 1..sti.calls.len() {
        for i in 0..j {
            let stepped = explore_pair_with_mode(&bugs, &sti, i, j, &bound, ExecMode::Stepped);
            let threaded = explore_pair_with_mode(&bugs, &sti, i, j, &bound, ExecMode::Threaded);
            assert_eq!(
                format!("{stepped:#?}"),
                format!("{threaded:#?}"),
                "pair ({i},{j}): explorations diverged"
            );
            any_crash |= !stepped.crash_titles().is_empty();
        }
    }
    assert!(any_crash, "bounded exploration never crashed — vacuous");
}
