//! Oracle matrix: every seeded bug × {buggy, fixed}.
//!
//! For each of the 24 `BugId`s the simulated kernel can compile in, the
//! buggy variant must expose its expected symptom within a fixed budget —
//! a directed pair-×-hint sweep of the bug's repro STI (the §6.2
//! choreography), falling back to a short seeded campaign for bugs whose
//! trigger needs a longer setup prefix — and the fixed variant must NEVER
//! report it, under the exact same sweep. Two bugs have wrong-value
//! symptoms instead of crash titles (Table 4's `✓*` row and the filemap
//! data-loss bug); one (sbitmap) needs the §6.2 migration override.

use kernelsim::{BugId, BugSwitches, Kctx, MachinePool, Syscall};
use ozz::fuzzer::{FuzzConfig, Fuzzer};
use ozz::hints::calc_hints;
use ozz::mti::build_mtis;
use ozz::profile_sti_on;
use ozz::sti::{ext_bug_sti, known_bug_sti, Sti};

/// The directed STI that reaches `bug`'s code: the Table 4 / extended
/// corpus inputs where they exist, hand-directed sequences for the Table 3
/// (new) bugs.
fn directed_sti(bug: BugId) -> Sti {
    if let Some(s) = known_bug_sti(bug) {
        return s;
    }
    if let Some(s) = ext_bug_sti(bug) {
        return s;
    }
    use Syscall::*;
    let calls = match bug {
        BugId::RdsClearBit => vec![RdsLoopXmit, RdsSendXmit, RdsLoopXmit],
        BugId::WatchQueueFilter => vec![
            WqSetFilter { nwords: 2 },
            WqPost,
            PipeRead,
            WqSetFilter { nwords: 1 },
        ],
        BugId::VmciQueuePair => vec![VmciQpCreate, VmciQpAttach],
        BugId::XskPoolPublish => vec![
            XskRegUmem { fd: 0 },
            XskBind { fd: 0 },
            XskPoll { fd: 0 },
            XskSendmsg { fd: 0 },
            XskRx { fd: 0 },
        ],
        BugId::TlsGetsockopt | BugId::TlsSkProt => vec![
            TlsInit { fd: 0 },
            SetSockOpt { fd: 0 },
            GetSockOpt { fd: 0 },
        ],
        BugId::PsockSavedReady => vec![
            PsockInit { fd: 0 },
            PsockInit { fd: 0 },
            SockRecvmsg { fd: 0 },
        ],
        BugId::XskStateBound => vec![
            XskRegUmem { fd: 0 },
            XskBind { fd: 0 },
            XskSendmsg { fd: 0 },
        ],
        BugId::SmcClcsock => vec![SmcConnect { fd: 0 }, SmcConnect { fd: 0 }],
        BugId::SmcFput => vec![
            SmcConnect { fd: 0 },
            SmcAccept { fd: 0 },
            SmcFputWorker { fd: 0 },
        ],
        BugId::GsmDlci => vec![GsmDlciAlloc { idx: 0 }, GsmDlciConfig { idx: 0 }],
        other => unreachable!("{other}: known/extended bugs are handled above"),
    };
    Sti { calls }
}

/// Whether `bug`'s symptom — its crash title, or the wrong-value condition
/// for the two silent bugs — appears on a run outcome.
fn symptom_in(bug: BugId, mti: &ozz::mti::Mti, out: &kernelsim::RunOutcome) -> bool {
    match bug {
        BugId::KnownTlsErr => {
            let (_, b) = mti.pair();
            b == (Syscall::TlsPollErr { fd: 0 }) && out.ret_b == 0
        }
        BugId::ExtFilemap => out.ret_b == 0,
        _ => out.crashes.iter().any(|c| c.title == bug.expected_title()),
    }
}

/// The directed sweep: every pair × every hint (cap 32) of the bug's STI
/// on a `switches` kernel, with the §6.2 migration override where the
/// paper needed it. Returns whether the symptom appeared.
fn directed_sweep(bug: BugId, switches: &BugSwitches) -> bool {
    let sti = directed_sti(bug);
    let migration = bug == BugId::KnownSbitmap;
    let configure = |k: &Kctx| {
        if migration {
            k.set_migration_override(true);
        }
    };
    let pool = MachinePool::new();
    let m = pool.checkout(switches);
    configure(m.kctx());
    let traces = profile_sti_on(m.kctx(), &sti);
    let mtis = build_mtis(
        &sti,
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        32,
    );
    for mti in mtis {
        let k = m.kctx();
        k.reset();
        configure(k);
        mti.run_setup(k);
        let out = mti.run_pair_pooled(&m);
        if symptom_in(bug, &mti, &out) {
            return true;
        }
    }
    false
}

/// Fallback for buggy kernels the directed sweep misses: a focused seeded
/// campaign (fixed seed, fixed budget) on the single-bug build.
fn campaign_finds(bug: BugId, budget: u64) -> bool {
    let mut f = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::only([bug]),
        ..FuzzConfig::default()
    });
    f.run_until(budget, 1);
    f.found().contains_key(bug.expected_title())
}

fn all_bugs() -> Vec<BugId> {
    BugId::NEW
        .iter()
        .chain(BugId::KNOWN.iter())
        .chain(BugId::EXTENDED.iter())
        .copied()
        .collect()
}

#[test]
fn every_buggy_variant_exposes_its_symptom() {
    let mut missed = Vec::new();
    for bug in all_bugs() {
        let found = directed_sweep(bug, &BugSwitches::only([bug])) || campaign_finds(bug, 30_000);
        if !found {
            missed.push(bug);
        }
    }
    assert!(
        missed.is_empty(),
        "buggy kernels must expose their bugs within the budget; missed: {missed:?}"
    );
}

#[test]
fn fixed_variant_never_reports_under_the_same_sweep() {
    let fixed = BugSwitches::none();
    for bug in all_bugs() {
        assert!(
            !directed_sweep(bug, &fixed),
            "{bug}: the patched kernel must survive the full directed sweep"
        );
    }
}

#[test]
fn fixed_variant_survives_a_fuzzing_campaign() {
    // Defense in depth over the per-bug sweep: a general campaign against
    // the fully patched kernel reports nothing at all.
    let mut f = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::none(),
        ..FuzzConfig::default()
    });
    f.run_until(1_000, 1);
    assert!(
        f.found().is_empty(),
        "no false positives: {:?}",
        f.found().keys().collect::<Vec<_>>()
    );
}
