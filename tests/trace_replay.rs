//! Replay fidelity: every bug a campaign finds must reproduce from its
//! embedded schedule trace alone (ISSUE 5 acceptance).
//!
//! A `FoundBug` carries the recorded schedule of the crashing execution
//! (switch points + engine ordering decisions) plus an FNV fingerprint of
//! the post-run machine-state digest. `reproduce_from_trace` boots a fresh
//! kernel, re-runs the STI setup prefix, and replays the pair slaved to
//! the trace — no Table 2 controls, no breakpoint plan, no hint search.
//! Fidelity means: no divergence, same crash title, byte-identical state
//! digest. Pinned here for two seeds and both executor arms.

use kernelsim::BugSwitches;
use kutil::fnv1a64;
use oemu::ScheduleTrace;
use ozz::fuzzer::{FuzzConfig, Fuzzer};
use ozz::repro::{replay_trace, reproduce_from_trace};

fn campaign(seed: u64, budget: u64, reuse_machines: bool) -> Fuzzer {
    let mut f = Fuzzer::new(FuzzConfig {
        seed,
        reuse_machines,
        ..FuzzConfig::default()
    });
    f.run_until(budget, usize::MAX);
    f
}

#[test]
fn every_campaign_crash_replays_to_identical_verdict_and_digest() {
    for seed in [2024, 7] {
        let f = campaign(seed, 400, true);
        assert!(
            !f.found().is_empty(),
            "seed {seed}: the budget finds at least one bug"
        );
        for (title, bug) in f.found() {
            assert!(
                reproduce_from_trace(bug, BugSwitches::all()),
                "seed {seed}: {title} must replay to the same verdict and digest"
            );
        }
    }
}

#[test]
fn fresh_boot_campaign_traces_replay_too() {
    // The spawning executor records through a different code path
    // (`run_concurrent_recorded` vs the pooled worker variant); its traces
    // must be just as replayable.
    let f = campaign(2024, 300, false);
    assert!(!f.found().is_empty());
    for (title, bug) in f.found() {
        assert!(
            reproduce_from_trace(bug, BugSwitches::all()),
            "{title} (fresh-boot arm) must replay"
        );
    }
}

#[test]
fn replay_is_detected_as_unfaithful_on_the_wrong_kernel() {
    // Replaying a buggy-kernel trace on the fixed kernel must not claim
    // fidelity: the fixed kernel executes different code (the patch adds
    // barriers), so the replay diverges or lands on a different state.
    let f = campaign(2024, 400, true);
    let bug = f.found().values().next().expect("campaign found a bug");
    assert!(
        !reproduce_from_trace(bug, BugSwitches::none()),
        "fixed kernel must not validate a buggy-kernel trace"
    );
    let (i, j) = bug.pair_indices;
    let replay = replay_trace(BugSwitches::none(), &bug.sti, i, j, &bug.trace);
    assert!(
        replay.diverged || fnv1a64(replay.digest.as_bytes()) != bug.digest_fnv,
        "the mismatch is visible in the replay report"
    );
}

#[test]
fn traces_roundtrip_through_the_text_format() {
    // Serialization fidelity on real campaign traces, not just synthetic
    // ones: parse(to_text(t)) == t, and the parsed trace still replays.
    let f = campaign(7, 400, true);
    let bug = f.found().values().next().expect("campaign found a bug");
    let text = bug.trace.to_text();
    let parsed = ScheduleTrace::parse(&text).expect("serialized trace parses");
    assert_eq!(parsed, bug.trace, "text roundtrip is lossless");
    let (i, j) = bug.pair_indices;
    let replay = replay_trace(BugSwitches::all(), &bug.sti, i, j, &parsed);
    assert!(!replay.diverged);
    assert!(replay.outcome.crashes.iter().any(|c| c.title == bug.title));
    assert_eq!(fnv1a64(replay.digest.as_bytes()), bug.digest_fnv);
}
