//! Kill/resume equivalence across process boundaries.
//!
//! The campaign checkpoint is specified to capture *everything* the
//! engine needs: corpus, coverage, RNG streams, statistics, crash
//! diagnoses with embedded schedule traces, and the per-shard broadcast
//! protocol state. These tests enforce the strongest form of that claim:
//! a campaign halted mid-budget and resumed **in a fresh process** must
//! render byte-identically to an uninterrupted run — for multiple seeds
//! and under both executors.
//!
//! The fresh process is this same test binary re-executed with
//! `resume_helper --exact`: the helper is an env-gated test that resumes
//! from `OZZ_RESUME_CHECKPOINT` and writes its rendered report to
//! `OZZ_RESUME_OUT` (it passes trivially when the variables are unset).

use std::path::PathBuf;

use kernelsim::ExecMode;
use ozz::campaign::{CampaignBuilder, CampaignReport};

const SHARDS: usize = 3;
const WORKERS: usize = 2;
const BUDGET: u64 = 600;
const EPOCH_MTIS: u64 = 48;
const HALT_AFTER: u64 = 2;

/// Everything determinism-pinned in a report, rendered to text. Steal
/// counts and batch timings are deliberately absent (observability only);
/// instruction ids round-trip because checkpoint parsing re-registers
/// them by token.
fn render(r: &CampaignReport) -> String {
    let shard_lines: Vec<String> = r
        .shard_stats
        .iter()
        .map(|s| {
            format!(
                "shard {} {:?} epochs {} done {}",
                s.shard, s.fuzz, s.epochs, s.done
            )
        })
        .collect();
    format!(
        "found {:#?}\nstats {:?}\ncoverage {:?}\nrounds {}\nshards {}\ncrashdb:\n{}",
        r.found,
        r.stats,
        r.coverage,
        r.rounds,
        shard_lines.join("\n"),
        r.crashes.to_text()
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ozz-resume-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn exec_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Stepped => "stepped",
        ExecMode::Threaded => "threaded",
    }
}

/// Runs the uninterrupted reference campaign in-process.
fn full_run(seed: u64, mode: ExecMode) -> CampaignReport {
    CampaignBuilder::new(seed)
        .shards(SHARDS)
        .workers(WORKERS)
        .budget(BUDGET)
        .epoch_mtis(EPOCH_MTIS)
        .exec_mode(mode)
        .run()
}

/// Halts a campaign mid-budget, writing the checkpoint to `ckpt`.
fn halted_run(seed: u64, mode: ExecMode, ckpt: &PathBuf) -> CampaignReport {
    CampaignBuilder::new(seed)
        .shards(SHARDS)
        .workers(WORKERS)
        .budget(BUDGET)
        .epoch_mtis(EPOCH_MTIS)
        .exec_mode(mode)
        .checkpoint_to(ckpt)
        .halt_after_epochs(HALT_AFTER)
        .run()
}

fn assert_resumes_identically_in_fresh_process(seed: u64, mode: ExecMode) {
    let tag = format!("{seed}-{}", exec_name(mode));
    let dir = scratch_dir(&tag);
    let ckpt = dir.join("campaign.ckpt");
    let out = dir.join("resumed.txt");

    let reference = render(&full_run(seed, mode));
    let halted = halted_run(seed, mode, &ckpt);
    assert!(
        halted.halted,
        "seed {seed}: the campaign must halt mid-budget"
    );
    assert!(
        ckpt.exists(),
        "seed {seed}: the checkpoint file was written"
    );
    assert_ne!(
        render(&halted),
        reference,
        "seed {seed}: the halted campaign stopped early, so its render must differ"
    );

    // Resume in a *fresh process*: re-exec this test binary against the
    // env-gated helper below. Nothing from this process's memory survives
    // — only the checkpoint file crosses the boundary.
    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .args(["resume_helper", "--exact", "--nocapture"])
        .env("OZZ_RESUME_CHECKPOINT", &ckpt)
        .env("OZZ_RESUME_OUT", &out)
        .env("OZZ_EXEC", exec_name(mode))
        .status()
        .expect("spawn resume helper process");
    assert!(status.success(), "seed {seed}: resume helper failed");

    let resumed = std::fs::read_to_string(&out).expect("helper wrote its render");
    assert_eq!(
        resumed,
        reference,
        "seed {seed} ({}): fresh-process resume diverged from the uninterrupted run",
        exec_name(mode)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fresh-process half of the tests above. Gated on the env vars the
/// parent sets; a plain `cargo test` run passes straight through it.
#[test]
fn resume_helper() {
    let Ok(ckpt) = std::env::var("OZZ_RESUME_CHECKPOINT") else {
        return;
    };
    let out = std::env::var("OZZ_RESUME_OUT").expect("OZZ_RESUME_OUT set with the checkpoint");
    let report = CampaignBuilder::resume_from(&ckpt)
        .expect("checkpoint file parses")
        .workers(WORKERS)
        .run();
    assert!(!report.halted, "the resumed campaign runs to completion");
    std::fs::write(&out, render(&report)).expect("write the resumed render");
}

#[test]
fn fresh_process_resume_is_byte_identical_seed_2024() {
    assert_resumes_identically_in_fresh_process(2024, ExecMode::from_env());
}

#[test]
fn fresh_process_resume_is_byte_identical_seed_7() {
    assert_resumes_identically_in_fresh_process(7, ExecMode::from_env());
}

#[test]
fn fresh_process_resume_crosses_executors() {
    // The checkpoint stores no executor state: a campaign halted under one
    // executor and resumed under the *other* must still match the
    // reference (which itself is executor-invariant).
    let reference = render(&full_run(2024, ExecMode::Stepped));
    let tag = "cross-exec";
    let dir = scratch_dir(tag);
    let ckpt = dir.join("campaign.ckpt");
    let out = dir.join("resumed.txt");
    let halted = halted_run(2024, ExecMode::Threaded, &ckpt);
    assert!(halted.halted);
    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .args(["resume_helper", "--exact", "--nocapture"])
        .env("OZZ_RESUME_CHECKPOINT", &ckpt)
        .env("OZZ_RESUME_OUT", &out)
        .env("OZZ_EXEC", "stepped")
        .status()
        .expect("spawn resume helper process");
    assert!(status.success());
    let resumed = std::fs::read_to_string(&out).expect("helper wrote its render");
    assert_eq!(
        resumed, reference,
        "halt under threaded + resume under stepped diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
