//! The triage differential battery: for every oracle-matrix bug, the
//! minimized reproducer must (a) replay to the same oracle verdict on a
//! fresh machine, (b) be no longer than the original recording, (c) be a
//! fixed point of the minimizer (idempotence), and (d) come out
//! byte-identical when the whole record-and-minimize pipeline runs twice
//! (determinism). Across the battery, the median event reduction must be
//! at least 40%.
//!
//! Like every workspace integration test, this honours the ambient
//! `OZZ_EXEC` / `OZZ_MEMMODEL` environment — ci.sh runs it under both
//! executors and all three memory models.

use kernelsim::{BugId, BugSwitches, MachinePool};
use ozz::repro::replay_trace_on;
use ozz::triage::{record_reproducer, BisectOutcome, Minimized, Reproducer, Triager};

fn all_bugs() -> Vec<BugId> {
    BugId::NEW
        .iter()
        .chain(BugId::KNOWN.iter())
        .chain(BugId::EXTENDED.iter())
        .copied()
        .collect()
}

/// Replays the minimized reproducer on a fresh pooled machine of the given
/// build and checks the oracle verdict — property (a)'s independent check,
/// sharing no state with the minimizer's own verification.
fn reproduces(build: &BugSwitches, r: &Reproducer, min: &Minimized) -> bool {
    let pool = MachinePool::new();
    let m = pool.checkout_with_model(build, min.trace.model);
    let k = m.kctx();
    k.reset();
    if r.migration_override {
        k.set_migration_override(true);
    }
    let rep = replay_trace_on(&m, &min.sti, min.i, min.j, &min.trace);
    !rep.diverged && r.verdict.holds(&rep.outcome)
}

/// The minimized reproducer re-packed as a recorder output, to feed the
/// minimizer its own result for the idempotence check.
fn as_reproducer(r: &Reproducer, min: &Minimized) -> Reproducer {
    Reproducer {
        sti: min.sti.clone(),
        i: min.i,
        j: min.j,
        trace: min.trace.clone(),
        ..r.clone()
    }
}

/// Properties (a)–(c) plus the reduction statistic, for every bug.
#[test]
fn minimized_traces_reproduce_shrink_and_fix() {
    let mut reductions = Vec::new();
    for bug in all_bugs() {
        let build = BugSwitches::only([bug]);
        let r = record_reproducer(bug).unwrap_or_else(|| panic!("{bug} must record"));
        let triager = Triager::new(build.clone());
        let min = triager.minimize(&r);

        // (a) Replay equivalence: same verdict, no divergence, fresh machine.
        assert!(
            reproduces(&build, &r, &min),
            "{bug}: minimized trace must replay to the same verdict"
        );

        // (b) Never longer than the recording.
        assert!(
            min.stats.events_after <= min.stats.events_before,
            "{bug}: minimization must not grow the trace"
        );

        // (c) Idempotence: minimizing the minimized reproducer is the
        // identity, byte for byte.
        let again = triager.minimize(&as_reproducer(&r, &min));
        assert_eq!(
            again.trace.to_text(),
            min.trace.to_text(),
            "{bug}: minimization must be a fixed point"
        );
        assert_eq!(again.sti.calls, min.sti.calls, "{bug}: STI fixed point");
        assert_eq!((again.i, again.j), (min.i, min.j));
        assert_eq!(again.digest_fnv, min.digest_fnv);

        reductions.push(min.stats.reduction_pct());
    }

    // Battery-wide statistic: median event reduction >= 40%.
    reductions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = reductions[reductions.len() / 2];
    assert!(
        median >= 40.0,
        "median event reduction {median:.1}% must be at least 40%"
    );
}

/// Property (d): running the whole record-and-minimize pipeline twice
/// yields byte-identical traces and STIs. Recording is seeded and the
/// minimizer has no randomness, so this is exact equality, not similarity.
#[test]
fn minimization_is_deterministic_end_to_end() {
    for bug in all_bugs() {
        let triager = Triager::new(BugSwitches::only([bug]));
        let one = {
            let r = record_reproducer(bug).unwrap_or_else(|| panic!("{bug} must record"));
            (r.clone(), triager.minimize(&r))
        };
        let two = {
            let r = record_reproducer(bug).unwrap_or_else(|| panic!("{bug} must record"));
            (r.clone(), triager.minimize(&r))
        };
        assert_eq!(
            one.0.trace.to_text(),
            two.0.trace.to_text(),
            "{bug}: recording must be deterministic"
        );
        assert_eq!(
            one.1.trace.to_text(),
            two.1.trace.to_text(),
            "{bug}: minimized trace must be byte-identical across runs"
        );
        assert_eq!(one.1.sti.calls, two.1.sti.calls);
        assert_eq!(one.1.digest_fnv, two.1.digest_fnv);
        assert_eq!(one.1.stats.replays, two.1.stats.replays);
    }
}

/// The bisector names exactly the switch the oracle-matrix row flips: on a
/// build with *all* switches enabled it must single out the bug's own
/// switch for every minimized reproducer. The one deliberate alias pair
/// (`XskStateBound` and `KnownXskState` model the same real xsk bug and
/// share a crash title) must instead be reported as an ambiguous patch
/// naming both — and resolve to the right culprit once the twin is off the
/// build.
#[test]
fn bisection_names_the_flipped_switch() {
    for bug in all_bugs() {
        let r = record_reproducer(bug).unwrap_or_else(|| panic!("{bug} must record"));
        let min = Triager::new(BugSwitches::only([bug])).minimize(&r);
        // Under the Arm model `READ_ONCE` is not a load barrier, so some
        // fix patches are insufficient by design and the symptom can fire
        // on the fully-fixed build; no patch is nameable then, and the
        // bisector must say so rather than guess.
        if reproduces(&BugSwitches::none(), &r, &min) {
            let (outcome, _) = Triager::new(BugSwitches::all()).bisect(&r, &min);
            match outcome {
                BisectOutcome::Inconclusive(why) => assert!(
                    why.contains("every switch reverted"),
                    "{bug}: expected the unattributable diagnosis, got: {why}"
                ),
                other => panic!("{bug}: fires on the fixed build, yet bisect said {other:?}"),
            }
            continue;
        }
        let twins: Vec<BugId> = BugSwitches::all()
            .iter()
            .filter(|&b| b != bug && b.expected_title() == bug.expected_title())
            .collect();
        let unambiguous =
            BugSwitches::only(BugSwitches::all().iter().filter(|b| !twins.contains(b)));
        let (outcome, probes) = Triager::new(unambiguous).bisect(&r, &min);
        assert_eq!(
            outcome,
            BisectOutcome::Culprit(bug),
            "{bug}: bisection must name the culprit"
        );
        // log2 halving plus the loop checks and the sufficiency probe.
        let n = BugSwitches::all().iter().count() as u64;
        assert!(
            probes <= n.ilog2() as u64 + 4,
            "{bug}: {probes} probes exceeds the log2 budget"
        );
        if !twins.is_empty() {
            // On the full build the patch is ambiguous: the bisector must
            // say so and name every sufficient switch, never pick one.
            let (outcome, _) = Triager::new(BugSwitches::all()).bisect(&r, &min);
            match outcome {
                BisectOutcome::Inconclusive(why) => {
                    assert!(
                        why.contains(&bug.to_string()),
                        "{bug}: ambiguity report must name the bug: {why}"
                    );
                    for t in &twins {
                        assert!(
                            why.contains(&t.to_string()),
                            "{bug}: ambiguity report must name {t}: {why}"
                        );
                    }
                }
                other => panic!("{bug}: title-aliased build must be ambiguous, got {other:?}"),
            }
        }
    }
}

/// On an already-fixed build the bisector reports `Inconclusive` — never a
/// wrong patch. Two shapes: the empty build, and the build where only the
/// culprit has been reverted.
#[test]
fn bisection_is_inconclusive_on_fixed_builds() {
    for bug in [
        BugId::KnownWatchQueuePost,
        BugId::TlsSkProt,
        BugId::ExtRingBuffer,
    ] {
        let r = record_reproducer(bug).unwrap_or_else(|| panic!("{bug} must record"));
        let min = Triager::new(BugSwitches::only([bug])).minimize(&r);

        let (outcome, _) = Triager::new(BugSwitches::none()).bisect(&r, &min);
        assert!(
            matches!(outcome, BisectOutcome::Inconclusive(_)),
            "{bug}: empty build must be inconclusive, got {outcome:?}"
        );

        let patched = BugSwitches::only(BugSwitches::all().iter().filter(|&b| b != bug));
        let (outcome, _) = Triager::new(patched).bisect(&r, &min);
        assert!(
            matches!(outcome, BisectOutcome::Inconclusive(_)),
            "{bug}: culprit-reverted build must be inconclusive, got {outcome:?}"
        );
    }
}
