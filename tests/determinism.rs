//! Campaign determinism: the hermetic workspace's core guarantee.
//!
//! OZZ's value proposition (§4.4) is that a found reordering is
//! deterministically replayable. In this reproduction that extends to the
//! whole campaign: the same seed must produce the *byte-identical*
//! `FoundBug` list — same titles, same barrier locations, same
//! tests-to-find counters — on any machine, because every source of
//! nondeterminism (RNG, lock ordering, scheduling) is under the
//! workspace's own control. These tests pin exactly the configuration
//! `examples/fuzz_campaign.rs` runs.

use kernelsim::BugSwitches;
use ozz::fuzzer::{FuzzConfig, Fuzzer};

/// Runs the fuzz_campaign example's campaign to `budget` MTIs and renders
/// the found-bug map to bytes (titles, diagnoses, pairs, counters — the
/// full Debug serialization).
fn campaign_bytes(seed: u64, budget: u64) -> Vec<u8> {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed,
        bugs: BugSwitches::all(),
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
    }
    format!("{:#?}", fuzzer.found()).into_bytes()
}

#[test]
fn identical_seeds_give_byte_identical_found_bug_lists() {
    let a = campaign_bytes(2024, 400);
    let b = campaign_bytes(2024, 400);
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "same seed diverged — campaign schedules are not hermetic"
    );
}

#[test]
fn different_seeds_explore_differently() {
    // Not a strict requirement of the paper, but if two different seeds
    // produce identical campaigns the RNG is almost certainly not being
    // threaded through generation at all.
    let mut a = Fuzzer::new(FuzzConfig {
        seed: 1,
        bugs: BugSwitches::all(),
        ..FuzzConfig::default()
    });
    let mut b = Fuzzer::new(FuzzConfig {
        seed: 2,
        bugs: BugSwitches::all(),
        ..FuzzConfig::default()
    });
    for _ in 0..20 {
        a.step();
        b.step();
    }
    assert_ne!(
        (a.stats().mtis_run, a.stats().coverage),
        (b.stats().mtis_run, b.stats().coverage),
        "seeds 1 and 2 ran identical campaigns"
    );
}
