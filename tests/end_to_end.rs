//! End-to-end integration: the full OZZ pipeline against individual seeded
//! bugs, across every crate boundary (oemu + kmem + ksched + kernelsim +
//! ozz).

use kernelsim::{BugId, BugSwitches, ReorderType};
use ozz::fuzzer::{FuzzConfig, Fuzzer};

/// A focused campaign on a kernel seeded with exactly one bug must find
/// exactly that bug's crash title.
fn find_one(bug: BugId, seed: u64, budget: u64) -> Option<ozz::fuzzer::FoundBug> {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed,
        bugs: BugSwitches::only([bug]),
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
        if fuzzer.found().contains_key(bug.expected_title()) {
            break;
        }
    }
    fuzzer.found().get(bug.expected_title()).cloned()
}

#[test]
fn fuzzer_finds_the_figure1_bug_with_diagnosis() {
    let bug = find_one(BugId::KnownWatchQueuePost, 7, 4000).expect("found");
    assert!(
        bug.barrier_location.contains("smp_wmb") || bug.barrier_location.contains("smp_rmb"),
        "diagnosis names a barrier: {}",
        bug.barrier_location
    );
    assert!(bug.barrier_location.contains("watch_queue.rs"));
}

#[test]
fn fuzzer_finds_the_tls_mis_fix() {
    let bug = find_one(BugId::TlsSkProt, 4, 8000).expect("found");
    assert_eq!(bug.reorder_type, ReorderType::StoreStore);
    assert!(bug.barrier_location.contains("tls.rs"));
}

#[test]
fn fuzzer_finds_the_gsm_load_load_bug() {
    let bug = find_one(BugId::GsmDlci, 4, 8000).expect("found");
    assert_eq!(bug.reorder_type, ReorderType::LoadLoad);
    assert!(bug.barrier_location.contains("smp_rmb"));
}

#[test]
fn fuzzer_finds_the_rds_lock_bug() {
    // The Figure 8 bug needs cursor progress + a non-maximal hint: the
    // deepest end-to-end path in the suite.
    let bug = find_one(BugId::RdsClearBit, 2024, 20_000).expect("found");
    assert_eq!(bug.title, "KASAN: slab-out-of-bounds Read in rds_loop_xmit");
    assert_eq!(bug.reorder_type, ReorderType::StoreStore);
}

#[test]
fn interleaving_baseline_misses_what_ozz_finds() {
    // The §2.3 comparison as an integration test: same kernel, same seed
    // family — OZZ finds the bug, the interleaving-only baseline does not.
    let bugs = BugSwitches::only([BugId::XskPoolPublish]);
    let found = find_one(BugId::XskPoolPublish, 11, 6000);
    assert!(found.is_some(), "OZZ finds Bug #4");
    let mut baseline = baselines::interleave::InterleaveFuzzer::new(11, bugs);
    for _ in 0..12 {
        baseline.step();
    }
    assert!(
        baseline.found().is_empty(),
        "interleaving alone cannot trigger it: {:?}",
        baseline.found()
    );
}

#[test]
fn patched_kernel_yields_no_crashes_end_to_end() {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 123,
        bugs: BugSwitches::none(),
        ..FuzzConfig::default()
    });
    for _ in 0..25 {
        fuzzer.step();
    }
    assert!(fuzzer.stats().mtis_run > 50, "hints were exercised");
    assert!(
        fuzzer.found().is_empty(),
        "no false positives: {:?}",
        fuzzer.found().keys().collect::<Vec<_>>()
    );
}

#[test]
fn campaign_summary_shape_matches_table3() {
    // A bounded version of the table3_campaign binary: most of the Table 3
    // set is discoverable within a modest budget, and every found bug
    // carries a usable diagnosis.
    let report = ozz::campaign::CampaignBuilder::new(2024).budget(2000).run();
    let found: Vec<_> = BugId::NEW
        .iter()
        .filter(|b| report.found.contains_key(b.expected_title()))
        .collect();
    assert!(
        found.len() >= 8,
        "most Table 3 bugs found within 2000 tests, got {}",
        found.len()
    );
    for b in found {
        let info = &report.found[b.expected_title()];
        assert!(info.barrier_location.contains("missing"));
        // The triggering hint's mechanism usually matches the bug's class,
        // but crash titles do not uniquely map to root causes on the
        // all-bugs kernel (e.g. Bug #5's title can first fire via Bug #9's
        // store reordering), so only the load-load rows that *cannot* be
        // produced by delayed stores are pinned here.
        if *b == BugId::GsmDlci {
            assert_eq!(info.reorder_type, ReorderType::LoadLoad);
        }
    }
}
