//! Golden-trace corpus: pinned schedule recordings for three seeded bugs.
//!
//! Each file under `tests/golden/` holds a serialized [`ScheduleTrace`]
//! that crashes its bug, plus the pinned verdict (crash title) and the
//! FNV-1a fingerprint of the post-run [`state_digest`]. The replay test
//! parses the file, re-runs the pair slaved to the trace on a fresh
//! kernel, and asserts the identical verdict and digest — so any engine
//! change that silently alters replay semantics fails loudly here.
//!
//! Regenerate after an *intentional* semantic change with:
//!
//! ```text
//! OZZ_REGEN_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! [`state_digest`]: kernelsim::Kctx::state_digest

use std::fs;
use std::path::PathBuf;

use kernelsim::{BugId, BugSwitches, Syscall};
use kutil::fnv1a64;
use oemu::{MemoryModel, ScheduleTrace};
use ozz::hints::calc_hints;
use ozz::mti::build_mtis;
use ozz::profile_sti;
use ozz::repro::replay_trace;
use ozz::sti::{known_bug_sti, Sti};
use ozz::triage::{record_reproducer_under, Triager};

/// The corpus: (file stem, bug, directed STI). The STI is part of the
/// test, not the golden file — traces only make sense against the exact
/// syscall pair they were recorded from.
fn corpus() -> Vec<(&'static str, BugId, Sti)> {
    use Syscall::*;
    vec![
        (
            "tls",
            BugId::TlsSkProt,
            Sti {
                calls: vec![
                    TlsInit { fd: 0 },
                    SetSockOpt { fd: 0 },
                    GetSockOpt { fd: 0 },
                ],
            },
        ),
        (
            "rds",
            BugId::RdsClearBit,
            Sti {
                calls: vec![RdsLoopXmit, RdsSendXmit, RdsLoopXmit],
            },
        ),
        (
            "watch_queue",
            BugId::KnownWatchQueuePost,
            known_bug_sti(BugId::KnownWatchQueuePost).expect("table-4 sti"),
        ),
    ]
}

fn golden_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{stem}.trace"))
}

struct Golden {
    pair: (usize, usize),
    title: String,
    digest_fnv: u64,
    trace: ScheduleTrace,
}

fn parse_golden(text: &str) -> Golden {
    let (header, trace) = text
        .split_once("--- trace ---")
        .expect("golden file must contain a '--- trace ---' separator");
    let mut pair = None;
    let mut title = None;
    let mut digest_fnv = None;
    for line in header.lines().filter(|l| !l.trim().is_empty()) {
        let (key, val) = line.split_once('=').expect("header lines are key=value");
        match key.trim() {
            "bug" => {} // informational; the corpus table is authoritative
            "pair" => {
                let (i, j) = val.trim().split_once(' ').expect("pair is 'i j'");
                pair = Some((i.parse().unwrap(), j.parse().unwrap()));
            }
            "title" => title = Some(val.trim().to_string()),
            "digest_fnv" => {
                let v = val.trim().strip_prefix("0x").unwrap_or(val.trim());
                digest_fnv = Some(u64::from_str_radix(v, 16).unwrap());
            }
            other => panic!("unknown golden header key '{other}'"),
        }
    }
    Golden {
        pair: pair.expect("pair header"),
        title: title.expect("title header"),
        digest_fnv: digest_fnv.expect("digest_fnv header"),
        trace: ScheduleTrace::parse(trace).expect("golden trace parses"),
    }
}

/// Record a crashing trace for `bug` on its directed STI: the first
/// pair × hint whose recorded run reports the expected title.
fn record_crashing(bug: BugId, sti: &Sti) -> (usize, usize, String, u64, ScheduleTrace) {
    let bugs = BugSwitches::only([bug]);
    let traces = profile_sti(sti, bugs.clone());
    let mtis = build_mtis(
        sti,
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        32,
    );
    for mti in mtis {
        let rec = mti.run_recorded(bugs.clone());
        if rec
            .outcome
            .crashes
            .iter()
            .any(|c| c.title == bug.expected_title())
        {
            return (
                mti.i,
                mti.j,
                bug.expected_title().to_string(),
                fnv1a64(rec.digest.as_bytes()),
                rec.trace,
            );
        }
    }
    panic!("{bug}: no crashing schedule found for the directed STI");
}

fn regen_requested() -> bool {
    std::env::var("OZZ_REGEN_GOLDEN").map_or(false, |v| v == "1")
}

#[test]
fn golden_traces_replay_to_pinned_verdict_and_digest() {
    for (stem, bug, sti) in corpus() {
        let path = golden_path(stem);
        if regen_requested() {
            let (i, j, title, fnv, trace) = record_crashing(bug, &sti);
            let text = format!(
                "bug={bug}\npair={i} {j}\ntitle={title}\ndigest_fnv=0x{fnv:016x}\n--- trace ---\n{}",
                trace.to_text()
            );
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, text).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\nrun with OZZ_REGEN_GOLDEN=1 to (re)generate the corpus",
                path.display()
            )
        });
        let g = parse_golden(&text);

        let r = replay_trace(BugSwitches::only([bug]), &sti, g.pair.0, g.pair.1, &g.trace);
        assert!(
            !r.diverged,
            "{stem}: golden trace no longer replays faithfully"
        );
        assert!(
            r.outcome.crashes.iter().any(|c| c.title == g.title),
            "{stem}: replay lost the pinned crash '{}'; got {:?}",
            g.title,
            r.outcome
                .crashes
                .iter()
                .map(|c| &c.title)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            fnv1a64(r.digest.as_bytes()),
            g.digest_fnv,
            "{stem}: replay reached a different kernel state than the recording"
        );
    }
}

/// Pinned *minimized* traces: the full record-and-minimize pipeline for
/// each corpus bug must land byte-for-byte on `tests/golden/<stem>.min.trace`,
/// so any minimizer behavior change shows up as a review diff. Pinned under
/// TSO — the memory-model matrix is `tests/triage_minimal.rs`'s job; a
/// golden file is a byte pin, not a matrix sweep.
#[test]
fn golden_minimized_traces_are_stable() {
    for (stem, bug, _sti) in corpus() {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{stem}.min.trace"));
        let r = record_reproducer_under(bug, MemoryModel::Tso)
            .unwrap_or_else(|| panic!("{bug} must record"));
        let min = Triager::new(BugSwitches::only([bug])).minimize(&r);
        let text = format!(
            "bug={bug}\npair={} {}\ncalls={}\nevents={} of {}\ndigest_fnv=0x{:016x}\n--- trace ---\n{}",
            min.i,
            min.j,
            min.sti.calls.len(),
            min.stats.events_after,
            min.stats.events_before,
            min.digest_fnv,
            min.trace.to_text()
        );
        if regen_requested() {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, &text).unwrap();
        }
        let pinned = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\nrun with OZZ_REGEN_GOLDEN=1 to (re)generate the corpus",
                path.display()
            )
        });
        assert_eq!(
            pinned, text,
            "{stem}: minimized golden drifted; regenerate if the change is intentional"
        );
        // The pinned schedule also replays to the verdict on a fresh boot.
        let rep = replay_trace(BugSwitches::only([bug]), &min.sti, min.i, min.j, &min.trace);
        assert!(!rep.diverged, "{stem}: minimized golden diverged on replay");
        assert!(
            r.verdict.holds(&rep.outcome),
            "{stem}: minimized golden lost its verdict"
        );
        assert_eq!(fnv1a64(rep.digest.as_bytes()), min.digest_fnv);
    }
}

#[test]
fn golden_traces_do_not_crash_the_patched_kernel() {
    // The same schedule on the fixed kernel must not report the pinned
    // title: the traces capture a *reordering*, not an unconditional
    // assertion failure. (The event stream differs once the bug's store
    // pattern changes, so divergence is acceptable — a crash is not.)
    for (stem, _bug, sti) in corpus() {
        let text = match fs::read_to_string(golden_path(stem)) {
            Ok(t) => t,
            Err(_) => continue, // regen-only run; the other test enforces presence
        };
        let g = parse_golden(&text);
        let r = replay_trace(BugSwitches::none(), &sti, g.pair.0, g.pair.1, &g.trace);
        assert!(
            !r.outcome.crashes.iter().any(|c| c.title == g.title),
            "{stem}: patched kernel crashed under the golden schedule"
        );
    }
}
