//! Oracle integration: the bug-detecting oracles (§3 "Benefits of in-vivo
//! emulation") observing reordered executions with full runtime context.

use kernelsim::{run_concurrent_closures, BugSwitches, Kctx, ECRASH};
use kmem::LockId;
use ksched::{BreakWhen, Breakpoint, SchedulePlan};
use oemu::{iid, Iid, Tid};

/// A schedule that suspends CPU 0 right after the access at `iid` — while
/// its delayed stores are still in flight (the store buffer does not flush
/// on a scheduler suspension, only at syscall exit).
fn break_after(iid: Iid) -> SchedulePlan {
    SchedulePlan {
        first: Tid(0),
        breakpoint: Some(Breakpoint {
            iid,
            when: BreakWhen::After,
            hit: 1,
        }),
    }
}

#[test]
fn kasan_uaf_requires_runtime_context() {
    // The §3 double-free/UAF argument: only an in-vivo oracle that knows
    // *when* the object was freed can classify the access. Reorder a
    // pointer-update store past a publication flag so the reader
    // dereferences a freed object.
    let k = Kctx::new(BugSwitches::none());
    let t0 = Tid(0);
    let holder = k.kzalloc(16, "holder");
    let obj_old = k.kzalloc(16, "victim");
    k.write(t0, iid!(), holder, obj_old);
    k.syscall_exit(t0);

    // Writer: free the old object, install a new one — with the install
    // store delayed, like the sbitmap bug.
    let install = iid!();
    k.engine.delay_store_at(t0, install);
    let out = run_concurrent_closures(
        &k,
        break_after(install),
        move |k| {
            let _f = k.enter(Tid(0), "writer");
            k.kfree(Tid(0), obj_old);
            let obj_new = k.kzalloc(16, "replacement");
            k.write(Tid(0), install, holder, obj_new);
            // No barrier: the reader on the other CPU sees the stale
            // pointer while the object is already quarantined.
            0
        },
        move |k| {
            let _f = k.enter(Tid(1), "reader");
            let p = k.read(Tid(1), iid!(), holder);
            k.read(Tid(1), iid!(), p); // UAF: p is the freed object
            0
        },
    );
    assert!(out.crashed());
    assert_eq!(out.ret_b, ECRASH);
    assert_eq!(out.crashes[0].title, "KASAN: use-after-free Read in reader");
}

#[test]
fn lockdep_reports_inversion_across_cpus() {
    let k = Kctx::new(BugSwitches::none());
    let (a, b) = (LockId(1), LockId(2));
    let out = run_concurrent_closures(
        &k,
        SchedulePlan::sequential(Tid(0)),
        move |k| {
            let _f = k.enter(Tid(0), "path_ab");
            k.lock(Tid(0), a);
            k.lock(Tid(0), b);
            k.unlock(Tid(0), b);
            k.unlock(Tid(0), a);
            0
        },
        move |k| {
            let _f = k.enter(Tid(1), "path_ba");
            k.lock(Tid(1), b);
            k.lock(Tid(1), a); // closes the cycle
            0
        },
    );
    assert!(out.crashed());
    assert!(out.crashes[0]
        .title
        .contains("possible circular locking dependency"));
}

#[test]
fn oracles_see_reordered_values_not_program_order() {
    // The KASAN check runs on the value the emulated machine actually
    // observes: a delayed store means the reader's dereference target is
    // the *old* word, and the fault is attributed to the reader's frame.
    let k = Kctx::new(BugSwitches::none());
    let cell = k.kzalloc(8, "cell");
    let valid = k.kzalloc(8, "valid_target");
    let delayed = iid!();
    k.engine.delay_store_at(Tid(0), delayed);
    let out = run_concurrent_closures(
        &k,
        break_after(delayed),
        move |k| {
            let _f = k.enter(Tid(0), "publisher");
            k.write(Tid(0), delayed, cell, valid);
            0
        },
        move |k| {
            let _f = k.enter(Tid(1), "consumer");
            let p = k.read(Tid(1), iid!(), cell);
            k.read(Tid(1), iid!(), p); // p == 0: the delayed store is invisible
            0
        },
    );
    assert_eq!(
        out.title().unwrap(),
        "BUG: unable to handle kernel NULL pointer dereference in consumer"
    );
}

#[test]
fn crash_titles_stable_for_dedup() {
    // Two identical crashing runs produce the same title (the fuzzer's
    // dedup key) — including the faulting frame.
    let run = || {
        let k = Kctx::new(BugSwitches::none());
        let out = run_concurrent_closures(
            &k,
            SchedulePlan::sequential(Tid(0)),
            |k| {
                let _f = k.enter(Tid(0), "some_path");
                k.read(Tid(0), iid!(), 0x20);
                0
            },
            |_k| 0,
        );
        out.title().unwrap().to_string()
    };
    assert_eq!(run(), run());
}
