//! Scheduling-hint calculation: Algorithms 1 and 2 of the paper (§4.3).
//!
//! Given the profiled event sequences of two system calls, OZZ computes the
//! set of *scheduling hints*, each describing one hypothetical memory
//! barrier test: a scheduling point at which to interleave, and the memory
//! accesses to reorder. The pipeline is:
//!
//! 1. **`filter_out`** (Algorithm 2): drop accesses that cannot touch
//!    memory shared between the two calls — an OOO bug is a concurrency
//!    bug, so private accesses are irrelevant.
//! 2. **Grouping** (Algorithm 1, step 2): split each call's accesses into
//!    groups bounded by barriers of the tested type (store-ordering
//!    barriers for the hypothetical *store* barrier test, load-ordering
//!    barriers for the *load* barrier test) — reordering across a real
//!    barrier is impossible, so hints never span one.
//! 3. **Hint construction** (Algorithm 1, step 3): within each group, slide
//!    the hypothetical barrier one access at a time. For a store test the
//!    scheduling point is the group's last access and the reorder set is
//!    everything before it (Figure 5a); for a load test the scheduling
//!    point is the group's first access and the reorder set is everything
//!    after it (Figure 5b).
//! 4. **Sorting**: hints are ordered by decreasing reorder-set size — the
//!    paper's greedy search heuristic (§4.3): the further execution
//!    deviates from sequential order, the likelier developers overlooked
//!    the barrier.

use std::collections::HashSet;

use oemu::{AccessKind, AccessRecord, BarrierKind, MemoryModel, TraceEvent};

/// Which of the two paired system calls performs the reordering.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PairSide {
    /// The first call of the pair (runs on CPU 0).
    First,
    /// The second call of the pair (runs on CPU 1).
    Second,
}

/// Which hypothetical barrier the hint tests.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HintKind {
    /// Hypothetical store barrier test: delayed stores, break *after* the
    /// scheduling point (Figure 5a).
    StoreBarrier,
    /// Hypothetical load barrier test: versioned loads, break *before* the
    /// scheduling point (Figure 5b).
    LoadBarrier,
}

/// One scheduling hint (one hypothetical memory barrier test).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedHint {
    /// Store or load barrier test.
    pub kind: HintKind,
    /// Which call of the pair reorders its accesses.
    pub reorderer: PairSide,
    /// The scheduling-point access (`h.sched`).
    pub sched: AccessRecord,
    /// 1-based occurrence of `sched.iid` within the reorderer's trace, for
    /// breakpoint hit-counting when the instruction executes in a loop.
    pub sched_hit: u32,
    /// The accesses to reorder (`h.reorder`): stores to delay for a store
    /// test, loads to version for a load test.
    pub reorder: Vec<AccessRecord>,
}

impl SchedHint {
    /// Human-readable location of the hypothetical barrier, reported to
    /// developers alongside a found bug (§4.1: "OZZ provides the location
    /// of the hypothetical memory barrier").
    pub fn barrier_location(&self) -> String {
        match self.kind {
            HintKind::StoreBarrier => format!(
                "missing store barrier (e.g. smp_wmb) before {}",
                self.sched.iid.describe()
            ),
            HintKind::LoadBarrier => format!(
                "missing load barrier (e.g. smp_rmb) after {}",
                self.sched.iid.describe()
            ),
        }
    }
}

/// Algorithm 2: `filter_out` — removes accesses that cannot contribute to
/// an OOO bug because they touch no location shared between the two calls
/// (with at least one side writing). Barrier events always survive: they
/// define the group boundaries.
pub fn filter_out(si: &[TraceEvent], sj: &[TraceEvent]) -> (Vec<TraceEvent>, Vec<TraceEvent>) {
    let mut shared: HashSet<u64> = HashSet::new();
    for ai in si.iter().filter_map(TraceEvent::as_access) {
        for aj in sj.iter().filter_map(TraceEvent::as_access) {
            if !(ai.kind.writes() || aj.kind.writes()) {
                continue;
            }
            shared.extend(overlap_words(ai, aj));
        }
    }
    let keep = |events: &[TraceEvent]| {
        events
            .iter()
            .filter(|e| match e {
                TraceEvent::Access(a) => words_of(a).any(|w| shared.contains(&w)),
                TraceEvent::Barrier(_) => true,
            })
            .cloned()
            .collect::<Vec<_>>()
    };
    (keep(si), keep(sj))
}

const WORD_MASK: u64 = !7;

/// The 8-byte word slots an access covers: from the word containing its
/// first byte through the word containing its last byte. Both sides of the
/// shared-set computation — slot insertion in `overlap_words` and slot
/// lookup in `filter_out` — must use this same word-aligned granularity;
/// keying either side on raw (possibly unaligned) byte addresses makes a
/// partially-overlapping access miss its own shared slot and get filtered
/// out of its own trace.
fn words_of(a: &AccessRecord) -> impl Iterator<Item = u64> {
    let first = a.addr & WORD_MASK;
    let last = (a.addr + u64::from(a.size.max(1)) - 1) & WORD_MASK;
    (first..=last).step_by(8)
}

/// The word slots covered by the byte intersection of two accesses (empty
/// when their byte ranges are disjoint).
fn overlap_words(a: &AccessRecord, b: &AccessRecord) -> impl Iterator<Item = u64> {
    let (a0, a1) = (a.addr, a.addr + u64::from(a.size.max(1)));
    let (b0, b1) = (b.addr, b.addr + u64::from(b.size.max(1)));
    let (lo, hi) = (a0.max(b0), a1.min(b1));
    let slots = if lo < hi {
        Some(((lo & WORD_MASK)..=((hi - 1) & WORD_MASK)).step_by(8))
    } else {
        None
    };
    slots.into_iter().flatten()
}

/// Algorithm 1: computes all scheduling hints for the pair `(si, sj)`,
/// sorted by decreasing reorder-set size (the search heuristic). Groups
/// are bounded by the barriers TSO honors — identical to
/// [`calc_hints_for`] with [`MemoryModel::Tso`].
pub fn calc_hints(si: &[TraceEvent], sj: &[TraceEvent]) -> Vec<SchedHint> {
    calc_hints_for(si, sj, MemoryModel::Tso)
}

/// [`calc_hints`] against a specific memory model: only the barriers that
/// actually bound reordering under `model` split the access groups, so a
/// weaker model yields larger reorder sets. Concretely, on Arm a
/// `READ_ONCE` no longer closes a load group (it is not a load barrier
/// there), so load-test hints can reorder across it.
pub fn calc_hints_for(si: &[TraceEvent], sj: &[TraceEvent], model: MemoryModel) -> Vec<SchedHint> {
    // Step 1: filter out irrelevant memory accesses.
    let (fi, fj) = filter_out(si, sj);
    let mut hints = Vec::new();
    // Step 2 & 3, for each reorderer side and barrier type.
    for (side, events, full) in [(PairSide::First, &fi, si), (PairSide::Second, &fj, sj)] {
        for kind in [HintKind::StoreBarrier, HintKind::LoadBarrier] {
            for group in group_by_barrier(events, kind, model) {
                build_hints(&group, kind, side, full, &mut hints);
            }
        }
    }
    // Sort by decreasing number of reordered accesses.
    hints.sort_by(|a, b| {
        b.reorder
            .len()
            .cmp(&a.reorder.len())
            .then(a.sched.ts.cmp(&b.sched.ts))
    });
    hints
}

/// Algorithm 1, step 2: group accesses between barriers of the same type,
/// asking the model which barrier kinds actually bound that reordering.
fn group_by_barrier(
    events: &[TraceEvent],
    kind: HintKind,
    model: MemoryModel,
) -> Vec<Vec<AccessRecord>> {
    let caps = ksched::ModelCaps::of(model);
    let bounds = |b: BarrierKind| match kind {
        HintKind::StoreBarrier => caps.bounds_store_group(b),
        HintKind::LoadBarrier => caps.bounds_load_group(b),
    };
    let mut groups = Vec::new();
    let mut g: Vec<AccessRecord> = Vec::new();
    for e in events {
        match e {
            TraceEvent::Access(a) => g.push(*a),
            TraceEvent::Barrier(b) if bounds(b.kind) => {
                groups.push(std::mem::take(&mut g));
            }
            TraceEvent::Barrier(_) => {}
        }
    }
    groups.push(g);
    groups.retain(|g| g.len() >= 2);
    groups
}

/// Algorithm 1, step 3: slide the hypothetical barrier through one group.
///
/// The scheduling point is *fixed per group*: for a store test it is the
/// group's last access — the interleaving happens right before the *actual*
/// barrier bounding the group (the solid line of Figure 5a), so even a
/// relaxed lock-release RMW at the group's end has already executed when
/// the other CPU runs. For a load test it is the group's first access — the
/// interleaving happens right after the actual barrier (Figure 5b). Only
/// the hypothetical barrier (the reorder set's boundary) slides.
fn build_hints(
    group: &[AccessRecord],
    kind: HintKind,
    side: PairSide,
    full_trace: &[TraceEvent],
    out: &mut Vec<SchedHint>,
) {
    let sched = match kind {
        HintKind::StoreBarrier => *group.last().expect("group.len() >= 2"),
        HintKind::LoadBarrier => group[0],
    };
    // Candidates for reordering: everything except the scheduling point.
    let mut g: Vec<AccessRecord> = match kind {
        HintKind::StoreBarrier => group[..group.len() - 1].to_vec(),
        HintKind::LoadBarrier => group[1..].to_vec(),
    };
    let sched_hit = occurrence_of(full_trace, &sched);
    let mut last_len = usize::MAX;
    while !g.is_empty() {
        // Only the matching operation kind can actually be reordered by the
        // respective OEMU mechanism (delayed stores / versioned loads);
        // atomic RMWs are single events OEMU never reorders (§3).
        let reorder: Vec<AccessRecord> = g
            .iter()
            .filter(|a| match kind {
                HintKind::StoreBarrier => a.kind == AccessKind::Store,
                HintKind::LoadBarrier => a.kind == AccessKind::Load,
            })
            .copied()
            .collect();
        // Skip empty sets and duplicates (dropping a non-reorderable access
        // does not change the effective reorder set).
        if !reorder.is_empty() && reorder.len() != last_len {
            last_len = reorder.len();
            out.push(SchedHint {
                kind,
                reorderer: side,
                sched,
                sched_hit,
                reorder,
            });
        }
        // Slide the hypothetical barrier by one access: upward for the
        // store test, downward for the load test.
        match kind {
            HintKind::StoreBarrier => {
                g.pop();
            }
            HintKind::LoadBarrier => {
                g.remove(0);
            }
        }
    }
}

/// 1-based occurrence index of `target.iid` at `target.ts` within the full
/// (unfiltered) trace — the breakpoint hit count.
fn occurrence_of(full_trace: &[TraceEvent], target: &AccessRecord) -> u32 {
    let mut n = 0;
    for e in full_trace {
        if let TraceEvent::Access(a) = e {
            if a.iid == target.iid && a.ts <= target.ts {
                n += 1;
            }
        }
    }
    n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oemu::{BarrierRecord, Iid};

    fn access(iid: u64, addr: u64, kind: AccessKind, ts: u64) -> TraceEvent {
        TraceEvent::Access(AccessRecord {
            iid: Iid(iid),
            addr,
            size: 8,
            kind,
            ts,
        })
    }

    fn barrier(kind: BarrierKind, ts: u64) -> TraceEvent {
        TraceEvent::Barrier(BarrierRecord {
            iid: Iid(999),
            kind,
            ts,
        })
    }

    #[test]
    fn filter_out_drops_private_accesses() {
        // Si stores to 0x10 and 0x90; Sj loads 0x10. Only 0x10 is shared.
        let si = vec![
            access(1, 0x10, AccessKind::Store, 1),
            access(2, 0x90, AccessKind::Store, 2),
        ];
        let sj = vec![access(3, 0x10, AccessKind::Load, 3)];
        let (fi, fj) = filter_out(&si, &sj);
        assert_eq!(fi.len(), 1);
        assert_eq!(fi[0].as_access().unwrap().addr, 0x10);
        assert_eq!(fj.len(), 1);
    }

    #[test]
    fn filter_out_requires_a_writer() {
        // Both only load 0x10: no write, no sharing, no OOO bug.
        let si = vec![access(1, 0x10, AccessKind::Load, 1)];
        let sj = vec![access(2, 0x10, AccessKind::Load, 2)];
        let (fi, fj) = filter_out(&si, &sj);
        assert!(fi.is_empty());
        assert!(fj.is_empty());
    }

    fn sized_access(iid: u64, addr: u64, size: u8, kind: AccessKind, ts: u64) -> TraceEvent {
        TraceEvent::Access(AccessRecord {
            iid: Iid(iid),
            addr,
            size,
            kind,
            ts,
        })
    }

    /// Regression for the Algorithm 2 word-slot bug: a store at `0x10`
    /// (size 8) overlaps a load at `0x14` (size 4) byte-wise, but the old
    /// code inserted the *unaligned* overlap start `0x14` into the shared
    /// set while mapping the store to word slot `0x10` — so the store was
    /// filtered out of its own trace and no hint could ever pair them.
    #[test]
    fn misaligned_overlap_keeps_both_sides() {
        for size in [1u8, 2, 4] {
            let si = vec![access(1, 0x10, AccessKind::Store, 1)]; // 8 bytes
            let sj = vec![sized_access(2, 0x14, size, AccessKind::Load, 2)];
            let (fi, fj) = filter_out(&si, &sj);
            assert_eq!(fi.len(), 1, "size-{size}: the store must survive");
            assert_eq!(fj.len(), 1, "size-{size}: the load must survive");
            // Hint groups need at least two accesses per side; repeat each
            // side's access so the surviving pair actually yields hints.
            let si = vec![
                access(1, 0x10, AccessKind::Store, 1),
                access(3, 0x10, AccessKind::Store, 3),
            ];
            let sj = vec![
                sized_access(2, 0x14, size, AccessKind::Load, 2),
                sized_access(4, 0x14, size, AccessKind::Load, 4),
            ];
            assert!(
                !calc_hints(&si, &sj).is_empty(),
                "size-{size}: the pair must produce hints"
            );
        }
    }

    /// Two sub-word accesses overlapping inside one word, neither at the
    /// word boundary.
    #[test]
    fn misaligned_subword_pairs_share_their_word() {
        let si = vec![sized_access(1, 0x12, 4, AccessKind::Store, 1)]; // 0x12..0x16
        let sj = vec![sized_access(2, 0x15, 2, AccessKind::Load, 2)]; // 0x15..0x17
        let (fi, fj) = filter_out(&si, &sj);
        assert_eq!(fi.len(), 1);
        assert_eq!(fj.len(), 1);
    }

    /// An unaligned store spanning a word boundary must register both word
    /// slots, so a load touching only the second word still pairs with it.
    #[test]
    fn straddling_store_registers_both_words() {
        let si = vec![sized_access(1, 0x14, 8, AccessKind::Store, 1)]; // 0x14..0x1c
        let sj = vec![sized_access(2, 0x18, 4, AccessKind::Load, 2)]; // 0x18..0x1c
        let (fi, fj) = filter_out(&si, &sj);
        assert_eq!(fi.len(), 1, "store covers slot 0x18 too");
        assert_eq!(fj.len(), 1);
    }

    /// Same-word but byte-disjoint accesses do *not* share memory: word
    /// alignment must not widen the overlap test itself.
    #[test]
    fn byte_disjoint_accesses_in_one_word_stay_private() {
        let si = vec![sized_access(1, 0x10, 2, AccessKind::Store, 1)]; // 0x10..0x12
        let sj = vec![sized_access(2, 0x16, 2, AccessKind::Load, 2)]; // 0x16..0x18
        let (fi, fj) = filter_out(&si, &sj);
        assert!(fi.is_empty(), "no byte overlap, no sharing");
        assert!(fj.is_empty());
    }

    #[test]
    fn filter_out_keeps_barriers() {
        let si = vec![
            access(1, 0x10, AccessKind::Store, 1),
            barrier(BarrierKind::Wmb, 2),
            access(2, 0x90, AccessKind::Store, 3),
        ];
        let sj = vec![access(3, 0x10, AccessKind::Load, 4)];
        let (fi, _) = filter_out(&si, &sj);
        assert_eq!(fi.len(), 2, "the barrier survives");
        assert!(fi[1].as_barrier().is_some());
    }

    #[test]
    fn figure5a_store_hints() {
        // W(a), W(b), W(c), W(d) with no barrier: the maximal hint delays
        // a, b, c and breaks after d.
        let si: Vec<_> = (0..4)
            .map(|i| access(i + 1, 0x10 + i * 8, AccessKind::Store, i + 1))
            .collect();
        let sj: Vec<_> = (0..4)
            .map(|i| access(10 + i, 0x10 + i * 8, AccessKind::Load, 10 + i))
            .collect();
        let hints = calc_hints(&si, &sj);
        let store_hints: Vec<_> = hints
            .iter()
            .filter(|h| h.kind == HintKind::StoreBarrier && h.reorderer == PairSide::First)
            .collect();
        assert_eq!(store_hints.len(), 3, "hypothetical barrier slides upward");
        let max = &store_hints[0];
        assert_eq!(max.reorder.len(), 3);
        assert_eq!(max.sched.iid, Iid(4), "break at W(d)");
        // Sliding: the hypothetical barrier moves up — the reorder set
        // shrinks to {a, b}, then {a} — while the scheduling point stays at
        // W(d), just before the group's actual boundary.
        assert_eq!(store_hints[1].reorder.len(), 2);
        assert_eq!(store_hints[1].sched.iid, Iid(4));
        assert_eq!(store_hints[2].reorder.len(), 1);
        assert_eq!(store_hints[2].sched.iid, Iid(4));
    }

    #[test]
    fn figure5b_load_hints() {
        // Reader R(w), R(z), R(y), R(x); writer stores to all four. The
        // maximal load hint versions z, y, x and breaks before w.
        let si: Vec<_> = (0..4)
            .map(|i| access(i + 1, 0x10 + i * 8, AccessKind::Store, i + 1))
            .collect();
        let sj: Vec<_> = (0..4)
            .map(|i| access(10 + i, 0x10 + i * 8, AccessKind::Load, 10 + i))
            .collect();
        let hints = calc_hints(&si, &sj);
        let load_hints: Vec<_> = hints
            .iter()
            .filter(|h| h.kind == HintKind::LoadBarrier && h.reorderer == PairSide::Second)
            .collect();
        assert_eq!(load_hints.len(), 3);
        let max = &load_hints[0];
        assert_eq!(max.reorder.len(), 3);
        assert_eq!(max.sched.iid, Iid(10), "break before R(w)");
    }

    #[test]
    fn barriers_bound_groups() {
        // W(a), wmb, W(b), W(c): store hints may only reorder within
        // {b, c}, never across the wmb.
        let si = vec![
            access(1, 0x10, AccessKind::Store, 1),
            barrier(BarrierKind::Wmb, 2),
            access(2, 0x18, AccessKind::Store, 3),
            access(3, 0x20, AccessKind::Store, 4),
        ];
        let sj: Vec<_> = (0..3)
            .map(|i| access(10 + i, 0x10 + i * 8, AccessKind::Load, 10 + i))
            .collect();
        let hints = calc_hints(&si, &sj);
        for h in hints.iter().filter(|h| h.reorderer == PairSide::First) {
            assert!(
                h.reorder.iter().all(|a| a.iid != Iid(1)),
                "W(a) is protected by the real barrier"
            );
        }
    }

    #[test]
    fn load_barriers_do_not_bound_store_groups() {
        // An rmb between stores is irrelevant to the store test.
        let si = vec![
            access(1, 0x10, AccessKind::Store, 1),
            barrier(BarrierKind::Rmb, 2),
            access(2, 0x18, AccessKind::Store, 3),
        ];
        let sj = vec![
            access(10, 0x10, AccessKind::Load, 10),
            access(11, 0x18, AccessKind::Load, 11),
        ];
        let hints = calc_hints(&si, &sj);
        assert!(
            hints.iter().any(|h| h.kind == HintKind::StoreBarrier
                && h.reorderer == PairSide::First
                && h.reorder.iter().any(|a| a.iid == Iid(1))),
            "the rmb must not protect stores"
        );
    }

    #[test]
    fn hints_sorted_by_reorder_count() {
        let si: Vec<_> = (0..5)
            .map(|i| access(i + 1, 0x10 + i * 8, AccessKind::Store, i + 1))
            .collect();
        let sj: Vec<_> = (0..5)
            .map(|i| access(10 + i, 0x10 + i * 8, AccessKind::Load, 10 + i))
            .collect();
        let hints = calc_hints(&si, &sj);
        for w in hints.windows(2) {
            assert!(w[0].reorder.len() >= w[1].reorder.len());
        }
        assert_eq!(hints[0].reorder.len(), 4, "maximal deviation first");
    }

    #[test]
    fn rmw_accesses_are_never_in_reorder_sets() {
        let si = vec![
            access(1, 0x10, AccessKind::Store, 1),
            TraceEvent::Access(AccessRecord {
                iid: Iid(2),
                addr: 0x18,
                size: 8,
                kind: AccessKind::Rmw,
                ts: 2,
            }),
            access(3, 0x20, AccessKind::Store, 3),
        ];
        let sj: Vec<_> = (0..3)
            .map(|i| access(10 + i, 0x10 + i * 8, AccessKind::Load, 10 + i))
            .collect();
        let hints = calc_hints(&si, &sj);
        for h in &hints {
            assert!(h.reorder.iter().all(|a| a.kind != AccessKind::Rmw));
        }
    }

    #[test]
    fn occurrence_counting_handles_loops() {
        // The same iid executes three times; the scheduling point on its
        // third occurrence must carry hit = 3.
        let si = vec![
            access(1, 0x10, AccessKind::Store, 1),
            access(1, 0x18, AccessKind::Store, 2),
            access(1, 0x20, AccessKind::Store, 3),
        ];
        let sj: Vec<_> = (0..3)
            .map(|i| access(10 + i, 0x10 + i * 8, AccessKind::Load, 10 + i))
            .collect();
        let hints = calc_hints(&si, &sj);
        let max = hints
            .iter()
            .find(|h| h.kind == HintKind::StoreBarrier && h.reorderer == PairSide::First)
            .unwrap();
        assert_eq!(max.sched_hit, 3);
    }

    #[test]
    fn no_hints_without_shared_memory() {
        let si = vec![access(1, 0x10, AccessKind::Store, 1)];
        let sj = vec![access(2, 0x90, AccessKind::Load, 2)];
        assert!(calc_hints(&si, &sj).is_empty());
    }

    #[test]
    fn barrier_location_names_the_hint() {
        let si: Vec<_> = (0..2)
            .map(|i| access(i + 1, 0x10 + i * 8, AccessKind::Store, i + 1))
            .collect();
        let sj = vec![
            access(10, 0x10, AccessKind::Load, 10),
            access(11, 0x18, AccessKind::Load, 11),
        ];
        let hints = calc_hints(&si, &sj);
        let store = hints
            .iter()
            .find(|h| h.kind == HintKind::StoreBarrier)
            .unwrap();
        assert!(store.barrier_location().contains("smp_wmb"));
        let load = hints
            .iter()
            .find(|h| h.kind == HintKind::LoadBarrier)
            .unwrap();
        assert!(load.barrier_location().contains("smp_rmb"));
    }

    /// Model-aware grouping: a `READ_ONCE` between two loads closes the
    /// load group under TSO/PSO (no group of two, no load-test hints) but
    /// not under Arm, where it is not a load barrier — so the Arm hint set
    /// reorders across it.
    #[test]
    fn arm_load_groups_span_read_once() {
        let si = vec![
            access(1, 0x10, AccessKind::Load, 1),
            barrier(BarrierKind::ReadOnce, 2),
            access(2, 0x18, AccessKind::Load, 3),
        ];
        let sj = vec![
            access(10, 0x10, AccessKind::Store, 10),
            access(11, 0x18, AccessKind::Store, 11),
        ];
        let load_hints = |model: MemoryModel| {
            calc_hints_for(&si, &sj, model)
                .into_iter()
                .filter(|h| h.kind == HintKind::LoadBarrier && h.reorderer == PairSide::First)
                .count()
        };
        assert_eq!(
            load_hints(MemoryModel::Tso),
            0,
            "READ_ONCE splits the group"
        );
        assert_eq!(load_hints(MemoryModel::Pso), 0, "PSO keeps TSO's load side");
        assert!(load_hints(MemoryModel::Arm) > 0, "Arm reorders across it");
        // TSO output of the model-parameterised entry point is identical
        // to the legacy one.
        assert_eq!(
            calc_hints(&si, &sj),
            calc_hints_for(&si, &sj, MemoryModel::Tso)
        );
    }
}
