//! The deterministic work-stealing campaign engine.
//!
//! A campaign splits its MTI budget across N logical *shard streams*, each
//! owning a private [`Fuzzer`] seeded from `(seed, shard)`. Streams run in
//! fixed-length *rounds* (epochs): every live stream executes one batch of
//! up to `epoch_mtis` MTIs, the coordinator merges the round's results in
//! shard order, and corpus discoveries are re-broadcast so shards benefit
//! from each other — yet the merged result is a pure function of
//! `(seed, shards, budget)`, independent of thread timing and of how many
//! OS workers execute the batches.
//!
//! # Work stealing without nondeterminism
//!
//! Earlier revisions pinned one OS thread per shard and blocked all of
//! them at an epoch barrier, so a round lasted as long as its *slowest*
//! shard even when other threads sat idle. This engine decouples the two
//! axes:
//!
//! - **Shard streams** are parked state machines (fuzzer + broadcast
//!   protocol state) owned by the coordinator between batches. Everything
//!   semantic lives here.
//! - **Workers** are a small pool of OS threads (`workers ≤ shards`, a
//!   pure throughput knob). Each round, the coordinator deals pending
//!   batches to idle workers — preferring each worker's previous shards
//!   (affinity) and otherwise *stealing* the lowest pending shard id — so
//!   an uneven round keeps every worker busy instead of convoying behind
//!   the slowest stream.
//!
//! Determinism survives because scheduling only decides *where and when* a
//! batch runs, never *what it computes*: a batch is a pure function of its
//! stream's state, and the coordinator merges a round's reports in shard
//! order only after every live stream has returned. Steal counts and batch
//! wall-times are surfaced as observability ([`ShardStats`]) but are
//! timing-dependent and excluded from the determinism-pinned renders.
//! With `workers == 1` the engine runs batches inline on the calling
//! thread — no threads are spawned, which is also what a one-shard
//! campaign uses to reproduce the serial fuzzing loop byte-for-byte.
//!
//! # Rules that keep the merge deterministic
//!
//! 1. **Deterministic budget slices.** Shard `i` owns exactly
//!    `budget / shards` MTIs plus one of the `budget % shards` remainder
//!    slots — never a share of a racing global counter.
//! 2. **Round lockstep.** All live streams finish round `r` before any
//!    stream starts `r + 1`. Crash merging, crash-database accounting,
//!    corpus broadcasts, and the early-stop decision happen between
//!    rounds, in shard-id order.
//! 3. **Deterministic shard seeds.** Shard 0 fuzzes with the raw campaign
//!    seed — a one-shard campaign reproduces the serial loop byte-for-byte
//!    — and shard `i > 0` draws the `i`-th value of the [`splitmix64`]
//!    chain over the seed.
//!
//! A round boundary is also the campaign's *quiescent point*: no batch is
//! in flight, so the coordinator can serialize every stream into a
//! [`CampaignCheckpoint`] (see [`crate::checkpoint`]) from which a later
//! process resumes byte-identically.
//!
//! Construct campaigns through [`crate::campaign::CampaignBuilder`]; this
//! module is the engine underneath it, not a public entry point.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;
use std::time::Instant;

use kutil::chan::{channel, Receiver, Sender};
use kutil::splitmix64;
use oemu::Iid;

use crate::campaign::{CampaignReport, ShardStats};
use crate::checkpoint::{CampaignCheckpoint, StreamCheckpoint};
use crate::crashdb::CrashDb;
use crate::fuzzer::{FoundBug, FuzzConfig, FuzzStats, Fuzzer, STALL_LIMIT};
use crate::sti::Sti;

/// Default epoch length, in MTIs per shard between rounds. Long enough
/// that coordination overhead is noise, short enough that corpus
/// discoveries propagate while a campaign is young.
pub const DEFAULT_EPOCH_MTIS: u64 = 64;

/// One logical shard stream: a private fuzzer plus the cross-shard
/// broadcast protocol state, parked with the coordinator between batches.
struct StreamState {
    shard: usize,
    /// This shard's total MTI slice of the campaign budget.
    slice: u64,
    /// Rounds this stream has completed.
    epoch: u64,
    /// Corpus high-water mark: entries below it were already broadcast (or
    /// arrived via broadcast and are not ours to re-broadcast).
    corpus_mark: usize,
    /// Bug titles already reported to the coordinator.
    bugs_sent: BTreeSet<String>,
    /// Crash-occurrence counts already reported to the coordinator.
    counts_sent: BTreeMap<String, u64>,
    /// Slice exhausted, all expected bugs found, or stalled.
    done: bool,
    /// Batches run by a worker other than the stream's previous one
    /// (timing observability; excluded from determinism-pinned output).
    steals: u64,
    /// Wall time of each batch, microseconds (timing observability).
    batch_micros: Vec<u64>,
    fuzzer: Fuzzer,
}

/// One stream's report for one round.
struct EpochReport {
    /// Unique crashes first seen this round, in title order.
    bugs: Vec<FoundBug>,
    /// New crash occurrences since the last report: `(title, count)`.
    sightings: Vec<(String, u64)>,
    /// Corpus entries added this round (coverage-earning STIs; imports are
    /// excluded — every shard already received those from the broadcast).
    corpus: Vec<Sti>,
}

/// A batch shipped to a worker: the stream, the epoch length, and the
/// expected-titles early-stop set.
type Task = (Box<StreamState>, u64, Arc<Vec<String>>);

/// A worker's result: its own id (for affinity), the stream, the report.
type TaskResult = (usize, Box<StreamState>, EpochReport);

/// Engine-level configuration, assembled by
/// [`crate::campaign::CampaignBuilder`].
pub(crate) struct EngineConfig {
    /// Per-shard fuzzer template; `cfg.seed` is the *campaign* seed (shard
    /// seeds derive from it via [`shard_seed`]).
    pub cfg: FuzzConfig,
    pub shards: usize,
    /// OS worker threads (`1` runs batches inline). Clamped to `shards`.
    pub workers: usize,
    pub budget: u64,
    pub epoch_mtis: u64,
    /// Crash titles the campaign stops on once the union holds them all.
    pub expected: Vec<String>,
    pub checkpoint_to: Option<std::path::PathBuf>,
    /// Write the checkpoint every N rounds (when `checkpoint_to` is set).
    pub checkpoint_every: u64,
    /// Simulated kill: stop at the first quiescent point at or after this
    /// many completed rounds, attaching the checkpoint to the report.
    pub halt_after: Option<u64>,
    pub resume: Option<CampaignCheckpoint>,
}

/// Shard `shard`'s MTI slice: an equal share of the budget, with the
/// remainder spread over the lowest shard ids.
fn slice(budget: u64, shards: usize, shard: usize) -> u64 {
    budget / shards as u64 + u64::from((shard as u64) < budget % shards as u64)
}

/// Shard `shard`'s fuzzer seed: the raw campaign seed for shard 0 (so one
/// shard reproduces the serial fuzzing loop exactly), the `shard`-th value
/// of the seed's [`splitmix64`] chain otherwise.
fn shard_seed(seed: u64, shard: usize) -> u64 {
    let mut sm = seed;
    let mut derived = seed;
    for _ in 0..shard {
        derived = splitmix64(&mut sm);
    }
    derived
}

/// Runs one batch: up to `epoch_mtis` MTIs of the stream's fuzzer, with
/// the early-stop and stall checks of the serial fuzzing loop after every
/// step. Pure with respect to the stream's state — which worker runs it
/// and when cannot change the report.
fn run_epoch(st: &mut StreamState, epoch_mtis: u64, expected: &[String]) -> EpochReport {
    let start = Instant::now();
    let f = &mut st.fuzzer;
    let target = st.slice.min((st.epoch + 1) * epoch_mtis);
    let mut found_all = false;
    while f.stats().mtis_run < target {
        f.step();
        if expected.iter().all(|t| f.found().contains_key(t)) {
            found_all = true;
            break;
        }
        if f.stats().barren_stis >= STALL_LIMIT {
            break;
        }
    }
    let stalled = f.stats().barren_stis >= STALL_LIMIT;
    st.done = found_all || stalled || f.stats().mtis_run >= st.slice;
    let bugs: Vec<FoundBug> = f
        .found()
        .iter()
        .filter(|(title, _)| !st.bugs_sent.contains(*title))
        .map(|(_, b)| b.clone())
        .collect();
    st.bugs_sent.extend(bugs.iter().map(|b| b.title.clone()));
    let mut sightings = Vec::new();
    for (title, &n) in f.crash_counts() {
        let sent = st.counts_sent.get(title).copied().unwrap_or(0);
        if n > sent {
            sightings.push((title.clone(), n - sent));
            st.counts_sent.insert(title.clone(), n);
        }
    }
    let corpus = f.corpus()[st.corpus_mark..].to_vec();
    st.epoch += 1;
    st.batch_micros.push(start.elapsed().as_micros() as u64);
    EpochReport {
        bugs,
        sightings,
        corpus,
    }
}

/// The worker pool: per-worker task queues feeding one shared result
/// queue. Dropping the pool closes the task queues; workers then exit and
/// are joined.
struct WorkerPool {
    task_txs: Vec<Sender<Task>>,
    result_rx: Receiver<TaskResult>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize) -> WorkerPool {
        let (result_tx, result_rx) = channel::<TaskResult>();
        let mut task_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (task_tx, task_rx) = channel::<Task>();
            task_txs.push(task_tx);
            let result_tx = result_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ozz-worker-{w}"))
                    .spawn(move || {
                        while let Ok((mut st, epoch_mtis, expected)) = task_rx.recv() {
                            let report = run_epoch(&mut st, epoch_mtis, &expected);
                            if result_tx.send((w, st, report)).is_err() {
                                return;
                            }
                        }
                    })
                    .unwrap_or_else(|e| panic!("failed to spawn campaign worker {w}: {e}")),
            );
        }
        WorkerPool {
            task_txs,
            result_rx,
            handles,
        }
    }

    fn shutdown(self) {
        drop(self.task_txs);
        drop(self.result_rx);
        for (w, h) in self.handles.into_iter().enumerate() {
            if h.join().is_err() {
                panic!("campaign worker {w} panicked; campaign results are unusable");
            }
        }
    }
}

/// Where batches execute: inline on the coordinator thread, or on the
/// worker pool.
enum Lanes {
    Inline,
    Threads(WorkerPool),
}

/// Picks the next pending shard for worker `w`: an affinity match if one
/// is pending, else the lowest pending shard id (a steal). Returns the
/// shard and whether it was stolen.
fn pick_task(pending: &mut BTreeSet<usize>, affinity: &[usize], w: usize) -> Option<(usize, bool)> {
    if let Some(&s) = pending.iter().find(|&&s| affinity[s] == w) {
        pending.remove(&s);
        return Some((s, false));
    }
    let s = pending.iter().next().copied()?;
    pending.remove(&s);
    Some((s, true))
}

/// Runs the campaign engine to completion (or to a halt/stop point).
pub(crate) fn run_engine(mut ec: EngineConfig) -> CampaignReport {
    // A checkpoint's semantic settings win over the resuming builder's:
    // resuming under a different seed or budget would not be a resume.
    if let Some(ck) = &ec.resume {
        ec.cfg.seed = ck.seed;
        ec.cfg.bugs = ck.bugs.clone();
        ec.cfg.memory_model = ck.memory_model;
        ec.cfg.max_hints_per_pair = ck.max_hints_per_pair;
        ec.cfg.mutate_ratio = ck.mutate_ratio;
        ec.cfg.hint_order = ck.hint_order;
        ec.shards = ck.shards;
        ec.budget = ck.budget;
        ec.epoch_mtis = ck.epoch_mtis;
        ec.expected = ck.expected.clone();
    }
    assert!(ec.shards > 0, "a campaign needs at least one shard");
    assert!(ec.epoch_mtis > 0, "an epoch must make progress");
    assert!(
        ec.checkpoint_every > 0,
        "checkpoint cadence must be nonzero"
    );
    let workers = ec.workers.clamp(1, ec.shards);

    let mut found: BTreeMap<String, FoundBug> = BTreeMap::new();
    let mut crashdb = CrashDb::new();
    let mut round = 0u64;
    let mut streams: Vec<Option<Box<StreamState>>> = match ec.resume.take() {
        Some(ck) => {
            round = ck.round;
            found = ck.found.into_iter().map(|b| (b.title.clone(), b)).collect();
            crashdb = ck.crashdb;
            assert_eq!(ck.streams.len(), ec.shards, "checkpoint is self-consistent");
            ck.streams
                .into_iter()
                .enumerate()
                .map(|(shard, sck)| Some(Box::new(restore_stream(&ec, shard, sck))))
                .collect()
        }
        None => (0..ec.shards)
            .map(|shard| {
                let cfg = FuzzConfig {
                    seed: shard_seed(ec.cfg.seed, shard),
                    ..ec.cfg.clone()
                };
                Some(Box::new(StreamState {
                    shard,
                    slice: slice(ec.budget, ec.shards, shard),
                    epoch: 0,
                    corpus_mark: 0,
                    bugs_sent: BTreeSet::new(),
                    counts_sent: BTreeMap::new(),
                    done: false,
                    steals: 0,
                    batch_micros: Vec::new(),
                    fuzzer: Fuzzer::new(cfg),
                }))
            })
            .collect(),
    };

    let model_name = ec.cfg.memory_model.name().to_string();
    let switches_key = ec.cfg.bugs.key();
    let expected = Arc::new(ec.expected.clone());
    let mut affinity: Vec<usize> = (0..ec.shards).map(|s| s % workers).collect();
    let mut lanes = if workers == 1 {
        Lanes::Inline
    } else {
        Lanes::Threads(WorkerPool::spawn(workers))
    };

    let mut halted = false;
    let mut checkpoint_out: Option<CampaignCheckpoint> = None;
    loop {
        let live: Vec<usize> = streams
            .iter()
            .filter_map(|st| {
                let st = st.as_ref().expect("streams parked between rounds");
                (!st.done).then_some(st.shard)
            })
            .collect();
        if live.is_empty() {
            break;
        }

        // Run the round: every live stream executes one batch. Arrival
        // order is racy under threads; `reports` keys by shard id, which
        // restores a deterministic merge order below.
        let mut reports: BTreeMap<usize, EpochReport> = BTreeMap::new();
        match &mut lanes {
            Lanes::Inline => {
                for &s in &live {
                    let mut st = streams[s].take().expect("stream parked");
                    let report = run_epoch(&mut st, ec.epoch_mtis, &expected);
                    streams[s] = Some(st);
                    reports.insert(s, report);
                }
            }
            Lanes::Threads(pool) => {
                let mut pending: BTreeSet<usize> = live.iter().copied().collect();
                let mut in_flight = 0usize;
                let dispatch = |w: usize,
                                pending: &mut BTreeSet<usize>,
                                affinity: &[usize],
                                streams: &mut Vec<Option<Box<StreamState>>>|
                 -> bool {
                    let Some((s, stolen)) = pick_task(pending, affinity, w) else {
                        return false;
                    };
                    let mut st = streams[s].take().expect("stream parked");
                    st.steals += u64::from(stolen);
                    pool.task_txs[w]
                        .send((st, ec.epoch_mtis, Arc::clone(&expected)))
                        .unwrap_or_else(|_| panic!("campaign worker {w} hung up"));
                    true
                };
                for w in 0..workers {
                    if dispatch(w, &mut pending, &affinity, &mut streams) {
                        in_flight += 1;
                    }
                }
                while in_flight > 0 {
                    let (w, st, report) = pool
                        .result_rx
                        .recv()
                        .expect("a campaign worker died mid-round");
                    in_flight -= 1;
                    let s = st.shard;
                    reports.insert(s, report);
                    streams[s] = Some(st);
                    affinity[s] = w;
                    if dispatch(w, &mut pending, &affinity, &mut streams) {
                        in_flight += 1;
                    }
                }
            }
        }

        // Merge in shard order: bug diagnoses first (first merge in
        // (round, shard) order wins a title), then crash sightings into
        // the database — every sighted title is guaranteed merged, because
        // a fuzzer reports a bug no later than its first sighting delta.
        for report in reports.values() {
            for bug in &report.bugs {
                found
                    .entry(bug.title.clone())
                    .or_insert_with(|| bug.clone());
            }
        }
        for (&s, report) in &reports {
            for (title, n) in &report.sightings {
                let bug = found.get(title).expect("sighted title was merged");
                crashdb.record(bug, s, round, &model_name, &switches_key, *n);
            }
        }
        round += 1;
        let stop = expected.iter().all(|t| found.contains_key(t));
        if !stop {
            // Broadcast the other shards' fresh corpus entries, in shard
            // order; `import_corpus` dedups.
            for &s in &live {
                let st = streams[s].as_mut().expect("stream parked");
                if st.done {
                    continue;
                }
                let entries: Vec<Sti> = reports
                    .iter()
                    .filter(|(&r, _)| r != s)
                    .flat_map(|(_, report)| report.corpus.iter().cloned())
                    .collect();
                st.fuzzer.import_corpus(&entries);
                st.corpus_mark = st.fuzzer.corpus_len();
            }
        }

        let over = stop || streams.iter().all(|st| st.as_ref().is_some_and(|s| s.done));
        let halt = !over && ec.halt_after.is_some_and(|n| round >= n);
        let due = ec.checkpoint_to.is_some() && (round % ec.checkpoint_every == 0 || over || halt);
        if due || halt {
            let ck = build_checkpoint(&ec, round, &found, &crashdb, &streams);
            if let Some(path) = &ec.checkpoint_to {
                ck.save(path).expect("campaign checkpoint write failed");
            }
            if halt {
                checkpoint_out = Some(ck);
            }
        }
        if halt {
            halted = true;
            break;
        }
        if over {
            break;
        }
    }
    if let Lanes::Threads(pool) = lanes {
        pool.shutdown();
    }

    // Final accounting, computed from the parked streams at the quiescent
    // end point (identical to what running tallies would have produced —
    // coverage and stats only grow, and done streams never step again).
    let mut coverage: HashSet<Iid> = HashSet::new();
    let mut shard_stats = Vec::with_capacity(ec.shards);
    for st in streams {
        let st = st.expect("stream parked");
        coverage.extend(st.fuzzer.coverage_iids());
        let mut fuzz = st.fuzzer.stats().clone();
        fuzz.stalled = fuzz.barren_stis >= STALL_LIMIT;
        let restores = st.fuzzer.restore_counters();
        shard_stats.push(ShardStats {
            shard: st.shard,
            fuzz,
            epochs: st.epoch,
            steals: st.steals,
            batch_micros: st.batch_micros,
            restore_words_replayed: restores.words_replayed,
            restore_full_fallbacks: restores.full_fallbacks,
            done: st.done,
        });
    }
    let stats = FuzzStats {
        stis_run: shard_stats.iter().map(|s| s.fuzz.stis_run).sum(),
        mtis_run: shard_stats.iter().map(|s| s.fuzz.mtis_run).sum(),
        crashes_total: shard_stats.iter().map(|s| s.fuzz.crashes_total).sum(),
        coverage: coverage.len(),
        barren_stis: 0,
        stalled: shard_stats.iter().all(|s| s.fuzz.stalled),
    };
    let mut coverage: Vec<Iid> = coverage.into_iter().collect();
    coverage.sort_unstable();
    CampaignReport {
        found,
        shard_stats,
        stats,
        coverage,
        crashes: crashdb,
        rounds: round,
        checkpoint: checkpoint_out,
        halted,
    }
}

fn restore_stream(ec: &EngineConfig, shard: usize, sck: StreamCheckpoint) -> StreamState {
    let cfg = FuzzConfig {
        seed: shard_seed(ec.cfg.seed, shard),
        ..ec.cfg.clone()
    };
    StreamState {
        shard,
        slice: slice(ec.budget, ec.shards, shard),
        epoch: sck.epoch,
        corpus_mark: sck.corpus_mark,
        bugs_sent: sck.bugs_sent,
        counts_sent: sck.counts_sent,
        done: sck.done,
        steals: 0,
        batch_micros: Vec::new(),
        fuzzer: Fuzzer::from_checkpoint(cfg, sck.fuzzer),
    }
}

fn build_checkpoint(
    ec: &EngineConfig,
    round: u64,
    found: &BTreeMap<String, FoundBug>,
    crashdb: &CrashDb,
    streams: &[Option<Box<StreamState>>],
) -> CampaignCheckpoint {
    CampaignCheckpoint {
        seed: ec.cfg.seed,
        shards: ec.shards,
        budget: ec.budget,
        epoch_mtis: ec.epoch_mtis,
        round,
        bugs: ec.cfg.bugs.clone(),
        expected: ec.expected.clone(),
        memory_model: ec.cfg.memory_model,
        max_hints_per_pair: ec.cfg.max_hints_per_pair,
        mutate_ratio: ec.cfg.mutate_ratio,
        hint_order: ec.cfg.hint_order,
        found: found.values().cloned().collect(),
        crashdb: crashdb.clone(),
        streams: streams
            .iter()
            .map(|st| {
                let st = st.as_ref().expect("stream parked at quiescent point");
                StreamCheckpoint {
                    epoch: st.epoch,
                    corpus_mark: st.corpus_mark,
                    done: st.done,
                    bugs_sent: st.bugs_sent.clone(),
                    counts_sent: st.counts_sent.clone(),
                    fuzzer: st.fuzzer.checkpoint(),
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use kernelsim::BugSwitches;

    #[test]
    fn slices_partition_the_budget_exactly() {
        for (shards, budget) in [(1usize, 100u64), (3, 100), (4, 7), (8, 0), (5, 5)] {
            let total: u64 = (0..shards).map(|s| slice(budget, shards, s)).sum();
            assert_eq!(total, budget, "shards={shards} budget={budget}");
            // Slices differ by at most one MTI.
            let min = (0..shards).map(|s| slice(budget, shards, s)).min().unwrap();
            let max = (0..shards).map(|s| slice(budget, shards, s)).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn shard_zero_uses_the_raw_campaign_seed() {
        assert_eq!(shard_seed(7, 0), 7);
        assert_eq!(shard_seed(0xdead_beef, 0), 0xdead_beef);
    }

    #[test]
    fn shard_seeds_follow_the_splitmix_chain() {
        let mut sm = 7u64;
        let first = splitmix64(&mut sm);
        let second = splitmix64(&mut sm);
        assert_eq!(shard_seed(7, 1), first);
        assert_eq!(shard_seed(7, 2), second);
        let seeds: BTreeSet<u64> = (0..8).map(|s| shard_seed(7, s)).collect();
        assert_eq!(seeds.len(), 8, "shard seeds must be distinct");
    }

    #[test]
    fn steal_assignment_prefers_affinity_then_lowest_pending() {
        let affinity = vec![0, 1, 0, 1];
        let mut pending: BTreeSet<usize> = [0, 1, 2, 3].into_iter().collect();
        assert_eq!(pick_task(&mut pending, &affinity, 1), Some((1, false)));
        assert_eq!(pick_task(&mut pending, &affinity, 1), Some((3, false)));
        // No affinity matches left for worker 1: steal the lowest pending.
        assert_eq!(pick_task(&mut pending, &affinity, 1), Some((0, true)));
        assert_eq!(pick_task(&mut pending, &affinity, 1), Some((2, true)));
        assert_eq!(pick_task(&mut pending, &affinity, 1), None);
    }

    #[test]
    fn two_runs_merge_identically() {
        let run = || {
            CampaignBuilder::new(3)
                .shards(2)
                .workers(2)
                .budget(600)
                .run()
        };
        let render = |r: &CampaignReport| format!("{:#?}", r.found);
        assert_eq!(render(&run()), render(&run()));
    }

    #[test]
    fn worker_count_never_changes_the_merge() {
        let run = |workers: usize| {
            let r = CampaignBuilder::new(5)
                .shards(3)
                .workers(workers)
                .budget(450)
                .run();
            (
                format!("{:#?}", r.found),
                r.coverage,
                r.shard_stats
                    .iter()
                    .map(|s| (s.fuzz.clone(), s.epochs, s.done))
                    .collect::<Vec<_>>(),
                r.crashes,
            )
        };
        let inline = run(1);
        assert_eq!(inline, run(2), "2 workers == inline");
        assert_eq!(inline, run(3), "3 workers == inline");
    }

    #[test]
    fn aggregate_stats_sum_the_shards() {
        let r = CampaignBuilder::new(5).shards(3).budget(300).run();
        assert_eq!(r.shard_stats.len(), 3);
        assert_eq!(
            r.stats.mtis_run,
            r.shard_stats.iter().map(|s| s.fuzz.mtis_run).sum::<u64>()
        );
        assert_eq!(
            r.stats.stis_run,
            r.shard_stats.iter().map(|s| s.fuzz.stis_run).sum::<u64>()
        );
        assert!(r.stats.mtis_run >= 300 || !r.found.is_empty());
        // Union coverage can never exceed the per-shard sum.
        assert!(r.stats.coverage <= r.shard_stats.iter().map(|s| s.fuzz.coverage).sum::<usize>());
        assert!(r.stats.coverage >= r.shard_stats.iter().map(|s| s.fuzz.coverage).max().unwrap());
        assert_eq!(r.coverage.len(), r.stats.coverage);
        // Per-shard observability: every shard ran rounds and finished.
        assert!(r.shard_stats.iter().all(|s| s.epochs >= 1 && s.done));
    }

    #[test]
    fn zero_budget_returns_immediately_and_empty() {
        let r = CampaignBuilder::new(1).shards(4).budget(0).run();
        assert!(r.found.is_empty());
        assert_eq!(r.stats.mtis_run, 0);
        assert!(!r.halted);
    }

    /// The serial Table 3 loop on the plain [`Fuzzer`] surface — what the
    /// retired `fuzzer::campaign()` shim did, inlined so the comparison
    /// stays on non-deprecated API.
    fn serial_campaign(seed: u64, max_tests: u64) -> crate::fuzzer::Fuzzer {
        let expected: Vec<&str> = kernelsim::BugId::NEW
            .iter()
            .map(|b| b.expected_title())
            .collect();
        let mut fuzzer = crate::fuzzer::Fuzzer::new(crate::fuzzer::FuzzConfig {
            seed,
            bugs: BugSwitches::all(),
            ..crate::fuzzer::FuzzConfig::default()
        });
        while fuzzer.stats().mtis_run < max_tests {
            fuzzer.step();
            if expected.iter().all(|t| fuzzer.found().contains_key(*t)) {
                break;
            }
        }
        fuzzer
    }

    #[test]
    fn single_shard_equals_serial_campaign() {
        let serial = serial_campaign(3, 500);
        let parallel = CampaignBuilder::new(3).budget(500).run();
        assert_eq!(
            format!("{:#?}", serial.found()),
            format!("{:#?}", parallel.found),
            "one shard must replay the serial campaign"
        );
        assert_eq!(serial.stats().mtis_run, parallel.stats.mtis_run);
        assert_eq!(serial.stats().stis_run, parallel.stats.stis_run);
        assert_eq!(serial.stats().coverage, parallel.stats.coverage);
    }
}
