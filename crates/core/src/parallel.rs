//! Sharded parallel campaigns with a deterministic merge.
//!
//! A [`ParallelCampaign`] splits one campaign budget across N OS-thread
//! workers, each owning a private [`Fuzzer`] seeded from `(seed, shard)`.
//! The coordinator merges every shard's crashes into one deduplicated map
//! and periodically re-broadcasts new-coverage corpus entries so shards
//! benefit from each other's discoveries — yet the merged result is a pure
//! function of `(seed, shards, budget)`, independent of thread timing.
//!
//! # How determinism survives parallelism
//!
//! Nothing about the merged output may depend on which worker happens to
//! run faster. Three rules enforce that:
//!
//! 1. **Deterministic budget slices.** Shard `i` owns exactly
//!    `budget / shards` MTIs plus one of the `budget % shards` remainder
//!    slots. A shared atomic counter tracks aggregate progress for
//!    reporting, but it is *never* a stop condition — stopping on a racing
//!    counter would make each shard's share timing-dependent.
//! 2. **Epoch lockstep.** Workers run fixed-length epochs and block at an
//!    epoch barrier until the coordinator has a report from every live
//!    shard. Corpus broadcasts, crash merging, and the cross-shard
//!    early-stop decision happen only at barriers, processed in shard-id
//!    order, so every worker sees the same imports at the same point of its
//!    own schedule on every run.
//! 3. **Deterministic shard seeds.** Shard 0 fuzzes with the raw campaign
//!    seed — a one-shard campaign reproduces the serial [`campaign`](crate::fuzzer::campaign)
//!    byte-for-byte — and shard `i > 0` draws the `i`-th value of the
//!    [`splitmix64`] chain over the seed, so shards are decorrelated but
//!    reproducible from `(seed, shard)` alone.
//!
//! Cross-shard messages travel over [`kutil::chan`], the workspace's own
//! MPSC channel (zero-dependency policy): one shared worker→coordinator
//! queue, plus one coordinator→worker queue per shard for barrier replies.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kernelsim::BugSwitches;
use kutil::chan::{channel, Receiver, Sender};
use kutil::splitmix64;
use oemu::Iid;

use crate::fuzzer::{FoundBug, FuzzConfig, FuzzStats, Fuzzer, STALL_LIMIT};
use crate::sti::Sti;

/// Default epoch length, in MTIs per shard between barriers. Long enough
/// that barrier overhead is noise, short enough that corpus discoveries
/// propagate while a campaign is young.
pub const DEFAULT_EPOCH_MTIS: u64 = 64;

/// One shard's report at an epoch barrier (or its final report).
struct EpochReport {
    shard: usize,
    /// Unique crashes first seen this epoch, in title order.
    bugs: Vec<FoundBug>,
    /// Corpus entries added this epoch (coverage-earning STIs; imports are
    /// excluded — every shard already received those from the broadcast).
    corpus: Vec<Sti>,
    /// Statistics snapshot as of this barrier.
    stats: FuzzStats,
    /// Covered sites as of this barrier, sorted.
    coverage: Vec<Iid>,
    /// This shard finished (budget slice exhausted, all expected bugs
    /// found locally, or stalled) and will send nothing more.
    done: bool,
}

/// Coordinator's barrier reply.
#[derive(Debug)]
enum BarrierReply {
    /// Keep fuzzing; first import these foreign corpus entries.
    Continue(Vec<Sti>),
    /// Every expected crash has been found across the union; stop now.
    Stop,
}

/// A sharded campaign over the all-bugs kernel (the parallel analog of
/// [`campaign`](crate::fuzzer::campaign)). Construct with [`ParallelCampaign::new`], tweak, then
/// [`run`](ParallelCampaign::run).
pub struct ParallelCampaign {
    seed: u64,
    shards: usize,
    budget: u64,
    epoch_mtis: u64,
    bugs: BugSwitches,
    expected: Vec<String>,
}

/// The merged outcome of a sharded campaign.
#[derive(Debug)]
pub struct ParallelReport {
    /// Union of every shard's unique crashes, keyed by title. For a title
    /// found by several shards, the surviving diagnosis is the one merged
    /// first in (epoch, shard) order — deterministic, not racy.
    pub found: BTreeMap<String, FoundBug>,
    /// Final per-shard statistics, indexed by shard id.
    pub shard_stats: Vec<FuzzStats>,
    /// Aggregate statistics: sums over shards, with `coverage` the size of
    /// the *union* of covered sites (not the sum, which double-counts).
    pub stats: FuzzStats,
}

impl ParallelCampaign {
    /// A campaign of `budget` total MTIs split across `shards` workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(seed: u64, shards: usize, budget: u64) -> Self {
        assert!(shards > 0, "a campaign needs at least one shard");
        ParallelCampaign {
            seed,
            shards,
            budget,
            epoch_mtis: DEFAULT_EPOCH_MTIS,
            bugs: BugSwitches::all(),
            expected: kernelsim::BugId::NEW
                .iter()
                .map(|b| b.expected_title().to_string())
                .collect(),
        }
    }

    /// Overrides the epoch length (MTIs per shard between barriers).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_mtis == 0`.
    pub fn epoch_mtis(mut self, epoch_mtis: u64) -> Self {
        assert!(epoch_mtis > 0, "an epoch must make progress");
        self.epoch_mtis = epoch_mtis;
        self
    }

    /// Overrides the kernel build and the crash titles the campaign hunts;
    /// the campaign early-stops once the union of shards found them all.
    pub fn target(mut self, bugs: BugSwitches, expected: Vec<String>) -> Self {
        self.bugs = bugs;
        self.expected = expected;
        self
    }

    /// Shard `shard`'s MTI slice: an equal share of the budget, with the
    /// remainder spread over the lowest shard ids.
    fn slice(&self, shard: usize) -> u64 {
        self.budget / self.shards as u64
            + u64::from((shard as u64) < self.budget % self.shards as u64)
    }

    /// Runs the campaign: spawns one worker thread per shard, coordinates
    /// epoch barriers on the calling thread, joins every worker, and
    /// returns the deterministic merge.
    pub fn run(self) -> ParallelReport {
        let (report_tx, report_rx) = channel::<EpochReport>();
        // Aggregate progress for observability; never a stop condition
        // (see module docs).
        let mtis_total = Arc::new(AtomicU64::new(0));

        let mut reply_txs: Vec<Sender<BarrierReply>> = Vec::with_capacity(self.shards);
        let mut handles = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let (reply_tx, reply_rx) = channel::<BarrierReply>();
            reply_txs.push(reply_tx);
            let worker = ShardWorker {
                shard,
                seed: shard_seed(self.seed, shard),
                slice: self.slice(shard),
                epoch_mtis: self.epoch_mtis,
                bugs: self.bugs.clone(),
                expected: self.expected.clone(),
                report_tx: report_tx.clone(),
                reply_rx,
                mtis_total: Arc::clone(&mtis_total),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ozz-shard-{shard}"))
                    .spawn(move || worker.run())
                    .unwrap_or_else(|e| {
                        panic!("failed to spawn worker thread for shard {shard}: {e}")
                    }),
            );
        }
        drop(report_tx);

        let merged = self.coordinate(&report_rx, &reply_txs);
        drop(reply_txs);
        for (shard, h) in handles.into_iter().enumerate() {
            if h.join().is_err() {
                panic!("shard {shard} worker panicked; its partial results are unusable");
            }
        }
        debug_assert_eq!(
            mtis_total.load(Ordering::Relaxed),
            merged.shard_stats.iter().map(|s| s.mtis_run).sum::<u64>(),
            "the atomic aggregate must agree with the per-shard sums"
        );
        merged
    }

    /// The coordinator: per round, collect one report from every live
    /// shard, then merge and reply in shard-id order.
    fn coordinate(
        &self,
        report_rx: &Receiver<EpochReport>,
        reply_txs: &[Sender<BarrierReply>],
    ) -> ParallelReport {
        let mut live: BTreeSet<usize> = (0..self.shards).collect();
        let mut found: BTreeMap<String, FoundBug> = BTreeMap::new();
        let mut shard_stats: Vec<FuzzStats> = vec![FuzzStats::default(); self.shards];
        let mut coverage: HashSet<Iid> = HashSet::new();

        while !live.is_empty() {
            // Lockstep: every live worker sends exactly one report per
            // round, then blocks (unless done). Arrival order is racy;
            // keying by shard id restores a deterministic order.
            let mut round: BTreeMap<usize, EpochReport> = BTreeMap::new();
            while round.len() < live.len() {
                let r = report_rx.recv().unwrap_or_else(|e| {
                    let missing: Vec<usize> = live
                        .iter()
                        .filter(|s| !round.contains_key(s))
                        .copied()
                        .collect();
                    panic!(
                        "worker report channel closed ({e:?}) before shards {missing:?} \
                         reported this epoch"
                    )
                });
                round.insert(r.shard, r);
            }
            for (&shard, r) in &round {
                for bug in &r.bugs {
                    // First merge in (epoch, shard) order wins the title.
                    found
                        .entry(bug.title.clone())
                        .or_insert_with(|| bug.clone());
                }
                coverage.extend(r.coverage.iter().copied());
                shard_stats[shard] = r.stats.clone();
                if r.done {
                    live.remove(&shard);
                }
            }
            let stop = self.expected.iter().all(|t| found.contains_key(t));
            for &shard in &live {
                let reply = if stop {
                    BarrierReply::Stop
                } else {
                    // Broadcast the other shards' fresh entries, in shard
                    // order; the worker's import dedups.
                    let entries: Vec<Sti> = round
                        .iter()
                        .filter(|(&s, _)| s != shard)
                        .flat_map(|(_, r)| r.corpus.iter().cloned())
                        .collect();
                    BarrierReply::Continue(entries)
                };
                reply_txs[shard].send(reply).unwrap_or_else(|_| {
                    panic!("shard {shard} dropped its barrier queue while still live (SendError)")
                });
            }
            if stop {
                break;
            }
        }

        let stats = FuzzStats {
            stis_run: shard_stats.iter().map(|s| s.stis_run).sum(),
            mtis_run: shard_stats.iter().map(|s| s.mtis_run).sum(),
            crashes_total: shard_stats.iter().map(|s| s.crashes_total).sum(),
            coverage: coverage.len(),
            barren_stis: 0,
            stalled: shard_stats.iter().all(|s| s.stalled),
        };
        ParallelReport {
            found,
            shard_stats,
            stats,
        }
    }
}

/// Shard `shard`'s fuzzer seed: the raw campaign seed for shard 0 (so one
/// shard reproduces the serial [`campaign`](crate::fuzzer::campaign) exactly), the `shard`-th value
/// of the seed's [`splitmix64`] chain otherwise.
fn shard_seed(seed: u64, shard: usize) -> u64 {
    let mut sm = seed;
    let mut derived = seed;
    for _ in 0..shard {
        derived = splitmix64(&mut sm);
    }
    derived
}

/// One worker thread's state.
struct ShardWorker {
    shard: usize,
    seed: u64,
    slice: u64,
    epoch_mtis: u64,
    bugs: BugSwitches,
    expected: Vec<String>,
    report_tx: Sender<EpochReport>,
    reply_rx: Receiver<BarrierReply>,
    mtis_total: Arc<AtomicU64>,
}

impl ShardWorker {
    /// The worker loop. The inner step loop is a faithful copy of the
    /// serial [`campaign`](crate::fuzzer::campaign) loop — step, then check the early-stop — bounded
    /// per epoch, so a one-shard campaign replays it exactly.
    fn run(self) {
        let mut f = Fuzzer::new(FuzzConfig {
            seed: self.seed,
            bugs: self.bugs.clone(),
            ..FuzzConfig::default()
        });
        // Corpus high-water mark: entries below it were already reported
        // (or arrived via broadcast and need no re-broadcast).
        let mut corpus_mark = 0usize;
        let mut bugs_sent: BTreeSet<String> = BTreeSet::new();
        let mut epoch = 0u64;
        loop {
            let target = self.slice.min((epoch + 1) * self.epoch_mtis);
            let mut found_all = false;
            while f.stats().mtis_run < target {
                let before = f.stats().mtis_run;
                f.step();
                self.mtis_total
                    .fetch_add(f.stats().mtis_run - before, Ordering::Relaxed);
                if self.expected.iter().all(|t| f.found().contains_key(t)) {
                    found_all = true;
                    break;
                }
                if f.stats().barren_stis >= STALL_LIMIT {
                    break;
                }
            }
            let stalled = f.stats().barren_stis >= STALL_LIMIT;
            let done = found_all || stalled || f.stats().mtis_run >= self.slice;

            let bugs: Vec<FoundBug> = f
                .found()
                .iter()
                .filter(|(title, _)| !bugs_sent.contains(*title))
                .map(|(_, b)| b.clone())
                .collect();
            bugs_sent.extend(bugs.iter().map(|b| b.title.clone()));
            let corpus = f.corpus()[corpus_mark..].to_vec();
            let mut stats = f.stats().clone();
            stats.stalled = stalled;
            let report = EpochReport {
                shard: self.shard,
                bugs,
                corpus,
                stats,
                coverage: f.coverage_iids(),
                done,
            };
            if self.report_tx.send(report).is_err() || done {
                return;
            }
            match self.reply_rx.recv() {
                Ok(BarrierReply::Continue(entries)) => {
                    f.import_corpus(&entries);
                    // Imports widen the mutation pool but are not ours to
                    // re-broadcast.
                    corpus_mark = f.corpus().len();
                }
                Ok(BarrierReply::Stop) | Err(_) => return,
            }
            epoch += 1;
        }
    }
}

/// Runs a sharded Table 3-style campaign on the all-bugs kernel: the
/// parallel analog of [`campaign`](crate::fuzzer::campaign), with identical semantics at
/// `shards == 1`.
pub fn parallel_campaign(seed: u64, shards: usize, budget: u64) -> ParallelReport {
    ParallelCampaign::new(seed, shards, budget).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzer::campaign;

    #[test]
    fn slices_partition_the_budget_exactly() {
        for (shards, budget) in [(1usize, 100u64), (3, 100), (4, 7), (8, 0), (5, 5)] {
            let c = ParallelCampaign::new(0, shards, budget);
            let total: u64 = (0..shards).map(|s| c.slice(s)).sum();
            assert_eq!(total, budget, "shards={shards} budget={budget}");
            // Slices differ by at most one MTI.
            let min = (0..shards).map(|s| c.slice(s)).min().unwrap();
            let max = (0..shards).map(|s| c.slice(s)).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn shard_zero_uses_the_raw_campaign_seed() {
        assert_eq!(shard_seed(7, 0), 7);
        assert_eq!(shard_seed(0xdead_beef, 0), 0xdead_beef);
    }

    #[test]
    fn shard_seeds_follow_the_splitmix_chain() {
        let mut sm = 7u64;
        let first = splitmix64(&mut sm);
        let second = splitmix64(&mut sm);
        assert_eq!(shard_seed(7, 1), first);
        assert_eq!(shard_seed(7, 2), second);
        let seeds: BTreeSet<u64> = (0..8).map(|s| shard_seed(7, s)).collect();
        assert_eq!(seeds.len(), 8, "shard seeds must be distinct");
    }

    #[test]
    fn two_runs_merge_identically() {
        let render = || format!("{:#?}", parallel_campaign(3, 2, 600).found);
        assert_eq!(render(), render());
    }

    #[test]
    fn aggregate_stats_sum_the_shards() {
        let r = parallel_campaign(5, 3, 300);
        assert_eq!(r.shard_stats.len(), 3);
        assert_eq!(
            r.stats.mtis_run,
            r.shard_stats.iter().map(|s| s.mtis_run).sum::<u64>()
        );
        assert_eq!(
            r.stats.stis_run,
            r.shard_stats.iter().map(|s| s.stis_run).sum::<u64>()
        );
        assert!(r.stats.mtis_run >= 300 || !r.found.is_empty());
        // Union coverage can never exceed the per-shard sum.
        assert!(r.stats.coverage <= r.shard_stats.iter().map(|s| s.coverage).sum::<usize>());
        assert!(r.stats.coverage >= r.shard_stats.iter().map(|s| s.coverage).max().unwrap());
    }

    #[test]
    fn zero_budget_returns_immediately_and_empty() {
        let r = parallel_campaign(1, 4, 0);
        assert!(r.found.is_empty());
        assert_eq!(r.stats.mtis_run, 0);
    }

    #[test]
    fn single_shard_equals_serial_campaign() {
        let serial = campaign(3, 500);
        let parallel = parallel_campaign(3, 1, 500);
        assert_eq!(
            format!("{:#?}", serial.found()),
            format!("{:#?}", parallel.found),
            "one shard must replay the serial campaign"
        );
        assert_eq!(serial.stats().mtis_run, parallel.stats.mtis_run);
        assert_eq!(serial.stats().stis_run, parallel.stats.stis_run);
        assert_eq!(serial.stats().coverage, parallel.stats.coverage);
    }
}
