//! The OZZ fuzzing loop (Figure 6).
//!
//! Each iteration follows the paper's three-step workflow: generate and run
//! a single-threaded input while profiling memory accesses and barriers
//! (§4.2), calculate scheduling hints for every syscall pair (§4.3), then
//! construct and run multi-threaded inputs under those hints, watching the
//! kernel's bug-detecting oracles (§4.4). Coverage (KCov-style, per
//! instrumentation site) gates corpus growth; crashes are deduplicated by
//! title like Syzkaller's dashboard.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use kernelsim::{
    BugSwitches, ExecMode, Kctx, MachinePool, MachineSnapshot, MemoryModel, ReorderType,
    RestoreCounters, Syscall,
};
use kutil::{fnv1a64, splitmix64};
use oemu::{Iid, ScheduleTrace};

use crate::hints::{calc_hints_for, HintKind};
use crate::mti::build_mtis;
use crate::profile_sti_on;
use crate::sti::{Sti, StiGen};

/// Ordering strategy for scheduling hints within a pair — the §4.3 search
/// heuristic and its ablations (DESIGN.md §7).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HintOrder {
    /// The paper's heuristic: maximal reorder-set first.
    MaxReorderFirst,
    /// Ablation: minimal reorder-set first.
    MinReorderFirst,
    /// Ablation: deterministic pseudo-random order (seeded).
    Shuffled,
}

impl HintOrder {
    /// Stable text name, used by campaign checkpoints.
    pub fn name(self) -> &'static str {
        match self {
            HintOrder::MaxReorderFirst => "max-reorder-first",
            HintOrder::MinReorderFirst => "min-reorder-first",
            HintOrder::Shuffled => "shuffled",
        }
    }

    /// Parses a name produced by [`HintOrder::name`].
    pub fn parse(s: &str) -> Result<HintOrder, String> {
        match s {
            "max-reorder-first" => Ok(HintOrder::MaxReorderFirst),
            "min-reorder-first" => Ok(HintOrder::MinReorderFirst),
            "shuffled" => Ok(HintOrder::Shuffled),
            other => Err(format!("unknown hint order {other:?}")),
        }
    }
}

/// Fuzzer configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// RNG seed (campaigns are fully deterministic given the seed).
    pub seed: u64,
    /// Kernel build (which seeded bugs are present).
    pub bugs: BugSwitches,
    /// Cap on hints executed per syscall pair, in priority order.
    pub max_hints_per_pair: usize,
    /// Probability weight of mutating a corpus entry vs generating fresh.
    pub mutate_ratio: f64,
    /// Hint-ordering strategy (the §4.3 heuristic or an ablation).
    pub hint_order: HintOrder,
    /// Run tests on pooled, reset machines with persistent CPU workers
    /// (the in-vivo discipline) instead of booting a machine and spawning
    /// threads per test. Campaign output is byte-identical either way —
    /// pinned by `tests/pool_fidelity.rs` — only throughput differs.
    pub reuse_machines: bool,
    /// Which executor runs each MTI's concurrent pair: threadless stepped
    /// execution (the default) or two scheduler-serialised OS threads.
    /// Campaign output is byte-identical either way — pinned by
    /// `tests/exec_equivalence.rs` — only throughput differs. Defaults to
    /// [`ExecMode::from_env`] (`OZZ_EXEC=threaded` selects the threaded
    /// executor).
    pub exec_mode: ExecMode,
    /// Memory model the campaign's machines emulate. Part of machine
    /// identity (pool shelves key on it) and fed to the hint calculator,
    /// whose barrier grouping asks the model what bounds reordering.
    /// Defaults to [`MemoryModel::from_env`] (`OZZ_MEMMODEL=pso`/`arm`
    /// selects a weaker model; unset means TSO).
    pub memory_model: MemoryModel,
    /// Benchmark baseline knob: force every machine restore down the full
    /// `clone_from` path and disable undo journaling entirely, reproducing
    /// the pre-journal reset cost (including zero journaling overhead on
    /// the write path). Campaign output is byte-identical either way —
    /// the incremental path is semantically invisible — only restore cost
    /// differs. Not serialized into checkpoints: like `exec_mode`, it is a
    /// perf knob, not campaign state.
    pub force_full_restore: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            bugs: BugSwitches::all(),
            max_hints_per_pair: 8,
            mutate_ratio: 0.5,
            hint_order: HintOrder::MaxReorderFirst,
            reuse_machines: true,
            exec_mode: ExecMode::from_env(),
            memory_model: MemoryModel::from_env(),
            force_full_restore: false,
        }
    }
}

/// A deduplicated crash found during fuzzing, with the diagnosis the paper
/// reports to developers (§4.1): the hypothetical barrier location and the
/// reordering that was enforced.
#[derive(Clone, Debug)]
pub struct FoundBug {
    /// Crash title (dedup key).
    pub title: String,
    /// Where the missing barrier belongs.
    pub barrier_location: String,
    /// Store-store or load-load (which OEMU mechanism fired).
    pub reorder_type: ReorderType,
    /// Total tests executed when this bug was first triggered.
    pub tests_to_find: u64,
    /// Rank of the triggering hint within its pair's sorted hint list
    /// (0 = the maximal-reorder hint; the §4.3 heuristic statistic).
    pub hint_rank: usize,
    /// The concurrent syscall pair.
    pub pair: (Syscall, Syscall),
    /// The full STI the pair was drawn from (setup prefix included), so a
    /// replay can rebuild the exact pre-pair machine state.
    pub sti: Arc<Sti>,
    /// Indices of the pair within [`FoundBug::sti`] (`i < j`).
    pub pair_indices: (usize, usize),
    /// Schedule trace of the crashing execution, recorded by re-running
    /// the triggering MTI in record mode (byte-identical to the original
    /// run — executions are deterministic given the controls).
    pub trace: ScheduleTrace,
    /// FNV-1a of the crashing run's [`Kctx::state_digest`]: the fidelity
    /// target a replay must hit ([`crate::repro::reproduce_from_trace`]).
    pub digest_fnv: u64,
}

/// Campaign statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// STIs generated and profiled.
    pub stis_run: u64,
    /// MTIs executed (the paper's "tests").
    pub mtis_run: u64,
    /// Crash occurrences (before dedup).
    pub crashes_total: u64,
    /// Instrumentation sites covered (KCov analog).
    pub coverage: usize,
    /// Consecutive STIs (counting back from the latest) whose hint pipeline
    /// produced zero MTIs — the liveness signal [`Fuzzer::run_until`] and
    /// the sharded runner stall on.
    pub barren_stis: u64,
    /// Set when a bounded run aborted because [`STALL_LIMIT`] consecutive
    /// STIs produced no MTIs: the MTI budget could never be consumed, so
    /// looping on `mtis_run` alone would spin forever.
    pub stalled: bool,
}

/// How many consecutive MTI-less STIs a bounded run tolerates before it
/// declares the workload stalled and returns (surfaced as
/// [`FuzzStats::stalled`]).
pub const STALL_LIMIT: u64 = 256;

/// The OZZ fuzzer.
pub struct Fuzzer {
    cfg: FuzzConfig,
    gen: StiGen,
    corpus: Vec<Sti>,
    /// Mirror of `corpus` for O(1) duplicate checks in [`Fuzzer::import_corpus`]
    /// (the corpus `Vec` stays authoritative for ordering and mutation picks).
    corpus_set: HashSet<Sti>,
    coverage: HashSet<Iid>,
    found: BTreeMap<String, FoundBug>,
    /// Crash occurrences per title (before dedup) — the crash database's
    /// per-shard sighting counts.
    crash_counts: BTreeMap<String, u64>,
    stats: FuzzStats,
    rng_pick: u64,
    /// Reset machines with persistent workers, reused across steps when
    /// `cfg.reuse_machines` is set. Private per fuzzer: shards in a
    /// parallel campaign never contend on a shelf.
    pool: MachinePool,
}

/// Initial scramble state of the corpus-pick stream (golden ratio), XORed
/// with a SplitMix64 expansion of the campaign seed so distinct seeds (and
/// therefore distinct shards) draw decorrelated pick streams.
const PICK_INIT: u64 = 0x9e37_79b9_7f4a_7c15;
const PICK_MUL: u64 = 0x5851_f42d_4c95_7f2d;

fn pick_draw(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(PICK_MUL).wrapping_add(1);
    *state
}

/// The corpus scheduler's two decisions — mutate-vs-generate, and *which*
/// corpus entry to mutate — each from its own draw. Returns the corpus
/// index to mutate, or `None` to generate fresh.
///
/// Both draws are always consumed (a fixed two-draw stride per STI), so
/// the decision taken never perturbs the stream position. Deriving both
/// decisions from a single draw — the old code — correlated them: the
/// toss conditions on high bits of the very value whose residue picks the
/// index, biasing which corpus entries ever get mutated.
fn corpus_pick(state: &mut u64, corpus_len: usize, mutate_ratio: f64) -> Option<usize> {
    let toss = (pick_draw(state) >> 33) as f64 / (1u64 << 31) as f64;
    let idx_draw = pick_draw(state);
    if corpus_len == 0 || toss >= mutate_ratio {
        return None;
    }
    Some((idx_draw % corpus_len as u64) as usize)
}

impl Fuzzer {
    /// Creates a fuzzer.
    pub fn new(cfg: FuzzConfig) -> Self {
        let gen = StiGen::new(cfg.seed);
        let mut sm = cfg.seed;
        let rng_pick = PICK_INIT ^ splitmix64(&mut sm);
        Fuzzer {
            cfg,
            gen,
            corpus: Vec::new(),
            corpus_set: HashSet::new(),
            coverage: HashSet::new(),
            found: BTreeMap::new(),
            crash_counts: BTreeMap::new(),
            stats: FuzzStats::default(),
            rng_pick,
            pool: MachinePool::new(),
        }
    }

    /// Runs one full iteration (STI → profile → hints → MTIs); returns the
    /// number of *new* unique crashes found in this iteration.
    pub fn step(&mut self) -> usize {
        let mtis_before = self.stats.mtis_run;
        let sti = self.next_sti();
        self.stats.stis_run += 1;
        // Step 1 (§4.2): run the STI with profiling — on a pooled machine
        // (checked out in exact boot state) or a freshly booted one.
        let machine = self.cfg.reuse_machines.then(|| {
            self.pool
                .checkout_with_model(&self.cfg.bugs, self.cfg.memory_model)
        });
        if let Some(m) = &machine {
            // The executor choice is per-config, not per-machine: stamp it
            // on every checkout (reset() deliberately leaves it alone).
            m.kctx().set_exec_mode(self.cfg.exec_mode);
            if self.cfg.force_full_restore {
                m.kctx().set_force_full_restore(true);
            }
        }
        let traces = match &machine {
            Some(m) => profile_sti_on(m.kctx(), &sti),
            None => {
                let k = Kctx::new_with_model(self.cfg.bugs.clone(), self.cfg.memory_model);
                profile_sti_on(&k, &sti)
            }
        };
        // KCov-style coverage gates corpus growth.
        let before = self.coverage.len();
        for t in &traces {
            for e in &t.events {
                self.coverage.insert(e.iid());
            }
        }
        if self.coverage.len() > before {
            self.corpus.push(sti.clone());
            self.corpus_set.insert(sti.clone());
        }
        self.stats.coverage = self.coverage.len();
        // Steps 2+3 (§4.3, §4.4): hints and MTI execution. Hints are
        // recomputed per pair; rank bookkeeping feeds the heuristic
        // validation experiment.
        let mut new_uniques = 0;
        let order = self.cfg.hint_order;
        let seed = self.cfg.seed;
        let model = self.cfg.memory_model;
        let mtis = build_mtis(
            &sti,
            |i, j| {
                let mut hints = calc_hints_for(&traces[i].events, &traces[j].events, model);
                match order {
                    HintOrder::MaxReorderFirst => {}
                    HintOrder::MinReorderFirst => hints.reverse(),
                    HintOrder::Shuffled => {
                        // Deterministic per-pair shuffle (splitmix over the
                        // seed and pair indices).
                        let mut state = seed ^ ((i as u64) << 32) ^ (j as u64);
                        for idx in (1..hints.len()).rev() {
                            state = state
                                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                                .wrapping_add(0x14057b7e_f767_814f);
                            let pick = (state >> 33) as usize % (idx + 1);
                            hints.swap(idx, pick);
                        }
                    }
                }
                hints
            },
            self.cfg.max_hints_per_pair,
        );
        // Rank within each pair (build_mtis preserves per-pair hint order).
        let mut rank_of_pair: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        // Pooled per-pair setup reuse: every MTI of one pair shares the
        // single-threaded setup prefix, so it runs once per pair — the
        // machine resets to boot state, runs setup, and is snapshotted;
        // subsequent hints of the pair restore the snapshot instead.
        // (The snapshot carries any oracle reports setup raised, so each
        // hint's outcome drains exactly what a fresh-boot run would.)
        let mut cur_pair: Option<(usize, usize)> = None;
        let mut post_setup: Option<MachineSnapshot> = None;
        for mti in mtis {
            let rank = rank_of_pair.entry((mti.i, mti.j)).or_insert(0);
            let this_rank = *rank;
            *rank += 1;
            self.stats.mtis_run += 1;
            let out = match &machine {
                Some(m) => {
                    let k = m.kctx();
                    if cur_pair != Some((mti.i, mti.j)) {
                        k.reset();
                        mti.run_setup(k);
                        post_setup = Some(k.snapshot());
                        cur_pair = Some((mti.i, mti.j));
                    } else {
                        k.restore(post_setup.as_ref().expect("snapshot set with cur_pair"));
                    }
                    mti.run_pair_pooled(m)
                }
                None => {
                    let k = Kctx::new_with_model(self.cfg.bugs.clone(), self.cfg.memory_model);
                    k.set_exec_mode(self.cfg.exec_mode);
                    mti.run_on(&k)
                }
            };
            if out.crashed() {
                self.stats.crashes_total += out.crashes.len() as u64;
                for crash in &out.crashes {
                    *self.crash_counts.entry(crash.title.clone()).or_default() += 1;
                }
                // A first sighting gets its schedule recorded: the MTI is
                // re-executed once in record mode (same controls, same
                // plan — deterministic, so the same crash) and the trace
                // travels with the report. The re-run consumes no RNG and
                // no test budget, so campaign schedules are unchanged.
                let any_new = out
                    .crashes
                    .iter()
                    .any(|c| !self.found.contains_key(&c.title));
                let recorded = if any_new {
                    Some(match &machine {
                        Some(m) => {
                            m.kctx()
                                .restore(post_setup.as_ref().expect("snapshot set with cur_pair"));
                            mti.run_pair_pooled_recorded(m)
                        }
                        None => {
                            let k =
                                Kctx::new_with_model(self.cfg.bugs.clone(), self.cfg.memory_model);
                            k.set_exec_mode(self.cfg.exec_mode);
                            mti.run_recorded_on(&k)
                        }
                    })
                } else {
                    None
                };
                for crash in &out.crashes {
                    if !self.found.contains_key(&crash.title) {
                        let rec = recorded.as_ref().expect("recorded on first sighting");
                        new_uniques += 1;
                        self.found.insert(
                            crash.title.clone(),
                            FoundBug {
                                title: crash.title.clone(),
                                barrier_location: mti.hint.barrier_location(),
                                reorder_type: match mti.hint.kind {
                                    HintKind::StoreBarrier => ReorderType::StoreStore,
                                    HintKind::LoadBarrier => ReorderType::LoadLoad,
                                },
                                tests_to_find: self.stats.mtis_run,
                                hint_rank: this_rank,
                                pair: mti.pair(),
                                sti: Arc::clone(&mti.sti),
                                pair_indices: (mti.i, mti.j),
                                trace: rec.trace.clone(),
                                digest_fnv: fnv1a64(rec.digest.as_bytes()),
                            },
                        );
                    }
                }
            }
        }
        if let Some(m) = machine {
            // Hand the profile buffers back to the engine's spare pool so
            // the next step's `take_profile` reuses them, then shelve the
            // machine (checkin resets it to boot state).
            for t in traces {
                m.kctx().engine.recycle_profile_events(t.events);
            }
            self.pool.checkin(m);
        }
        // Liveness accounting: a step that yielded no MTIs cannot make
        // progress against an MTI budget.
        if self.stats.mtis_run == mtis_before {
            self.stats.barren_stis += 1;
        } else {
            self.stats.barren_stis = 0;
        }
        new_uniques
    }

    /// Runs iterations until `max_tests` MTIs have executed, `target`
    /// unique crashes were found, or [`STALL_LIMIT`] consecutive STIs
    /// produced no MTIs (a hint-free workload would otherwise spin forever
    /// without `mtis_run` ever advancing); a stall is surfaced as
    /// [`FuzzStats::stalled`].
    pub fn run_until(&mut self, max_tests: u64, target: usize) {
        while self.stats.mtis_run < max_tests && self.found.len() < target {
            self.step();
            if self.stats.barren_stis >= STALL_LIMIT {
                self.stats.stalled = true;
                break;
            }
        }
    }

    /// Picks the next STI: a corpus mutation or a fresh generation, each
    /// decision from its own deterministic draw.
    fn next_sti(&mut self) -> Sti {
        match corpus_pick(&mut self.rng_pick, self.corpus.len(), self.cfg.mutate_ratio) {
            Some(idx) => {
                let base = self.corpus[idx].clone();
                self.gen.mutate(&base)
            }
            None => self.gen.generate(),
        }
    }

    /// Unique crashes found so far, keyed by title.
    pub fn found(&self) -> &BTreeMap<String, FoundBug> {
        &self.found
    }

    /// Campaign statistics.
    pub fn stats(&self) -> &FuzzStats {
        &self.stats
    }

    /// Machine-restore observability: incremental-vs-fallback counts summed
    /// over this fuzzer's shelved machines (all of them, between steps).
    /// Excluded from determinism comparisons and checkpoints — like wall
    /// times, these measure *how* the campaign ran, not what it found.
    pub fn restore_counters(&self) -> RestoreCounters {
        self.pool.restore_counters()
    }

    /// Corpus size.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// The corpus — coverage-earning STIs plus imports — oldest first.
    pub fn corpus(&self) -> &[Sti] {
        &self.corpus
    }

    /// Appends foreign corpus entries (cross-shard broadcast) that are not
    /// already present, preserving their order; returns how many were new.
    /// Imports do not touch coverage — they only widen the mutation pool.
    pub fn import_corpus(&mut self, entries: &[Sti]) -> usize {
        let mut imported = 0;
        for e in entries {
            if !self.corpus_set.contains(e) {
                self.corpus_set.insert(e.clone());
                self.corpus.push(e.clone());
                imported += 1;
            }
        }
        imported
    }

    /// Machines booted over the fuzzer's lifetime when machine reuse is on
    /// (0 until the first step). A fresh-boot campaign would instead boot
    /// once per STI profile plus once per MTI.
    pub fn machine_boots(&self) -> u64 {
        self.pool.boots()
    }

    /// Covered instrumentation sites, sorted (for deterministic cross-shard
    /// coverage union).
    pub fn coverage_iids(&self) -> Vec<Iid> {
        let mut v: Vec<Iid> = self.coverage.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Crash occurrences per title (before dedup), oldest-title first.
    pub fn crash_counts(&self) -> &BTreeMap<String, u64> {
        &self.crash_counts
    }

    /// Captures the fuzzer's complete resumable state.
    pub fn checkpoint(&self) -> FuzzerCheckpoint {
        FuzzerCheckpoint {
            gen_state: self.gen.rng_state(),
            rng_pick: self.rng_pick,
            corpus: self.corpus.clone(),
            coverage: self.coverage_iids(),
            found: self.found.values().cloned().collect(),
            crash_counts: self.crash_counts.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Rebuilds a fuzzer mid-campaign from a checkpoint. The resumed
    /// fuzzer's future output is byte-identical to the snapshotted one's:
    /// every deterministic input (RNG streams, corpus order, coverage set,
    /// found map) is restored; the machine pool — reset to boot state
    /// between steps by construction — is rebuilt lazily.
    pub fn from_checkpoint(cfg: FuzzConfig, ck: FuzzerCheckpoint) -> Fuzzer {
        let mut stats = ck.stats;
        stats.coverage = ck.coverage.len();
        Fuzzer {
            cfg,
            gen: StiGen::from_rng_state(ck.gen_state),
            corpus_set: ck.corpus.iter().cloned().collect(),
            corpus: ck.corpus,
            coverage: ck.coverage.into_iter().collect(),
            found: ck.found.into_iter().map(|b| (b.title.clone(), b)).collect(),
            crash_counts: ck.crash_counts,
            stats,
            rng_pick: ck.rng_pick,
            pool: MachinePool::new(),
        }
    }
}

/// Resumable snapshot of a [`Fuzzer`]'s complete deterministic state.
///
/// Everything that influences future campaign output is captured: the STI
/// generator's RNG, the corpus-pick stream, the corpus itself (order
/// matters — the pick stream indexes it), the coverage set, the found-bug
/// map (schedule traces included) and the statistics. The machine pool is
/// deliberately *not* captured: pooled machines are reset to boot state
/// between steps, so a resumed fuzzer rebooting its pool lazily produces
/// byte-identical output — only [`Fuzzer::machine_boots`], a throughput
/// counter, differs. Likewise [`FuzzConfig::reuse_machines`] and
/// [`FuzzConfig::exec_mode`] are perf knobs, not state: a checkpoint taken
/// under one executor resumes correctly under the other.
#[derive(Clone, Debug)]
pub struct FuzzerCheckpoint {
    /// [`crate::sti::StiGen`] RNG state.
    pub gen_state: [u64; 4],
    /// Corpus-pick scramble state.
    pub rng_pick: u64,
    /// Corpus entries, oldest first.
    pub corpus: Vec<Sti>,
    /// Covered instrumentation sites, sorted.
    pub coverage: Vec<Iid>,
    /// Unique crashes found, in title order.
    pub found: Vec<FoundBug>,
    /// Crash occurrences per title (before dedup).
    pub crash_counts: BTreeMap<String, u64>,
    /// Statistics snapshot.
    pub stats: FuzzStats,
}

/// Convenience: a fresh machine with the given switches (re-exported for
/// benches that need raw access).
pub fn boot_kernel(bugs: BugSwitches) -> std::sync::Arc<Kctx> {
    Kctx::new(bugs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelsim::BugId;

    #[test]
    fn fuzzer_is_deterministic() {
        let run = |seed| {
            let mut f = Fuzzer::new(FuzzConfig {
                seed,
                ..FuzzConfig::default()
            });
            for _ in 0..5 {
                f.step();
            }
            (
                f.stats().mtis_run,
                f.found().keys().cloned().collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn fuzzer_finds_bugs_on_buggy_kernel() {
        let mut f = Fuzzer::new(FuzzConfig {
            seed: 1,
            ..FuzzConfig::default()
        });
        f.run_until(3000, 3);
        assert!(
            !f.found().is_empty(),
            "the all-bugs kernel must yield crashes within the budget: {:?}",
            f.stats()
        );
        for bug in f.found().values() {
            assert!(bug.tests_to_find <= f.stats().mtis_run);
            assert!(!bug.barrier_location.is_empty());
        }
    }

    #[test]
    fn fuzzer_finds_nothing_on_fixed_kernel() {
        let mut f = Fuzzer::new(FuzzConfig {
            seed: 1,
            bugs: BugSwitches::none(),
            ..FuzzConfig::default()
        });
        for _ in 0..40 {
            f.step();
        }
        assert!(
            f.found().is_empty(),
            "no false positives on the patched kernel: {:?}",
            f.found().keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn coverage_grows_and_gates_corpus() {
        let mut f = Fuzzer::new(FuzzConfig {
            seed: 9,
            ..FuzzConfig::default()
        });
        f.step();
        let c1 = f.stats().coverage;
        assert!(c1 > 0);
        for _ in 0..10 {
            f.step();
        }
        assert!(f.stats().coverage >= c1);
        assert!(f.corpus_len() >= 1);
    }

    /// Pins the corpus-pick stream. The pick scramble is part of the
    /// campaign-schedule contract (like the `DetRng` golden tests): if this
    /// fails, every seeded campaign silently changed shape.
    #[test]
    fn golden_corpus_pick_stream() {
        let run = |seed: u64| {
            let mut sm = seed;
            let mut state = PICK_INIT ^ splitmix64(&mut sm);
            (0..8)
                .map(|_| corpus_pick(&mut state, 4, 0.5))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(0),
            vec![Some(0), Some(2), None, None, None, Some(2), Some(0), None]
        );
        assert_eq!(
            run(7),
            vec![None, None, None, Some(2), None, Some(2), Some(0), Some(2)]
        );
    }

    /// The two scheduler decisions must come from independent draws: the
    /// stream position after each call is the same (two draws) whether the
    /// call mutated or generated, and conditioning on the mutate outcome
    /// must not bias which corpus index is reachable.
    #[test]
    fn corpus_pick_decisions_are_decorrelated() {
        let mut state = PICK_INIT;
        let mut hits = [0u32; 5];
        let mut mutates = 0u32;
        for _ in 0..10_000 {
            if let Some(idx) = corpus_pick(&mut state, 5, 0.5) {
                hits[idx] += 1;
                mutates += 1;
            }
        }
        assert!(
            (4_500..=5_500).contains(&mutates),
            "ratio 0.5 gave {mutates}/10000 mutations"
        );
        for (i, &h) in hits.iter().enumerate() {
            let expect = mutates / 5;
            assert!(
                h >= expect * 8 / 10 && h <= expect * 12 / 10,
                "index {i} picked {h} times (expected ~{expect}): \
                 the pick is biased by the toss draw"
            );
        }
        // The fixed stride: the state advances exactly twice per call.
        let mut a = PICK_INIT ^ 1;
        let mut b = PICK_INIT ^ 1;
        corpus_pick(&mut a, 0, 1.0); // forced generate (empty corpus)
        corpus_pick(&mut b, 9, 1.0); // forced mutate
        assert_eq!(a, b, "decision outcome must not shift the stream");
    }

    /// A workload whose STIs never yield MTIs (here: a zero hint budget)
    /// must not hang `run_until`; the stall is surfaced in the stats.
    #[test]
    fn run_until_stalls_instead_of_spinning_on_hint_free_workload() {
        let mut f = Fuzzer::new(FuzzConfig {
            seed: 3,
            max_hints_per_pair: 0,
            ..FuzzConfig::default()
        });
        f.run_until(1_000, 1);
        let s = f.stats();
        assert_eq!(s.mtis_run, 0, "no hints, no MTIs");
        assert!(s.stalled, "the stall must be surfaced");
        assert_eq!(
            s.stis_run, STALL_LIMIT,
            "bounded by consecutive barren STIs"
        );
        assert_eq!(s.barren_stis, STALL_LIMIT);
    }

    #[test]
    fn productive_runs_never_report_a_stall() {
        let mut f = Fuzzer::new(FuzzConfig {
            seed: 1,
            ..FuzzConfig::default()
        });
        f.run_until(300, usize::MAX);
        assert!(!f.stats().stalled);
        assert!(f.stats().mtis_run >= 300);
    }

    #[test]
    fn corpus_import_dedupes_and_appends() {
        let mut f = Fuzzer::new(FuzzConfig::default());
        for _ in 0..5 {
            f.step();
        }
        let own: Vec<Sti> = f.corpus().to_vec();
        assert_eq!(f.import_corpus(&own), 0, "own entries are duplicates");
        // A shape generation cannot produce (templates emit ≥3 calls and
        // mutation only perturbs them), so it is certainly not in the corpus.
        let foreign = Sti {
            calls: vec![Syscall::WqPost; 8],
        };
        assert_eq!(f.import_corpus(std::slice::from_ref(&foreign)), 1);
        assert_eq!(f.corpus().last(), Some(&foreign));
        assert_eq!(f.import_corpus(std::slice::from_ref(&foreign)), 0);
    }

    /// A fuzzer resumed from a mid-campaign checkpoint must continue the
    /// exact run the snapshot interrupted: identical stats, coverage,
    /// corpus, crash counts and found set after the same further steps.
    #[test]
    fn checkpoint_resume_continues_byte_identically() {
        let cfg = FuzzConfig {
            seed: 11,
            ..FuzzConfig::default()
        };
        let mut a = Fuzzer::new(cfg.clone());
        for _ in 0..6 {
            a.step();
        }
        let mut b = Fuzzer::from_checkpoint(cfg, a.checkpoint());
        for _ in 0..6 {
            a.step();
            b.step();
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.coverage_iids(), b.coverage_iids());
        assert_eq!(a.corpus(), b.corpus());
        assert_eq!(a.crash_counts(), b.crash_counts());
        let keys = |f: &Fuzzer| f.found().keys().cloned().collect::<Vec<_>>();
        assert_eq!(keys(&a), keys(&b));
        for (ka, kb) in a.found().values().zip(b.found().values()) {
            assert_eq!(ka.digest_fnv, kb.digest_fnv);
            assert_eq!(ka.tests_to_find, kb.tests_to_find);
            assert_eq!(ka.trace.to_text(), kb.trace.to_text());
        }
    }

    #[test]
    fn hint_order_names_roundtrip() {
        for order in [
            HintOrder::MaxReorderFirst,
            HintOrder::MinReorderFirst,
            HintOrder::Shuffled,
        ] {
            assert_eq!(HintOrder::parse(order.name()), Ok(order));
        }
        assert!(HintOrder::parse("sideways").is_err());
    }

    #[test]
    fn campaign_finds_a_specific_seeded_bug() {
        // A focused campaign on the TLS kernel build finds Figure 7's bug
        // and diagnoses a store barrier.
        let mut f = Fuzzer::new(FuzzConfig {
            seed: 4,
            bugs: BugSwitches::only([BugId::TlsSkProt]),
            ..FuzzConfig::default()
        });
        f.run_until(4000, 1);
        let bug = f
            .found()
            .get(BugId::TlsSkProt.expected_title())
            .expect("Figure 7 bug found");
        assert_eq!(bug.reorder_type, ReorderType::StoreStore);
        assert!(bug.barrier_location.contains("smp_wmb"));
    }
}
