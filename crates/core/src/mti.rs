//! Multi-threaded inputs: construction and execution (§4.4).
//!
//! An MTI is an STI plus an annotation: which two syscalls run concurrently
//! and under which scheduling hint. Executing an MTI is the paper's Figure
//! 5 choreography:
//!
//! - **Store barrier test** (Figure 5a): the reorderer starts first with
//!   its hinted stores delayed; the breakpoint fires *after* the scheduling
//!   point (the store past the hypothetical barrier has committed, the
//!   delayed ones have not); the other CPU runs and is observed by the
//!   oracles; the reorderer then finishes.
//! - **Load barrier test** (Figure 5b): the reorderer starts first and
//!   breaks *before* the scheduling point; the other CPU runs to completion
//!   (constructing the store history); the reorderer resumes with its
//!   hinted loads versioned, reading old values within its window.

use std::sync::Arc;

use kernelsim::{
    execute, run_one, BugSwitches, ExecRequest, Kctx, PooledMachine, ReplayReport, RunOutcome,
    Syscall,
};
use ksched::{BreakWhen, Breakpoint, SchedulePlan};
use oemu::{ScheduleTrace, Tid};

use crate::hints::{HintKind, PairSide, SchedHint};
use crate::sti::Sti;

/// A multi-threaded input: an STI with a concurrency annotation.
///
/// The STI is shared (`Arc`): [`build_mtis`] emits one MTI per hint, and
/// every hint of an STI annotates the *same* syscall sequence — cloning it
/// per hint would deep-copy the call vector `pairs × hints` times.
#[derive(Clone, Debug)]
pub struct Mti {
    /// The underlying syscall sequence.
    pub sti: Arc<Sti>,
    /// Index of the first syscall of the concurrent pair.
    pub i: usize,
    /// Index of the second syscall of the concurrent pair (`i < j`).
    pub j: usize,
    /// The scheduling hint to enforce.
    pub hint: SchedHint,
}

impl Mti {
    /// The two concurrent syscalls.
    pub fn pair(&self) -> (Syscall, Syscall) {
        (self.sti.calls[self.i], self.sti.calls[self.j])
    }

    /// Executes the MTI on a freshly booted kernel with the given bug
    /// switches, returning the run outcome.
    ///
    /// Setup (every syscall before `j` except `i`) runs single-threaded
    /// first — establishing the kernel state the pair raced in — then the
    /// pair runs concurrently under the hint.
    pub fn run(&self, bugs: BugSwitches) -> RunOutcome {
        let k = Kctx::new(bugs);
        self.run_on(&k)
    }

    /// Executes the MTI on an existing machine (used by the throughput
    /// benchmark to measure pure execution cost).
    pub fn run_on(&self, k: &Arc<Kctx>) -> RunOutcome {
        self.run_setup(k);
        self.install_controls(k);
        let (a, b) = self.pair();
        execute(k, ExecRequest::live(self.plan(), a, b)).outcome
    }

    /// Runs the single-threaded setup prefix (every syscall before `j`
    /// except `i`) on `k`. All MTIs of one pair `(i, j)` share this prefix,
    /// so a pooled executor runs it once per pair and snapshots the machine
    /// instead of re-running it per hint.
    pub fn run_setup(&self, k: &Arc<Kctx>) {
        run_setup_prefix(k, &self.sti.calls, self.i, self.j);
    }

    /// Installs the Table 2 reordering instructions for the reorderer.
    /// Public so the model checker can reuse exactly the fuzzer's control
    /// installation for its enumerated schedules.
    pub fn install_controls(&self, k: &Kctx) {
        let reorder_tid = self.reorder_tid();
        for acc in &self.hint.reorder {
            match self.hint.kind {
                HintKind::StoreBarrier => k.engine.delay_store_at(reorder_tid, acc.iid),
                HintKind::LoadBarrier => k.engine.read_old_value_at(reorder_tid, acc.iid),
            }
        }
    }

    fn reorder_tid(&self) -> Tid {
        match self.hint.reorderer {
            PairSide::First => Tid(0),
            PairSide::Second => Tid(1),
        }
    }

    /// The schedule enforcing the hint: the reorderer always starts first;
    /// the breakpoint semantics depend on the test type (Figure 5a vs 5b).
    /// Public so record-mode executors can hand the same plan to a
    /// [`kernelsim::ExecRequest::recorded`] request.
    pub fn plan(&self) -> SchedulePlan {
        SchedulePlan {
            first: self.reorder_tid(),
            breakpoint: Some(Breakpoint {
                iid: self.hint.sched.iid,
                when: match self.hint.kind {
                    HintKind::StoreBarrier => BreakWhen::After,
                    HintKind::LoadBarrier => BreakWhen::Before,
                },
                hit: self.hint.sched_hit,
            }),
        }
    }

    /// Runs the concurrent pair on a pooled machine's persistent CPU
    /// workers. The caller has already established the setup state (via
    /// [`Mti::run_setup`] or a snapshot restore); this installs the
    /// reordering controls and runs the Figure 5 choreography.
    pub fn run_pair_pooled(&self, m: &PooledMachine) -> RunOutcome {
        self.install_controls(m.kctx());
        let (a, b) = self.pair();
        m.execute(ExecRequest::live(self.plan(), a, b)).outcome
    }

    /// [`Mti::run`] in record mode: a freshly booted machine executes the
    /// MTI while the engine and scheduler log every ordering decision; the
    /// returned [`RecordedRun`] carries the trace and the machine's
    /// post-run state digest so a later replay can be checked against both.
    pub fn run_recorded(&self, bugs: BugSwitches) -> RecordedRun {
        let k = Kctx::new(bugs);
        self.run_recorded_on(&k)
    }

    /// [`Mti::run_recorded`] on an existing machine (the fuzzer's
    /// fresh-boot path boots its own so it can select the executor first).
    pub fn run_recorded_on(&self, k: &Arc<Kctx>) -> RecordedRun {
        self.run_setup(k);
        self.install_controls(k);
        let (a, b) = self.pair();
        let (outcome, trace) = execute(k, ExecRequest::recorded(self.plan(), a, b)).into_recorded();
        RecordedRun {
            digest: k.state_digest(),
            outcome,
            trace,
        }
    }

    /// [`Mti::run_pair_pooled`] in record mode. As with the plain variant,
    /// the caller has already established the setup state.
    pub fn run_pair_pooled_recorded(&self, m: &PooledMachine) -> RecordedRun {
        self.install_controls(m.kctx());
        let (a, b) = self.pair();
        let (outcome, trace) = m
            .execute(ExecRequest::recorded(self.plan(), a, b))
            .into_recorded();
        RecordedRun {
            digest: m.kctx().state_digest(),
            outcome,
            trace,
        }
    }

    /// Replays a recorded trace of this MTI on a freshly booted machine —
    /// no Table 2 controls, no breakpoint plan; the trace alone dictates
    /// delays, versioned reads, and the interleaving. The machine boots
    /// under the trace's recorded memory model, so a trace captured on a
    /// PSO or Arm machine replays against the same semantics. Returns the
    /// outcome, the post-run digest, and the replay fidelity report.
    pub fn run_replayed(&self, bugs: BugSwitches, trace: &ScheduleTrace) -> ReplayedRun {
        let k = Kctx::new_with_model(bugs, trace.model);
        self.run_setup(&k);
        let (a, b) = self.pair();
        let (outcome, report) = execute(&k, ExecRequest::replay(trace, a, b)).into_replayed();
        ReplayedRun {
            digest: k.state_digest(),
            outcome,
            report,
        }
    }
}

/// Outcome of a record-mode MTI execution ([`Mti::run_recorded`]).
#[derive(Clone, Debug)]
pub struct RecordedRun {
    /// The run outcome — identical to what the un-recorded run returns.
    pub outcome: RunOutcome,
    /// The schedule trace: enough to reproduce the run without controls.
    pub trace: ScheduleTrace,
    /// [`Kctx::state_digest`] after the run (controls cleared, buffers
    /// drained): the replay fidelity target.
    pub digest: String,
}

/// Outcome of a replay-mode MTI execution ([`Mti::run_replayed`]).
#[derive(Clone, Debug)]
pub struct ReplayedRun {
    /// The replayed run's outcome.
    pub outcome: RunOutcome,
    /// Post-run state digest, to compare against the recording's.
    pub digest: String,
    /// Whether the replay followed the trace to the end without divergence.
    pub report: ReplayReport,
}

/// Runs the single-threaded setup prefix of a concurrent pair `(i, j)`:
/// every call before `j` except `i`, on CPU 0. This is *the* definition of
/// the kernel state a pair races in — [`Mti::run_setup`], trace replay
/// ([`crate::repro::replay_trace`]) and trace minimization
/// (`ozz::triage`) all establish it through this one function.
pub fn run_setup_prefix(k: &Arc<Kctx>, calls: &[Syscall], i: usize, j: usize) {
    for (idx, &call) in calls.iter().enumerate().take(j) {
        if idx != i {
            run_one(k, Tid(0), call);
        }
    }
}

/// Builds the MTIs for one STI: every ordered pair `(i, j)` annotated with
/// each of its scheduling hints, hint-priority order preserved within a
/// pair.
pub fn build_mtis(
    sti: &Sti,
    hints_for_pair: impl Fn(usize, usize) -> Vec<SchedHint>,
    max_hints_per_pair: usize,
) -> Vec<Mti> {
    let shared = Arc::new(sti.clone());
    let mut mtis = Vec::new();
    for i in 0..sti.calls.len() {
        for j in (i + 1)..sti.calls.len() {
            for hint in hints_for_pair(i, j).into_iter().take(max_hints_per_pair) {
                mtis.push(Mti {
                    sti: Arc::clone(&shared),
                    i,
                    j,
                    hint,
                });
            }
        }
    }
    mtis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_sti;
    use kernelsim::BugId;

    #[test]
    fn figure1_bug_found_via_mti_pipeline() {
        // End-to-end: profile the STI, compute hints for the (post, read)
        // pair, and run MTIs in priority order — the Figure 1 bug must be
        // found by one of the top hints.
        let bugs = BugSwitches::only([BugId::KnownWatchQueuePost]);
        let sti = Sti {
            calls: vec![Syscall::WqPost, Syscall::PipeRead],
        };
        let traces = profile_sti(&sti, bugs.clone());
        let hints = crate::hints::calc_hints(&traces[0].events, &traces[1].events);
        assert!(!hints.is_empty(), "the pair shares the ring buffer");
        let mut found = None;
        for (rank, hint) in hints.iter().enumerate() {
            let mti = Mti {
                sti: Arc::new(sti.clone()),
                i: 0,
                j: 1,
                hint: hint.clone(),
            };
            let out = mti.run(bugs.clone());
            if out.crashed() {
                found = Some((rank, out.title().unwrap().to_string()));
                break;
            }
        }
        let (rank, title) = found.expect("the hint list must expose Figure 1");
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
        );
        assert!(rank < 4, "an early (large-reorder) hint triggers it");
    }

    #[test]
    fn fixed_kernel_survives_every_hint() {
        let bugs = BugSwitches::none();
        let sti = Sti {
            calls: vec![Syscall::WqPost, Syscall::PipeRead],
        };
        let traces = profile_sti(&sti, bugs.clone());
        let hints = crate::hints::calc_hints(&traces[0].events, &traces[1].events);
        for hint in hints {
            let mti = Mti {
                sti: Arc::new(sti.clone()),
                i: 0,
                j: 1,
                hint,
            };
            let out = mti.run(bugs.clone());
            assert!(!out.crashed(), "patched kernel survives: {out:?}");
        }
    }

    #[test]
    fn build_mtis_respects_cap_and_order() {
        let sti = Sti {
            calls: vec![Syscall::WqPost, Syscall::PipeRead, Syscall::WqPost],
        };
        let bugs = BugSwitches::all();
        let traces = profile_sti(&sti, bugs);
        let mtis = build_mtis(
            &sti,
            |i, j| crate::hints::calc_hints(&traces[i].events, &traces[j].events),
            2,
        );
        // 3 pairs, at most 2 hints each.
        assert!(mtis.len() <= 6);
        assert!(mtis.iter().all(|m| m.i < m.j));
    }

    #[test]
    fn setup_runs_everything_before_j_except_i() {
        // Pair (TlsInit, SetSockOpt) with a preceding unrelated call: the
        // preceding call must run as setup so the machine state matches.
        let bugs = BugSwitches::none();
        let sti = Sti {
            calls: vec![
                Syscall::VmciQpCreate,
                Syscall::TlsInit { fd: 0 },
                Syscall::SetSockOpt { fd: 0 },
            ],
        };
        let traces = profile_sti(&sti, bugs.clone());
        let hints = crate::hints::calc_hints(&traces[1].events, &traces[2].events);
        let mti = Mti {
            sti: Arc::new(sti.clone()),
            i: 1,
            j: 2,
            hint: hints.into_iter().next().expect("tls pair shares state"),
        };
        let out = mti.run(bugs);
        assert!(!out.crashed());
        assert_eq!(out.ret_a, 0, "tls_init ran in the pair, not in setup");
    }
}
