//! Triage: trace minimization, input shrinking, and patch bisection.
//!
//! A raw [`FoundBug`] carries a full [`ScheduleTrace`] — every
//! instrumented engine event of the crashing execution, often dozens of
//! lines — plus the whole generated STI. A human debugging the kernel
//! ordering bug needs the opposite: the *minimal* reproducer and the
//! *culprit patch*. This module closes that gap in three steps:
//!
//! 1. **Trace minimization** ([`Triager::minimize`]): project the full
//!    trace to its *decisions* (delayed stores, versioned loads — the
//!    sparse form, [`ScheduleTrace::sparsify`]) and delta-debug that
//!    decision set plus the switch script down to a fixed point, accepting
//!    a candidate only if its replay still produces the same oracle
//!    [`Verdict`] without divergence. Candidates replay on one pooled
//!    machine ([`crate::repro::replay_trace_on`]), so a minimization costs
//!    replays, not boots.
//! 2. **Input shrinking** (same entry point): drop the STI calls after the
//!    pair, then delta-debug the setup prefix under the minimized trace,
//!    remapping the pair indices.
//! 3. **Patch bisection** ([`Triager::bisect`]): log₂-probe the buggy
//!    build's enabled [`BugSwitches`] with the minimized reproducer to
//!    name the culprit switch — the one whose revert is necessary and
//!    sufficient for the symptom. Verification failure (or an
//!    already-fixed build) reports [`BisectOutcome::Inconclusive`], never
//!    a wrong patch.
//!
//! The shrinking loop is deterministic (no RNG) and runs to a fixed
//! point, so minimization is idempotent and byte-reproducible — pinned by
//! `tests/triage_minimal.rs` across both executors and all three memory
//! models, and by golden minimized traces under `tests/golden/`.

use std::time::Instant;

use kernelsim::{BugId, BugSwitches, MachinePool, RunOutcome, Syscall};
use kutil::fnv1a64;
use oemu::{MemoryModel, ScheduleTrace};

use crate::fuzzer::{FoundBug, FuzzConfig, Fuzzer};
use crate::hints::calc_hints;
use crate::mti::build_mtis;
use crate::profile_sti_on;
use crate::report::TriageReport;
use crate::repro::replay_trace_on;
use crate::sti::{directed_bug_sti, Sti};

/// What counts as "the bug reproduced" on a run outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A crash report with exactly this title.
    Title(String),
    /// The wrong-value symptom of the two silent bugs (Table 4's `✓*` tls
    /// row and the filemap data-loss row): the pair's second syscall
    /// returned 0 where the correct execution returns nonzero.
    RetBZero,
}

impl Verdict {
    /// The verdict for `bug`'s expected symptom.
    pub fn for_bug(bug: BugId) -> Verdict {
        match bug {
            BugId::KnownTlsErr | BugId::ExtFilemap => Verdict::RetBZero,
            _ => Verdict::Title(bug.expected_title().to_string()),
        }
    }

    /// Whether the verdict holds on `out`.
    pub fn holds(&self, out: &RunOutcome) -> bool {
        match self {
            Verdict::Title(t) => out.crashes.iter().any(|c| &c.title == t),
            Verdict::RetBZero => out.ret_b == 0,
        }
    }

    /// Human-readable form for reports.
    pub fn describe(&self) -> String {
        match self {
            Verdict::Title(t) => format!("crash '{t}'"),
            Verdict::RetBZero => "wrong value (cpu1 returned 0)".to_string(),
        }
    }
}

/// A recorded reproducer: everything triage needs to re-run the bug.
#[derive(Clone, Debug)]
pub struct Reproducer {
    /// The targeted bug, when the recording was directed at one.
    pub bug: Option<BugId>,
    /// The syscall sequence.
    pub sti: Sti,
    /// Index of the pair's first syscall.
    pub i: usize,
    /// Index of the pair's second syscall (`i < j`).
    pub j: usize,
    /// The recorded schedule (full or already sparse).
    pub trace: ScheduleTrace,
    /// The symptom a candidate replay must re-produce.
    pub verdict: Verdict,
    /// Re-apply the §6.2 per-CPU migration override on every candidate
    /// machine (the sbitmap row is unreproducible without it).
    pub migration_override: bool,
}

impl Reproducer {
    /// A reproducer from a fuzzer-found bug's embedded trace.
    pub fn from_found(bug: &FoundBug) -> Reproducer {
        Reproducer {
            bug: None,
            sti: (*bug.sti).clone(),
            i: bug.pair_indices.0,
            j: bug.pair_indices.1,
            trace: bug.trace.clone(),
            verdict: Verdict::Title(bug.title.clone()),
            migration_override: false,
        }
    }
}

/// Records a crashing schedule for `bug` under the ambient
/// ([`MemoryModel::from_env`]) memory model. See
/// [`record_reproducer_under`].
pub fn record_reproducer(bug: BugId) -> Option<Reproducer> {
    record_reproducer_under(bug, MemoryModel::from_env())
}

/// Records a crashing schedule for `bug` on its directed STI under
/// `model`: the §6.2 pair-×-hint sweep in record mode (first recorded run
/// showing the symptom wins), falling back to a short seeded campaign for
/// bugs whose trigger needs a longer setup prefix. Returns `None` when
/// neither finds the symptom within the budget.
pub fn record_reproducer_under(bug: BugId, model: MemoryModel) -> Option<Reproducer> {
    let sti = directed_bug_sti(bug);
    let verdict = Verdict::for_bug(bug);
    let migration = bug == BugId::KnownSbitmap;
    let bugs = BugSwitches::only([bug]);
    let pool = MachinePool::new();
    let m = pool.checkout_with_model(&bugs, model);
    if migration {
        m.kctx().set_migration_override(true);
    }
    let traces = profile_sti_on(m.kctx(), &sti);
    let mtis = build_mtis(
        &sti,
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        32,
    );
    for mti in mtis {
        let k = m.kctx();
        k.reset();
        if migration {
            k.set_migration_override(true);
        }
        mti.run_setup(k);
        let rec = mti.run_pair_pooled_recorded(&m);
        // The wrong-value verdict only means something on the pair that
        // ends in the value-returning call (oracle-matrix semantics).
        let hit = match (&verdict, bug) {
            (Verdict::RetBZero, BugId::KnownTlsErr) => {
                mti.pair().1 == (Syscall::TlsPollErr { fd: 0 }) && rec.outcome.ret_b == 0
            }
            _ => verdict.holds(&rec.outcome),
        };
        if hit {
            return Some(Reproducer {
                bug: Some(bug),
                sti: (*mti.sti).clone(),
                i: mti.i,
                j: mti.j,
                trace: rec.trace,
                verdict,
                migration_override: migration,
            });
        }
    }
    // Fallback: a focused seeded campaign on the single-bug build. The
    // FoundBug embeds its own recorded trace. Run until *this* bug's title
    // shows up — other titles can surface first (under the Arm model even
    // switched-off code can crash, since `READ_ONCE` is not a load barrier
    // there), and stopping at the first find would miss the target.
    let mut f = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs,
        memory_model: model,
        ..FuzzConfig::default()
    });
    loop {
        let before = f.found().len();
        f.run_until(30_000, before + 1);
        if f.found().contains_key(bug.expected_title()) {
            break;
        }
        let stats = f.stats();
        if stats.mtis_run >= 30_000 || stats.stalled || f.found().len() == before {
            return None;
        }
    }
    let fb = f.found().get(bug.expected_title())?;
    let mut r = Reproducer::from_found(fb);
    r.bug = Some(bug);
    Some(r)
}

/// Cost and size accounting of one minimization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinimizeStats {
    /// Replayable events (steps + switches) of the original trace.
    pub events_before: usize,
    /// Replayable events of the minimized trace.
    pub events_after: usize,
    /// STI length before shrinking.
    pub calls_before: usize,
    /// STI length after shrinking.
    pub calls_after: usize,
    /// Candidate replays spent (sparsification check, trace ddmin, STI
    /// ddmin, final verification).
    pub replays: u64,
    /// Wall time of the whole minimization.
    pub wall_ms: f64,
}

impl MinimizeStats {
    /// Event reduction as a percentage of the original size.
    pub fn reduction_pct(&self) -> f64 {
        if self.events_before == 0 {
            return 0.0;
        }
        100.0 * (self.events_before - self.events_after) as f64 / self.events_before as f64
    }
}

/// A minimized reproducer: the fixed-point trace and shrunk input.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The minimal sparse schedule.
    pub trace: ScheduleTrace,
    /// The shrunk syscall sequence.
    pub sti: Sti,
    /// Pair index of the first syscall in the shrunk STI.
    pub i: usize,
    /// Pair index of the second syscall in the shrunk STI.
    pub j: usize,
    /// FNV-1a fingerprint of the minimized replay's post-run state digest.
    pub digest_fnv: u64,
    /// Size and cost accounting.
    pub stats: MinimizeStats,
}

/// Outcome of a patch bisection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BisectOutcome {
    /// The one enabled switch whose revert is necessary and sufficient
    /// for the symptom, verified on both sides.
    Culprit(BugId),
    /// No verified culprit — an already-fixed build, a reproducer that no
    /// longer fires, or a failed necessity/sufficiency check. Never a
    /// guess: the message says which check failed.
    Inconclusive(String),
}

/// The full triage result: minimization, bisection, and the rendered
/// report.
#[derive(Clone, Debug)]
pub struct TriageResult {
    /// The minimized reproducer.
    pub minimized: Minimized,
    /// The named culprit switch (or why there is none).
    pub bisect: BisectOutcome,
    /// Builds probed during bisection.
    pub bisect_probes: u64,
    /// The human-readable report.
    pub report: TriageReport,
}

/// The triage driver, configured with the buggy build under scrutiny.
#[derive(Clone, Debug)]
pub struct Triager {
    /// The build the bug was observed on — the candidate set bisection
    /// searches, and the build minimization replays against.
    pub bugs: BugSwitches,
}

impl Triager {
    /// A triager for the given buggy build.
    pub fn new(bugs: BugSwitches) -> Triager {
        Triager { bugs }
    }

    /// Minimizes `r`'s trace and STI to a fixed point (see the module
    /// docs). Deterministic and idempotent: minimizing the minimized
    /// reproducer returns it byte-identically.
    pub fn minimize(&self, r: &Reproducer) -> Minimized {
        let start = Instant::now();
        let pool = MachinePool::new();
        let m = pool.checkout_with_model(&self.bugs, r.trace.model);
        let mut replays = 0u64;
        let events_before = r.trace.event_count();
        let calls_before = r.sti.calls.len();

        // Candidate acceptance: a non-diverged replay with the verdict.
        let mut check = |sti: &Sti, i: usize, j: usize, t: &ScheduleTrace| -> Option<String> {
            replays += 1;
            let k = m.kctx();
            k.reset();
            if r.migration_override {
                k.set_migration_override(true);
            }
            let rep = replay_trace_on(&m, sti, i, j, t);
            (!rep.diverged && r.verdict.holds(&rep.outcome)).then_some(rep.digest)
        };

        // 1. Sparse projection. It must reproduce (the decisions plus the
        // switch script are exactly what produced the recording); if the
        // replay contract is ever broken, degrade to the original trace
        // rather than emitting a non-reproducing "minimization".
        let sparse = if r.trace.sparse {
            r.trace.clone()
        } else {
            r.trace.sparsify()
        };
        if check(&r.sti, r.i, r.j, &sparse).is_none() {
            let digest = check(&r.sti, r.i, r.j, &r.trace)
                .expect("the recorded trace must replay its own verdict");
            return Minimized {
                trace: r.trace.clone(),
                sti: r.sti.clone(),
                i: r.i,
                j: r.j,
                digest_fnv: fnv1a64(digest.as_bytes()),
                stats: MinimizeStats {
                    events_before,
                    events_after: events_before,
                    calls_before,
                    calls_after: calls_before,
                    replays,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
            };
        }

        // 2. Delta-debug decisions and switches to a joint fixed point.
        let mut trace = sparse;
        loop {
            let keep = shrink(trace.steps.len(), |keep| {
                check(&r.sti, r.i, r.j, &trace.with_step_subset(keep)).is_some()
            });
            let after_steps = trace.with_step_subset(&keep);
            let keep = shrink(after_steps.switches.len(), |keep| {
                check(&r.sti, r.i, r.j, &after_steps.with_switch_subset(keep)).is_some()
            });
            let next = after_steps.with_switch_subset(&keep);
            let done = next == trace;
            trace = next;
            if done {
                break;
            }
        }

        // 3. Shrink the input: calls after the pair never execute under
        // replay — drop them outright — then delta-debug the setup prefix
        // under the minimized trace, remapping the pair indices.
        let base: Vec<Syscall> = r.sti.calls[..=r.j].to_vec();
        let setup: Vec<usize> = (0..r.j).filter(|&x| x != r.i).collect();
        let keep = shrink(setup.len(), |keep| {
            let (sti, i, j) = rebuild_sti(&base, &setup, keep, r.i, r.j);
            check(&sti, i, j, &trace).is_some()
        });
        let (sti, i, j) = rebuild_sti(&base, &setup, &keep, r.i, r.j);

        // 4. Final verification — also yields the minimized state digest.
        let digest = check(&sti, i, j, &trace)
            .expect("every accepted candidate reproduced; the fixed point must too");
        Minimized {
            stats: MinimizeStats {
                events_before,
                events_after: trace.event_count(),
                calls_before,
                calls_after: sti.calls.len(),
                replays,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            },
            trace,
            sti,
            i,
            j,
            digest_fnv: fnv1a64(digest.as_bytes()),
        }
    }

    /// Bisects the buggy build's enabled switches with the minimized
    /// reproducer: log₂ halving on "does the symptom still fire with only
    /// this half enabled", with two-sided verification — a culprit must
    /// reproduce alone (sufficiency) and the symptom must die once it is
    /// reverted (necessity). When the symptom survives the revert, the
    /// search repeats on the remainder to *enumerate* every sufficient
    /// switch; more than one means the patch is genuinely ambiguous and the
    /// outcome is an [`BisectOutcome::Inconclusive`] naming them all —
    /// never a guess. Returns the probe count alongside the outcome.
    pub fn bisect(&self, r: &Reproducer, min: &Minimized) -> (BisectOutcome, u64) {
        let enabled: Vec<BugId> = self.bugs.iter().collect();
        let pool = MachinePool::new();
        let mut probes = 0u64;
        let mut fires = |set: &BugSwitches| -> bool {
            probes += 1;
            let m = pool.checkout_with_model(set, min.trace.model);
            let k = m.kctx();
            k.reset();
            if r.migration_override {
                k.set_migration_override(true);
            }
            let rep = replay_trace_on(&m, &min.sti, min.i, min.j, &min.trace);
            !rep.diverged && r.verdict.holds(&rep.outcome)
        };
        if enabled.is_empty() {
            return (
                BisectOutcome::Inconclusive(
                    "the build has no bug switches enabled (already fixed)".into(),
                ),
                probes,
            );
        }
        // Enumerate every individually-sufficient switch: bisect the
        // still-suspect set, verify the find reproduces alone, revert it,
        // and repeat until the symptom dies. A single survivor passed both
        // checks — sufficiency in the loop, necessity by the loop's exit
        // condition (the symptom died once it was reverted).
        let mut remaining = enabled.clone();
        let mut culprits: Vec<BugId> = Vec::new();
        loop {
            let still_fires = fires(&BugSwitches::only(remaining.iter().copied()));
            if !still_fires {
                break;
            }
            if remaining.is_empty() {
                // The symptom fires with every switch reverted: under the
                // Arm model some fixes are insufficient by design
                // (`READ_ONCE` is not a load barrier there), and no patch
                // can be named for it.
                return (
                    BisectOutcome::Inconclusive(
                        "the symptom fires even with every switch reverted — \
                         not attributable to any patch under this memory model"
                            .into(),
                    ),
                    probes,
                );
            }
            let mut suspects = remaining.clone();
            while suspects.len() > 1 {
                let half = &suspects[..suspects.len() / 2];
                if fires(&BugSwitches::only(half.iter().copied())) {
                    suspects = half.to_vec();
                } else {
                    suspects = suspects[suspects.len() / 2..].to_vec();
                }
            }
            let culprit = suspects[0];
            if !fires(&BugSwitches::only([culprit])) {
                return (
                    BisectOutcome::Inconclusive(format!(
                        "sufficiency check failed: {culprit} alone does not reproduce"
                    )),
                    probes,
                );
            }
            culprits.push(culprit);
            remaining.retain(|&b| b != culprit);
        }
        match culprits.len() {
            0 => (
                BisectOutcome::Inconclusive(
                    "the minimized reproducer does not fire on this build (already fixed?)".into(),
                ),
                probes,
            ),
            1 => (BisectOutcome::Culprit(culprits[0]), probes),
            _ => {
                let names: Vec<String> = culprits.iter().map(|c| c.to_string()).collect();
                (
                    BisectOutcome::Inconclusive(format!(
                        "the symptom has {} independent causes on this build: {} — \
                         each reproduces it alone",
                        culprits.len(),
                        names.join(", ")
                    )),
                    probes,
                )
            }
        }
    }

    /// The full pipeline: minimize, bisect, render the report.
    pub fn triage(&self, r: &Reproducer) -> TriageResult {
        let minimized = self.minimize(r);
        let (bisect, bisect_probes) = self.bisect(r, &minimized);
        let report = TriageReport::new(r, &minimized, &bisect);
        TriageResult {
            minimized,
            bisect,
            bisect_probes,
            report,
        }
    }

    /// [`Triager::triage`] for a fuzzer-found bug's embedded trace.
    pub fn triage_found(&self, bug: &FoundBug) -> TriageResult {
        self.triage(&Reproducer::from_found(bug))
    }
}

/// Deterministic delta debugging over index set `0..len`: repeatedly try
/// removing contiguous chunks (size `len`, then halving down to 1, chunks
/// aligned on the current kept sequence, left to right), keeping any
/// removal `reproduces` accepts, until a whole size-ladder pass removes
/// nothing. The result is a fixed point of the procedure itself — running
/// it again returns the same indices — which is what makes minimization
/// idempotent.
fn shrink(len: usize, mut reproduces: impl FnMut(&[usize]) -> bool) -> Vec<usize> {
    let mut kept: Vec<usize> = (0..len).collect();
    loop {
        let before = kept.len();
        let mut size = kept.len();
        while size >= 1 {
            let mut start = 0;
            while start < kept.len() {
                let end = (start + size).min(kept.len());
                let cand: Vec<usize> = kept[..start]
                    .iter()
                    .chain(kept[end..].iter())
                    .copied()
                    .collect();
                if reproduces(&cand) {
                    // The next chunk slid into `start`; retry in place.
                    kept = cand;
                } else {
                    start = end;
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }
        if kept.len() == before {
            return kept;
        }
    }
}

/// Rebuilds a candidate STI from the pair's base calls (`..=j`), the
/// setup-index table, and the kept positions into it; returns the calls in
/// original order with the pair indices remapped.
fn rebuild_sti(
    base: &[Syscall],
    setup: &[usize],
    keep: &[usize],
    i: usize,
    j: usize,
) -> (Sti, usize, usize) {
    let mut indices: Vec<usize> = keep.iter().map(|&p| setup[p]).collect();
    indices.push(i);
    indices.push(j);
    indices.sort_unstable();
    let calls: Vec<Syscall> = indices.iter().map(|&x| base[x]).collect();
    let ni = indices.iter().position(|&x| x == i).expect("i kept");
    let nj = indices.iter().position(|&x| x == j).expect("j kept");
    (Sti { calls }, ni, nj)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `shrink` on a predicate that needs a known subset must return
    /// exactly that subset, deterministically.
    #[test]
    fn shrink_finds_the_needed_subset() {
        let needed = [2usize, 5, 6];
        let pred = |keep: &[usize]| needed.iter().all(|n| keep.contains(n));
        let got = shrink(8, pred);
        assert_eq!(got, needed.to_vec());
        // Idempotent: shrinking a minimal set changes nothing (indices are
        // positions into the kept sequence on re-entry).
        let again = shrink(3, |keep| keep.len() == 3 || keep.len() >= 3);
        assert_eq!(again, vec![0, 1, 2]);
    }

    #[test]
    fn shrink_handles_trivial_predicates() {
        assert_eq!(shrink(5, |_| true), Vec::<usize>::new());
        assert_eq!(shrink(5, |k| k.len() == 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(shrink(0, |_| true), Vec::<usize>::new());
    }

    #[test]
    fn rebuild_sti_remaps_pair_indices() {
        use Syscall::*;
        let base = [VmciQpCreate, WqPost, PipeRead, VmciQpAttach];
        // pair (1, 3); setup = [0, 2]; keep only setup position 1 (= call 2)
        let (sti, i, j) = rebuild_sti(&base, &[0, 2], &[1], 1, 3);
        assert_eq!(sti.calls, vec![WqPost, PipeRead, VmciQpAttach]);
        assert_eq!((i, j), (0, 2));
        let (sti, i, j) = rebuild_sti(&base, &[0, 2], &[], 1, 3);
        assert_eq!(sti.calls, vec![WqPost, VmciQpAttach]);
        assert_eq!((i, j), (0, 1));
    }

    /// End-to-end on the Figure 1 bug: record, minimize, check the trace
    /// shrank and still reproduces, and the bisector names the bug.
    #[test]
    fn figure1_minimizes_and_bisects() {
        let bug = BugId::KnownWatchQueuePost;
        let r = record_reproducer(bug).expect("figure 1 records");
        let triager = Triager::new(BugSwitches::only([bug]));
        let min = triager.minimize(&r);
        assert!(min.trace.sparse);
        assert!(min.stats.events_after <= min.stats.events_before);
        assert!(
            min.stats.events_after < min.stats.events_before,
            "a full recording always has non-decision steps to drop"
        );
        // The minimized trace replays the verdict on a fresh boot too.
        let rep = crate::repro::replay_trace(
            BugSwitches::only([bug]),
            &min.sti,
            min.i,
            min.j,
            &min.trace,
        );
        assert!(!rep.diverged);
        assert!(r.verdict.holds(&rep.outcome));
        let (outcome, _) = triager.bisect(&r, &min);
        assert_eq!(outcome, BisectOutcome::Culprit(bug));
    }

    #[test]
    fn bisect_on_fixed_build_is_inconclusive() {
        let bug = BugId::KnownWatchQueuePost;
        let r = record_reproducer(bug).expect("figure 1 records");
        let buggy = Triager::new(BugSwitches::only([bug]));
        let min = buggy.minimize(&r);
        let fixed = Triager::new(BugSwitches::none());
        let (outcome, _) = fixed.bisect(&r, &min);
        assert!(matches!(outcome, BisectOutcome::Inconclusive(_)));
    }
}
