//! Campaign checkpoint/resume serialization.
//!
//! A fleet-scale campaign must survive being killed: the coordinator
//! serializes the *complete* deterministic state of the campaign — every
//! stream's fuzzer (RNG streams, corpus, coverage, found bugs with their
//! embedded schedule traces), the cross-shard broadcast protocol state,
//! and the crash database — at a quiescent round boundary, and a later
//! process resumes the campaign to byte-identical output
//! (`tests/checkpoint_resume.rs`).
//!
//! The format is the dependency-free [`kutil::codec`] text form (magic
//! `ozz-campaign`). Two classes of settings are deliberately *not*
//! serialized: [`kernelsim::ExecMode`] and machine reuse are throughput
//! knobs with byte-identical output (pinned by `tests/exec_equivalence.rs`
//! and `tests/pool_fidelity.rs`), so a checkpoint taken under one executor
//! resumes under another; and the worker count of the work-stealing
//! dispatcher is pure timing. Everything semantic — seed, budget, shard
//! count, bug switches, memory model, hint configuration — is embedded,
//! and on resume the checkpoint's values win over whatever the resuming
//! builder was configured with.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

use kernelsim::{BugSwitches, MemoryModel, ReorderType, Syscall};
use kutil::codec::{ParseError, TextReader, TextWriter};
use oemu::{Iid, ScheduleTrace};

use crate::crashdb::CrashDb;
use crate::fuzzer::{FoundBug, FuzzStats, FuzzerCheckpoint, HintOrder};
use crate::sti::Sti;

const MAGIC: &str = "ozz-campaign";
const VERSION: u32 = 1;

/// Resumable snapshot of an entire campaign at a round boundary.
#[derive(Clone, Debug)]
pub struct CampaignCheckpoint {
    /// Campaign seed.
    pub seed: u64,
    /// Number of logical shard streams.
    pub shards: usize,
    /// Total MTI budget across all shards.
    pub budget: u64,
    /// MTIs per stream per scheduling round.
    pub epoch_mtis: u64,
    /// Rounds completed when the snapshot was taken.
    pub round: u64,
    /// Kernel build (bug switches) of the campaign's machines.
    pub bugs: BugSwitches,
    /// Crash titles the campaign stops on once all are found.
    pub expected: Vec<String>,
    /// Memory model of the campaign's machines.
    pub memory_model: MemoryModel,
    /// Per-pair hint cap.
    pub max_hints_per_pair: usize,
    /// Mutate-vs-generate ratio (serialized bit-exactly).
    pub mutate_ratio: f64,
    /// Hint ordering strategy.
    pub hint_order: HintOrder,
    /// Campaign-level deduplicated found set, in title order.
    pub found: Vec<FoundBug>,
    /// The crash database, triage counts included.
    pub crashdb: CrashDb,
    /// Per-stream resumable state, shard order.
    pub streams: Vec<StreamCheckpoint>,
}

/// Resumable state of one shard stream.
#[derive(Clone, Debug)]
pub struct StreamCheckpoint {
    /// Rounds this stream has completed.
    pub epoch: u64,
    /// Corpus length already broadcast to other shards.
    pub corpus_mark: usize,
    /// The stream exhausted its slice, found everything, or stalled.
    pub done: bool,
    /// Bug titles already reported to the coordinator.
    pub bugs_sent: BTreeSet<String>,
    /// Crash-occurrence counts already reported to the coordinator.
    pub counts_sent: BTreeMap<String, u64>,
    /// The stream's fuzzer state.
    pub fuzzer: FuzzerCheckpoint,
}

impl CampaignCheckpoint {
    /// Serializes the checkpoint to the `ozz-campaign` text form.
    pub fn to_text(&self) -> String {
        let mut w = TextWriter::new(MAGIC, VERSION);
        w.hex_field("seed", self.seed);
        w.field("shards", self.shards);
        w.field("budget", self.budget);
        w.field("epoch_mtis", self.epoch_mtis);
        w.field("round", self.round);
        w.field("bugs", self.bugs.key());
        w.field("expected", self.expected.len());
        for title in &self.expected {
            w.str_field("title", title);
        }
        w.field("model", self.memory_model.name());
        w.field("max_hints", self.max_hints_per_pair);
        w.hex_field("mutate_ratio", self.mutate_ratio.to_bits());
        w.field("hint_order", self.hint_order.name());
        w.field("found", self.found.len());
        for bug in &self.found {
            write_bug(&mut w, bug);
        }
        w.blob("crashdb", &self.crashdb.to_text());
        w.field("streams", self.streams.len());
        for st in &self.streams {
            w.begin("stream");
            w.field("epoch", st.epoch);
            w.field("corpus_mark", st.corpus_mark);
            w.field("done", st.done);
            w.field("bugs_sent", st.bugs_sent.len());
            for title in &st.bugs_sent {
                w.str_field("title", title);
            }
            w.field("counts_sent", st.counts_sent.len());
            for (title, n) in &st.counts_sent {
                w.field("tally", format_args!("{} {n}", kutil::codec::escape(title)));
            }
            write_fuzzer(&mut w, &st.fuzzer);
            w.end();
        }
        w.finish()
    }

    /// Parses the [`CampaignCheckpoint::to_text`] form.
    pub fn parse(text: &str) -> Result<CampaignCheckpoint, ParseError> {
        let (mut r, version) = TextReader::new(text, MAGIC)?;
        if version != VERSION {
            return Err(format!("unsupported {MAGIC} version {version}"));
        }
        let seed = r.hex_field("seed")?;
        let shards = r.parse_field("shards")?;
        let budget = r.parse_field("budget")?;
        let epoch_mtis = r.parse_field("epoch_mtis")?;
        let round = r.parse_field("round")?;
        let bugs = BugSwitches::parse_key(r.field("bugs")?)?;
        let n_expected: usize = r.parse_field("expected")?;
        let mut expected = Vec::with_capacity(n_expected);
        for _ in 0..n_expected {
            expected.push(r.str_field("title")?);
        }
        let model = r.field("model")?;
        let memory_model =
            MemoryModel::parse(model).ok_or_else(|| format!("bad memory model {model:?}"))?;
        let max_hints_per_pair = r.parse_field("max_hints")?;
        let mutate_ratio = f64::from_bits(r.hex_field("mutate_ratio")?);
        let hint_order = HintOrder::parse(r.field("hint_order")?)?;
        let n_found: usize = r.parse_field("found")?;
        let mut found = Vec::with_capacity(n_found);
        for _ in 0..n_found {
            found.push(read_bug(&mut r)?);
        }
        let crashdb = CrashDb::parse(&r.blob("crashdb")?)?;
        let n_streams: usize = r.parse_field("streams")?;
        let mut streams = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            r.begin("stream")?;
            let epoch = r.parse_field("epoch")?;
            let corpus_mark = r.parse_field("corpus_mark")?;
            let done = r.parse_field("done")?;
            let n_sent: usize = r.parse_field("bugs_sent")?;
            let mut bugs_sent = BTreeSet::new();
            for _ in 0..n_sent {
                bugs_sent.insert(r.str_field("title")?);
            }
            let counts_sent = read_tally_map(&mut r, "counts_sent")?;
            let fuzzer = read_fuzzer(&mut r)?;
            r.end()?;
            streams.push(StreamCheckpoint {
                epoch,
                corpus_mark,
                done,
                bugs_sent,
                counts_sent,
                fuzzer,
            });
        }
        r.expect_eof()?;
        Ok(CampaignCheckpoint {
            seed,
            shards,
            budget,
            epoch_mtis,
            round,
            bugs,
            expected,
            memory_model,
            max_hints_per_pair,
            mutate_ratio,
            hint_order,
            found,
            crashdb,
            streams,
        })
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename), so
    /// a campaign killed mid-write never leaves a truncated checkpoint.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.to_text())
    }

    /// Loads a checkpoint from `path`.
    pub fn load(path: &Path) -> io::Result<CampaignCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        CampaignCheckpoint::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Writes `text` to `path` via a sibling temp file and an atomic rename.
pub(crate) fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

fn write_sti(w: &mut TextWriter, sti: &Sti) {
    let tokens: Vec<String> = sti.calls.iter().map(|c| c.to_token()).collect();
    w.field("sti", tokens.join(" "));
}

fn read_sti(r: &mut TextReader<'_>) -> Result<Sti, ParseError> {
    let line = r.field("sti")?;
    let mut calls = Vec::new();
    for tok in line.split_whitespace() {
        calls.push(Syscall::from_token(tok)?);
    }
    Ok(Sti { calls })
}

fn write_bug(w: &mut TextWriter, bug: &FoundBug) {
    w.begin("bug");
    w.str_field("title", &bug.title);
    w.str_field("barrier", &bug.barrier_location);
    w.field("reorder", bug.reorder_type);
    w.field("tests", bug.tests_to_find);
    w.field("rank", bug.hint_rank);
    w.field("i", bug.pair_indices.0);
    w.field("j", bug.pair_indices.1);
    w.hex_field("digest", bug.digest_fnv);
    write_sti(w, &bug.sti);
    w.blob("trace", &bug.trace.to_text());
    w.end();
}

fn read_bug(r: &mut TextReader<'_>) -> Result<FoundBug, ParseError> {
    r.begin("bug")?;
    let title = r.str_field("title")?;
    let barrier_location = r.str_field("barrier")?;
    let reorder = r.field("reorder")?;
    let reorder_type =
        ReorderType::parse(reorder).ok_or_else(|| format!("bad reorder type {reorder:?}"))?;
    let tests_to_find = r.parse_field("tests")?;
    let hint_rank = r.parse_field("rank")?;
    let i: usize = r.parse_field("i")?;
    let j: usize = r.parse_field("j")?;
    let digest_fnv = r.hex_field("digest")?;
    let sti = read_sti(r)?;
    let trace = ScheduleTrace::parse(&r.blob("trace")?)?;
    r.end()?;
    if j >= sti.calls.len() || i >= j {
        return Err(format!("bug pair indices ({i}, {j}) out of range"));
    }
    let pair = (sti.calls[i], sti.calls[j]);
    Ok(FoundBug {
        title,
        barrier_location,
        reorder_type,
        tests_to_find,
        hint_rank,
        pair,
        sti: std::sync::Arc::new(sti),
        pair_indices: (i, j),
        trace,
        digest_fnv,
    })
}

fn write_fuzzer(w: &mut TextWriter, ck: &FuzzerCheckpoint) {
    w.begin("fuzzer");
    for (idx, word) in ck.gen_state.iter().enumerate() {
        w.hex_field(&format!("gen{idx}"), *word);
    }
    w.hex_field("pick", ck.rng_pick);
    w.field("corpus", ck.corpus.len());
    for sti in &ck.corpus {
        write_sti(w, sti);
    }
    w.field("coverage", ck.coverage.len());
    for iid in &ck.coverage {
        w.field("iid", iid.to_token());
    }
    w.field("found", ck.found.len());
    for bug in &ck.found {
        write_bug(w, bug);
    }
    w.field("crashes", ck.crash_counts.len());
    for (title, n) in &ck.crash_counts {
        w.field("tally", format_args!("{} {n}", kutil::codec::escape(title)));
    }
    w.field("stis_run", ck.stats.stis_run);
    w.field("mtis_run", ck.stats.mtis_run);
    w.field("crashes_total", ck.stats.crashes_total);
    w.field("stat_coverage", ck.stats.coverage);
    w.field("barren_stis", ck.stats.barren_stis);
    w.field("stalled", ck.stats.stalled);
    w.end();
}

fn read_fuzzer(r: &mut TextReader<'_>) -> Result<FuzzerCheckpoint, ParseError> {
    r.begin("fuzzer")?;
    let mut gen_state = [0u64; 4];
    for (idx, word) in gen_state.iter_mut().enumerate() {
        *word = r.hex_field(&format!("gen{idx}"))?;
    }
    let rng_pick = r.hex_field("pick")?;
    let n_corpus: usize = r.parse_field("corpus")?;
    let mut corpus = Vec::with_capacity(n_corpus);
    for _ in 0..n_corpus {
        corpus.push(read_sti(r)?);
    }
    let n_cov: usize = r.parse_field("coverage")?;
    let mut coverage = Vec::with_capacity(n_cov);
    for _ in 0..n_cov {
        coverage.push(Iid::from_token(r.field("iid")?)?);
    }
    let n_found: usize = r.parse_field("found")?;
    let mut found = Vec::with_capacity(n_found);
    for _ in 0..n_found {
        found.push(read_bug(r)?);
    }
    let crash_counts = read_tally_map(r, "crashes")?;
    let stats = FuzzStats {
        stis_run: r.parse_field("stis_run")?,
        mtis_run: r.parse_field("mtis_run")?,
        crashes_total: r.parse_field("crashes_total")?,
        coverage: r.parse_field("stat_coverage")?,
        barren_stis: r.parse_field("barren_stis")?,
        stalled: r.parse_field("stalled")?,
    };
    r.end()?;
    Ok(FuzzerCheckpoint {
        gen_state,
        rng_pick,
        corpus,
        coverage,
        found,
        crash_counts,
        stats,
    })
}

fn read_tally_map(r: &mut TextReader<'_>, key: &str) -> Result<BTreeMap<String, u64>, ParseError> {
    let count: usize = r.parse_field(key)?;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let line = r.field("tally")?;
        let (name, n) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("bad tally line {line:?}"))?;
        let n: u64 = n.parse().map_err(|_| format!("bad tally count {line:?}"))?;
        let name =
            kutil::codec::unescape(name).ok_or_else(|| format!("bad tally name {line:?}"))?;
        map.insert(name, n);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzer::{FuzzConfig, Fuzzer};

    /// Builds a checkpoint from a real mid-campaign fuzzer so it carries a
    /// populated corpus, coverage set, found bugs with traces, and crash
    /// counts.
    fn sample() -> CampaignCheckpoint {
        let mut f = Fuzzer::new(FuzzConfig {
            seed: 5,
            ..FuzzConfig::default()
        });
        f.run_until(400, usize::MAX);
        let fck = f.checkpoint();
        let mut crashdb = CrashDb::new();
        for bug in &fck.found {
            crashdb.record(bug, 0, 1, "tso", "all", 2);
        }
        CampaignCheckpoint {
            seed: 5,
            shards: 2,
            budget: 800,
            epoch_mtis: 64,
            round: 3,
            bugs: BugSwitches::all(),
            expected: vec!["some crash title".into()],
            memory_model: MemoryModel::Tso,
            max_hints_per_pair: 8,
            mutate_ratio: 0.5,
            hint_order: HintOrder::MaxReorderFirst,
            found: fck.found.clone(),
            crashdb,
            streams: vec![
                StreamCheckpoint {
                    epoch: 3,
                    corpus_mark: fck.corpus.len(),
                    done: false,
                    bugs_sent: fck.found.iter().map(|b| b.title.clone()).collect(),
                    counts_sent: fck.crash_counts.clone(),
                    fuzzer: fck.clone(),
                },
                StreamCheckpoint {
                    epoch: 3,
                    corpus_mark: 0,
                    done: true,
                    bugs_sent: BTreeSet::new(),
                    counts_sent: BTreeMap::new(),
                    fuzzer: fck,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let ck = sample();
        let text = ck.to_text();
        let back = CampaignCheckpoint::parse(&text).expect("parse");
        // Re-rendering the parsed checkpoint must reproduce the bytes —
        // the property the resume tests lean on.
        assert_eq!(back.to_text(), text);
        assert_eq!(back.seed, ck.seed);
        assert_eq!(back.streams.len(), 2);
        assert_eq!(back.found.len(), ck.found.len());
        for (a, b) in back.found.iter().zip(&ck.found) {
            assert_eq!(a.title, b.title);
            assert_eq!(a.digest_fnv, b.digest_fnv);
            assert_eq!(a.pair, b.pair);
            assert_eq!(a.trace.to_text(), b.trace.to_text());
        }
        assert_eq!(back.crashdb, ck.crashdb);
        assert_eq!(back.streams[0].fuzzer.stats, ck.streams[0].fuzzer.stats);
        assert_eq!(back.streams[0].fuzzer.corpus, ck.streams[0].fuzzer.corpus);
        assert_eq!(
            back.streams[0].fuzzer.coverage,
            ck.streams[0].fuzzer.coverage
        );
    }

    #[test]
    fn mutate_ratio_roundtrips_bit_exactly() {
        let mut ck = sample();
        ck.mutate_ratio = 0.1 + 0.2; // not representable, bit pattern matters
        let back = CampaignCheckpoint::parse(&ck.to_text()).unwrap();
        assert_eq!(back.mutate_ratio.to_bits(), ck.mutate_ratio.to_bits());
    }

    #[test]
    fn save_load_roundtrips_and_is_atomic() {
        let ck = sample();
        let dir = std::env::temp_dir().join(format!("ozz-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        ck.save(&path).expect("save");
        assert!(!path.with_file_name("campaign.ckpt.tmp").exists());
        let back = CampaignCheckpoint::load(&path).expect("load");
        assert_eq!(back.to_text(), ck.to_text());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let text = sample().to_text();
        let cut = &text[..text.len() / 2];
        assert!(CampaignCheckpoint::parse(cut).is_err());
    }

    #[test]
    fn resumed_fuzzer_from_parsed_checkpoint_continues_identically() {
        // The full serialize → parse → resume path must be as good as the
        // in-memory resume pinned in fuzzer.rs.
        let cfg = FuzzConfig {
            seed: 5,
            ..FuzzConfig::default()
        };
        let mut a = Fuzzer::new(cfg.clone());
        a.run_until(300, usize::MAX);
        let mut w = TextWriter::new("test-fuzzer", 1);
        write_fuzzer(&mut w, &a.checkpoint());
        let text = w.finish();
        let (mut r, _) = TextReader::new(&text, "test-fuzzer").unwrap();
        let parsed = read_fuzzer(&mut r).expect("parse");
        let mut b = Fuzzer::from_checkpoint(cfg, parsed);
        for _ in 0..5 {
            a.step();
            b.step();
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.coverage_iids(), b.coverage_iids());
        assert_eq!(a.corpus(), b.corpus());
        assert_eq!(a.crash_counts(), b.crash_counts());
    }
}
