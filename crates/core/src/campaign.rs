//! The unified campaign API: one builder for serial, sharded, and
//! resumed fuzzing campaigns.
//!
//! [`CampaignBuilder`] is the single entry point for running OZZ at any
//! scale — serial, sharded, and resumed campaigns all construct through
//! one fluent surface (the old free-function shims are gone):
//!
//! ```
//! use ozz::campaign::CampaignBuilder;
//!
//! let report = CampaignBuilder::new(2024)
//!     .shards(4)   // logical shard streams (affects the merged result)
//!     .workers(2)  // OS threads (pure throughput knob; never affects it)
//!     .budget(2000)
//!     .run();
//! assert_eq!(report.stats.mtis_run, report.shard_stats.iter().map(|s| s.fuzz.mtis_run).sum());
//! ```
//!
//! The merged [`CampaignReport`] is a pure function of the campaign's
//! semantic settings (seed, shards, budget, epoch length, target);
//! `workers`, the executor mode, and machine reuse only change how fast it
//! is produced. See [`crate::parallel`] for the work-stealing engine that
//! guarantees this.
//!
//! # Checkpoint and resume
//!
//! A campaign with [`CampaignBuilder::checkpoint_to`] set serializes its
//! full state — every shard's corpus, coverage, RNG streams, statistics,
//! and crash diagnoses with embedded schedule traces — at each round
//! boundary. A killed campaign resumes from the file and produces output
//! byte-identical to an uninterrupted run, even in a fresh process on
//! another machine:
//!
//! ```no_run
//! use ozz::campaign::CampaignBuilder;
//!
//! let report = CampaignBuilder::resume_from("campaign.ckpt")
//!     .expect("readable checkpoint")
//!     .run();
//! ```
//!
//! [`CampaignBuilder::halt_after_epochs`] simulates the kill
//! deterministically: the campaign stops at a round boundary with the
//! checkpoint attached to the report, which is how the resume-equivalence
//! tests drive a mid-budget kill without process signals.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use kernelsim::{BugSwitches, ExecMode};
use oemu::{Iid, MemoryModel};

use crate::checkpoint::CampaignCheckpoint;
use crate::crashdb::CrashDb;
use crate::fuzzer::{FoundBug, FuzzConfig, FuzzStats, HintOrder};
use crate::parallel::{run_engine, EngineConfig, DEFAULT_EPOCH_MTIS};

/// One shard's contribution to a campaign, with scheduling observability.
///
/// `fuzz` is deterministic (a pure function of the campaign's semantic
/// settings); `steals`, `batch_micros`, and the restore counters depend on
/// thread timing and machine-pool history and are excluded from
/// determinism-pinned comparisons.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// The shard id.
    pub shard: usize,
    /// The shard fuzzer's statistics (`stalled` set if the shard stalled).
    pub fuzz: FuzzStats,
    /// Rounds (epochs) this shard completed.
    pub epochs: u64,
    /// Batches run by a worker other than the shard's previous one.
    pub steals: u64,
    /// Wall time of each batch, in microseconds.
    pub batch_micros: Vec<u64>,
    /// Memory pre-images replayed by the shard's incremental machine
    /// restores (undo-journal work; see `EngineStats::restore_words_replayed`).
    pub restore_words_replayed: u64,
    /// Machine restores that fell back to the full `clone_from` path.
    /// Zero on the happy path — every reset rolls back incrementally.
    pub restore_full_fallbacks: u64,
    /// Whether the shard finished (slice exhausted, target found, or
    /// stalled) rather than being cut short by an early stop or halt.
    pub done: bool,
}

/// The merged outcome of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Unique crashes across all shards; first diagnosis in
    /// (round, shard) order wins a title.
    pub found: BTreeMap<String, FoundBug>,
    /// Per-shard statistics, indexed by shard id.
    pub shard_stats: Vec<ShardStats>,
    /// Aggregate statistics (sums, with union coverage).
    pub stats: FuzzStats,
    /// Union instruction coverage across all shards, sorted.
    pub coverage: Vec<Iid>,
    /// The campaign's crash database: every crash occurrence deduplicated
    /// by digest, with triage tallies.
    pub crashes: CrashDb,
    /// Rounds the campaign ran.
    pub rounds: u64,
    /// The final checkpoint, when the campaign halted mid-budget via
    /// [`CampaignBuilder::halt_after_epochs`].
    pub checkpoint: Option<CampaignCheckpoint>,
    /// Whether the campaign halted mid-budget (resume to continue).
    pub halted: bool,
}

/// Builder for a fuzzing campaign of any scale. See the [module
/// docs](self) for an overview.
#[derive(Clone, Debug)]
pub struct CampaignBuilder {
    cfg: FuzzConfig,
    shards: usize,
    workers: Option<usize>,
    budget: Option<u64>,
    epoch_mtis: u64,
    expected: Vec<String>,
    checkpoint_to: Option<PathBuf>,
    checkpoint_every: u64,
    halt_after: Option<u64>,
    resume: Option<CampaignCheckpoint>,
}

impl CampaignBuilder {
    /// A Table 3-style campaign on the all-bugs kernel: hunt every
    /// new-bug crash title until found or the MTI budget runs out.
    pub fn new(seed: u64) -> CampaignBuilder {
        CampaignBuilder {
            cfg: FuzzConfig {
                seed,
                bugs: BugSwitches::all(),
                ..FuzzConfig::default()
            },
            shards: 1,
            workers: None,
            budget: None,
            epoch_mtis: DEFAULT_EPOCH_MTIS,
            expected: kernelsim::BugId::NEW
                .iter()
                .map(|b| b.expected_title().to_string())
                .collect(),
            checkpoint_to: None,
            checkpoint_every: 1,
            halt_after: None,
            resume: None,
        }
    }

    /// Sets the total MTI budget, split across shards. Required unless
    /// resuming (a checkpoint carries its own budget).
    pub fn budget(mut self, budget: u64) -> CampaignBuilder {
        self.budget = Some(budget);
        self
    }

    /// Splits the campaign into `shards` logical streams with private
    /// fuzzers and cross-shard corpus broadcast. Part of the campaign's
    /// identity: changing it changes the merged result.
    pub fn shards(mut self, shards: usize) -> CampaignBuilder {
        assert!(shards > 0, "a campaign needs at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the OS worker-thread count (default: one per shard). A pure
    /// throughput knob — any value produces the same merged report.
    pub fn workers(mut self, workers: usize) -> CampaignBuilder {
        assert!(workers > 0, "a campaign needs at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Overrides the epoch length (MTIs per shard between rounds).
    pub fn epoch_mtis(mut self, epoch_mtis: u64) -> CampaignBuilder {
        assert!(epoch_mtis > 0, "an epoch must make progress");
        self.epoch_mtis = epoch_mtis;
        self
    }

    /// Overrides the kernel build and the crash titles the campaign
    /// stops on once all are found.
    pub fn target(mut self, bugs: BugSwitches, expected: Vec<String>) -> CampaignBuilder {
        self.cfg.bugs = bugs;
        self.expected = expected;
        self
    }

    /// Selects the memory model the campaign's kernels run under.
    pub fn memory_model(mut self, model: MemoryModel) -> CampaignBuilder {
        self.cfg.memory_model = model;
        self
    }

    /// Selects the executor backend (a perf knob; does not change the
    /// merged report).
    pub fn exec_mode(mut self, mode: ExecMode) -> CampaignBuilder {
        self.cfg.exec_mode = mode;
        self
    }

    /// Overrides the scheduling-hint exploration order.
    pub fn hint_order(mut self, order: HintOrder) -> CampaignBuilder {
        self.cfg.hint_order = order;
        self
    }

    /// Escape hatch: arbitrary [`FuzzConfig`] tuning (mutation ratio,
    /// hint caps, machine reuse, ...). `seed` and `bugs` set here are
    /// honored like any other field.
    pub fn tune(mut self, f: impl FnOnce(&mut FuzzConfig)) -> CampaignBuilder {
        f(&mut self.cfg);
        self
    }

    /// Writes the campaign state to `path` at round boundaries (see
    /// [`CampaignBuilder::checkpoint_every`]) and at campaign end, via an
    /// atomic tmp-file rename.
    pub fn checkpoint_to(mut self, path: impl AsRef<Path>) -> CampaignBuilder {
        self.checkpoint_to = Some(path.as_ref().to_path_buf());
        self
    }

    /// Checkpoints every `rounds` rounds (default 1: every round).
    pub fn checkpoint_every(mut self, rounds: u64) -> CampaignBuilder {
        assert!(rounds > 0, "checkpoint cadence must be nonzero");
        self.checkpoint_every = rounds;
        self
    }

    /// Deterministic simulated kill: stop at the first round boundary at
    /// or after `rounds` completed rounds (absolute, including rounds
    /// replayed from a resumed checkpoint), attaching the checkpoint to
    /// [`CampaignReport::checkpoint`]. A campaign that finishes earlier
    /// ignores the halt.
    pub fn halt_after_epochs(mut self, rounds: u64) -> CampaignBuilder {
        self.halt_after = Some(rounds);
        self
    }

    /// Resumes from an in-memory checkpoint. The checkpoint's semantic
    /// settings (seed, shards, budget, epoch length, kernel build,
    /// target, fuzzer tuning) override the builder's; perf knobs
    /// (`workers`, executor mode, machine reuse) stay builder-level.
    pub fn resume(mut self, ck: CampaignCheckpoint) -> CampaignBuilder {
        self.resume = Some(ck);
        self
    }

    /// [`CampaignBuilder::resume`] from a checkpoint file.
    pub fn resume_from(path: impl AsRef<Path>) -> std::io::Result<CampaignBuilder> {
        Ok(CampaignBuilder::new(0).resume(CampaignCheckpoint::load(path.as_ref())?))
    }

    /// Runs the campaign to completion (or to its halt point).
    ///
    /// # Panics
    ///
    /// If neither [`CampaignBuilder::budget`] nor a resume source was
    /// set — a campaign without a budget would never stop.
    pub fn run(self) -> CampaignReport {
        let budget = match (&self.resume, self.budget) {
            (Some(_), _) => 0, // the checkpoint's budget wins
            (None, Some(b)) => b,
            (None, None) => panic!("a campaign needs .budget(n) or a resume source"),
        };
        run_engine(EngineConfig {
            workers: self.workers.unwrap_or(self.shards),
            shards: self.shards,
            budget,
            epoch_mtis: self.epoch_mtis,
            expected: self.expected,
            checkpoint_to: self.checkpoint_to,
            checkpoint_every: self.checkpoint_every,
            halt_after: self.halt_after,
            resume: self.resume,
            cfg: self.cfg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelsim::BugId;

    #[test]
    fn builder_defaults_match_the_table3_campaign() {
        let b = CampaignBuilder::new(9);
        assert_eq!(b.shards, 1);
        assert_eq!(b.epoch_mtis, DEFAULT_EPOCH_MTIS);
        assert_eq!(b.expected.len(), BugId::NEW.len());
        assert_eq!(b.cfg.seed, 9);
    }

    #[test]
    #[should_panic(expected = "a campaign needs .budget(n) or a resume source")]
    fn run_without_budget_panics() {
        CampaignBuilder::new(1).run();
    }

    #[test]
    fn tune_reaches_the_fuzz_config() {
        let b = CampaignBuilder::new(1).tune(|cfg| cfg.mutate_ratio = 0.25);
        assert_eq!(b.cfg.mutate_ratio, 0.25);
    }

    #[test]
    fn targeted_campaign_stops_on_its_own_bug_set() {
        let bug = BugId::KnownWatchQueuePost;
        let r = CampaignBuilder::new(7)
            .budget(4000)
            .target(
                BugSwitches::only([bug]),
                vec![bug.expected_title().to_string()],
            )
            .run();
        assert!(r.found.contains_key(bug.expected_title()));
        assert!(!r.halted);
        assert!(r.rounds >= 1);
    }

    #[test]
    fn halt_attaches_a_resumable_checkpoint() {
        let full = CampaignBuilder::new(11).shards(2).budget(400).run();
        let halted = CampaignBuilder::new(11)
            .shards(2)
            .budget(400)
            .halt_after_epochs(1)
            .run();
        assert!(halted.halted);
        let ck = halted.checkpoint.expect("halt attaches the checkpoint");
        assert_eq!(ck.round, 1);
        let resumed = CampaignBuilder::new(0).resume(ck).run();
        assert!(!resumed.halted);
        assert_eq!(
            format!("{:#?}", full.found),
            format!("{:#?}", resumed.found),
            "kill/resume must be invisible in the diagnoses"
        );
        assert_eq!(full.stats, resumed.stats);
        assert_eq!(full.coverage, resumed.coverage);
        assert_eq!(full.crashes, resumed.crashes);
        assert_eq!(full.rounds, resumed.rounds);
    }

    #[test]
    fn campaign_report_carries_the_crash_database() {
        let r = CampaignBuilder::new(3).shards(2).budget(600).run();
        // Every diagnosed title also has a crash-database record, and the
        // database counts at least one sighting per diagnosis.
        for (title, bug) in &r.found {
            let rec = r
                .crashes
                .get(bug.digest_fnv)
                .unwrap_or_else(|| panic!("no crashdb record for {title}"));
            assert_eq!(&rec.title, title);
            assert!(rec.count >= 1);
        }
        assert_eq!(
            r.stats.crashes_total,
            r.crashes.records().map(|rec| rec.count).sum::<u64>(),
            "the database tallies every crash occurrence"
        );
    }
}
