//! OZZ: a fuzzer for kernel out-of-order concurrency bugs.
//!
//! This crate implements §4 of the paper on top of the [`oemu`] engine, the
//! [`ksched`] custom scheduler, and the [`kernelsim`] kernel substrate:
//!
//! - [`sti`]: single-threaded input generation from syscall templates with
//!   resource dependencies (§4.2);
//! - [`profile_sti`]: profiled STI execution producing the five-tuple
//!   access and three-tuple barrier records (§4.2);
//! - [`hints`]: scheduling-hint calculation — Algorithms 1 and 2, with the
//!   max-reorder-first search heuristic (§4.3);
//! - [`mti`]: multi-threaded input construction and the Figure 5
//!   hypothetical-barrier-test choreography (§4.4);
//! - [`fuzzer`]: the full fuzzing loop with KCov-style coverage, corpus
//!   management, and crash dedup (Figure 6);
//! - [`campaign`]: the unified campaign service — one builder for
//!   serial, sharded, and resumed campaigns;
//! - [`parallel`]: the deterministic work-stealing engine underneath it;
//! - [`checkpoint`]: full-state campaign checkpoints (kill/resume
//!   byte-identically, even across processes);
//! - [`crashdb`]: the digest-keyed crash database with triage queries;
//! - [`repro`]: the directed Table 4 reproduction methodology (§6.2);
//! - [`triage`]: trace minimization, input shrinking, and patch bisection
//!   over recorded reproducers.
//!
//! # Examples
//!
//! Find the Figure 1 watch_queue bug end-to-end:
//!
//! ```
//! use kernelsim::{BugId, BugSwitches};
//! use ozz::fuzzer::{FuzzConfig, Fuzzer};
//!
//! let mut fuzzer = Fuzzer::new(FuzzConfig {
//!     seed: 7,
//!     bugs: BugSwitches::only([BugId::KnownWatchQueuePost]),
//!     ..FuzzConfig::default()
//! });
//! fuzzer.run_until(2000, 1);
//! let bug = fuzzer
//!     .found()
//!     .get(BugId::KnownWatchQueuePost.expected_title())
//!     .expect("Figure 1 bug found");
//! // Figure 1 is missing *both* barriers; whichever hypothetical barrier
//! // test fired first names its side (smp_wmb in the writer or smp_rmb in
//! // the reader).
//! assert!(
//!     bug.barrier_location.contains("smp_wmb") || bug.barrier_location.contains("smp_rmb")
//! );
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod crashdb;
pub mod fuzzer;
pub mod hints;
pub mod mti;
pub mod parallel;
pub mod report;
pub mod repro;
pub mod sti;
pub mod triage;

use std::sync::Arc;

use kernelsim::{run_one, BugSwitches, Kctx, Syscall};
use oemu::{Tid, TraceEvent};

use sti::Sti;

/// The profiled trace of one syscall within an STI run.
#[derive(Clone, Debug)]
pub struct SyscallTrace {
    /// The syscall.
    pub call: Syscall,
    /// Its index in the STI.
    pub index: usize,
    /// Program-ordered access and barrier events (§4.2 five-/three-tuples).
    pub events: Vec<TraceEvent>,
}

/// Runs an STI single-threaded on a fresh kernel while profiling, returning
/// one trace per syscall (§4.2, step 1 of the workflow).
pub fn profile_sti(sti: &Sti, bugs: BugSwitches) -> Vec<SyscallTrace> {
    let k = Kctx::new(bugs);
    profile_sti_on(&k, sti)
}

/// [`profile_sti`] on an existing (possibly specially configured) machine.
pub fn profile_sti_on(k: &Arc<Kctx>, sti: &Sti) -> Vec<SyscallTrace> {
    k.engine.set_profiling(true);
    let traces = sti
        .calls
        .iter()
        .enumerate()
        .map(|(index, &call)| {
            run_one(k, Tid(0), call);
            let profile = k.engine.take_profile(Tid(0));
            SyscallTrace {
                call,
                index,
                events: profile.events,
            }
        })
        .collect();
    k.engine.set_profiling(false);
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelsim::BugSwitches;

    #[test]
    fn profile_splits_per_syscall() {
        let sti = Sti {
            calls: vec![Syscall::WqPost, Syscall::PipeRead],
        };
        let traces = profile_sti(&sti, BugSwitches::all());
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].call, Syscall::WqPost);
        assert!(!traces[0].events.is_empty(), "the writer has accesses");
        assert!(!traces[1].events.is_empty(), "the reader has accesses");
        // Timestamps are globally ordered across the two traces.
        let last0 = traces[0].events.last().unwrap().ts();
        let first1 = traces[1].events.first().unwrap().ts();
        assert!(last0 < first1);
    }

    #[test]
    fn fixed_kernel_profiles_contain_barriers() {
        let sti = Sti {
            calls: vec![Syscall::WqPost],
        };
        let traces = profile_sti(&sti, BugSwitches::none());
        let barriers = traces[0]
            .events
            .iter()
            .filter(|e| e.as_barrier().is_some())
            .count();
        assert!(barriers >= 1, "the patched writer has its smp_wmb");
        let buggy = profile_sti(&sti, BugSwitches::all());
        let buggy_barriers = buggy[0]
            .events
            .iter()
            .filter(|e| e.as_barrier().is_some())
            .count();
        assert!(buggy_barriers < barriers, "the reverted patch lost one");
    }
}
