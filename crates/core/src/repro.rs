//! Directed reproduction of previously-reported bugs (§6.2, Table 4).
//!
//! The paper's methodology: collect fix patches from git history, revert
//! them (here: enable the bug switch), extract an input that reaches the
//! patched code from the Syzkaller dashboard (here: [`known_bug_sti`]), and
//! feed it to OZZ as a single-threaded input. OZZ then profiles it,
//! computes scheduling hints, and runs MTIs until the bug triggers,
//! counting tests.
//!
//! Two special rows are reproduced faithfully:
//!
//! - **sbitmap (#6)** is *not* reproducible under CPU pinning — the
//!   per-CPU hint slot never becomes shared — and the §6.2 verification
//!   (forcing both threads onto one CPU's slot) makes it reproducible.
//! - **tls (#8)** has no crash symptom; reproduction is detected by the
//!   wrong syscall return value (`✓*`).
//!
//! Besides the hint-driven search above, this module offers *trace-based*
//! reproduction: a [`crate::fuzzer::FoundBug`] carries the recorded
//! schedule of its crashing execution, and [`reproduce_from_trace`] replays
//! that schedule directly — no hints, no search, one run — checking the
//! crash title and the machine-state digest byte-for-byte.

use kernelsim::{
    execute, BugId, BugSwitches, ExecRequest, Kctx, MachinePool, PooledMachine, ReorderType,
    RunOutcome, Syscall,
};
use kutil::fnv1a64;
use oemu::ScheduleTrace;

use crate::fuzzer::FoundBug;
use crate::hints::calc_hints;
use crate::mti::{build_mtis, run_setup_prefix};
use crate::profile_sti_on;
use crate::sti::{known_bug_sti, Sti};

/// Outcome of one Table 4 reproduction attempt.
#[derive(Clone, Debug)]
pub struct ReproResult {
    /// The targeted bug.
    pub bug: BugId,
    /// Whether the bug was triggered.
    pub reproduced: bool,
    /// Whether the symptom was a wrong value rather than a crash (`✓*`).
    pub wrong_value: bool,
    /// MTI executions until the trigger (the paper's "# of tests"), or the
    /// total budget spent when not reproduced.
    pub tests: u64,
    /// Reordering type of the triggering hint.
    pub reorder_type: ReorderType,
}

/// Attempts to reproduce a known bug; `migration_override` applies the
/// §6.2 manual per-CPU modification used to verify the sbitmap analysis.
pub fn reproduce(bug: BugId, migration_override: bool) -> ReproResult {
    let sti = known_bug_sti(bug).expect("Table 4 bugs have repro inputs");
    let bugs = BugSwitches::only([bug]);
    let configure = |k: &Kctx| {
        if migration_override {
            k.set_migration_override(true);
        }
    };
    // One pooled machine serves the whole attempt: profile on it, then
    // reset it back to boot state (re-applying the §6.2 configuration —
    // the boot snapshot predates it) before each MTI.
    let pool = MachinePool::new();
    let m = pool.checkout(&bugs);
    configure(m.kctx());
    let traces = profile_sti_on(m.kctx(), &sti);
    let mtis = build_mtis(
        &sti,
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        32,
    );
    let mut tests = 0;
    for mti in mtis {
        tests += 1;
        let k = m.kctx();
        k.reset();
        configure(k);
        mti.run_setup(k);
        let out = mti.run_pair_pooled(&m);
        // Crash-symptom reproduction.
        if out.crashes.iter().any(|c| c.title == bug.expected_title()) {
            return ReproResult {
                bug,
                reproduced: true,
                wrong_value: false,
                tests,
                reorder_type: bug.reorder_type(),
            };
        }
        // Wrong-value reproduction (the ✓* row): the poll returned 0 —
        // "done" observed without the error code.
        if bug == BugId::KnownTlsErr {
            let (_, b) = mti.pair();
            if b == (Syscall::TlsPollErr { fd: 0 }) && out.ret_b == 0 {
                return ReproResult {
                    bug,
                    reproduced: true,
                    wrong_value: true,
                    tests,
                    reorder_type: bug.reorder_type(),
                };
            }
        }
    }
    ReproResult {
        bug,
        reproduced: false,
        wrong_value: false,
        tests,
        reorder_type: bug.reorder_type(),
    }
}

/// Runs the full Table 4 experiment: every known bug, pinned CPUs.
pub fn table4() -> Vec<ReproResult> {
    BugId::KNOWN.iter().map(|&b| reproduce(b, false)).collect()
}

/// Result of replaying a recorded schedule ([`replay_trace`]).
#[derive(Clone, Debug)]
pub struct TraceReplay {
    /// The replayed run's outcome (crash reports, return values).
    pub outcome: RunOutcome,
    /// Post-run [`Kctx::state_digest`].
    pub digest: String,
    /// The replay departed from the trace (different event stream, or
    /// leftover script) — its outcome then says nothing about the recording.
    pub diverged: bool,
}

/// Replays a recorded schedule on a freshly booted `bugs` kernel: runs the
/// STI's setup prefix (everything before `j` except `i`) single-threaded,
/// then the pair `(calls[i], calls[j])` slaved to `trace`. No Table 2
/// controls and no breakpoint are installed — the trace alone dictates
/// which stores sit in the buffer, which loads read old versions, and
/// where the token changes hands. The machine boots under the trace's
/// recorded memory model so the replay sees the recording's semantics.
pub fn replay_trace(
    bugs: BugSwitches,
    sti: &Sti,
    i: usize,
    j: usize,
    trace: &ScheduleTrace,
) -> TraceReplay {
    let k = Kctx::new_with_model(bugs, trace.model);
    run_setup_prefix(&k, &sti.calls, i, j);
    let (outcome, report) =
        execute(&k, ExecRequest::replay(trace, sti.calls[i], sti.calls[j])).into_replayed();
    TraceReplay {
        outcome,
        digest: k.state_digest(),
        diverged: report.diverged,
    }
}

/// [`replay_trace`] on a pooled machine the caller has already reset:
/// runs the setup prefix, then the pair slaved to `trace`. The machine's
/// boot model must match the trace's — [`kernelsim::MachinePool`]
/// checkouts key on it. Trace minimization runs hundreds of candidate
/// replays per bug; reusing one pooled machine avoids a boot per
/// candidate.
pub fn replay_trace_on(
    m: &PooledMachine,
    sti: &Sti,
    i: usize,
    j: usize,
    trace: &ScheduleTrace,
) -> TraceReplay {
    let k = m.kctx();
    run_setup_prefix(k, &sti.calls, i, j);
    let (outcome, report) = m
        .execute(ExecRequest::replay(trace, sti.calls[i], sti.calls[j]))
        .into_replayed();
    TraceReplay {
        outcome,
        digest: k.state_digest(),
        diverged: report.diverged,
    }
}

/// Replays a fuzzer-found bug from its embedded trace and checks full
/// fidelity: the replay must follow the trace to the end, re-raise the
/// recorded crash title, and land on the byte-identical machine state
/// (digest fingerprint match).
pub fn reproduce_from_trace(bug: &FoundBug, bugs: BugSwitches) -> bool {
    let (i, j) = bug.pair_indices;
    let replay = replay_trace(bugs, &bug.sti, i, j, &bug.trace);
    !replay.diverged
        && replay.outcome.crashes.iter().any(|c| c.title == bug.title)
        && fnv1a64(replay.digest.as_bytes()) == bug.digest_fnv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_queue_figure1_reproduces() {
        let r = reproduce(BugId::KnownWatchQueuePost, false);
        assert!(r.reproduced);
        assert!(!r.wrong_value);
        assert_eq!(r.reorder_type, ReorderType::StoreStore);
        assert!(r.tests >= 1);
    }

    #[test]
    fn load_load_bugs_reproduce() {
        for bug in [BugId::KnownFget, BugId::KnownNbd, BugId::KnownUnix] {
            let r = reproduce(bug, false);
            assert!(r.reproduced, "{bug} must reproduce");
            assert_eq!(r.reorder_type, ReorderType::LoadLoad);
        }
    }

    #[test]
    fn store_store_bugs_reproduce() {
        for bug in [BugId::KnownVlan, BugId::KnownXskUmem, BugId::KnownXskState] {
            let r = reproduce(bug, false);
            assert!(r.reproduced, "{bug} must reproduce");
            assert_eq!(r.reorder_type, ReorderType::StoreStore);
        }
    }

    #[test]
    fn tls_err_reproduces_as_wrong_value() {
        let r = reproduce(BugId::KnownTlsErr, false);
        assert!(r.reproduced, "the ✓* row");
        assert!(r.wrong_value, "symptom is a wrong value, not a crash");
    }

    #[test]
    fn sbitmap_fails_under_pinning_but_reproduces_with_migration() {
        let pinned = reproduce(BugId::KnownSbitmap, false);
        assert!(!pinned.reproduced, "the ✗ row: per-CPU + pinning");
        let migrated = reproduce(BugId::KnownSbitmap, true);
        assert!(migrated.reproduced, "the §6.2 verification");
    }

    #[test]
    fn table4_shape_matches_paper() {
        let results = table4();
        assert_eq!(results.len(), 9);
        let reproduced = results.iter().filter(|r| r.reproduced).count();
        assert_eq!(reproduced, 8, "8 of 9 reproduce");
        let failed: Vec<_> = results.iter().filter(|r| !r.reproduced).collect();
        assert_eq!(failed[0].bug, BugId::KnownSbitmap);
    }
}
