//! The campaign crash database.
//!
//! Syzkaller's dashboard deduplicates crash reports, counts sightings, and
//! records when and under which kernel build each crash was seen; OZZ's
//! evaluation (§6.1) leans on exactly that bookkeeping to report unique
//! bugs and their discovery statistics. This module is the reproduction's
//! analog: a [`CrashDb`] keyed on the crashing execution's state digest
//! ([`FoundBug::digest_fnv`]) that accumulates per-crash triage data —
//! sighting counts, first/last-seen epochs, the discovering shard, and
//! per-[`kernelsim::MemoryModel`] / per-[`kernelsim::BugSwitches`]
//! breakdowns — plus a query and report surface for triage tooling
//! (`examples/crashdb_report.rs`).
//!
//! The database serializes through the [`kutil::codec`] text format, both
//! standalone (`save`/`load`) and embedded inside a campaign checkpoint, so
//! a resumed campaign continues its triage counts instead of restarting
//! them.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use kernelsim::ReorderType;
use kutil::codec::{ParseError, TextReader, TextWriter};

use crate::fuzzer::FoundBug;

const MAGIC: &str = "ozz-crashdb";
const VERSION: u32 = 2;

/// Triage outcome attached to a crash record by
/// [`crate::triage::Triager::triage`] (version 2 of the text format).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriageInfo {
    /// Replayable events (steps + switches) of the original recording.
    pub events_before: usize,
    /// Replayable events of the minimized trace.
    pub events_after: usize,
    /// Candidate replays the minimization spent.
    pub replays: u64,
    /// The bisected culprit switch key ([`kernelsim::BugId`] token), or
    /// `None` when bisection was inconclusive.
    pub culprit: Option<String>,
    /// The minimized schedule, serialized (`ozz-trace v3`).
    pub min_trace: String,
}

/// One deduplicated crash with its triage statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashRecord {
    /// Dedup key: FNV-1a of the crashing run's machine-state digest.
    pub digest_fnv: u64,
    /// Crash title (the dashboard's dedup key; here a secondary label).
    pub title: String,
    /// Where the missing barrier belongs ([`FoundBug::barrier_location`]).
    pub barrier_location: String,
    /// The reordering class that triggered the crash.
    pub reorder_type: ReorderType,
    /// Total sightings across the campaign (before dedup).
    pub count: u64,
    /// Campaign epoch of the first sighting.
    pub first_seen_epoch: u64,
    /// Campaign epoch of the most recent sighting.
    pub last_seen_epoch: u64,
    /// Shard that first reported the crash.
    pub first_seen_shard: usize,
    /// Sightings per memory-model name ([`kernelsim::MemoryModel::name`]).
    pub per_model: BTreeMap<String, u64>,
    /// Sightings per bug-switch set key ([`kernelsim::BugSwitches::key`]).
    pub per_switches: BTreeMap<String, u64>,
    /// Minimization and bisection outcome, once the record was triaged.
    pub triage: Option<TriageInfo>,
}

/// Filter for [`CrashDb::query`]. Empty (`Default`) matches every record.
#[derive(Clone, Debug, Default)]
pub struct CrashQuery {
    /// Only records whose title contains this substring.
    pub title_contains: Option<String>,
    /// Only records sighted under this memory model.
    pub model: Option<String>,
    /// Only records of this reordering class.
    pub reorder: Option<ReorderType>,
    /// Only records with at least this many sightings.
    pub min_count: u64,
    /// Only records last seen at or after this epoch.
    pub seen_since_epoch: Option<u64>,
}

/// The deduplicated crash database of one campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashDb {
    records: BTreeMap<u64, CrashRecord>,
}

impl CrashDb {
    /// An empty database.
    pub fn new() -> CrashDb {
        CrashDb::default()
    }

    /// Records `sightings` occurrences of `bug` observed by `shard` during
    /// `epoch` on a machine running `model` with the `switches` build. The
    /// first sighting creates the record; later ones accumulate counts and
    /// advance `last_seen_epoch`.
    pub fn record(
        &mut self,
        bug: &FoundBug,
        shard: usize,
        epoch: u64,
        model: &str,
        switches: &str,
        sightings: u64,
    ) {
        let rec = self
            .records
            .entry(bug.digest_fnv)
            .or_insert_with(|| CrashRecord {
                digest_fnv: bug.digest_fnv,
                title: bug.title.clone(),
                barrier_location: bug.barrier_location.clone(),
                reorder_type: bug.reorder_type,
                count: 0,
                first_seen_epoch: epoch,
                last_seen_epoch: epoch,
                first_seen_shard: shard,
                per_model: BTreeMap::new(),
                per_switches: BTreeMap::new(),
                triage: None,
            });
        rec.count += sightings;
        rec.last_seen_epoch = rec.last_seen_epoch.max(epoch);
        *rec.per_model.entry(model.to_string()).or_default() += sightings;
        *rec.per_switches.entry(switches.to_string()).or_default() += sightings;
    }

    /// Number of deduplicated crashes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database holds no crashes.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in digest order.
    pub fn records(&self) -> impl Iterator<Item = &CrashRecord> {
        self.records.values()
    }

    /// Looks up a record by its digest key.
    pub fn get(&self, digest_fnv: u64) -> Option<&CrashRecord> {
        self.records.get(&digest_fnv)
    }

    /// Attaches a triage outcome to the record keyed `digest_fnv`,
    /// replacing any earlier one. Returns whether the record exists.
    pub fn set_triage(&mut self, digest_fnv: u64, info: TriageInfo) -> bool {
        match self.records.get_mut(&digest_fnv) {
            Some(rec) => {
                rec.triage = Some(info);
                true
            }
            None => false,
        }
    }

    /// Records matching every set filter of `q`, sorted by sighting count
    /// (descending) then digest — the triage ordering of [`CrashDb::report`].
    pub fn query(&self, q: &CrashQuery) -> Vec<&CrashRecord> {
        let mut hits: Vec<&CrashRecord> = self
            .records
            .values()
            .filter(|r| {
                q.title_contains
                    .as_deref()
                    .is_none_or(|t| r.title.contains(t))
                    && q.model
                        .as_deref()
                        .is_none_or(|m| r.per_model.contains_key(m))
                    && q.reorder.is_none_or(|t| r.reorder_type == t)
                    && r.count >= q.min_count
                    && q.seen_since_epoch.is_none_or(|e| r.last_seen_epoch >= e)
            })
            .collect();
        hits.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.digest_fnv.cmp(&b.digest_fnv))
        });
        hits
    }

    /// Renders the triage table: one row per crash, sighting-count
    /// descending, with the digest key, reorder class, epoch span and
    /// per-model breakdown.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>4} {:>11} {:<24} {:>7} title",
            "digest", "count", "type", "epochs", "models", "min"
        );
        for r in self.query(&CrashQuery::default()) {
            let models: Vec<String> = r
                .per_model
                .iter()
                .map(|(m, n)| format!("{m}:{n}"))
                .collect();
            let min = match &r.triage {
                Some(t) => format!("{}/{}", t.events_after, t.events_before),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:016x} {:>7} {:>4} {:>5}..{:<4} {:<24} {:>7} {}",
                r.digest_fnv,
                r.count,
                r.reorder_type.to_string(),
                r.first_seen_epoch,
                r.last_seen_epoch,
                models.join(","),
                min,
                r.title
            );
        }
        out
    }

    /// Serializes the database to the `ozz-crashdb` text form.
    pub fn to_text(&self) -> String {
        let mut w = TextWriter::new(MAGIC, VERSION);
        w.field("records", self.records.len());
        for r in self.records.values() {
            w.begin("record");
            w.hex_field("digest", r.digest_fnv);
            w.str_field("title", &r.title);
            w.str_field("barrier", &r.barrier_location);
            w.field("reorder", r.reorder_type);
            w.field("count", r.count);
            w.field("first_epoch", r.first_seen_epoch);
            w.field("last_epoch", r.last_seen_epoch);
            w.field("first_shard", r.first_seen_shard);
            write_count_map(&mut w, "models", &r.per_model);
            write_count_map(&mut w, "switches", &r.per_switches);
            match &r.triage {
                None => w.field("triaged", 0),
                Some(t) => {
                    w.field("triaged", 1);
                    w.field("events_before", t.events_before);
                    w.field("events_after", t.events_after);
                    w.field("replays", t.replays);
                    w.str_field("culprit", t.culprit.as_deref().unwrap_or(""));
                    w.blob("min_trace", &t.min_trace);
                }
            }
            w.end();
        }
        w.finish()
    }

    /// Parses the [`CrashDb::to_text`] form.
    pub fn parse(text: &str) -> Result<CrashDb, ParseError> {
        let (mut r, version) = TextReader::new(text, MAGIC)?;
        // Version 1 predates triage annotations; its records parse as
        // untriaged, so checkpoints written before the bump keep loading.
        if version != 1 && version != VERSION {
            return Err(format!("unsupported {MAGIC} version {version}"));
        }
        let count: usize = r.parse_field("records")?;
        let mut db = CrashDb::new();
        for _ in 0..count {
            r.begin("record")?;
            let digest_fnv = r.hex_field("digest")?;
            let title = r.str_field("title")?;
            let barrier_location = r.str_field("barrier")?;
            let reorder = r.field("reorder")?;
            let reorder_type = ReorderType::parse(reorder)
                .ok_or_else(|| format!("bad reorder type {reorder:?}"))?;
            let mut rec = CrashRecord {
                digest_fnv,
                title,
                barrier_location,
                reorder_type,
                count: r.parse_field("count")?,
                first_seen_epoch: r.parse_field("first_epoch")?,
                last_seen_epoch: r.parse_field("last_epoch")?,
                first_seen_shard: r.parse_field("first_shard")?,
                per_model: read_count_map(&mut r, "models")?,
                per_switches: read_count_map(&mut r, "switches")?,
                triage: None,
            };
            if version >= 2 {
                let triaged: u32 = r.parse_field("triaged")?;
                if triaged == 1 {
                    let events_before = r.parse_field("events_before")?;
                    let events_after = r.parse_field("events_after")?;
                    let replays = r.parse_field("replays")?;
                    let culprit = r.str_field("culprit")?;
                    rec.triage = Some(TriageInfo {
                        events_before,
                        events_after,
                        replays,
                        culprit: (!culprit.is_empty()).then_some(culprit),
                        min_trace: r.blob("min_trace")?,
                    });
                }
            }
            r.end()?;
            db.records.insert(rec.digest_fnv, rec);
        }
        r.expect_eof()?;
        Ok(db)
    }

    /// Writes the database to `path` ([`CrashDb::to_text`] + atomic rename).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        crate::checkpoint::write_atomic(path, &self.to_text())
    }

    /// Loads a database from `path`.
    pub fn load(path: &Path) -> io::Result<CrashDb> {
        let text = std::fs::read_to_string(path)?;
        CrashDb::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn write_count_map(w: &mut TextWriter, key: &str, map: &BTreeMap<String, u64>) {
    w.field(key, map.len());
    for (name, n) in map {
        w.field("tally", format_args!("{} {n}", escape_token(name)));
    }
}

fn read_count_map(r: &mut TextReader<'_>, key: &str) -> Result<BTreeMap<String, u64>, ParseError> {
    let count: usize = r.parse_field(key)?;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let line = r.field("tally")?;
        let (name, n) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("bad tally line {line:?}"))?;
        let n: u64 = n.parse().map_err(|_| format!("bad tally count {line:?}"))?;
        map.insert(
            kutil::codec::unescape(name).ok_or_else(|| format!("bad tally name {line:?}"))?,
            n,
        );
    }
    Ok(map)
}

fn escape_token(s: &str) -> String {
    kutil::codec::escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use kernelsim::Syscall;
    use oemu::{MemoryModel, ScheduleTrace, Tid};

    use crate::sti::Sti;

    fn bug(title: &str, digest: u64) -> FoundBug {
        FoundBug {
            title: title.to_string(),
            barrier_location: "smp_wmb() in post_one_notification".to_string(),
            reorder_type: ReorderType::StoreStore,
            tests_to_find: 10,
            hint_rank: 0,
            pair: (Syscall::WqPost, Syscall::PipeRead),
            sti: Arc::new(Sti {
                calls: vec![Syscall::WqPost, Syscall::PipeRead],
            }),
            pair_indices: (0, 1),
            trace: ScheduleTrace {
                model: MemoryModel::Tso,
                first: Tid(0),
                switches: vec![],
                steps: vec![],
                sparse: false,
            },
            digest_fnv: digest,
        }
    }

    #[test]
    fn record_accumulates_and_dedupes() {
        let mut db = CrashDb::new();
        let b = bug("BUG: null deref in pipe_read", 0xabc);
        db.record(&b, 2, 1, "tso", "all", 3);
        db.record(&b, 0, 4, "pso", "all", 2);
        assert_eq!(db.len(), 1);
        let r = db.get(0xabc).unwrap();
        assert_eq!(r.count, 5);
        assert_eq!(r.first_seen_epoch, 1);
        assert_eq!(r.last_seen_epoch, 4);
        assert_eq!(r.first_seen_shard, 2);
        assert_eq!(r.per_model["tso"], 3);
        assert_eq!(r.per_model["pso"], 2);
        assert_eq!(r.per_switches["all"], 5);
    }

    #[test]
    fn query_filters_compose() {
        let mut db = CrashDb::new();
        db.record(&bug("null deref in pipe_read", 1), 0, 0, "tso", "all", 10);
        db.record(&bug("uaf in tls_getsockopt", 2), 1, 5, "pso", "all", 2);
        assert_eq!(db.query(&CrashQuery::default()).len(), 2);
        let q = CrashQuery {
            title_contains: Some("tls".into()),
            ..CrashQuery::default()
        };
        assert_eq!(db.query(&q)[0].digest_fnv, 2);
        let q = CrashQuery {
            model: Some("tso".into()),
            ..CrashQuery::default()
        };
        assert_eq!(db.query(&q)[0].digest_fnv, 1);
        let q = CrashQuery {
            min_count: 5,
            ..CrashQuery::default()
        };
        assert_eq!(db.query(&q).len(), 1);
        let q = CrashQuery {
            seen_since_epoch: Some(3),
            ..CrashQuery::default()
        };
        assert_eq!(db.query(&q)[0].digest_fnv, 2);
    }

    #[test]
    fn report_sorts_by_count_descending() {
        let mut db = CrashDb::new();
        db.record(&bug("rare crash", 9), 0, 0, "tso", "all", 1);
        db.record(&bug("common crash", 3), 0, 0, "tso", "all", 7);
        let report = db.report();
        let common = report.find("common crash").unwrap();
        let rare = report.find("rare crash").unwrap();
        assert!(common < rare, "higher count sorts first:\n{report}");
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let mut db = CrashDb::new();
        db.record(
            &bug("BUG: null deref\nwith a newline", 0xdead),
            3,
            2,
            "arm",
            "RdsClearBit+GsmDlci",
            4,
        );
        db.record(&bug("plain crash", 0xbeef), 0, 0, "tso", "all", 1);
        let text = db.to_text();
        let back = CrashDb::parse(&text).expect("parse");
        assert_eq!(back, db);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = CrashDb::new();
        assert_eq!(CrashDb::parse(&db.to_text()).unwrap(), db);
    }

    #[test]
    fn triage_info_roundtrips_and_shows_in_report() {
        let mut db = CrashDb::new();
        db.record(&bug("crash a", 0x1), 0, 0, "tso", "all", 2);
        db.record(&bug("crash b", 0x2), 0, 0, "tso", "all", 1);
        assert!(!db.set_triage(0x999, triage_info(Some("WatchQueuePost"))));
        assert!(db.set_triage(0x1, triage_info(Some("WatchQueuePost"))));
        assert!(db.set_triage(0x2, triage_info(None)));
        let text = db.to_text();
        let back = CrashDb::parse(&text).expect("parse v2");
        assert_eq!(back, db);
        assert_eq!(back.to_text(), text);
        assert_eq!(
            back.get(0x1).unwrap().triage.as_ref().unwrap().culprit,
            Some("WatchQueuePost".to_string())
        );
        assert_eq!(
            back.get(0x2).unwrap().triage.as_ref().unwrap().culprit,
            None
        );
        let report = db.report();
        assert!(
            report.contains("3/27"),
            "report shows min column:\n{report}"
        );
    }

    #[test]
    fn version1_text_still_parses_as_untriaged() {
        let mut db = CrashDb::new();
        db.record(&bug("old crash", 0xa), 1, 2, "pso", "all", 3);
        // A v1 database is exactly the v2 text minus the triage fields.
        let v1 = db
            .to_text()
            .replace("ozz-crashdb v2", "ozz-crashdb v1")
            .replace("triaged 0\n", "");
        let back = CrashDb::parse(&v1).expect("v1 parses");
        assert_eq!(back, db);
        assert!(back.get(0xa).unwrap().triage.is_none());
    }

    fn triage_info(culprit: Option<&str>) -> TriageInfo {
        TriageInfo {
            events_before: 27,
            events_after: 3,
            replays: 41,
            culprit: culprit.map(str::to_string),
            min_trace: "ozz-trace v3\nmodel tso\nsparse\nfirst 0\nend\n".to_string(),
        }
    }
}
