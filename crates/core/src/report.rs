//! Bug-report rendering (§4.4: "OZZ files up a report of memory accesses
//! that were reordered as well as the hypothetical memory barrier").
//!
//! A report gives developers everything the paper says they need to
//! comprehend the bug: the crash title, the concurrent syscall pair, the
//! hypothetical barrier's location, and the *execution order* of the
//! relevant memory accesses in the style the paper uses throughout
//! (`#8 → #14 → #18 → #6` in Figure 1): the reordered accesses annotated
//! with where they actually took effect relative to the scheduling point.

use std::fmt;

use kernelsim::Syscall;
use kmem::CrashReport;
use oemu::Tid;

use crate::hints::{HintKind, PairSide, SchedHint};
use crate::mti::Mti;
use crate::triage::{BisectOutcome, Minimized, Reproducer};

/// A rendered OZZ bug report.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// Crash title (dedup key).
    pub title: String,
    /// The concurrent pair.
    pub pair: (Syscall, Syscall),
    /// Which side reordered, and on which simulated CPU it ran.
    pub reorderer: (PairSide, Tid),
    /// The hint that triggered the crash.
    pub hint: SchedHint,
    /// Tests executed up to (and including) the triggering one.
    pub tests: u64,
}

impl BugReport {
    /// Builds a report from the triggering MTI and its crash.
    pub fn new(mti: &Mti, crash: &CrashReport, tests: u64) -> Self {
        let reorderer_tid = match mti.hint.reorderer {
            PairSide::First => Tid(0),
            PairSide::Second => Tid(1),
        };
        BugReport {
            title: crash.title.clone(),
            pair: mti.pair(),
            reorderer: (mti.hint.reorderer, reorderer_tid),
            hint: mti.hint.clone(),
            tests,
        }
    }

    /// The enforced execution order in the paper's arrow notation: the
    /// scheduling-point access first (it overtook the reordered ones for a
    /// store test) or last (it was read in place for a load test), with the
    /// reordered accesses around it.
    pub fn execution_order(&self) -> String {
        let loc = |a: &oemu::AccessRecord| a.iid.describe();
        let mut parts = Vec::new();
        match self.hint.kind {
            HintKind::StoreBarrier => {
                // The scheduling-point store became visible first; the
                // delayed stores took effect only after the other CPU ran.
                parts.push(format!("{} (committed)", loc(&self.hint.sched)));
                parts.push("[other CPU executes]".to_string());
                for a in &self.hint.reorder {
                    parts.push(format!("{} (delayed)", loc(a)));
                }
            }
            HintKind::LoadBarrier => {
                // The versioned loads behaved as if executed before the
                // other CPU's stores; the scheduling-point load read fresh.
                for a in &self.hint.reorder {
                    parts.push(format!("{} (read old)", loc(a)));
                }
                parts.push("[other CPU executes]".to_string());
                parts.push(format!("{} (read new)", loc(&self.hint.sched)));
            }
        }
        parts.join(" -> ")
    }

    /// The fix suggestion: the hypothetical barrier's kind and location
    /// (§4.1's caveat applies — the exact barrier choice is the
    /// developer's; OZZ names the place and the prevented reordering).
    pub fn fix_hint(&self) -> String {
        format!(
            "{}; the reordering above must not be possible there",
            self.hint.barrier_location()
        )
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "OZZ bug report")?;
        writeln!(f, "==============")?;
        writeln!(f, "crash:      {}", self.title)?;
        writeln!(
            f,
            "pair:       {:?} (cpu0)  ||  {:?} (cpu1)",
            self.pair.0, self.pair.1
        )?;
        writeln!(
            f,
            "reorderer:  {:?} on {}",
            self.reorderer.0, self.reorderer.1
        )?;
        writeln!(
            f,
            "mechanism:  {}",
            match self.hint.kind {
                HintKind::StoreBarrier => "delayed stores (store-store/store-load reordering)",
                HintKind::LoadBarrier => "versioned loads (load-load reordering)",
            }
        )?;
        writeln!(f, "order:      {}", self.execution_order())?;
        writeln!(f, "diagnosis:  {}", self.fix_hint())?;
        write!(f, "found after {} tests", self.tests)
    }
}

/// A rendered triage report: what the minimizer and bisector concluded
/// about one reproducer. Built by [`crate::triage::Triager::triage`].
#[derive(Clone, Debug)]
pub struct TriageReport {
    /// The symptom the minimized reproducer re-produces.
    pub verdict: String,
    /// The concurrent pair (from the *shrunk* STI).
    pub pair: (Syscall, Syscall),
    /// Replayable events (steps + switches) before minimization.
    pub events_before: usize,
    /// Replayable events after minimization.
    pub events_after: usize,
    /// Context switches in the minimized schedule.
    pub switches: usize,
    /// STI calls before shrinking.
    pub calls_before: usize,
    /// STI calls after shrinking.
    pub calls_after: usize,
    /// Candidate replays the minimization spent.
    pub replays: u64,
    /// The culprit line: the named switch with its patch label, or the
    /// inconclusive reason.
    pub culprit: String,
    /// The minimized schedule, serialized (`ozz-trace v3`).
    pub trace_text: String,
}

impl TriageReport {
    /// Renders the triage outcome for one reproducer.
    pub fn new(r: &Reproducer, min: &Minimized, bisect: &BisectOutcome) -> TriageReport {
        TriageReport {
            verdict: r.verdict.describe(),
            pair: (min.sti.calls[min.i], min.sti.calls[min.j]),
            events_before: min.stats.events_before,
            events_after: min.stats.events_after,
            switches: min.trace.switches.len(),
            calls_before: min.stats.calls_before,
            calls_after: min.stats.calls_after,
            replays: min.stats.replays,
            culprit: match bisect {
                BisectOutcome::Culprit(bug) => format!("{bug} — revert switch {}", bug.token()),
                BisectOutcome::Inconclusive(why) => format!("inconclusive: {why}"),
            },
            trace_text: min.trace.to_text(),
        }
    }
}

impl fmt::Display for TriageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "OZZ triage report")?;
        writeln!(f, "=================")?;
        writeln!(f, "symptom:    {}", self.verdict)?;
        writeln!(
            f,
            "pair:       {:?} (cpu0)  ||  {:?} (cpu1)",
            self.pair.0, self.pair.1
        )?;
        let pct = if self.events_before == 0 {
            0.0
        } else {
            100.0 * (self.events_before - self.events_after) as f64 / self.events_before as f64
        };
        writeln!(
            f,
            "schedule:   {} events -> {} ({pct:.0}% smaller), {} switch(es), {} replays",
            self.events_before, self.events_after, self.switches, self.replays
        )?;
        writeln!(
            f,
            "input:      {} calls -> {}",
            self.calls_before, self.calls_after
        )?;
        writeln!(f, "culprit:    {}", self.culprit)?;
        writeln!(f, "minimized schedule:")?;
        for line in self.trace_text.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::calc_hints;
    use crate::profile_sti;
    use crate::sti::Sti;
    use kernelsim::{BugId, BugSwitches};

    fn figure1_report() -> BugReport {
        let bugs = BugSwitches::only([BugId::KnownWatchQueuePost]);
        let sti = Sti {
            calls: vec![Syscall::WqPost, Syscall::PipeRead],
        };
        let traces = profile_sti(&sti, bugs.clone());
        let hints = calc_hints(&traces[0].events, &traces[1].events);
        for (n, hint) in hints.into_iter().enumerate() {
            let mti = Mti {
                sti: std::sync::Arc::new(sti.clone()),
                i: 0,
                j: 1,
                hint,
            };
            let out = mti.run(bugs.clone());
            if let Some(crash) = out.crashes.first() {
                return BugReport::new(&mti, crash, (n + 1) as u64);
            }
        }
        panic!("Figure 1 bug must trigger");
    }

    #[test]
    fn report_contains_all_sections() {
        let report = figure1_report();
        let text = report.to_string();
        assert!(text.contains("crash:"));
        assert!(text.contains("pipe_read"));
        assert!(text.contains("order:"));
        assert!(text.contains("[other CPU executes]"));
        assert!(text.contains("diagnosis:"));
        assert!(
            text.contains("watch_queue.rs"),
            "locations are source-level"
        );
    }

    #[test]
    fn execution_order_shows_the_reordering() {
        let report = figure1_report();
        let order = report.execution_order();
        match report.hint.kind {
            HintKind::StoreBarrier => {
                assert!(order.contains("(committed)"));
                assert!(order.contains("(delayed)"));
                let committed = order.find("(committed)").unwrap();
                let delayed = order.find("(delayed)").unwrap();
                assert!(
                    committed < delayed,
                    "the overtaking store is shown first: {order}"
                );
            }
            HintKind::LoadBarrier => {
                assert!(order.contains("(read old)"));
                assert!(order.contains("(read new)"));
            }
        }
    }

    #[test]
    fn fix_hint_names_a_barrier() {
        let report = figure1_report();
        let hint = report.fix_hint();
        assert!(hint.contains("smp_wmb") || hint.contains("smp_rmb"));
    }
}
