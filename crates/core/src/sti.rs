//! Single-threaded input (STI) generation (§4.2).
//!
//! OZZ's first step is that of a traditional kernel fuzzer: construct
//! sequences of system calls from templates. The paper uses Syzlang
//! descriptions plus Syzkaller's seed corpus; here the templates encode the
//! same two things Syzlang gives the fuzzer — *which calls exist* and *how
//! their arguments depend on earlier calls* (resource dependencies: the
//! reader of a subsystem is only meaningful after its writer has created
//! the state it reads).
//!
//! Generation is seeded and deterministic. Like Syzkaller, it biases
//! towards sequences within one subsystem (calls that share kernel state),
//! which is where concurrency bugs live.

use kernelsim::Syscall;
use kutil::DetRng;

/// A single-threaded input: a sequence of syscalls executed in order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Sti {
    /// The syscall sequence.
    pub calls: Vec<Syscall>,
}

/// One template group: the calls of a subsystem, with argument generators.
/// `setup` calls create subsystem state (resources); `actions` exercise it.
struct Template {
    name: &'static str,
    setup: fn(&mut DetRng) -> Vec<Syscall>,
    actions: fn(&mut DetRng) -> Vec<Syscall>,
}

/// The template table — the reproduction's Syzlang corpus.
const TEMPLATES: &[Template] = &[
    Template {
        name: "watch_queue",
        setup: |r| {
            let mut v = vec![Syscall::WqPost];
            if r.gen_bool(0.5) {
                v.insert(
                    0,
                    Syscall::WqSetFilter {
                        nwords: r.gen_range(1..=4u64),
                    },
                );
            }
            v
        },
        actions: |r| {
            let mut v = vec![Syscall::WqPost, Syscall::PipeRead];
            if r.gen_bool(0.3) {
                v.push(Syscall::WqSetFilter {
                    nwords: r.gen_range(1..=4u64),
                });
            }
            v
        },
    },
    Template {
        name: "tls",
        setup: |r| {
            vec![Syscall::TlsInit {
                fd: r.gen_range(0..2u64),
            }]
        },
        actions: |r| {
            let fd = r.gen_range(0..2u64);
            let mut v = vec![
                Syscall::TlsInit { fd },
                Syscall::SetSockOpt { fd },
                Syscall::GetSockOpt { fd },
            ];
            if r.gen_bool(0.5) {
                v.push(Syscall::TlsErrAbort { fd });
                v.push(Syscall::TlsPollErr { fd });
            }
            v
        },
    },
    Template {
        name: "rds",
        setup: |_| vec![Syscall::RdsLoopXmit],
        actions: |_| vec![Syscall::RdsSendXmit, Syscall::RdsLoopXmit],
    },
    Template {
        name: "xsk",
        setup: |r| {
            let fd = r.gen_range(0..2u64);
            vec![Syscall::XskRegUmem { fd }, Syscall::XskBind { fd }]
        },
        actions: |r| {
            let fd = r.gen_range(0..2u64);
            vec![
                Syscall::XskBind { fd },
                Syscall::XskPoll { fd },
                Syscall::XskSendmsg { fd },
                Syscall::XskRx { fd },
                Syscall::XskRegUmem { fd },
            ]
        },
    },
    Template {
        name: "bpf_psock",
        setup: |r| {
            vec![Syscall::PsockInit {
                fd: r.gen_range(0..2u64),
            }]
        },
        actions: |r| {
            let fd = r.gen_range(0..2u64);
            vec![Syscall::PsockInit { fd }, Syscall::SockRecvmsg { fd }]
        },
    },
    Template {
        name: "smc",
        setup: |_| vec![],
        actions: |r| {
            let fd = r.gen_range(0..2u64);
            let mut v = vec![Syscall::SmcConnect { fd }, Syscall::SmcConnect { fd }];
            if r.gen_bool(0.5) {
                v.push(Syscall::SmcAccept { fd });
                v.push(Syscall::SmcFputWorker { fd });
            }
            v
        },
    },
    Template {
        name: "vmci",
        setup: |_| vec![],
        actions: |_| vec![Syscall::VmciQpCreate, Syscall::VmciQpAttach],
    },
    Template {
        name: "gsm",
        setup: |_| vec![],
        actions: |r| {
            let idx = r.gen_range(0..4u64);
            vec![
                Syscall::GsmDlciAlloc { idx },
                Syscall::GsmDlciConfig { idx },
            ]
        },
    },
    Template {
        name: "vlan",
        setup: |_| vec![],
        actions: |r| {
            let id = r.gen_range(0..4u64);
            vec![Syscall::VlanAdd { id }, Syscall::VlanGet { id }]
        },
    },
    Template {
        name: "fs",
        setup: |_| vec![],
        actions: |r| {
            let fd = r.gen_range(0..4u64);
            vec![Syscall::FdInstall { fd }, Syscall::FgetLight { fd }]
        },
    },
    Template {
        name: "nbd",
        setup: |_| vec![],
        actions: |_| vec![Syscall::NbdAllocConfig, Syscall::NbdIoctl],
    },
    Template {
        name: "unix",
        setup: |_| vec![],
        actions: |r| {
            let fd = r.gen_range(0..2u64);
            vec![Syscall::UnixBind { fd }, Syscall::UnixGetname { fd }]
        },
    },
    Template {
        name: "sbitmap",
        setup: |_| vec![],
        actions: |_| vec![Syscall::SbitmapClear, Syscall::SbitmapGet],
    },
    Template {
        name: "fs_buffer",
        setup: |_| vec![],
        actions: |_| vec![Syscall::BhReplace, Syscall::BhEvict],
    },
    Template {
        name: "ring_buffer",
        setup: |_| vec![Syscall::RingBufferWrite { data: 0x11 }],
        actions: |r| {
            vec![
                Syscall::RingBufferWrite {
                    data: r.gen_range(1..0xffff_u64),
                },
                Syscall::RingBufferRead,
            ]
        },
    },
    Template {
        name: "filemap",
        setup: |_| vec![],
        actions: |r| {
            vec![
                Syscall::FilemapWrite {
                    val: r.gen_range(1..0xffff_u64),
                },
                Syscall::FilemapRead,
            ]
        },
    },
    Template {
        name: "usb",
        setup: |_| vec![],
        actions: |_| {
            vec![
                Syscall::UsbSubmitUrb,
                Syscall::UsbComplete,
                Syscall::UsbKillUrb,
            ]
        },
    },
];

/// Deterministic STI generator.
pub struct StiGen {
    rng: DetRng,
}

impl StiGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        StiGen {
            rng: DetRng::new(seed),
        }
    }

    /// Generates one STI: picks a subsystem template, emits its setup
    /// prefix (the resource dependencies), then a shuffled slice of its
    /// actions, occasionally mixing in a second subsystem.
    pub fn generate(&mut self) -> Sti {
        let t = &TEMPLATES[self.rng.gen_range(0..TEMPLATES.len())];
        let mut calls = (t.setup)(&mut self.rng);
        let mut actions = (t.actions)(&mut self.rng);
        self.rng.shuffle(&mut actions);
        calls.extend(actions);
        if self.rng.gen_bool(0.2) {
            let t2 = &TEMPLATES[self.rng.gen_range(0..TEMPLATES.len())];
            calls.extend((t2.actions)(&mut self.rng).into_iter().take(2));
        }
        calls.truncate(8);
        Sti { calls }
    }

    /// Mutates an existing STI (corpus-driven fuzzing): either appends an
    /// action, removes a call, or swaps two calls.
    pub fn mutate(&mut self, sti: &Sti) -> Sti {
        let mut calls = sti.calls.clone();
        match self.rng.gen_range(0..3u64) {
            0 => {
                let t = &TEMPLATES[self.rng.gen_range(0..TEMPLATES.len())];
                if let Some(c) = (t.actions)(&mut self.rng).first().copied() {
                    let at = self.rng.gen_range(0..=calls.len());
                    calls.insert(at, c);
                }
            }
            1 if calls.len() > 1 => {
                let at = self.rng.gen_range(0..calls.len());
                calls.remove(at);
            }
            _ if calls.len() > 1 => {
                let a = self.rng.gen_range(0..calls.len());
                let b = self.rng.gen_range(0..calls.len());
                calls.swap(a, b);
            }
            _ => {}
        }
        calls.truncate(8);
        Sti { calls }
    }

    /// Names of all template groups (diagnostics).
    pub fn template_names() -> Vec<&'static str> {
        TEMPLATES.iter().map(|t| t.name).collect()
    }

    /// Snapshot of the generator's RNG state, for campaign checkpoints.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuilds a generator mid-stream from a checkpointed RNG state; the
    /// resumed generator continues the exact sequence the snapshot
    /// interrupted.
    pub fn from_rng_state(s: [u64; 4]) -> StiGen {
        StiGen {
            rng: DetRng::from_state(s),
        }
    }
}

/// The directed reproduction inputs of §6.2 (Table 4): for each known bug,
/// the STI that reaches the reverted patch's code, extracted — in the
/// paper — from the Syzkaller dashboard.
pub fn known_bug_sti(bug: kernelsim::BugId) -> Option<Sti> {
    use kernelsim::BugId;
    let calls = match bug {
        BugId::KnownVlan => vec![Syscall::VlanAdd { id: 1 }, Syscall::VlanGet { id: 1 }],
        BugId::KnownWatchQueuePost => vec![Syscall::WqPost, Syscall::PipeRead],
        BugId::KnownXskUmem => vec![Syscall::XskRegUmem { fd: 0 }, Syscall::XskRx { fd: 0 }],
        BugId::KnownXskState => vec![Syscall::XskBind { fd: 0 }, Syscall::XskSendmsg { fd: 0 }],
        BugId::KnownFget => vec![Syscall::FdInstall { fd: 1 }, Syscall::FgetLight { fd: 1 }],
        BugId::KnownSbitmap => vec![Syscall::SbitmapClear, Syscall::SbitmapGet],
        BugId::KnownNbd => vec![Syscall::NbdAllocConfig, Syscall::NbdIoctl],
        BugId::KnownTlsErr => vec![
            Syscall::TlsErrAbort { fd: 0 },
            Syscall::TlsPollErr { fd: 0 },
        ],
        BugId::KnownUnix => vec![Syscall::UnixBind { fd: 0 }, Syscall::UnixGetname { fd: 0 }],
        _ => return None,
    };
    Some(Sti { calls })
}

/// Directed repro inputs for the extended (§2.2 historical) bug corpus.
pub fn ext_bug_sti(bug: kernelsim::BugId) -> Option<Sti> {
    use kernelsim::BugId;
    let calls = match bug {
        BugId::ExtBufferDoubleFree => vec![Syscall::BhReplace, Syscall::BhEvict],
        BugId::ExtRingBuffer => vec![
            Syscall::RingBufferWrite { data: 0xfeed },
            Syscall::RingBufferRead,
        ],
        BugId::ExtFilemap => vec![Syscall::FilemapWrite { val: 0x1234 }, Syscall::FilemapRead],
        BugId::ExtUsbKillUrb => vec![Syscall::UsbKillUrb, Syscall::UsbSubmitUrb],
        _ => return None,
    };
    Some(Sti { calls })
}

/// The directed STI that reaches `bug`'s code, for all 24 seeded bugs:
/// the Table 4 ([`known_bug_sti`]) and extended-corpus ([`ext_bug_sti`])
/// repro inputs where they exist, hand-directed sequences for the Table 3
/// (new) bugs. This is the §6.2 choreography's input side, shared by the
/// oracle matrix, the triage recorder, and the minimization bench.
pub fn directed_bug_sti(bug: kernelsim::BugId) -> Sti {
    use kernelsim::BugId;
    if let Some(s) = known_bug_sti(bug) {
        return s;
    }
    if let Some(s) = ext_bug_sti(bug) {
        return s;
    }
    use Syscall::*;
    let calls = match bug {
        BugId::RdsClearBit => vec![RdsLoopXmit, RdsSendXmit, RdsLoopXmit],
        BugId::WatchQueueFilter => vec![
            WqSetFilter { nwords: 2 },
            WqPost,
            PipeRead,
            WqSetFilter { nwords: 1 },
        ],
        BugId::VmciQueuePair => vec![VmciQpCreate, VmciQpAttach],
        BugId::XskPoolPublish => vec![
            XskRegUmem { fd: 0 },
            XskBind { fd: 0 },
            XskPoll { fd: 0 },
            XskSendmsg { fd: 0 },
            XskRx { fd: 0 },
        ],
        BugId::TlsGetsockopt | BugId::TlsSkProt => vec![
            TlsInit { fd: 0 },
            SetSockOpt { fd: 0 },
            GetSockOpt { fd: 0 },
        ],
        BugId::PsockSavedReady => vec![
            PsockInit { fd: 0 },
            PsockInit { fd: 0 },
            SockRecvmsg { fd: 0 },
        ],
        BugId::XskStateBound => vec![
            XskRegUmem { fd: 0 },
            XskBind { fd: 0 },
            XskSendmsg { fd: 0 },
        ],
        BugId::SmcClcsock => vec![SmcConnect { fd: 0 }, SmcConnect { fd: 0 }],
        BugId::SmcFput => vec![
            SmcConnect { fd: 0 },
            SmcAccept { fd: 0 },
            SmcFputWorker { fd: 0 },
        ],
        BugId::GsmDlci => vec![GsmDlciAlloc { idx: 0 }, GsmDlciConfig { idx: 0 }],
        other => unreachable!("{other}: known/extended bugs are handled above"),
    };
    Sti { calls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelsim::BugId;

    #[test]
    fn generation_is_deterministic() {
        let mut a = StiGen::new(42);
        let mut b = StiGen::new(42);
        for _ in 0..50 {
            assert_eq!(a.generate(), b.generate());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StiGen::new(1);
        let mut b = StiGen::new(2);
        let sa: Vec<_> = (0..10).map(|_| a.generate()).collect();
        let sb: Vec<_> = (0..10).map(|_| b.generate()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn stis_are_nonempty_and_bounded() {
        let mut g = StiGen::new(7);
        for _ in 0..200 {
            let sti = g.generate();
            assert!(!sti.calls.is_empty());
            assert!(sti.calls.len() <= 8);
        }
    }

    #[test]
    fn generator_state_roundtrip_resumes_mid_stream() {
        let mut g = StiGen::new(42);
        for _ in 0..10 {
            g.generate();
        }
        let mut resumed = StiGen::from_rng_state(g.rng_state());
        for _ in 0..10 {
            assert_eq!(g.generate(), resumed.generate());
        }
    }

    #[test]
    fn mutation_keeps_bounds() {
        let mut g = StiGen::new(7);
        let mut sti = g.generate();
        for _ in 0..100 {
            sti = g.mutate(&sti);
            assert!(sti.calls.len() <= 8);
        }
    }

    #[test]
    fn every_known_bug_has_a_repro_sti() {
        for bug in BugId::KNOWN {
            let sti = known_bug_sti(bug).expect("repro input exists");
            assert!(sti.calls.len() >= 2, "writer + reader at least");
        }
        assert!(
            known_bug_sti(BugId::TlsSkProt).is_none(),
            "new bugs have none"
        );
    }

    #[test]
    fn every_seeded_bug_has_a_directed_sti() {
        for bug in BugId::NEW
            .iter()
            .chain(BugId::KNOWN.iter())
            .chain(BugId::EXTENDED.iter())
        {
            let sti = directed_bug_sti(*bug);
            assert!(sti.calls.len() >= 2, "{bug}: writer + reader at least");
        }
    }

    #[test]
    fn all_templates_generate_runnable_stis() {
        // Every generated STI must execute without crashing in order.
        let mut g = StiGen::new(3);
        let k = kernelsim::Kctx::new(kernelsim::BugSwitches::all());
        for _ in 0..50 {
            let sti = g.generate();
            kernelsim::run_sti(&k, &sti.calls);
        }
        assert!(k.sink.is_empty(), "in-order STIs never crash");
    }
}
