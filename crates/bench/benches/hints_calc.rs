//! Cost of the hint pipeline (§4.3): Algorithm 2 filtering plus Algorithm 1
//! grouping/sorting, on traces of realistic sizes.

use std::time::Duration;

use kernelsim::{BugSwitches, Syscall};
use kutil::bench::benchmark_group;
use ozz::hints::calc_hints;
use ozz::profile_sti;
use ozz::sti::Sti;

fn main() {
    let mut group = benchmark_group("hints_calc");
    group.sample_size(30);
    group.measurement_time(Duration::from_millis(600));
    group.warm_up_time(Duration::from_millis(150));

    // A real pair: the Figure 1 watch_queue traces.
    let sti = Sti {
        calls: vec![Syscall::WqPost, Syscall::PipeRead],
    };
    let traces = profile_sti(&sti, BugSwitches::all());
    group.bench_function("figure1_pair", |b| {
        b.iter(|| calc_hints(&traces[0].events, &traces[1].events))
    });

    // A long STI: every pair of an 8-call program.
    let sti = Sti {
        calls: vec![
            Syscall::TlsInit { fd: 0 },
            Syscall::SetSockOpt { fd: 0 },
            Syscall::GetSockOpt { fd: 0 },
            Syscall::WqPost,
            Syscall::PipeRead,
            Syscall::XskBind { fd: 0 },
            Syscall::XskPoll { fd: 0 },
            Syscall::XskSendmsg { fd: 0 },
        ],
    };
    let traces = profile_sti(&sti, BugSwitches::all());
    group.bench_with_input(
        "all_pairs",
        &traces.len().to_string(),
        &traces,
        |b, traces| {
            b.iter(|| {
                let mut total = 0;
                for i in 0..traces.len() {
                    for j in (i + 1)..traces.len() {
                        total += calc_hints(&traces[i].events, &traces[j].events).len();
                    }
                }
                total
            })
        },
    );

    group.finish();
}
