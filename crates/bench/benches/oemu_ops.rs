//! Engine-level microbenchmarks and the DESIGN.md §7 ablations:
//!
//! - plain commit vs delayed store + flush (store-buffer cost);
//! - load from memory vs store-to-load forwarding vs versioned load
//!   (hierarchical-search cost);
//! - store-history growth with and without GC (history-bound ablation);
//! - versioned-load lookup against a wide address space (the per-address
//!   history index: cost tracks one address's records, not the whole log).

use std::time::Duration;

use kutil::bench::benchmark_group;
use oemu::{iid, Engine, LoadAnn, StoreAnn, Tid};

fn main() {
    let mut group = benchmark_group("oemu_ops");
    group.sample_size(30);
    group.measurement_time(Duration::from_millis(600));
    group.warm_up_time(Duration::from_millis(150));

    group.bench_function("store_commit", |b| {
        let e = Engine::new(1);
        let i = iid!();
        b.iter(|| e.store(Tid(0), i, 0x1000, 1, StoreAnn::Plain));
    });

    group.bench_function("store_delayed_plus_flush", |b| {
        let e = Engine::new(1);
        let i = iid!();
        e.delay_store_at(Tid(0), i);
        b.iter(|| {
            e.store(Tid(0), i, 0x1000, 1, StoreAnn::Plain);
            e.flush_thread(Tid(0));
        });
    });

    group.bench_function("load_memory", |b| {
        let e = Engine::new(1);
        e.store(Tid(0), iid!(), 0x1000, 7, StoreAnn::Plain);
        let i = iid!();
        b.iter(|| e.load(Tid(0), i, 0x1000, LoadAnn::Plain));
    });

    group.bench_function("load_forwarded", |b| {
        let e = Engine::new(1);
        let istore = iid!();
        e.delay_store_at(Tid(0), istore);
        e.store(Tid(0), istore, 0x1000, 7, StoreAnn::Plain);
        let i = iid!();
        b.iter(|| e.load(Tid(0), i, 0x1000, LoadAnn::Plain));
    });

    group.bench_function("load_versioned", |b| {
        let e = Engine::new(2);
        e.store(Tid(1), iid!(), 0x1000, 7, StoreAnn::Plain);
        let i = iid!();
        e.read_old_value_at(Tid(0), i);
        b.iter(|| e.load(Tid(0), i, 0x1000, LoadAnn::Plain));
    });

    // History-bound ablation: versioned-load search cost against a long
    // history, with and without GC.
    for (label, gc) in [("history_unbounded", false), ("history_gc", true)] {
        group.bench_function(label, |b| {
            let e = Engine::new(2);
            let istore = iid!();
            for n in 0..4096 {
                e.store(Tid(1), istore, 0x1000 + (n % 64) * 8, n, StoreAnn::Plain);
            }
            if gc {
                e.smp_rmb(Tid(0), iid!());
                e.smp_rmb(Tid(1), iid!());
                e.gc_history();
            }
            let i = iid!();
            e.read_old_value_at(Tid(0), i);
            b.iter(|| e.load(Tid(0), i, 0x1000, LoadAnn::Plain));
        });
    }

    // Per-address index ablation: 4096 stores spread over 4096 *distinct*
    // addresses. The old two-scan lookup walked the full log (O(total
    // stores)) to resolve one address; the indexed lookup touches only
    // that address's single record. Compare against `history_unbounded`
    // above, where 64 records share the queried address.
    group.bench_function("history_wide_addresses", |b| {
        let e = Engine::new(2);
        let istore = iid!();
        for n in 0..4096 {
            e.store(Tid(1), istore, 0x1_0000 + n * 8, n, StoreAnn::Plain);
        }
        let i = iid!();
        e.read_old_value_at(Tid(0), i);
        b.iter(|| e.load(Tid(0), i, 0x1_0000 + 2048 * 8, LoadAnn::Plain));
    });

    group.finish();
}
