//! Table 5 with median-of-N statistics: every operation class measured in
//! raw mode (the paper's uninstrumented Linux) and instrumented mode
//! (Linux w/ OEMU).

use std::time::Duration;

use kernelsim::{run_one, BugSwitches, Kctx, Syscall};
use kutil::bench::benchmark_group;
use oemu::Tid;

// Repeatable-in-place workloads, so boot cost stays out of the loop (the
// paper's LMBench numbers exclude VM setup the same way).
const CLASSES: &[(&str, &[Syscall])] = &[
    ("null", &[Syscall::UnixGetname { fd: 0 }]),
    ("stat", &[Syscall::VlanGet { id: 3 }]),
    ("open_close", &[Syscall::BhReplace, Syscall::BhEvict]),
    ("file_create", &[Syscall::SbitmapClear, Syscall::SbitmapGet]),
    ("pipe", &[Syscall::WqPost, Syscall::PipeRead]),
    (
        "unix",
        &[
            Syscall::RingBufferWrite { data: 7 },
            Syscall::RingBufferRead,
        ],
    ),
    (
        "file_rewrite",
        &[Syscall::FilemapWrite { val: 9 }, Syscall::FilemapRead],
    ),
    ("mmap", &[Syscall::RdsSendXmit, Syscall::RdsLoopXmit]),
];

fn main() {
    let mut group = benchmark_group("table5");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(600));
    group.warm_up_time(Duration::from_millis(150));
    for (name, calls) in CLASSES {
        for raw in [true, false] {
            let label = if raw { "raw" } else { "oemu" };
            group.bench_with_input(name, label, &(raw, *calls), |b, (raw, calls)| {
                let k = Kctx::new(BugSwitches::none());
                k.set_raw(*raw);
                b.iter(|| {
                    for &call in *calls {
                        run_one(&k, Tid(0), call);
                    }
                })
            });
        }
    }
    // fork analog: machine boot.
    group.bench_function("fork_boot", |b| {
        b.iter(|| std::hint::black_box(Kctx::new(BugSwitches::none())))
    });
    group.finish();
}
