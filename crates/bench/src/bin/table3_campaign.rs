//! Table 3: the OZZ campaign over the 11 seeded new bugs.
//!
//! Runs the full fuzzing pipeline (STI generation → profiling → Algorithm
//! 1 hints → MTI execution) against the all-bugs kernel until every
//! Table 3 crash title has been found or the test budget is exhausted, and
//! prints the paper's table: bug id, subsystem, crash summary, reordering
//! type, plus the reproduction-effort columns this harness can measure
//! (tests until discovery, triggering-hint rank).

use bench::row;
use kernelsim::BugId;
use ozz::campaign::CampaignBuilder;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    println!("Table 3 — newly discovered OOO bugs (campaign, budget {budget} tests)\n");
    let report = CampaignBuilder::new(2024).budget(budget).run();
    let widths = [8, 11, 78, 5, 8, 5];
    println!(
        "{}",
        row(
            &["ID", "Subsystem", "Summary", "Type", "Tests", "Rank"],
            &widths
        )
    );
    let mut found_count = 0;
    for bug in BugId::NEW {
        let title = bug.expected_title();
        match report.found.get(title) {
            Some(info) => {
                found_count += 1;
                println!(
                    "{}",
                    row(
                        &[
                            bug.label(),
                            bug.subsystem(),
                            title,
                            &info.reorder_type.to_string(),
                            &info.tests_to_find.to_string(),
                            &info.hint_rank.to_string(),
                        ],
                        &widths
                    )
                );
            }
            None => {
                println!(
                    "{}",
                    row(
                        &[bug.label(), bug.subsystem(), title, "-", "not found", "-"],
                        &widths
                    )
                );
            }
        }
    }
    let stats = &report.stats;
    println!(
        "\nfound {found_count}/11 seeded bugs | STIs: {} | MTIs (tests): {} | coverage: {} sites | deduped crashes: {}",
        stats.stis_run,
        stats.mtis_run,
        stats.coverage,
        report.crashes.len()
    );
    println!(
        "(paper: 11 new OOO bugs over a 6-week, 32-VM campaign; this harness seeds the same\n bugs in the simulated kernel and measures tests-to-discovery under the same pipeline)"
    );
}
