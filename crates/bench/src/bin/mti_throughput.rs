//! Zero-boot MTI execution: pooled machines vs fresh boots.
//!
//! The paper runs tests in-vivo inside long-lived VMs; this reproduction's
//! analog is the machine pool — reset-to-boot-snapshot machines with
//! persistent CPU workers and per-pair setup reuse. This bench runs the
//! same seeded campaign twice, once booting a machine (and spawning
//! threads) per test and once on the pool, and reports MTIs/second for
//! each. The two arms produce byte-identical campaign results (pinned by
//! `tests/pool_fidelity.rs`); only the throughput differs.
//!
//! Usage: `mti_throughput [mti_budget] [reps]` (defaults 600, 3). Writes
//! `BENCH_mti_throughput.json` with the median rates into the working
//! directory.

use std::time::Instant;

use kernelsim::BugSwitches;
use ozz::fuzzer::{FuzzConfig, Fuzzer};

/// One campaign to `budget` MTIs; returns MTIs/second.
fn run_arm(reuse_machines: bool, budget: u64) -> f64 {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::all(),
        reuse_machines,
        ..FuzzConfig::default()
    });
    let start = Instant::now();
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
    }
    fuzzer.stats().mtis_run as f64 / start.elapsed().as_secs_f64()
}

fn median(mut rates: Vec<f64>) -> f64 {
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("MTI throughput: fresh boots vs machine pool ({budget} MTIs x {reps} reps)\n");

    let mut fresh_rates = Vec::with_capacity(reps);
    let mut pooled_rates = Vec::with_capacity(reps);
    for rep in 0..reps {
        let fresh = run_arm(false, budget);
        let pooled = run_arm(true, budget);
        println!("rep {rep}: fresh {fresh:>9.1} MTIs/s | pooled {pooled:>9.1} MTIs/s");
        fresh_rates.push(fresh);
        pooled_rates.push(pooled);
    }

    let fresh = median(fresh_rates);
    let pooled = median(pooled_rates);
    let speedup = pooled / fresh;
    println!("\nmedian fresh:  {fresh:>9.1} MTIs/s (boot + thread spawn per test)");
    println!("median pooled: {pooled:>9.1} MTIs/s (reset + persistent workers)");
    println!("speedup:       {speedup:.2}x");

    let json = format!(
        "{{\n  \"budget\": {budget},\n  \"reps\": {reps},\n  \
         \"fresh_mtis_per_sec\": {fresh:.1},\n  \
         \"pooled_mtis_per_sec\": {pooled:.1},\n  \"speedup\": {speedup:.2}\n}}\n"
    );
    std::fs::write("BENCH_mti_throughput.json", json).expect("write BENCH_mti_throughput.json");
    println!("\nwrote BENCH_mti_throughput.json");
}
