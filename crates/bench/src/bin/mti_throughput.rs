//! MTI execution throughput: fresh boots vs machine pool vs threadless.
//!
//! The paper runs tests in-vivo inside long-lived VMs; this reproduction's
//! analog is the machine pool — reset-to-boot-snapshot machines with
//! persistent CPU workers. The threadless stepped executor goes one step
//! further: both legs of a pair run as resumable step functions on the
//! calling thread, so a campaign spawns no threads and pays no handshake
//! cost at all. This bench runs the same seeded campaign three ways:
//!
//! - **fresh**: boot a machine and spawn two threads per test;
//! - **pooled**: reset pooled machines, persistent CPU workers
//!   (threaded executor);
//! - **stepped**: reset pooled machines, threadless stepped executor.
//!
//! All arms produce byte-identical campaign results (pinned by
//! `tests/pool_fidelity.rs` and `tests/exec_equivalence.rs`); only the
//! throughput differs. A fourth dimension reruns the stepped arm under the
//! PSO and Arm-like memory models: the model is a per-access branch in the
//! engine, so those rates must stay in the same band as TSO.
//!
//! Usage: `mti_throughput [mti_budget] [reps]` (defaults 600, 3). Writes
//! `BENCH_mti_throughput.json` with the median-of-reps rates into the
//! working directory.

use std::time::Instant;

use kernelsim::{BugSwitches, ExecMode, MemoryModel};
use ozz::fuzzer::{FuzzConfig, Fuzzer};

/// One campaign to `budget` MTIs; returns MTIs/second.
fn run_arm(reuse_machines: bool, exec_mode: ExecMode, model: MemoryModel, budget: u64) -> f64 {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::all(),
        reuse_machines,
        exec_mode,
        memory_model: model,
        ..FuzzConfig::default()
    });
    let start = Instant::now();
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
    }
    fuzzer.stats().mtis_run as f64 / start.elapsed().as_secs_f64()
}

fn median(mut rates: Vec<f64>) -> f64 {
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("MTI throughput: fresh vs pooled vs stepped ({budget} MTIs x {reps} reps)\n");

    let mut fresh_rates = Vec::with_capacity(reps);
    let mut pooled_rates = Vec::with_capacity(reps);
    let mut stepped_rates = Vec::with_capacity(reps);
    let mut pso_rates = Vec::with_capacity(reps);
    let mut arm_rates = Vec::with_capacity(reps);
    for rep in 0..reps {
        let tso = MemoryModel::Tso;
        let fresh = run_arm(false, ExecMode::Threaded, tso, budget);
        let pooled = run_arm(true, ExecMode::Threaded, tso, budget);
        let stepped = run_arm(true, ExecMode::Stepped, tso, budget);
        let pso = run_arm(true, ExecMode::Stepped, MemoryModel::Pso, budget);
        let arm = run_arm(true, ExecMode::Stepped, MemoryModel::Arm, budget);
        println!(
            "rep {rep}: fresh {fresh:>9.1} MTIs/s | pooled {pooled:>9.1} MTIs/s | \
             stepped {stepped:>9.1} MTIs/s | pso {pso:>9.1} MTIs/s | arm {arm:>9.1} MTIs/s"
        );
        fresh_rates.push(fresh);
        pooled_rates.push(pooled);
        stepped_rates.push(stepped);
        pso_rates.push(pso);
        arm_rates.push(arm);
    }

    let fresh = median(fresh_rates);
    let pooled = median(pooled_rates);
    let stepped = median(stepped_rates);
    let pso = median(pso_rates);
    let arm = median(arm_rates);
    let speedup = pooled / fresh;
    let stepped_speedup = stepped / pooled;
    println!("\nmedian fresh:   {fresh:>9.1} MTIs/s (boot + thread spawn per test)");
    println!("median pooled:  {pooled:>9.1} MTIs/s (reset + persistent workers)");
    println!("median stepped: {stepped:>9.1} MTIs/s (reset + threadless executor)");
    println!("median pso:     {pso:>9.1} MTIs/s (stepped, PSO model)");
    println!("median arm:     {arm:>9.1} MTIs/s (stepped, Arm-like model)");
    println!("pooled/fresh:   {speedup:.2}x");
    println!("stepped/pooled: {stepped_speedup:.2}x");

    let json = format!(
        "{{\n  \"budget\": {budget},\n  \"reps\": {reps},\n  \
         \"fresh_mtis_per_sec\": {fresh:.1},\n  \
         \"pooled_mtis_per_sec\": {pooled:.1},\n  \
         \"stepped_mtis_per_sec\": {stepped:.1},\n  \
         \"stepped_pso_mtis_per_sec\": {pso:.1},\n  \
         \"stepped_arm_mtis_per_sec\": {arm:.1},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"stepped_speedup\": {stepped_speedup:.2}\n}}\n"
    );
    std::fs::write("BENCH_mti_throughput.json", json).expect("write BENCH_mti_throughput.json");
    println!("\nwrote BENCH_mti_throughput.json");
}
