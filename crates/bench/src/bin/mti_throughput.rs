//! MTI execution throughput: fresh boots vs machine pool vs threadless.
//!
//! The paper runs tests in-vivo inside long-lived VMs; this reproduction's
//! analog is the machine pool — reset-to-boot-snapshot machines with
//! persistent CPU workers. The threadless stepped executor goes one step
//! further: both legs of a pair run as resumable step functions on the
//! calling thread, so a campaign spawns no threads and pays no handshake
//! cost at all. This bench runs the same seeded campaign three ways:
//!
//! - **fresh**: boot a machine and spawn two threads per test;
//! - **pooled**: reset pooled machines, persistent CPU workers
//!   (threaded executor);
//! - **stepped**: reset pooled machines, threadless stepped executor,
//!   `force_full_restore` on — every reset pays the full `clone_from`
//!   cost, preserving this arm's historical meaning as the full-restore
//!   baseline;
//! - **stepped_dirty**: identical campaign with the default incremental
//!   restore — resets roll back the dirty-set undo journal instead of
//!   copying the machine, so reset cost is proportional to state touched.
//!   Its `restore_*` / `journal_*` counters are emitted alongside; a
//!   healthy run takes zero full-restore fallbacks.
//!
//! All arms produce byte-identical campaign results (pinned by
//! `tests/pool_fidelity.rs`, `tests/exec_equivalence.rs`, and
//! `tests/restore_differential.rs`); only the throughput differs. A
//! further dimension reruns the (incremental) stepped arm under the
//! PSO and Arm-like memory models: the model is a per-access branch in the
//! engine, so those rates must stay in the same band as TSO.
//!
//! Usage: `mti_throughput [mti_budget] [reps]` (defaults 600, 3). Writes
//! `BENCH_mti_throughput.json` with the median-of-reps rates into the
//! working directory.

use std::time::Instant;

use kernelsim::{BugSwitches, ExecMode, MemoryModel, RestoreCounters};
use ozz::fuzzer::{FuzzConfig, Fuzzer};

/// One campaign to `budget` MTIs; returns MTIs/second and the pool's
/// restore-path counters (meaningful only for the pooled arms).
fn run_arm(
    reuse_machines: bool,
    exec_mode: ExecMode,
    model: MemoryModel,
    force_full_restore: bool,
    budget: u64,
) -> (f64, RestoreCounters) {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::all(),
        reuse_machines,
        exec_mode,
        memory_model: model,
        force_full_restore,
        ..FuzzConfig::default()
    });
    let start = Instant::now();
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
    }
    let rate = fuzzer.stats().mtis_run as f64 / start.elapsed().as_secs_f64();
    (rate, fuzzer.restore_counters())
}

fn median(mut rates: Vec<f64>) -> f64 {
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("MTI throughput: fresh vs pooled vs stepped ({budget} MTIs x {reps} reps)\n");

    let mut fresh_rates = Vec::with_capacity(reps);
    let mut pooled_rates = Vec::with_capacity(reps);
    let mut stepped_rates = Vec::with_capacity(reps);
    let mut dirty_rates = Vec::with_capacity(reps);
    let mut pso_rates = Vec::with_capacity(reps);
    let mut arm_rates = Vec::with_capacity(reps);
    let mut dirty_counters = RestoreCounters::default();
    for rep in 0..reps {
        let tso = MemoryModel::Tso;
        let (fresh, _) = run_arm(false, ExecMode::Threaded, tso, false, budget);
        let (pooled, _) = run_arm(true, ExecMode::Threaded, tso, false, budget);
        let (stepped, _) = run_arm(true, ExecMode::Stepped, tso, true, budget);
        let (dirty, counters) = run_arm(true, ExecMode::Stepped, tso, false, budget);
        let (pso, _) = run_arm(true, ExecMode::Stepped, MemoryModel::Pso, false, budget);
        let (arm, _) = run_arm(true, ExecMode::Stepped, MemoryModel::Arm, false, budget);
        println!(
            "rep {rep}: fresh {fresh:>9.1} MTIs/s | pooled {pooled:>9.1} MTIs/s | \
             stepped {stepped:>9.1} MTIs/s | dirty {dirty:>9.1} MTIs/s | \
             pso {pso:>9.1} MTIs/s | arm {arm:>9.1} MTIs/s"
        );
        fresh_rates.push(fresh);
        pooled_rates.push(pooled);
        stepped_rates.push(stepped);
        dirty_rates.push(dirty);
        pso_rates.push(pso);
        arm_rates.push(arm);
        // The campaign is deterministic, so the counters are identical
        // across reps — keeping the last rep's is keeping all of them.
        dirty_counters = counters;
    }

    let fresh = median(fresh_rates);
    let pooled = median(pooled_rates);
    let stepped = median(stepped_rates);
    let dirty = median(dirty_rates);
    let pso = median(pso_rates);
    let arm = median(arm_rates);
    let speedup = pooled / fresh;
    // The executor gain, measured on the common (incremental) restore
    // path; the restore-path gain is `dirty_speedup`, measured on the
    // common (stepped) executor. Each ratio isolates one mechanism.
    let stepped_speedup = dirty / pooled;
    let dirty_speedup = dirty / stepped;
    let words_per_restore = if dirty_counters.incremental > 0 {
        dirty_counters.words_replayed as f64 / dirty_counters.incremental as f64
    } else {
        0.0
    };
    println!("\nmedian fresh:   {fresh:>9.1} MTIs/s (boot + thread spawn per test)");
    println!("median pooled:  {pooled:>9.1} MTIs/s (reset + persistent workers)");
    println!("median stepped: {stepped:>9.1} MTIs/s (reset + threadless executor, full restore)");
    println!("median dirty:   {dirty:>9.1} MTIs/s (stepped, incremental dirty-journal restore)");
    println!("median pso:     {pso:>9.1} MTIs/s (stepped dirty, PSO model)");
    println!("median arm:     {arm:>9.1} MTIs/s (stepped dirty, Arm-like model)");
    println!("pooled/fresh:   {speedup:.2}x");
    println!("dirty/pooled:   {stepped_speedup:.2}x (executor gain, both incremental)");
    println!("dirty/stepped:  {dirty_speedup:.2}x (restore-path gain, both stepped)");
    println!(
        "dirty restores: {} incremental ({:.1} words replayed each, journal peak {} words), \
         {} full fallbacks",
        dirty_counters.incremental,
        words_per_restore,
        dirty_counters.journal_peak_words,
        dirty_counters.full_fallbacks
    );

    let json = format!(
        "{{\n  \"budget\": {budget},\n  \"reps\": {reps},\n  \
         \"fresh_mtis_per_sec\": {fresh:.1},\n  \
         \"pooled_mtis_per_sec\": {pooled:.1},\n  \
         \"stepped_mtis_per_sec\": {stepped:.1},\n  \
         \"stepped_dirty_mtis_per_sec\": {dirty:.1},\n  \
         \"stepped_pso_mtis_per_sec\": {pso:.1},\n  \
         \"stepped_arm_mtis_per_sec\": {arm:.1},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"stepped_speedup\": {stepped_speedup:.2},\n  \
         \"stepped_dirty_speedup\": {dirty_speedup:.2},\n  \
         \"restores_incremental\": {inc},\n  \
         \"restore_words_replayed\": {words},\n  \
         \"restore_words_per_restore\": {words_per_restore:.1},\n  \
         \"restore_full_fallbacks\": {falls},\n  \
         \"journal_peak_words\": {peak}\n}}\n",
        inc = dirty_counters.incremental,
        words = dirty_counters.words_replayed,
        falls = dirty_counters.full_fallbacks,
        peak = dirty_counters.journal_peak_words,
    );
    std::fs::write("BENCH_mti_throughput.json", json).expect("write BENCH_mti_throughput.json");
    println!("\nwrote BENCH_mti_throughput.json");
}
