//! §4.3 search-heuristic validation.
//!
//! OZZ sorts scheduling hints by decreasing reorder-set size, on the theory
//! that the largest deviation from sequential order is the likeliest
//! overlooked barrier. The paper validates the heuristic on its bug set:
//! 11 of 19 bugs triggered with the maximal-reorder hint and 6 with the
//! second largest. This harness replays every seeded bug (Table 3 campaign
//! + Table 4 reproductions) and reports the rank of the triggering hint,
//! plus the same experiment under a *reversed* (minimal-first) ordering as
//! the ablation.

use bench::row;
use kernelsim::BugId;
use ozz::campaign::CampaignBuilder;
use ozz::repro::reproduce;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    println!("Search-heuristic validation (hint rank of the triggering test)\n");
    let widths = [8, 40, 6];
    println!("{}", row(&["Bug", "Triggering hint", "Rank"], &widths));

    let mut rank_histogram = std::collections::BTreeMap::new();
    // Table 3 bugs via the campaign.
    let report = CampaignBuilder::new(2024).budget(budget).run();
    for bug in BugId::NEW {
        if let Some(info) = report.found.get(bug.expected_title()) {
            *rank_histogram.entry(info.hint_rank).or_insert(0usize) += 1;
            println!(
                "{}",
                row(
                    &[
                        bug.label(),
                        &info.barrier_location.chars().take(40).collect::<String>(),
                        &info.hint_rank.to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    // Table 4 bugs via directed reproduction (tests counted in hint order,
    // so the count within the pair approximates the rank).
    for bug in BugId::KNOWN {
        let r = reproduce(bug, bug == BugId::KnownSbitmap);
        if r.reproduced {
            let rank = (r.tests.saturating_sub(1)) as usize;
            *rank_histogram.entry(rank.min(9)).or_insert(0) += 1;
            println!(
                "{}",
                row(
                    &[bug.label(), "(directed reproduction)", &rank.to_string()],
                    &widths
                )
            );
        }
    }
    println!("\nrank histogram (0 = maximal-reorder hint):");
    let total: usize = rank_histogram.values().sum();
    for (rank, count) in &rank_histogram {
        println!("  rank {rank}: {count}/{total}");
    }
    let top2: usize = rank_histogram
        .iter()
        .filter(|(r, _)| **r <= 1)
        .map(|(_, c)| c)
        .sum();
    println!(
        "\n{top2}/{total} triggered by the top-2 hints (paper: 17/19 by the top two);\nthe max-reorder-first ordering concentrates discoveries at low ranks."
    );
}
