//! §6.4: comparison with OFence's paired-barrier pattern matching.
//!
//! OFence flags code where exactly one half of a standard barrier pair
//! (`smp_wmb`/`smp_rmb`, release/acquire) is present. Applying that
//! criterion to the 11 Table 3 bugs' pre-fix code shows 8 of them carry no
//! unpaired half at all — custom locks, annotation mis-fixes, plain
//! publication with neither barrier — matching the paper's "8 out of 11 are
//! hardly detectable by OFence".

use baselines::ofence::{compare_table3, facts};
use bench::row;

fn main() {
    println!("OFence comparison over Table 3 (paired-barrier pattern matching)\n");
    let widths = [8, 11, 14, 14, 12];
    println!(
        "{}",
        row(
            &["ID", "Subsystem", "writer wmb?", "reader rmb?", "OFence?"],
            &widths
        )
    );
    let rows = compare_table3();
    for r in &rows {
        let f = facts(r.bug);
        println!(
            "{}",
            row(
                &[
                    r.bug.label(),
                    r.bug.subsystem(),
                    if f.writer_store_barrier {
                        "present"
                    } else {
                        "-"
                    },
                    if f.reader_load_barrier {
                        "present"
                    } else {
                        "-"
                    },
                    if r.detectable { "flagged" } else { "missed" },
                ],
                &widths
            )
        );
    }
    let missed = rows.iter().filter(|r| !r.detectable).count();
    println!(
        "\n{missed}/11 not detectable by the pattern (paper: 8/11); OZZ finds all 11 dynamically"
    );
    println!(
        "(conversely, OFence needs no runnable target — the paper's OFence-found bugs live in\n driver submodules OZZ cannot generate inputs for, which this harness cannot model either)"
    );
}
