//! Ablation: hint-ordering strategies (DESIGN.md §7).
//!
//! The §4.3 heuristic executes hints in decreasing reorder-set size. This
//! ablation runs the same campaigns under the reversed (minimal-first) and
//! shuffled orderings and compares tests-to-discovery per bug, showing why
//! the paper's greedy choice pays: most bugs trigger on the largest
//! deviations from sequential order, so testing those first front-loads the
//! discoveries.

use bench::row;
use kernelsim::{BugId, BugSwitches};
use ozz::fuzzer::{FuzzConfig, Fuzzer, HintOrder};

fn tests_to_find(bug: BugId, order: HintOrder, budget: u64, cap: usize) -> Option<u64> {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::only([bug]),
        hint_order: order,
        max_hints_per_pair: cap,
        ..FuzzConfig::default()
    });
    while fuzzer.stats().mtis_run < budget {
        fuzzer.step();
        if let Some(found) = fuzzer.found().get(bug.expected_title()) {
            return Some(found.tests_to_find);
        }
    }
    None
}

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    // A representative slice: one bug per mechanism/shape.
    let bugs = [
        BugId::TlsSkProt,       // classic publication, S-S
        BugId::XskPoolPublish,  // mid-syscall group, S-S
        BugId::GsmDlci,         // reader-side, L-L
        BugId::PsockSavedReady, // non-maximal hint needed
        BugId::SmcFput,         // write-side oracle
    ];
    for cap in [1usize, 8] {
        println!(
            "Hint-ordering ablation — {} hint(s) executed per pair, budget {budget} per cell\n",
            cap
        );
        let widths = [8, 11, 12, 12, 10];
        println!(
            "{}",
            row(
                &["Bug", "Subsystem", "max-first", "min-first", "shuffled"],
                &widths
            )
        );
        let mut sums = [0u64; 3];
        let mut misses = [0u32; 3];
        for bug in bugs {
            let cells: Vec<String> = [
                HintOrder::MaxReorderFirst,
                HintOrder::MinReorderFirst,
                HintOrder::Shuffled,
            ]
            .iter()
            .enumerate()
            .map(|(i, &order)| match tests_to_find(bug, order, budget, cap) {
                Some(n) => {
                    sums[i] += n;
                    n.to_string()
                }
                None => {
                    misses[i] += 1;
                    "miss".to_string()
                }
            })
            .collect();
            println!(
                "{}",
                row(
                    &[
                        bug.label(),
                        bug.subsystem(),
                        &cells[0],
                        &cells[1],
                        &cells[2]
                    ],
                    &widths
                )
            );
        }
        println!(
            "\ntotals: max-first {} tests ({} misses) | min-first {} ({}) | shuffled {} ({})\n",
            sums[0], misses[0], sums[1], misses[1], sums[2], misses[2]
        );
    }
    println!("With a tight per-pair budget (1 hint), the ordering decides discovery outright:");
    println!("most bugs trigger only on the largest deviations from sequential order (§4.3).");
}
