//! Sharded-campaign scaling: MTI throughput at 1/2/4/8 workers.
//!
//! Runs the same fixed-budget campaign through `ozz::parallel` at each
//! worker count on the `kutil::bench` harness and emits one JSON line per
//! configuration with the derived MTIs/second and the speedup over the
//! single-worker run. The campaign targets the *patched* kernel with an
//! unfindable sentinel title so no early-stop shortens the measured work:
//! every configuration executes exactly the same `budget` MTIs.
//!
//! Speedup is bounded by the machine: on a single-core container every
//! worker count serializes onto one CPU and the curve is flat (barrier
//! overhead only); the near-linear region needs as many free cores as
//! workers.
//!
//! Run with: `cargo run --release --bin parallel_scaling [budget]`

use std::time::Duration;

use kernelsim::BugSwitches;
use kutil::bench::benchmark_group;
use ozz::parallel::ParallelCampaign;

const SEED: u64 = 7;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);
    println!("Sharded-campaign scaling: {budget} MTIs per configuration\n");

    let mut group = benchmark_group("parallel_scaling");
    group
        .sample_size(5)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    let mut base_rate = None;
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(&format!("campaign/{workers}w"), |b| {
            b.iter(|| {
                ParallelCampaign::new(SEED, workers, budget)
                    .target(BugSwitches::none(), vec!["<unfindable>".into()])
                    .run()
                    .stats
                    .mtis_run
            });
        });
        let median_ns = group
            .last_median_ns()
            .expect("bench_function just measured");
        let mtis_per_sec = budget as f64 * 1e9 / median_ns;
        let base = *base_rate.get_or_insert(mtis_per_sec);
        println!(
            "{{\"group\":\"parallel_scaling\",\"name\":\"mtis_per_sec\",\
             \"workers\":{workers},\"budget\":{budget},\
             \"mtis_per_sec\":{mtis_per_sec:.1},\
             \"speedup_vs_1w\":{:.2}}}",
            mtis_per_sec / base
        );
    }
    group.finish();
}
