//! Campaign-service scaling: MTI throughput at 1/2/4/8 workers.
//!
//! The work-stealing engine is deterministic by construction — worker
//! count changes only *when* batches run, never what they compute — so
//! scaling can be measured honestly on any machine:
//!
//! 1. **Measure** one campaign at `workers = 1` (inline, no threads),
//!    recording the wall cost of every `(shard, round)` batch.
//! 2. **Model** the engine's own greedy affinity-then-steal dispatch over
//!    those measured costs for 1/2/4/8 workers, yielding a deterministic
//!    makespan per worker count. This is the speedup a machine with that
//!    many free cores realises, computed without needing the cores: the
//!    round barrier and the dispatch order are exactly the engine's.
//! 3. **Cross-check** with a real 8-worker run: its merged report must be
//!    byte-identical to the 1-worker run (the determinism contract), and
//!    its steal counters are reported alongside the model.
//!
//! Wall-clock keys (`wall_*`) are also emitted for the two real runs and
//! are strictly *measured* numbers: `wall_speedup_8w` is the real ratio,
//! `host_cores` says how many CPUs the host actually offers, and
//! `wall_8w_oversubscribed` flags when 8 workers exceed `host_cores` —
//! in that regime the measured speedup is expected to be ≤ 1 (thread
//! overhead with no parallelism to buy), which is exactly what the keys
//! report. The modeled keys (`modeled_*`) are the scaling signal a
//! machine with free cores realises; they never masquerade as wall
//! measurements.
//!
//! The campaign targets the *patched* kernel with an unfindable sentinel
//! title so no early-stop shortens the measured work: every configuration
//! executes exactly the same `budget` MTIs.
//!
//! Run with: `cargo run --release --bin parallel_scaling [budget] [shards]`

use std::time::Instant;

use kernelsim::BugSwitches;
use ozz::campaign::{CampaignBuilder, CampaignReport};

const SEED: u64 = 7;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn campaign(budget: u64, shards: usize, workers: usize) -> (CampaignReport, f64) {
    let start = Instant::now();
    let report = CampaignBuilder::new(SEED)
        .shards(shards)
        .workers(workers)
        .budget(budget)
        .target(BugSwitches::none(), vec!["<unfindable>".into()])
        .run();
    (report, start.elapsed().as_secs_f64())
}

/// Deterministic makespan of the engine's dispatch policy over measured
/// batch costs: per round, deal each live shard's batch to the worker
/// that frees up first, preferring affinity and stealing the lowest
/// pending shard otherwise — exactly `ozz::parallel`'s policy. Returns
/// `(makespan_micros, steals)`.
fn model_dispatch(batches: &[Vec<u64>], workers: usize) -> (u64, u64) {
    let shards = batches.len();
    let rounds = batches.iter().map(|b| b.len()).max().unwrap_or(0);
    let mut affinity: Vec<usize> = (0..shards).map(|s| s % workers).collect();
    let mut makespan = 0u64;
    let mut steals = 0u64;
    for r in 0..rounds {
        let mut pending: Vec<usize> = (0..shards).filter(|&s| r < batches[s].len()).collect();
        let mut clock = vec![0u64; workers];
        while !pending.is_empty() {
            // The worker that frees up first takes the next batch.
            let w = (0..workers).min_by_key(|&w| clock[w]).expect("workers > 0");
            let pick = pending
                .iter()
                .position(|&s| affinity[s] == w)
                .unwrap_or_else(|| {
                    steals += 1;
                    0 // steal the lowest pending shard id
                });
            let s = pending.remove(pick);
            clock[w] += batches[s][r];
            affinity[s] = w;
        }
        // Round barrier: the next round starts when the slowest worker
        // finishes this one.
        makespan += clock.into_iter().max().expect("workers > 0");
    }
    (makespan, steals)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let budget: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3200);
    let shards: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Campaign scaling: {budget} MTIs over {shards} shards ({host_cores} host cores)\n");

    // Discarded warm-up: the first campaign in a fresh process pays all
    // the cold-start costs (pool boots installing the resident image,
    // page faults, allocator growth), which would otherwise be billed
    // entirely to whichever timed arm runs first and skew
    // `wall_speedup_8w` by run order rather than worker count.
    let _ = campaign(budget, shards, 1);
    let (one, wall_1w) = campaign(budget, shards, 1);
    let (eight, wall_8w) = campaign(budget, shards, 8);
    assert_eq!(
        format!("{:#?}", one.found),
        format!("{:#?}", eight.found),
        "worker count leaked into the merge"
    );
    assert_eq!(one.stats, eight.stats, "worker count leaked into the stats");

    let batches: Vec<Vec<u64>> = one
        .shard_stats
        .iter()
        .map(|s| s.batch_micros.clone())
        .collect();
    let total_batches: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let steal_total_8w: u64 = eight.shard_stats.iter().map(|s| s.steals).sum();
    let steal_max_shard_8w: u64 = eight
        .shard_stats
        .iter()
        .map(|s| s.steals)
        .max()
        .unwrap_or(0);

    let mut modeled = Vec::new();
    let base = model_dispatch(&batches, 1).0 as f64;
    for &w in &WORKER_COUNTS {
        let (makespan, model_steals) = model_dispatch(&batches, w);
        let mtis_per_sec = budget as f64 * 1e6 / makespan as f64;
        let speedup = base / makespan as f64;
        println!(
            "{{\"group\":\"parallel_scaling\",\"name\":\"modeled\",\"workers\":{w},\
             \"makespan_us\":{makespan},\"mtis_per_sec\":{mtis_per_sec:.1},\
             \"speedup_vs_1w\":{speedup:.2},\"efficiency\":{:.2},\"steals\":{model_steals}}}",
            speedup / w as f64
        );
        modeled.push((w, mtis_per_sec, speedup));
    }
    let wall_speedup_8w = wall_1w / wall_8w;
    let oversubscribed = host_cores < 8;
    println!(
        "\nwall (measured): 1w {:.1} MTIs/s | 8w {:.1} MTIs/s | speedup {wall_speedup_8w:.2}x{}",
        budget as f64 / wall_1w,
        budget as f64 / wall_8w,
        if oversubscribed {
            format!(" (8 workers on {host_cores} cores: oversubscribed, <=1x expected)")
        } else {
            String::new()
        }
    );
    println!(
        "steals: real 8w run stole {steal_total_8w}/{total_batches} batches (max {steal_max_shard_8w} on one shard)"
    );

    let speedup_8w = modeled.iter().find(|(w, ..)| *w == 8).expect("ran 8w").2;
    let steal_modeled_8w = model_dispatch(&batches, 8).1;
    let json = format!(
        "{{\n  \"bench\": \"parallel_scaling\",\n  \"seed\": {SEED},\n  \"budget\": {budget},\n  \
         \"shards\": {shards},\n  \"rounds\": {rounds},\n  \"host_cores\": {host_cores},\n  \
         \"wall_mtis_per_sec_1w\": {w1:.1},\n  \"wall_mtis_per_sec_8w\": {w8:.1},\n  \
         \"wall_speedup_8w\": {wall_speedup_8w:.2},\n  \
         \"wall_8w_oversubscribed\": {oversubscribed},\n  \
         {modeled_keys},\n  \"modeled_speedup_8w\": {speedup_8w:.2},\n  \
         {efficiency_keys},\n  \
         \"steal_total_8w\": {steal_total_8w},\n  \"steal_max_shard_8w\": {steal_max_shard_8w},\n  \
         \"steal_rate_8w\": {steal_rate:.3},\n  \"steal_modeled_8w\": {steal_modeled_8w},\n  \
         \"total_batches\": {total_batches}\n}}\n",
        rounds = one.rounds,
        w1 = budget as f64 / wall_1w,
        w8 = budget as f64 / wall_8w,
        modeled_keys = modeled
            .iter()
            .map(|(w, rate, _)| format!("\"modeled_mtis_per_sec_{w}w\": {rate:.1}"))
            .collect::<Vec<_>>()
            .join(",\n  "),
        efficiency_keys = modeled
            .iter()
            .map(|(w, _, sp)| format!("\"scaling_efficiency_{w}w\": {:.3}", sp / *w as f64))
            .collect::<Vec<_>>()
            .join(",\n  "),
        steal_rate = steal_total_8w as f64 / total_batches as f64,
    );
    std::fs::write("BENCH_parallel_scaling.json", &json)
        .expect("write BENCH_parallel_scaling.json");
    println!("\nwrote BENCH_parallel_scaling.json");
    print!("{json}");
}
