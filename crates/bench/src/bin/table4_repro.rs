//! Table 4: reproducing previously-reported OOO bugs (§6.2).
//!
//! For each of the nine known bugs, the fix patch is "reverted" (bug switch
//! enabled), the Syzkaller-style repro input is fed to OZZ as an STI, and
//! MTIs run in hint order until the bug triggers. Expected shape, matching
//! the paper: 8/9 reproduced — five store-store, three load-load — with the
//! tls row reproducing as a wrong value (`✓*`) and the sbitmap row failing
//! under CPU pinning (and succeeding with the §6.2 manual per-CPU
//! modification, shown as the verification line).

use bench::row;
use kernelsim::BugId;
use ozz::repro::{reproduce, table4};

fn main() {
    println!("Table 4 — previously-reported OOO bugs (fix patches reverted)\n");
    let widths = [5, 11, 13, 10, 5];
    println!(
        "{}",
        row(
            &["ID", "Subsystem", "Reproduced?", "# of tests", "Type"],
            &widths
        )
    );
    let results = table4();
    for r in &results {
        let mark = match (r.reproduced, r.wrong_value) {
            (true, false) => "yes".to_string(),
            (true, true) => "yes* (wrong value, no crash)".to_string(),
            (false, _) => "NO".to_string(),
        };
        let tests = if r.reproduced {
            r.tests.to_string()
        } else {
            format!("- ({} tried)", r.tests)
        };
        println!(
            "{}",
            row(
                &[
                    r.bug.label(),
                    r.bug.subsystem(),
                    &mark,
                    &tests,
                    &r.reorder_type.to_string(),
                ],
                &widths
            )
        );
    }
    let reproduced = results.iter().filter(|r| r.reproduced).count();
    println!(
        "\nreproduced {reproduced}/9 (paper: 8/9; the sbitmap per-CPU bug needs thread migration)"
    );

    // The §6.2 verification: with the manual per-CPU modification, the
    // sbitmap bug becomes reproducible.
    let verified = reproduce(BugId::KnownSbitmap, true);
    println!(
        "verification (§6.2): sbitmap with forced per-CPU sharing -> reproduced = {} in {} tests",
        verified.reproduced, verified.tests
    );
}
