//! Search vs replay: finding a concurrency bug with the full hint
//! pipeline versus reproducing it from a recorded schedule trace.
//!
//! The fuzzer serializes a [`ScheduleTrace`] into every `FoundBug`; a
//! reproduction then replays that schedule directly — no profiling, no
//! hint enumeration, no search — and must land on the identical verdict
//! and state digest. This bench quantifies the payoff: median
//! time-to-first-crash for a seeded campaign against median time for a
//! single trace replay of the same bug.
//!
//! Usage: `trace_replay [search_budget] [reps]` (defaults 30000, 5).
//! Writes `BENCH_trace_replay.json` into the working directory.
//!
//! [`ScheduleTrace`]: oemu::ScheduleTrace

use std::time::Instant;

use kernelsim::{BugId, BugSwitches};
use ozz::fuzzer::{FoundBug, FuzzConfig, Fuzzer};
use ozz::repro::reproduce_from_trace;

const BUG: BugId = BugId::KnownWatchQueuePost;

/// One seeded campaign until the bug is found; returns the FoundBug (with
/// its recorded trace) and the wall time in milliseconds.
fn search(budget: u64, seed: u64) -> (FoundBug, f64) {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed,
        bugs: BugSwitches::only([BUG]),
        ..FuzzConfig::default()
    });
    let start = Instant::now();
    fuzzer.run_until(budget, 1);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let bug = fuzzer
        .found()
        .get(BUG.expected_title())
        .expect("the campaign must find the bug within the budget")
        .clone();
    (bug, ms)
}

/// One trace replay of `bug`; returns wall time in milliseconds. Panics
/// if the replay is not faithful — a slow reproduction that does not
/// reproduce is not worth benchmarking.
fn replay(bug: &FoundBug) -> f64 {
    let start = Instant::now();
    let ok = reproduce_from_trace(bug, BugSwitches::only([BUG]));
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(ok, "recorded trace failed to reproduce the crash");
    ms
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Search vs replay for '{BUG}' (budget {budget}, {reps} reps)\n");

    let mut search_ms = Vec::with_capacity(reps);
    let mut replay_ms = Vec::with_capacity(reps);
    let mut tests_to_find = 0;
    for rep in 0..reps {
        // Vary the seed so "search" is a distribution, not one cached path;
        // every seed must still find the bug for the numbers to compare.
        let (bug, s) = search(budget, 2024 + rep as u64);
        let r = replay(&bug);
        println!(
            "rep {rep}: search {s:>9.2} ms ({} tests) | replay {r:>7.3} ms",
            bug.tests_to_find
        );
        tests_to_find = bug.tests_to_find;
        search_ms.push(s);
        replay_ms.push(r);
    }

    let search = median(search_ms);
    let replay = median(replay_ms);
    let speedup = search / replay;
    println!("\nmedian search: {search:>9.2} ms (profile + hints + schedule search)");
    println!("median replay: {replay:>9.3} ms (single slaved execution)");
    println!("speedup:       {speedup:.0}x");

    let json = format!(
        "{{\n  \"bug\": \"{BUG}\",\n  \"search_budget\": {budget},\n  \"reps\": {reps},\n  \
         \"tests_to_find\": {tests_to_find},\n  \
         \"search_ms\": {search:.2},\n  \"replay_ms\": {replay:.3},\n  \
         \"speedup\": {speedup:.1}\n}}\n"
    );
    std::fs::write("BENCH_trace_replay.json", json).expect("write BENCH_trace_replay.json");
    println!("\nwrote BENCH_trace_replay.json");
}
