//! Table 5: OEMU instrumentation overhead per operation class.
//!
//! The paper measures LMBench operations on Linux with and without OEMU
//! instrumentation (3.0x–59.0x). The analog here: each mini-kernel
//! operation class runs in a loop on a booted machine — with full
//! instrumentation (gates + KASAN + engine) and in raw mode (direct memory
//! access, the uninstrumented-Linux baseline) — and the per-iteration
//! latencies are compared. Boot cost is excluded from both sides, as the
//! paper's LMBench numbers exclude VM setup.

use bench::{ratio, row, time_us};
use kernelsim::{run_one, BugSwitches, Kctx, Syscall};
use oemu::Tid;

struct Class {
    name: &'static str,
    /// A workload that can repeat indefinitely on one machine.
    calls: &'static [Syscall],
}

/// Operation classes mirroring the LMBench rows (all repeatable in place).
const CLASSES: &[Class] = &[
    // null: the cheapest syscall path (an unbound getname).
    Class {
        name: "null",
        calls: &[Syscall::UnixGetname { fd: 0 }],
    },
    // stat: a miss lookup touching a couple of words.
    Class {
        name: "stat",
        calls: &[Syscall::VlanGet { id: 3 }],
    },
    // open/close analog: replace + evict a buffer head (alloc + free under
    // a bit lock).
    Class {
        name: "open/close",
        calls: &[Syscall::BhReplace, Syscall::BhEvict],
    },
    // File create/delete analog: sbitmap retire-and-refresh (alloc + free
    // + atomic bitops).
    Class {
        name: "File create",
        calls: &[Syscall::SbitmapClear, Syscall::SbitmapGet],
    },
    // pipe: the watch_queue post/read round trip.
    Class {
        name: "pipe",
        calls: &[Syscall::WqPost, Syscall::PipeRead],
    },
    // unix: the tracing ring buffer round trip (stream of small messages).
    Class {
        name: "unix",
        calls: &[
            Syscall::RingBufferWrite { data: 7 },
            Syscall::RingBufferRead,
        ],
    },
    // File rewrite: buffered write + read on the page cache page.
    Class {
        name: "File rewrite",
        calls: &[Syscall::FilemapWrite { val: 9 }, Syscall::FilemapRead],
    },
    // mmap analog: the RDS requeue+transmit path (cursor + message churn).
    Class {
        name: "mmap",
        calls: &[Syscall::RdsSendXmit, Syscall::RdsLoopXmit],
    },
];

fn measure(k: &std::sync::Arc<Kctx>, raw: bool, calls: &[Syscall], iters: u32) -> f64 {
    k.set_raw(raw);
    let us = time_us(iters, || {
        for &c in calls {
            run_one(k, Tid(0), c);
        }
    });
    k.set_raw(false);
    us
}

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("Table 5 — microbenchmark: raw (Linux) vs instrumented (Linux w/ OEMU)\n");
    let widths = [12, 14, 20, 9];
    println!(
        "{}",
        row(&["Tests", "raw (us)", "w/ OEMU (us)", "Overhead"], &widths)
    );
    let mut ratios = Vec::new();
    for class in CLASSES {
        // Separate machines per mode so history growth is comparable.
        let kraw = Kctx::new(BugSwitches::none());
        let kinst = Kctx::new(BugSwitches::none());
        let raw = measure(&kraw, true, class.calls, iters);
        let inst = measure(&kinst, false, class.calls, iters);
        ratios.push(inst / raw);
        println!(
            "{}",
            row(
                &[
                    class.name,
                    &format!("{raw:.3}"),
                    &format!("{inst:.3}"),
                    &ratio(inst, raw),
                ],
                &widths
            )
        );
    }
    // fork analog: machine boot (process creation).
    let boot = time_us(200, || {
        std::hint::black_box(Kctx::new(BugSwitches::none()));
    });
    println!(
        "{}",
        row(&["fork (boot)", "-", &format!("{boot:.3}"), "-"], &widths)
    );
    // ctxsw: the custom scheduler's breakpoint-driven context switch vs the
    // same two syscalls run sequentially.
    let ctxsw = {
        use ksched::{BreakWhen, Breakpoint, SchedulePlan};
        let sti = ozz::sti::Sti {
            calls: vec![Syscall::WqPost],
        };
        let traces = ozz::profile_sti(&sti, BugSwitches::none());
        let point = traces[0].events[0].iid();
        let k = Kctx::new(BugSwitches::none());
        time_us(500, || {
            let plan = SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 1,
                }),
            };
            kernelsim::execute(
                &k,
                kernelsim::ExecRequest::live(plan, Syscall::WqPost, Syscall::PipeRead),
            );
        })
    };
    let kseq = Kctx::new(BugSwitches::none());
    let seq = measure(&kseq, false, &[Syscall::WqPost, Syscall::PipeRead], 2000);
    println!(
        "{}",
        row(
            &[
                "ctxsw 2p/0k",
                &format!("{seq:.3}"),
                &format!("{ctxsw:.3}"),
                &ratio(ctxsw, seq),
            ],
            &widths
        )
    );
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    println!("\noverhead range {min:.1}x - {max:.1}x (paper: 3.0x - 59.0x on LMBench)");
}
