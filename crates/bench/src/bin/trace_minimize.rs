//! Trace minimization cost and payoff over the full oracle-matrix corpus.
//!
//! For every seeded bug: record a reproducer (directed §6.2 sweep, campaign
//! fallback), run the [`Triager`] minimization to its fixed point, and
//! account the shrink — replayable events before/after, candidate replays
//! spent, and wall time. The medians are the paper-style summary: how small
//! a recorded schedule gets, and what a minimization costs.
//!
//! Usage: `trace_minimize [reps]` (default 1; extra reps re-run the whole
//! corpus and keep per-bug median wall times). Writes
//! `BENCH_trace_minimize.json` into the working directory.

use std::time::Instant;

use kernelsim::{BugId, BugSwitches};
use ozz::triage::{record_reproducer, Triager};

fn all_bugs() -> Vec<BugId> {
    BugId::NEW
        .iter()
        .chain(BugId::KNOWN.iter())
        .chain(BugId::EXTENDED.iter())
        .copied()
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let bugs = all_bugs();
    println!(
        "Trace minimization over {} oracle-matrix bugs ({reps} rep(s))\n",
        bugs.len()
    );

    let mut before = Vec::new();
    let mut after = Vec::new();
    let mut reduction = Vec::new();
    let mut replays = Vec::new();
    let mut wall = Vec::new();
    let total = Instant::now();
    for &bug in &bugs {
        let r = record_reproducer(bug)
            .unwrap_or_else(|| panic!("{bug}: no reproducer within the budget"));
        let triager = Triager::new(BugSwitches::only([bug]));
        let mut wall_ms = Vec::with_capacity(reps);
        let mut min = triager.minimize(&r);
        wall_ms.push(min.stats.wall_ms);
        for _ in 1..reps {
            min = triager.minimize(&r);
            wall_ms.push(min.stats.wall_ms);
        }
        let s = &min.stats;
        println!(
            "{:<22} {:>3} -> {:>2} events ({:>4.1}% smaller) | {:>3} replays | {:>7.2} ms",
            bug.to_string(),
            s.events_before,
            s.events_after,
            s.reduction_pct(),
            s.replays,
            median(wall_ms.clone()),
        );
        before.push(s.events_before as f64);
        after.push(s.events_after as f64);
        reduction.push(s.reduction_pct());
        replays.push(s.replays as f64);
        wall.push(median(wall_ms));
    }
    let total_ms = total.elapsed().as_secs_f64() * 1e3;

    let events_before_median = median(before);
    let events_after_median = median(after);
    let reduction_pct_median = median(reduction);
    let replays_median = median(replays);
    let minimize_wall_ms_median = median(wall);
    println!(
        "\nmedian: {events_before_median:.0} -> {events_after_median:.0} events \
         ({reduction_pct_median:.1}% smaller), {replays_median:.0} replays, \
         {minimize_wall_ms_median:.2} ms per minimization"
    );
    println!("corpus wall time: {total_ms:.0} ms");

    let json = format!(
        "{{\n  \"bugs\": {},\n  \"reps\": {reps},\n  \
         \"events_before_median\": {events_before_median:.1},\n  \
         \"events_after_median\": {events_after_median:.1},\n  \
         \"reduction_pct_median\": {reduction_pct_median:.1},\n  \
         \"replays_median\": {replays_median:.1},\n  \
         \"minimize_wall_ms_median\": {minimize_wall_ms_median:.3},\n  \
         \"total_wall_ms\": {total_ms:.1}\n}}\n",
        bugs.len()
    );
    std::fs::write("BENCH_trace_minimize.json", json).expect("write BENCH_trace_minimize.json");
    println!("\nwrote BENCH_trace_minimize.json");
}
