//! §3/§7: in-vitro (offline) analysis vs in-vivo OZZ.
//!
//! The offline analyzer flags every reorderable publication pattern in a
//! pair's traces; OZZ actually executes the reorderings inside the running
//! kernel and lets the oracles judge. The table shows the offline
//! candidate counts against in-vivo confirmation, illustrating why the
//! paper argues for in-vivo emulation: the offline tool cannot tell a
//! harmful reordering from a benign one, nor detect context-dependent
//! consequences (the sbitmap row is a use-after-free, which requires the
//! allocator's runtime context to recognise).

use baselines::invitro::analyze_bug;
use bench::row;
use kernelsim::BugId;

fn main() {
    println!("In-vitro (offline) analysis vs in-vivo confirmation\n");
    let widths = [5, 11, 19, 18];
    println!(
        "{}",
        row(
            &["ID", "Subsystem", "offline candidates", "in-vivo confirmed"],
            &widths
        )
    );
    for bug in BugId::KNOWN {
        let r = analyze_bug(bug);
        println!(
            "{}",
            row(
                &[
                    bug.label(),
                    bug.subsystem(),
                    &r.candidates.to_string(),
                    if r.confirmed_in_vivo {
                        "yes (oracle)"
                    } else {
                        "no"
                    },
                ],
                &widths
            )
        );
    }
    println!(
        "\nThe offline tool ranks nothing and confirms nothing: every candidate needs manual\n\
         triage, and consequences that depend on kernel runtime context (freed objects,\n\
         lock state) are invisible to it — §3's motivation for in-vivo emulation."
    );
}
