//! The extended corpus: §2.2-cited historical OOO bugs, found/reproduced
//! by the same pipeline as Tables 3 and 4.
//!
//! These four bugs widen the consequence spectrum beyond Table 3's NULL
//! dereferences, covering every class §2.2 enumerates:
//!
//! - **E1** fs/buffer \[82\]  — memory corruption (double free);
//! - **E2** ring-buffer \[115\] — system crash (uninitialised event);
//! - **E3** mm/filemap \[62\] — data loss (silent wrong value);
//! - **E4** USB core \[95\]   — denial of service (the `usb_kill_urb` hang),
//!   and the suite's only **store-load** reordering.

use bench::row;
use kernelsim::{run_one, BugId, BugSwitches, Kctx, Syscall};
use oemu::Tid;
use ozz::fuzzer::{FuzzConfig, Fuzzer};
use ozz::hints::calc_hints;
use ozz::mti::build_mtis;
use ozz::profile_sti;
use ozz::sti::ext_bug_sti;

fn main() {
    println!("Extended corpus — historical OOO bugs cited in the paper's §2.2\n");
    let widths = [4, 12, 62, 5, 8];
    println!(
        "{}",
        row(&["ID", "Subsystem", "Outcome", "Type", "Tests"], &widths)
    );
    for bug in BugId::EXTENDED {
        let (outcome, tests) = hunt(bug);
        println!(
            "{}",
            row(
                &[
                    bug.label(),
                    bug.subsystem(),
                    &outcome,
                    &bug.reorder_type().to_string(),
                    &tests,
                ],
                &widths
            )
        );
    }
    println!(
        "\nE3 is the silent class: no oracle fires; only the returned value betrays the race."
    );
    println!("E4 exercises store-load reordering — delayed stores overtaking a later load (§3.1).");
}

/// Crash bugs go through the fuzzer; the silent filemap bug through the
/// directed wrong-value check (like Table 4's ✓* row).
fn hunt(bug: BugId) -> (String, String) {
    if bug == BugId::ExtFilemap {
        return (filemap_wrong_value(), "directed".into());
    }
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 2024,
        bugs: BugSwitches::only([bug]),
        ..FuzzConfig::default()
    });
    fuzzer.run_until(30_000, 1);
    match fuzzer.found().get(bug.expected_title()) {
        Some(info) => (info.title.clone(), info.tests_to_find.to_string()),
        None => ("not found within budget".into(), "-".into()),
    }
}

/// Runs the filemap repro pair under its hints and reports the first run
/// returning inconsistent data.
fn filemap_wrong_value() -> String {
    let bugs = BugSwitches::only([BugId::ExtFilemap]);
    let sti = ext_bug_sti(BugId::ExtFilemap).expect("repro input");
    let traces = profile_sti(&sti, bugs.clone());
    let mtis = build_mtis(
        &sti,
        |i, j| calc_hints(&traces[i].events, &traces[j].events),
        16,
    );
    for mti in mtis {
        let out = mti.run(bugs.clone());
        if out.ret_b == 0 {
            return "wrong value returned by filemap_read (uptodate page, stale data)".into();
        }
    }
    // Confirm the fixed kernel never returns the inconsistent value.
    let k = Kctx::new(BugSwitches::none());
    run_one(&k, Tid(0), Syscall::FilemapWrite { val: 0x1234 });
    "not reproduced".into()
}
