//! §6.3.2: fuzzing throughput — OZZ vs the Syzkaller-style baseline.
//!
//! The paper reports 0.92 tests/s for OZZ against 7.33 tests/s for
//! Syzkaller (7.9x), attributing the gap to instrumentation, profiling,
//! scheduling hypercalls, and reordering bookkeeping. The analog here: the
//! baseline executes generated programs on an *uninstrumented* (raw-mode)
//! kernel with no profiling, no hint calculation and no controlled
//! scheduling, while OZZ runs its full pipeline; both are measured in
//! tests/second over the same wall budget.

use std::time::Instant;

use kernelsim::{run_sti, BugSwitches, Kctx};
use ozz::fuzzer::{FuzzConfig, Fuzzer};
use ozz::sti::StiGen;

fn main() {
    let seconds: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    println!("Throughput comparison (wall budget {seconds:.1}s per tool)\n");

    // Baseline: Syzkaller-style — raw kernel, sequential program execution,
    // a test = one program run.
    let mut gen = StiGen::new(99);
    let start = Instant::now();
    let mut baseline_tests = 0u64;
    while start.elapsed().as_secs_f64() < seconds {
        let sti = gen.generate();
        let k = Kctx::new(BugSwitches::none());
        k.set_raw(true);
        run_sti(&k, &sti.calls);
        baseline_tests += 1;
    }
    let baseline_rate = baseline_tests as f64 / start.elapsed().as_secs_f64();

    // OZZ: the full pipeline — instrumented kernel, profiling, Algorithm 1,
    // MTI execution under the custom scheduler; a test = one MTI run.
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 99,
        bugs: BugSwitches::none(),
        ..FuzzConfig::default()
    });
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < seconds {
        fuzzer.step();
    }
    let ozz_rate = fuzzer.stats().mtis_run as f64 / start.elapsed().as_secs_f64();

    println!("baseline (no OEMU, no scheduling): {baseline_rate:>10.1} tests/s");
    println!("OZZ (full pipeline):               {ozz_rate:>10.1} tests/s");
    if ozz_rate > 0.0 {
        println!(
            "slowdown: {:.1}x (paper: 7.33 vs 0.92 tests/s = 7.9x)",
            baseline_rate / ozz_rate
        );
    }
    println!(
        "\nOZZ spent its budget on {} MTIs across {} STIs ({} coverage sites)",
        fuzzer.stats().mtis_run,
        fuzzer.stats().stis_run,
        fuzzer.stats().coverage
    );
}
