//! §7: KCSAN comparison — race visibility vs OOO-bug detection.
//!
//! KCSAN samples one unannotated access at a time and reports concurrent
//! accesses to the same location. The table shows, per seeded bug, whether
//! the KCSAN model sees *any* data race on the repro pair versus whether
//! OZZ triggers the actual crash — reproducing the paper's case-study
//! points: the RDS custom lock has no data race at all (case study 2), and
//! the TLS `WRITE_ONCE` mis-fix silences KCSAN while the OOO bug remains
//! (case study 1).

use baselines::kcsan::{bug_has_visible_race, scan_pair};
use bench::row;
use kernelsim::{BugId, BugSwitches, Syscall};
use ozz::repro::reproduce;
use ozz::sti::Sti;

fn main() {
    println!("KCSAN-style race visibility vs OZZ detection\n");
    let widths = [8, 11, 13, 13];
    println!(
        "{}",
        row(&["Bug", "Subsystem", "KCSAN race?", "OZZ crash?"], &widths)
    );
    for bug in BugId::KNOWN {
        let race = bug_has_visible_race(bug);
        let ozz = reproduce(bug, bug == BugId::KnownSbitmap).reproduced;
        println!(
            "{}",
            row(
                &[
                    bug.label(),
                    bug.subsystem(),
                    if race { "race seen" } else { "silent" },
                    if ozz { "crash" } else { "-" },
                ],
                &widths
            )
        );
    }
    // The two case studies from §6.1.
    println!("\ncase studies:");
    let rds = scan_pair(
        BugSwitches::only([BugId::RdsClearBit]),
        &Sti {
            calls: vec![Syscall::RdsSendXmit, Syscall::RdsLoopXmit],
        },
        0,
        1,
    );
    println!(
        "  RDS custom lock (Fig. 8):  KCSAN races = {} (no data race exists); OZZ -> KASAN OOB",
        rds.len()
    );
    let tls = scan_pair(
        BugSwitches::only([BugId::TlsSkProt]),
        &Sti {
            calls: vec![Syscall::TlsInit { fd: 0 }, Syscall::SetSockOpt { fd: 0 }],
        },
        0,
        1,
    );
    println!(
        "  TLS mis-fix (Fig. 7):      KCSAN races = {} (WRITE_ONCE silenced it); OZZ -> NULL deref",
        tls.len()
    );
}
