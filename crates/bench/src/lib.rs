//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Binaries (one per experiment; see `DESIGN.md` §4 for the index):
//!
//! - `table3_campaign` — Table 3: the fuzzing campaign over the 11 seeded
//!   new bugs;
//! - `table4_repro` — Table 4: directed reproduction of the 9 known bugs;
//! - `table5_table` — Table 5: instrumentation overhead per op class;
//! - `throughput` — §6.3.2: OZZ vs interleaving-only baseline tests/s;
//! - `parallel_scaling` — sharded-campaign MTI throughput at 1/2/4/8
//!   workers (JSON lines with speedup over one worker);
//! - `ofence_compare` — §6.4: the paired-barrier matcher over Table 3;
//! - `heuristic_rank` — §4.3: rank of the triggering scheduling hint;
//! - `invitro_compare` — §7: offline candidates vs in-vivo confirmation;
//! - `kcsan_compare` — §7: KCSAN race visibility vs OZZ detection.
//!
//! Criterion benches: `table5_micro` (the Table 5 measurement with proper
//! statistics), `oemu_ops` (engine ablations), `hints_calc` (Algorithm 1).

use std::time::Instant;

/// Formats a ratio like the paper's overhead column (`24.9x`).
pub fn ratio(instrumented: f64, raw: f64) -> String {
    if raw <= 0.0 {
        return "-".into();
    }
    format!("{:.1}x", instrumented / raw)
}

/// Times `iters` runs of `f` and returns the per-iteration microseconds.
pub fn time_us(iters: u32, mut f: impl FnMut()) -> f64 {
    // Warm-up.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// Prints a fixed-width table row.
pub fn row(cols: &[&str], widths: &[usize]) -> String {
    cols.iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formats_like_the_paper() {
        assert_eq!(ratio(43.3, 1.74), "24.9x");
        assert_eq!(ratio(1.0, 0.0), "-");
    }

    #[test]
    fn time_us_is_positive() {
        let us = time_us(10, || {
            std::hint::black_box(42);
        });
        assert!(us >= 0.0);
    }

    #[test]
    fn row_aligns_columns() {
        let r = row(&["a", "bb"], &[4, 4]);
        assert_eq!(r, "a     bb  ");
    }
}
