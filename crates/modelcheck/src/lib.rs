//! Bounded exhaustive schedule exploration for small MTIs.
//!
//! The fuzzer searches the reordering space with the §4.3 heuristic: one
//! hint per hypothetical barrier position, maximal reorder set first. This
//! crate instead *enumerates* the space — for a fixed syscall pair, every
//! admissible reordering schedule within a bound — and runs each one through
//! the same engine, giving ground truth for which pairs can crash and under
//! which schedules. Admissibility encodes the LKMM-style rules the engine
//! itself enforces (§3):
//!
//! - a delayed store may not be held across a store-ordering barrier
//!   (`smp_mb`/`smp_wmb`/release), so delay sets are drawn from within one
//!   store-barrier-bounded group of the profiled trace;
//! - a versioned load may not read past a load-ordering barrier
//!   (`smp_mb`/`smp_rmb`/acquire/`READ_ONCE`), so version sets are drawn
//!   from within one load-barrier-bounded group;
//! - the scheduling point (where the other CPU runs) follows the delayed
//!   stores (Figure 5a, break *after*) or precedes the versioned loads
//!   (Figure 5b, break *before*).
//!
//! Unlike the hint generator — whose reorder sets slide one access at a
//! time and are therefore prefixes (stores) or suffixes (loads) of a group
//! — the explorer tries **every subset** up to [`Bound::max_reorder`] and
//! every scheduling point up to [`Bound::max_sched_points`] per group.
//! Each schedule executes in record mode, so a crashing schedule carries a
//! replayable [`ScheduleTrace`]; [`differential_pair`] replays each one and
//! cross-checks the explorer's crash titles against the hint pipeline's
//! (every explorer-found crash must be reachable from some generated hint).

use std::collections::BTreeSet;
use std::sync::Arc;

use kernelsim::{run_one, BugId, BugSwitches, ExecMode, MachinePool, MemoryModel};
use oemu::{AccessKind, AccessRecord, BarrierKind, Iid, ScheduleTrace, Tid, TraceEvent};
use ozz::hints::{calc_hints_for, filter_out, HintKind, PairSide, SchedHint};
use ozz::mti::Mti;
use ozz::profile_sti_on;
use ozz::repro::replay_trace;
use ozz::sti::{known_bug_sti, Sti};

/// Enumeration bounds. Exhaustiveness is per-bound: within the bound every
/// admissible schedule runs; a hit on any cap is surfaced as
/// [`Exploration::truncated`], never silently.
#[derive(Clone, Copy, Debug)]
pub struct Bound {
    /// Largest reorder set per schedule (delayed-store or versioned-load
    /// count) — the paper's store-buffer-size analog.
    pub max_reorder: usize,
    /// Scheduling points tried per barrier-bounded group: the last N for
    /// the store test (nearest the real barrier), the first N for the load
    /// test.
    pub max_sched_points: usize,
    /// Hard cap on schedules per pair (keeps a pathological pair bounded).
    pub max_schedules: usize,
}

impl Default for Bound {
    fn default() -> Self {
        Bound {
            max_reorder: 3,
            max_sched_points: 4,
            max_schedules: 512,
        }
    }
}

/// One executed schedule and its observations.
#[derive(Clone, Debug)]
pub struct ExploredSchedule {
    /// The schedule, expressed as a synthetic scheduling hint (the same
    /// vocabulary the fuzzer uses, so it runs through the same [`Mti`]
    /// choreography).
    pub hint: SchedHint,
    /// Crash titles this schedule raised (empty: benign).
    pub titles: Vec<String>,
    /// Recorded schedule trace — replayable evidence.
    pub trace: ScheduleTrace,
    /// Post-run machine-state digest.
    pub digest: String,
}

/// Result of exploring one syscall pair.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Every schedule run, in deterministic enumeration order.
    pub schedules: Vec<ExploredSchedule>,
    /// A bound was hit; the enumeration is a prefix, not the full space.
    pub truncated: bool,
}

impl Exploration {
    /// The schedules that crashed.
    pub fn crashing(&self) -> impl Iterator<Item = &ExploredSchedule> {
        self.schedules.iter().filter(|s| !s.titles.is_empty())
    }

    /// Distinct crash titles across all schedules — the pair's ground-truth
    /// crash surface (within the bound).
    pub fn crash_titles(&self) -> BTreeSet<String> {
        self.crashing()
            .flat_map(|s| s.titles.iter().cloned())
            .collect()
    }
}

/// Explores every admissible schedule (within `bound`) of the pair
/// `(sti.calls[i], sti.calls[j])` on a `bugs` kernel, executing each in
/// record mode on a pooled machine with per-pair setup snapshot reuse —
/// exactly the fuzzer's execution discipline. Uses the process-default
/// executor ([`ExecMode::from_env`], stepped unless overridden — the cheap
/// one for enumeration) and memory model ([`MemoryModel::from_env`], TSO
/// unless overridden); [`explore_pair_with_mode`] pins the executor and
/// [`explore_pair_under`] pins both.
pub fn explore_pair(
    bugs: &BugSwitches,
    sti: &Sti,
    i: usize,
    j: usize,
    bound: &Bound,
) -> Exploration {
    explore_pair_with_mode(bugs, sti, i, j, bound, ExecMode::from_env())
}

/// [`explore_pair`] with the executor pinned, so an exploration can be
/// compared across executors in one process regardless of `OZZ_EXEC`. The
/// memory model still follows `OZZ_MEMMODEL` (TSO when unset).
pub fn explore_pair_with_mode(
    bugs: &BugSwitches,
    sti: &Sti,
    i: usize,
    j: usize,
    bound: &Bound,
    mode: ExecMode,
) -> Exploration {
    explore_pair_under(bugs, sti, i, j, bound, mode, MemoryModel::from_env())
}

/// [`explore_pair`] with both the executor and the memory model pinned.
/// The machine boots under `model`, admissibility (which barriers bound the
/// delay and version groups) is judged by `model`'s predicates, and every
/// recorded trace carries the model tag, so replays stay on-model.
pub fn explore_pair_under(
    bugs: &BugSwitches,
    sti: &Sti,
    i: usize,
    j: usize,
    bound: &Bound,
    mode: ExecMode,
    model: MemoryModel,
) -> Exploration {
    let pool = MachinePool::new();
    let m = pool.checkout_with_model(bugs, model);
    m.kctx().set_exec_mode(mode);
    let traces = profile_sti_on(m.kctx(), sti);
    let (hints, truncated) =
        enumerate_schedules(&traces[i].events, &traces[j].events, bound, model);

    let shared = Arc::new(sti.clone());
    let k = m.kctx();
    k.reset();
    for (idx, &call) in sti.calls.iter().enumerate().take(j) {
        if idx != i {
            run_one(k, Tid(0), call);
        }
    }
    let post_setup = k.snapshot();

    let mut schedules = Vec::with_capacity(hints.len());
    for hint in hints {
        let mti = Mti {
            sti: Arc::clone(&shared),
            i,
            j,
            hint,
        };
        k.restore(&post_setup);
        let rec = mti.run_pair_pooled_recorded(&m);
        schedules.push(ExploredSchedule {
            hint: mti.hint,
            titles: rec
                .outcome
                .crashes
                .iter()
                .map(|c| c.title.clone())
                .collect(),
            trace: rec.trace,
            digest: rec.digest,
        });
    }
    Exploration {
        schedules,
        truncated,
    }
}

/// Enumerates the admissible schedules of a pair from its profiled traces,
/// as synthetic [`SchedHint`]s. Deterministic: group order, then scheduling
/// point, then subset in combination order. `model` decides which barriers
/// bound a group — on Arm a `READ_ONCE` no longer closes a load group, so
/// the admissible space is strictly larger.
fn enumerate_schedules(
    si: &[TraceEvent],
    sj: &[TraceEvent],
    bound: &Bound,
    model: MemoryModel,
) -> (Vec<SchedHint>, bool) {
    let (fi, fj) = filter_out(si, sj);
    let mut out = Vec::new();
    let mut truncated = false;
    for (side, events, full) in [(PairSide::First, &fi, si), (PairSide::Second, &fj, sj)] {
        for kind in [HintKind::StoreBarrier, HintKind::LoadBarrier] {
            for group in barrier_groups(events, kind, model) {
                enumerate_group(&group, kind, side, full, bound, &mut out, &mut truncated);
            }
        }
    }
    (out, truncated)
}

/// Splits filtered events into groups bounded by barriers of the tested
/// type — the same grouping Algorithm 1 uses: reordering across a real
/// barrier is inadmissible. Which barriers count is a property of `model`
/// (the same predicates the engine itself consults).
fn barrier_groups(
    events: &[TraceEvent],
    kind: HintKind,
    model: MemoryModel,
) -> Vec<Vec<AccessRecord>> {
    let bounds = |b: BarrierKind| match kind {
        HintKind::StoreBarrier => model.barrier_orders_stores(b),
        HintKind::LoadBarrier => model.barrier_orders_loads(b),
    };
    let mut groups = Vec::new();
    let mut g: Vec<AccessRecord> = Vec::new();
    for e in events {
        match e {
            TraceEvent::Access(a) => g.push(*a),
            TraceEvent::Barrier(b) if bounds(b.kind) => groups.push(std::mem::take(&mut g)),
            TraceEvent::Barrier(_) => {}
        }
    }
    groups.push(g);
    groups.retain(|g| g.len() >= 2);
    groups
}

/// Emits every admissible schedule of one group: each scheduling point ×
/// each subset (≤ `max_reorder`) of the reorderable instructions on the
/// correct side of it. Reorder sets are per-*instruction* (distinct `Iid`),
/// matching the engine's Table 2 control granularity.
fn enumerate_group(
    group: &[AccessRecord],
    kind: HintKind,
    side: PairSide,
    full_trace: &[TraceEvent],
    bound: &Bound,
    out: &mut Vec<SchedHint>,
    truncated: &mut bool,
) {
    let wanted = match kind {
        HintKind::StoreBarrier => AccessKind::Store,
        HintKind::LoadBarrier => AccessKind::Load,
    };
    // Candidate scheduling points: positions with at least one reorderable
    // instruction on the admissible side (before, for the store test's
    // break-after; after, for the load test's break-before).
    let mut points: Vec<usize> = (0..group.len())
        .filter(|&p| {
            let range: &[AccessRecord] = match kind {
                HintKind::StoreBarrier => &group[..p],
                HintKind::LoadBarrier => &group[p + 1..],
            };
            range.iter().any(|a| a.kind == wanted)
        })
        .collect();
    match kind {
        // Nearest the group's real boundary first, like the hint generator.
        HintKind::StoreBarrier => points.reverse(),
        HintKind::LoadBarrier => {}
    }
    if points.len() > bound.max_sched_points {
        points.truncate(bound.max_sched_points);
        *truncated = true;
    }
    for p in points {
        let sched = group[p];
        let sched_hit = occurrence_of(full_trace, &sched);
        let candidates: Vec<AccessRecord> = {
            let range: &[AccessRecord] = match kind {
                HintKind::StoreBarrier => &group[..p],
                HintKind::LoadBarrier => &group[p + 1..],
            };
            // First dynamic occurrence per Iid: Table 2 controls are
            // per-instruction, so one representative per site.
            let mut seen: BTreeSet<Iid> = BTreeSet::new();
            range
                .iter()
                .filter(|a| a.kind == wanted && seen.insert(a.iid))
                .copied()
                .collect()
        };
        let max_r = bound.max_reorder.min(candidates.len());
        if candidates.len() > bound.max_reorder {
            *truncated = true;
        }
        for size in 1..=max_r {
            for combo in combinations(candidates.len(), size) {
                if out.len() >= bound.max_schedules {
                    *truncated = true;
                    return;
                }
                out.push(SchedHint {
                    kind,
                    reorderer: side,
                    sched,
                    sched_hit,
                    reorder: combo.iter().map(|&c| candidates[c]).collect(),
                });
            }
        }
    }
}

/// All `size`-element index combinations of `0..n`, lexicographic.
fn combinations(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(size);
    fn rec(start: usize, n: usize, size: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for k in start..n {
            cur.push(k);
            rec(k + 1, n, size, cur, out);
            cur.pop();
        }
    }
    rec(0, n, size, &mut cur, &mut out);
    out
}

/// 1-based occurrence index of `target.iid` at `target.ts` in the full
/// trace — the breakpoint hit count for instructions inside loops.
fn occurrence_of(full_trace: &[TraceEvent], target: &AccessRecord) -> u32 {
    let mut n = 0;
    for e in full_trace {
        if let TraceEvent::Access(a) = e {
            if a.iid == target.iid && a.ts <= target.ts {
                n += 1;
            }
        }
    }
    n.max(1)
}

/// Outcome of the explorer-vs-hint-generator cross-check on one pair.
#[derive(Clone, Debug)]
pub struct Differential {
    /// Crash titles the exhaustive exploration found.
    pub explorer_titles: BTreeSet<String>,
    /// Crash titles the hint pipeline (Algorithms 1+2, all hints) found.
    pub hint_titles: BTreeSet<String>,
    /// Explorer-found titles the hint pipeline missed — must be empty: a
    /// crash the heuristic search cannot reach is a hint-generator bug.
    pub explorer_only: BTreeSet<String>,
    /// Crashing schedules whose recorded trace failed to replay to the
    /// identical verdict and digest — must be 0.
    pub replay_failures: usize,
    /// Schedules the explorer ran.
    pub schedules_run: usize,
    /// The exploration hit a bound.
    pub truncated: bool,
}

impl Differential {
    /// The differential passes: hints cover the explorer's crash surface
    /// and every crashing schedule replays faithfully.
    pub fn ok(&self) -> bool {
        self.explorer_only.is_empty() && self.replay_failures == 0
    }
}

/// Runs the differential on one pair: explore exhaustively, replay-confirm
/// every crashing schedule, run the hint pipeline on the same pair, and
/// compare crash surfaces. Runs under the process-default memory model
/// ([`MemoryModel::from_env`]); [`differential_pair_under`] pins it.
pub fn differential_pair(
    bugs: &BugSwitches,
    sti: &Sti,
    i: usize,
    j: usize,
    bound: &Bound,
) -> Differential {
    differential_pair_under(bugs, sti, i, j, bound, MemoryModel::from_env())
}

/// [`differential_pair`] with the memory model pinned: explorer, replay,
/// and hint pipeline all run against `model`-booted machines, so the check
/// validates the hint generator's model-aware grouping per model.
pub fn differential_pair_under(
    bugs: &BugSwitches,
    sti: &Sti,
    i: usize,
    j: usize,
    bound: &Bound,
    model: MemoryModel,
) -> Differential {
    let exploration = explore_pair_under(bugs, sti, i, j, bound, ExecMode::from_env(), model);

    let mut replay_failures = 0;
    for s in exploration.crashing() {
        let rep = replay_trace(bugs.clone(), sti, i, j, &s.trace);
        let titles: Vec<String> = rep
            .outcome
            .crashes
            .iter()
            .map(|c| c.title.clone())
            .collect();
        if rep.diverged || titles != s.titles || rep.digest != s.digest {
            replay_failures += 1;
        }
    }

    // The hint pipeline on the same pair, every hint (no budget cap): the
    // reproduction-style choreography of `ozz::repro`.
    let pool = MachinePool::new();
    let m = pool.checkout_with_model(bugs, model);
    let traces = profile_sti_on(m.kctx(), sti);
    let hints = calc_hints_for(&traces[i].events, &traces[j].events, model);
    let shared = Arc::new(sti.clone());
    let mut hint_titles: BTreeSet<String> = BTreeSet::new();
    for hint in hints {
        let mti = Mti {
            sti: Arc::clone(&shared),
            i,
            j,
            hint,
        };
        let k = m.kctx();
        k.reset();
        mti.run_setup(k);
        let out = mti.run_pair_pooled(&m);
        hint_titles.extend(out.crashes.iter().map(|c| c.title.clone()));
    }

    let explorer_titles = exploration.crash_titles();
    let explorer_only = explorer_titles.difference(&hint_titles).cloned().collect();
    Differential {
        explorer_titles,
        hint_titles,
        explorer_only,
        replay_failures,
        schedules_run: exploration.schedules.len(),
        truncated: exploration.truncated,
    }
}

/// A named small MTI the explorer runs as a litmus case: a known bug, its
/// directed STI, and the racing pair.
#[derive(Clone, Debug)]
pub struct LitmusCase {
    /// Case name (CLI argument of the `explore` binary).
    pub name: &'static str,
    /// Kernel build: only the case's bug switch enabled.
    pub bugs: BugSwitches,
    /// The directed input.
    pub sti: Sti,
    /// Indices of the racing pair within the STI.
    pub pair: (usize, usize),
    /// The crash title the buggy kernel must expose.
    pub expected_title: &'static str,
}

/// The litmus corpus: small two-call MTIs with one seeded bug each,
/// covering both reordering types (store-store and load-load).
pub fn litmus_names() -> Vec<&'static str> {
    vec!["watch_queue", "fget", "vlan", "unix"]
}

/// Looks up a litmus case by name.
pub fn litmus_case(name: &str) -> Option<LitmusCase> {
    let bug = match name {
        "watch_queue" => BugId::KnownWatchQueuePost,
        "fget" => BugId::KnownFget,
        "vlan" => BugId::KnownVlan,
        "unix" => BugId::KnownUnix,
        _ => return None,
    };
    let name = match name {
        "watch_queue" => "watch_queue",
        "fget" => "fget",
        "vlan" => "vlan",
        _ => "unix",
    };
    Some(LitmusCase {
        name,
        bugs: BugSwitches::only([bug]),
        sti: known_bug_sti(bug).expect("litmus bugs have directed STIs"),
        pair: (0, 1),
        expected_title: bug.expected_title(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_are_exhaustive_and_ordered() {
        assert_eq!(combinations(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(combinations(4, 1).len(), 4);
        assert_eq!(combinations(5, 3).len(), 10);
        assert!(combinations(2, 3).is_empty(), "size > n yields nothing");
    }

    #[test]
    fn explorer_finds_the_watch_queue_crash() {
        let case = litmus_case("watch_queue").unwrap();
        let exp = explore_pair(
            &case.bugs,
            &case.sti,
            case.pair.0,
            case.pair.1,
            &Bound::default(),
        );
        assert!(
            exp.crash_titles().contains(case.expected_title),
            "exhaustive enumeration must reach the Figure 1 crash; found: {:?}",
            exp.crash_titles()
        );
        // Ground truth is two-sided: benign schedules exist too (e.g. the
        // subsets that delay only the flag store).
        assert!(exp.schedules.iter().any(|s| s.titles.is_empty()));
    }

    #[test]
    fn fixed_kernel_has_no_crashing_schedule() {
        // The in-vivo analog of a litmus "forbidden outcome": with the
        // patch applied, *no* admissible schedule within the bound crashes.
        let case = litmus_case("watch_queue").unwrap();
        let exp = explore_pair(
            &BugSwitches::none(),
            &case.sti,
            case.pair.0,
            case.pair.1,
            &Bound::default(),
        );
        assert!(!exp.schedules.is_empty(), "schedules still enumerate");
        assert!(
            exp.crash_titles().is_empty(),
            "patched kernel crashes under no admissible schedule"
        );
    }

    #[test]
    fn tight_bounds_truncate_loudly() {
        let case = litmus_case("watch_queue").unwrap();
        let exp = explore_pair(
            &case.bugs,
            &case.sti,
            0,
            1,
            &Bound {
                max_reorder: 1,
                max_sched_points: 1,
                max_schedules: 2,
            },
        );
        assert!(exp.truncated, "hitting a cap must be surfaced");
        assert!(exp.schedules.len() <= 2);
    }

    #[test]
    fn differential_passes_on_a_store_store_case() {
        let case = litmus_case("watch_queue").unwrap();
        let d = differential_pair(
            &case.bugs,
            &case.sti,
            case.pair.0,
            case.pair.1,
            &Bound::default(),
        );
        assert!(
            d.ok(),
            "hint generator must cover the explorer: explorer_only={:?} replay_failures={}",
            d.explorer_only,
            d.replay_failures
        );
        assert!(d.explorer_titles.contains(case.expected_title));
        assert!(d.hint_titles.contains(case.expected_title));
    }

    #[test]
    fn differential_passes_under_every_memory_model() {
        // Satellite check: the model-aware hint generator must cover the
        // model-aware exhaustive explorer on every model, and every
        // crashing trace (tagged with its model) must replay on-model.
        let case = litmus_case("watch_queue").unwrap();
        for model in MemoryModel::ALL {
            let d = differential_pair_under(
                &case.bugs,
                &case.sti,
                case.pair.0,
                case.pair.1,
                &Bound::default(),
                model,
            );
            assert!(
                d.ok(),
                "{model:?}: explorer_only={:?} replay_failures={}",
                d.explorer_only,
                d.replay_failures
            );
            assert!(
                d.explorer_titles.contains(case.expected_title),
                "{model:?} must still reach the crash"
            );
        }
    }

    #[test]
    fn arm_enumerates_at_least_the_tso_load_space() {
        // The Arm model stops treating READ_ONCE as a load barrier, so its
        // admissible schedule space is a superset of TSO's for any pair.
        let case = litmus_case("fget").unwrap();
        let b = Bound::default();
        let mode = ExecMode::Stepped;
        let tso = explore_pair_under(&case.bugs, &case.sti, 0, 1, &b, mode, MemoryModel::Tso);
        let arm = explore_pair_under(&case.bugs, &case.sti, 0, 1, &b, mode, MemoryModel::Arm);
        assert!(
            arm.schedules.len() >= tso.schedules.len(),
            "arm admits {} schedules, tso {}",
            arm.schedules.len(),
            tso.schedules.len()
        );
    }

    #[test]
    fn differential_passes_on_a_load_load_case() {
        let case = litmus_case("fget").unwrap();
        let d = differential_pair(
            &case.bugs,
            &case.sti,
            case.pair.0,
            case.pair.1,
            &Bound::default(),
        );
        assert!(d.ok(), "explorer_only={:?}", d.explorer_only);
        assert!(d.explorer_titles.contains(case.expected_title));
    }
}
