//! `explore` — run the bounded exhaustive schedule explorer on a litmus
//! case (or all of them) and cross-check the hint generator.
//!
//! Usage: `explore [case|all] [max_reorder] [max_sched_points]`
//!
//! Exit status is non-zero if any differential fails: an explorer-found
//! crash the hint pipeline cannot reach, or a crashing schedule whose
//! recorded trace does not replay to the identical verdict and digest.

use modelcheck::{differential_pair, litmus_case, litmus_names, Bound};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let mut bound = Bound::default();
    if let Some(v) = args.get(2).and_then(|s| s.parse().ok()) {
        bound.max_reorder = v;
    }
    if let Some(v) = args.get(3).and_then(|s| s.parse().ok()) {
        bound.max_sched_points = v;
    }

    let names: Vec<&str> = if which == "all" {
        litmus_names()
    } else {
        vec![which]
    };

    let mut failed = false;
    for name in names {
        let Some(case) = litmus_case(name) else {
            eprintln!("unknown litmus case '{name}'; known: {:?}", litmus_names());
            std::process::exit(2);
        };
        let d = differential_pair(&case.bugs, &case.sti, case.pair.0, case.pair.1, &bound);
        let verdict = if d.ok() { "ok" } else { "FAIL" };
        println!(
            "{name}: {verdict} — {} schedules, {} explorer crash title(s), \
             {} hint title(s), {} replay failure(s){}",
            d.schedules_run,
            d.explorer_titles.len(),
            d.hint_titles.len(),
            d.replay_failures,
            if d.truncated { ", truncated" } else { "" },
        );
        if !d.explorer_titles.contains(case.expected_title) {
            println!("  MISSING expected crash: {}", case.expected_title);
            failed = true;
        }
        for t in &d.explorer_only {
            println!("  explorer-only crash (hint generator missed it): {t}");
        }
        if !d.ok() {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
