//! The custom scheduler (§4.4.1, Appendix §10.3).
//!
//! OZZ needs a mechanism to deterministically control thread interleaving in
//! addition to OEMU's control over memory-access reordering. The paper
//! implements this in the hypervisor: the fuzzer delivers a scheduling point
//! through a hypercall, the hypervisor installs a breakpoint, keeps exactly
//! one virtual CPU running at a time, and switches vCPUs when the breakpoint
//! is hit (Figure 9).
//!
//! This crate provides that contract twice, over the same plan/record/replay
//! vocabulary:
//!
//! - [`Scheduler`] — the threaded executor. Every simulated CPU is a real
//!   thread, but a token serialises them so exactly one executes at a time;
//!   context switches happen only at instrumented access *gates*, where the
//!   scheduler checks the installed [`Breakpoint`] and parks the thread on a
//!   condvar while the other runs.
//! - [`StepScheduler`] — the threadless executor. Both CPUs are *legs*
//!   (boxed closures) run on one OS thread; a gate that fires simply calls
//!   the peer leg as a nested function and resumes when it returns. This is
//!   sound because a pair run performs at most one deliberate handoff (the
//!   single optional breakpoint disarms when it fires), so the suspended
//!   side always sits below the running side on the call stack.
//!
//! Crucially — and this is the property §2.3 says breakpoint-based tools
//! destroy and OEMU restores — suspending a CPU in either executor does
//! **not** flush its virtual store buffer, so delayed stores stay invisible
//! across the switch, exactly like a suspended vCPU whose in-flight stores
//! the paper's OEMU keeps buffered.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use oemu::{iid, Tid};
//! use ksched::{BreakWhen, Breakpoint, SchedulePlan, Scheduler};
//!
//! let point = iid!();
//! let plan = SchedulePlan {
//!     first: Tid(0),
//!     breakpoint: Some(Breakpoint { iid: point, when: BreakWhen::After, hit: 1 }),
//! };
//! let sched = Arc::new(Scheduler::new(2, plan));
//! let order = Arc::new(kutil::sync::Mutex::new(Vec::new()));
//! std::thread::scope(|s| {
//!     let (sc, ord) = (Arc::clone(&sched), Arc::clone(&order));
//!     s.spawn(move || {
//!         sc.thread_start(Tid(0));
//!         ord.lock().push("t0-a");
//!         sc.gate_after(Tid(0), point); // breakpoint: switch to t1
//!         ord.lock().push("t0-b");
//!         sc.thread_finish(Tid(0));
//!     });
//!     let (sc, ord) = (Arc::clone(&sched), Arc::clone(&order));
//!     s.spawn(move || {
//!         sc.thread_start(Tid(1));
//!         ord.lock().push("t1");
//!         sc.thread_finish(Tid(1));
//!     });
//! });
//! assert_eq!(*order.lock(), vec!["t0-a", "t1", "t0-b"]);
//! ```

#![deny(missing_docs)]

use kutil::sync::{Condvar, Mutex};
use oemu::{BarrierKind, Iid, MemoryModel, SwitchPoint, Tid};

/// The scheduler-facing capability view of a memory model.
///
/// Planning layers above the scheduler — hint generation, exhaustive
/// schedule enumeration — must know which barriers bound a reorder group
/// and whether a release store can itself be overtaken. Those are
/// properties of the emulated memory model, not of the scheduler, but the
/// planners consume them in scheduling vocabulary ("does this barrier
/// close the group my breakpoint targets?"), so `ModelCaps` packages
/// OEMU's model predicates under that vocabulary and keeps the planners
/// free of hard-coded TSO assumptions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ModelCaps {
    model: MemoryModel,
}

impl ModelCaps {
    /// The capability view of `model`.
    pub fn of(model: MemoryModel) -> Self {
        ModelCaps { model }
    }

    /// The wrapped model.
    pub fn model(self) -> MemoryModel {
        self.model
    }

    /// Whether barrier `b` closes a **store** reorder group: a delayed
    /// store may not be held across it, so store-test hints must draw
    /// their reorder sets from within one such group (Algorithm 1's
    /// grouping rule).
    pub fn bounds_store_group(self, b: BarrierKind) -> bool {
        self.model.barrier_orders_stores(b)
    }

    /// Whether barrier `b` closes a **load** reorder group: a versioned
    /// load may not read past it. On the Arm-like model `READ_ONCE` no
    /// longer qualifies, so load groups — and with them the admissible
    /// version sets — grow.
    pub fn bounds_load_group(self, b: BarrierKind) -> bool {
        self.model.barrier_orders_loads(b)
    }

    /// Whether a release store can itself sit in the store buffer while a
    /// later plain store commits (PSO and Arm-like). Under TSO a release
    /// store is never delayable, so a store-test hint that delays one is a
    /// no-op the planner may skip.
    pub fn release_store_is_delayable(self) -> bool {
        self.model.release_store_is_delayable()
    }
}

/// Whether the context switch fires before or after the matched access.
///
/// The hypothetical **store** barrier test (Figure 5a) interleaves *after*
/// the scheduling-point access (the store past the hypothetical barrier has
/// committed; the delayed ones have not). The hypothetical **load** barrier
/// test (Figure 5b) interleaves *before* it (the other syscall must run
/// first to populate the store history).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BreakWhen {
    /// Switch before the access executes.
    Before,
    /// Switch after the access executes.
    After,
}

/// A scheduling point: switch threads at the `hit`-th execution of `iid`.
#[derive(Copy, Clone, Debug)]
pub struct Breakpoint {
    /// Instrumented access to break on.
    pub iid: Iid,
    /// Break before or after the access.
    pub when: BreakWhen,
    /// 1-based occurrence count (an instruction in a loop executes many
    /// times; the profile tells the fuzzer which occurrence to target).
    pub hit: u32,
}

/// A deterministic schedule for one multi-threaded input.
#[derive(Copy, Clone, Debug)]
pub struct SchedulePlan {
    /// Thread that runs first (the paper's `start_first()`).
    pub first: Tid,
    /// Optional scheduling point; without one, threads simply run to
    /// completion in order.
    pub breakpoint: Option<Breakpoint>,
}

impl SchedulePlan {
    /// A plan with no context switch: `first` runs to completion, then the
    /// other threads in index order.
    pub fn sequential(first: Tid) -> Self {
        SchedulePlan {
            first,
            breakpoint: None,
        }
    }
}

/// How the scheduler decides context switches for one run.
#[derive(Copy, Clone, PartialEq, Eq)]
enum SchedMode {
    /// Live plan-driven execution (the default).
    Plan,
    /// Live plan-driven execution, logging each breakpoint handoff as a
    /// [`SwitchPoint`] for later replay.
    Record,
    /// Slaved to a recorded switch log instead of a breakpoint.
    Replay,
}

struct State {
    active: Tid,
    finished: Vec<bool>,
    /// Breakpoint armed for the currently-running first thread.
    armed: Option<Breakpoint>,
    hits: u32,
    switches: u32,
    /// Per-thread count of gate calls (record/replay modes only): the
    /// stable coordinate system switch points are keyed by. Counts every
    /// gate call — both phases, matching or not — so it is independent of
    /// which breakpoint was armed.
    gate_counts: Vec<u32>,
    /// Recorded handoffs (record mode output / replay mode script).
    switch_log: Vec<SwitchPoint>,
    /// Cursor into `switch_log` (replay mode).
    cursor: usize,
}

/// Token-passing scheduler for one test run.
pub struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    nthreads: usize,
    mode: SchedMode,
}

impl Scheduler {
    fn with_mode(
        nthreads: usize,
        first: Tid,
        breakpoint: Option<Breakpoint>,
        mode: SchedMode,
        switch_log: Vec<SwitchPoint>,
    ) -> Self {
        assert!(first.0 < nthreads, "first thread out of range");
        Scheduler {
            state: Mutex::new(State {
                active: first,
                finished: vec![false; nthreads],
                armed: breakpoint,
                hits: 0,
                switches: 0,
                gate_counts: vec![0; nthreads],
                switch_log,
                cursor: 0,
            }),
            cv: Condvar::new(),
            nthreads,
            mode,
        }
    }

    /// Creates a scheduler for `nthreads` simulated CPUs following `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `plan.first` is out of range.
    pub fn new(nthreads: usize, plan: SchedulePlan) -> Self {
        Self::with_mode(
            nthreads,
            plan.first,
            plan.breakpoint,
            SchedMode::Plan,
            Vec::new(),
        )
    }

    /// Like [`Scheduler::new`], but every breakpoint-driven handoff is
    /// logged as a [`SwitchPoint`]; collect the log with
    /// [`take_switch_log`](Scheduler::take_switch_log) after the run.
    pub fn recording(nthreads: usize, plan: SchedulePlan) -> Self {
        Self::with_mode(
            nthreads,
            plan.first,
            plan.breakpoint,
            SchedMode::Record,
            Vec::new(),
        )
    }

    /// Creates a scheduler slaved to a recorded switch log: no breakpoint,
    /// the token moves exactly where (and when, in per-thread gate counts)
    /// the log says it moved. Implicit handoffs at thread exit follow the
    /// normal finish path, exactly as they did at record time.
    pub fn replaying(nthreads: usize, first: Tid, switches: Vec<SwitchPoint>) -> Self {
        Self::with_mode(nthreads, first, None, SchedMode::Replay, switches)
    }

    /// Takes the switch log recorded by a [`recording`](Scheduler::recording)
    /// scheduler.
    pub fn take_switch_log(&self) -> Vec<SwitchPoint> {
        std::mem::take(&mut self.state.lock().switch_log)
    }

    /// Blocks until `tid` holds the execution token. Must be the first call
    /// a simulated CPU makes.
    pub fn thread_start(&self, tid: Tid) {
        let mut st = self.state.lock();
        while st.active != tid {
            self.cv.wait(&mut st);
        }
    }

    /// Gate checked *before* an instrumented access executes.
    pub fn gate_before(&self, tid: Tid, iid: Iid) {
        self.gate(tid, iid, BreakWhen::Before);
    }

    /// Gate checked *after* an instrumented access executes.
    pub fn gate_after(&self, tid: Tid, iid: Iid) {
        self.gate(tid, iid, BreakWhen::After);
    }

    fn gate(&self, tid: Tid, iid: Iid, phase: BreakWhen) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.active, tid, "only the token holder may execute");
        if self.mode != SchedMode::Plan {
            st.gate_counts[tid.0] += 1;
        }
        if self.mode == SchedMode::Replay {
            // Replay: fire exactly at the recorded per-thread gate count.
            // A target that already finished cannot be resumed; skipping
            // the entry keeps the run alive and the engine-side step
            // cursor reports the divergence.
            if let Some(&sp) = st.switch_log.get(st.cursor) {
                if sp.tid == tid && sp.nth_gate == st.gate_counts[tid.0] {
                    st.cursor += 1;
                    if sp.to.0 < self.nthreads && !st.finished[sp.to.0] {
                        st.active = sp.to;
                        st.switches += 1;
                        self.cv.notify_all();
                        while st.active != tid {
                            self.cv.wait(&mut st);
                        }
                    }
                }
            }
            return;
        }
        let Some(bp) = st.armed else { return };
        if bp.iid != iid || bp.when != phase {
            return;
        }
        // Occurrence counting happens at the matching phase only, so a
        // Before breakpoint and an After breakpoint on the same iid count
        // identically.
        st.hits += 1;
        if st.hits < bp.hit {
            return;
        }
        // Fire: disarm, hand the token to the next runnable thread, and wait
        // to be resumed (the Figure 9 suspend/resume pair).
        st.armed = None;
        if let Some(next) = self.next_runnable(&st, tid) {
            if self.mode == SchedMode::Record {
                let nth_gate = st.gate_counts[tid.0];
                st.switch_log.push(SwitchPoint {
                    tid,
                    nth_gate,
                    to: next,
                });
            }
            st.active = next;
            st.switches += 1;
            self.cv.notify_all();
            while st.active != tid {
                self.cv.wait(&mut st);
            }
        }
    }

    /// Marks `tid` finished and passes the token to the next runnable
    /// thread (or back to a thread suspended at its breakpoint).
    pub fn thread_finish(&self, tid: Tid) {
        let mut st = self.state.lock();
        st.finished[tid.0] = true;
        if let Some(next) = self.next_runnable(&st, tid) {
            st.active = next;
        }
        self.cv.notify_all();
    }

    /// Number of breakpoint-driven context switches that occurred.
    pub fn switches(&self) -> u32 {
        self.state.lock().switches
    }

    /// Whether every registered thread has finished.
    pub fn all_finished(&self) -> bool {
        self.state.lock().finished.iter().all(|&f| f)
    }

    fn next_runnable(&self, st: &State, current: Tid) -> Option<Tid> {
        (1..=self.nthreads)
            .map(|off| Tid((current.0 + off) % self.nthreads))
            .find(|t| !st.finished[t.0])
    }
}

/// One simulated CPU's execution as a value: the closure the step scheduler
/// invokes when that CPU is scheduled.
pub type Leg = Box<dyn FnOnce() + Send>;

/// Threadless scheduler: both simulated CPUs run interleaved on the calling
/// OS thread, and a context switch is a nested function call instead of a
/// condvar handshake.
///
/// The state machine — active thread, armed [`Breakpoint`], hit counting,
/// per-thread gate counts, switch logging — is the [`Scheduler`]'s, line for
/// line, so a run under either executor takes byte-identical scheduling
/// decisions. What differs is only the suspend/resume mechanism: where the
/// threaded gate parks the firing thread and wakes the peer, the stepped
/// gate *calls* the peer's [`Leg`] and continues when it returns.
///
/// The nested-call model is complete for everything the planner can
/// express: a [`SchedulePlan`] carries at most one breakpoint, which disarms
/// when it fires, so a run performs at most one deliberate handoff and the
/// suspended leg always resumes in stack (LIFO) order. Replaying a recorded
/// switch log with more than one [`SwitchPoint`] would need non-LIFO
/// resumption; callers route such traces to the threaded executor (the
/// recorded logs this workspace produces never contain more than one).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use oemu::{iid, Tid};
/// use ksched::{BreakWhen, Breakpoint, SchedulePlan, StepScheduler};
///
/// let point = iid!();
/// let plan = SchedulePlan {
///     first: Tid(0),
///     breakpoint: Some(Breakpoint { iid: point, when: BreakWhen::After, hit: 1 }),
/// };
/// let sched = Arc::new(StepScheduler::new(2, plan));
/// let order = Arc::new(kutil::sync::Mutex::new(Vec::new()));
/// let (sc, ord) = (Arc::clone(&sched), Arc::clone(&order));
/// sched.set_leg(Tid(0), Box::new(move || {
///     sc.leg_start(Tid(0));
///     ord.lock().push("t0-a");
///     sc.gate_after(Tid(0), point); // breakpoint: runs leg 1 inline
///     ord.lock().push("t0-b");
///     sc.leg_finish(Tid(0));
/// }));
/// let (sc, ord) = (Arc::clone(&sched), Arc::clone(&order));
/// sched.set_leg(Tid(1), Box::new(move || {
///     sc.leg_start(Tid(1));
///     ord.lock().push("t1");
///     sc.leg_finish(Tid(1));
/// }));
/// sched.run();
/// assert_eq!(*order.lock(), vec!["t0-a", "t1", "t0-b"]);
/// ```
pub struct StepScheduler {
    state: Mutex<State>,
    legs: Mutex<Vec<Option<Leg>>>,
    nthreads: usize,
    mode: SchedMode,
}

impl StepScheduler {
    fn with_mode(
        nthreads: usize,
        first: Tid,
        breakpoint: Option<Breakpoint>,
        mode: SchedMode,
        switch_log: Vec<SwitchPoint>,
    ) -> Self {
        assert!(first.0 < nthreads, "first thread out of range");
        StepScheduler {
            state: Mutex::new(State {
                active: first,
                finished: vec![false; nthreads],
                armed: breakpoint,
                hits: 0,
                switches: 0,
                gate_counts: vec![0; nthreads],
                switch_log,
                cursor: 0,
            }),
            legs: Mutex::new((0..nthreads).map(|_| None).collect()),
            nthreads,
            mode,
        }
    }

    /// Creates a step scheduler for `nthreads` simulated CPUs following
    /// `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `plan.first` is out of range.
    pub fn new(nthreads: usize, plan: SchedulePlan) -> Self {
        Self::with_mode(
            nthreads,
            plan.first,
            plan.breakpoint,
            SchedMode::Plan,
            Vec::new(),
        )
    }

    /// Like [`StepScheduler::new`], but every breakpoint-driven handoff is
    /// logged as a [`SwitchPoint`]; collect the log with
    /// [`take_switch_log`](StepScheduler::take_switch_log) after the run.
    pub fn recording(nthreads: usize, plan: SchedulePlan) -> Self {
        Self::with_mode(
            nthreads,
            plan.first,
            plan.breakpoint,
            SchedMode::Record,
            Vec::new(),
        )
    }

    /// Creates a step scheduler slaved to a recorded switch log with at most
    /// one entry. Logs with more switches need non-LIFO resumption and must
    /// go to the threaded [`Scheduler`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `switches` holds more than one entry.
    pub fn replaying(nthreads: usize, first: Tid, switches: Vec<SwitchPoint>) -> Self {
        assert!(
            switches.len() <= 1,
            "multi-switch logs need the threaded scheduler"
        );
        Self::with_mode(nthreads, first, None, SchedMode::Replay, switches)
    }

    /// Takes the switch log recorded by a
    /// [`recording`](StepScheduler::recording) scheduler.
    pub fn take_switch_log(&self) -> Vec<SwitchPoint> {
        std::mem::take(&mut self.state.lock().switch_log)
    }

    /// Installs the closure that *is* thread `tid`'s execution. Must be set
    /// for every thread before [`run`](StepScheduler::run).
    pub fn set_leg(&self, tid: Tid, leg: Leg) {
        self.legs.lock()[tid.0] = Some(leg);
    }

    /// The stepped analog of [`Scheduler::thread_start`]: a leg's first
    /// call. Where the threaded version blocks until the token arrives, a
    /// leg is only ever *invoked* while it holds the token, so this merely
    /// asserts the invariant.
    pub fn leg_start(&self, tid: Tid) {
        debug_assert_eq!(
            self.state.lock().active,
            tid,
            "a leg runs only while it holds the token"
        );
    }

    /// The stepped analog of [`Scheduler::thread_finish`]: marks `tid`
    /// finished and hands the token to the next runnable thread — which, if
    /// this leg ran nested inside a peer's gate, is the suspended peer the
    /// gate returns into.
    pub fn leg_finish(&self, tid: Tid) {
        let mut st = self.state.lock();
        st.finished[tid.0] = true;
        if let Some(next) = self.next_runnable(&st, tid) {
            st.active = next;
        }
    }

    /// Gate checked *before* an instrumented access executes.
    pub fn gate_before(&self, tid: Tid, iid: Iid) {
        self.gate(tid, iid, BreakWhen::Before);
    }

    /// Gate checked *after* an instrumented access executes.
    pub fn gate_after(&self, tid: Tid, iid: Iid) {
        self.gate(tid, iid, BreakWhen::After);
    }

    fn gate(&self, tid: Tid, iid: Iid, phase: BreakWhen) {
        let next = {
            let mut st = self.state.lock();
            debug_assert_eq!(st.active, tid, "only the token holder may execute");
            if self.mode != SchedMode::Plan {
                st.gate_counts[tid.0] += 1;
            }
            if self.mode == SchedMode::Replay {
                // Replay: fire exactly at the recorded per-thread gate
                // count, with the threaded executor's skip rule for targets
                // that already finished.
                let mut next = None;
                if let Some(&sp) = st.switch_log.get(st.cursor) {
                    if sp.tid == tid && sp.nth_gate == st.gate_counts[tid.0] {
                        st.cursor += 1;
                        if sp.to.0 < self.nthreads && !st.finished[sp.to.0] {
                            st.active = sp.to;
                            st.switches += 1;
                            next = Some(sp.to);
                        }
                    }
                }
                next
            } else {
                let Some(bp) = st.armed else { return };
                if bp.iid != iid || bp.when != phase {
                    return;
                }
                st.hits += 1;
                if st.hits < bp.hit {
                    return;
                }
                // Fire: disarm and hand the token over — the decision logic
                // (including the self-handoff when the peer already
                // finished) is the threaded gate's verbatim.
                st.armed = None;
                match self.next_runnable(&st, tid) {
                    Some(next) => {
                        if self.mode == SchedMode::Record {
                            let nth_gate = st.gate_counts[tid.0];
                            st.switch_log.push(SwitchPoint {
                                tid,
                                nth_gate,
                                to: next,
                            });
                        }
                        st.active = next;
                        st.switches += 1;
                        Some(next)
                    }
                    None => None,
                }
            }
        };
        // Suspend/resume, threadless: run the peer's leg as a nested call
        // (with no locks held). A handoff to self — the peer already
        // finished — is counted above but needs no call, exactly like the
        // threaded gate's wait loop falling straight through.
        if let Some(next) = next {
            if next != tid {
                let leg = self.legs.lock()[next.0]
                    .take()
                    .expect("handoff target leg is pending");
                leg();
            }
        }
    }

    /// Runs all legs to completion on the calling thread, honouring the
    /// plan (or recorded log): the active leg runs until it fires a gate —
    /// which runs the peer leg nested — or finishes, after which the token
    /// moves to the next unfinished leg.
    ///
    /// # Panics
    ///
    /// Panics if a leg was not installed via
    /// [`set_leg`](StepScheduler::set_leg).
    pub fn run(&self) {
        loop {
            let next = {
                let st = self.state.lock();
                if st.finished.iter().all(|&f| f) {
                    None
                } else {
                    Some(st.active)
                }
            };
            let Some(tid) = next else { break };
            let leg = self.legs.lock()[tid.0]
                .take()
                .expect("every leg is installed before run()");
            leg();
        }
    }

    /// Number of deliberate context switches that occurred.
    pub fn switches(&self) -> u32 {
        self.state.lock().switches
    }

    /// Whether every leg has finished.
    pub fn all_finished(&self) -> bool {
        self.state.lock().finished.iter().all(|&f| f)
    }

    fn next_runnable(&self, st: &State, current: Tid) -> Option<Tid> {
        (1..=self.nthreads)
            .map(|off| Tid((current.0 + off) % self.nthreads))
            .find(|t| !st.finished[t.0])
    }
}

#[cfg(test)]
mod caps_tests {
    use super::*;

    #[test]
    fn caps_mirror_the_model_predicates() {
        for model in MemoryModel::ALL {
            let caps = ModelCaps::of(model);
            assert_eq!(caps.model(), model);
            for b in [
                BarrierKind::Full,
                BarrierKind::Rmb,
                BarrierKind::Wmb,
                BarrierKind::Acquire,
                BarrierKind::Release,
                BarrierKind::ReadOnce,
            ] {
                assert_eq!(caps.bounds_store_group(b), model.barrier_orders_stores(b));
                assert_eq!(caps.bounds_load_group(b), model.barrier_orders_loads(b));
            }
            assert_eq!(
                caps.release_store_is_delayable(),
                model.release_store_is_delayable()
            );
        }
    }

    #[test]
    fn arm_alone_lets_loads_cross_read_once() {
        assert!(ModelCaps::of(MemoryModel::Tso).bounds_load_group(BarrierKind::ReadOnce));
        assert!(ModelCaps::of(MemoryModel::Pso).bounds_load_group(BarrierKind::ReadOnce));
        assert!(!ModelCaps::of(MemoryModel::Arm).bounds_load_group(BarrierKind::ReadOnce));
    }

    #[test]
    fn only_tso_pins_release_stores() {
        assert!(!ModelCaps::of(MemoryModel::Tso).release_store_is_delayable());
        assert!(ModelCaps::of(MemoryModel::Pso).release_store_is_delayable());
        assert!(ModelCaps::of(MemoryModel::Arm).release_store_is_delayable());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oemu::iid;
    use std::sync::Arc;

    fn run_two(
        plan: SchedulePlan,
        body0: impl FnOnce(&Scheduler) + Send,
        body1: impl FnOnce(&Scheduler) + Send,
    ) -> Arc<Scheduler> {
        let sched = Arc::new(Scheduler::new(2, plan));
        std::thread::scope(|s| {
            let sc = Arc::clone(&sched);
            s.spawn(move || {
                sc.thread_start(Tid(0));
                body0(&sc);
                sc.thread_finish(Tid(0));
            });
            let sc = Arc::clone(&sched);
            s.spawn(move || {
                sc.thread_start(Tid(1));
                body1(&sc);
                sc.thread_finish(Tid(1));
            });
        });
        sched
    }

    #[test]
    fn sequential_plan_runs_first_to_completion() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two(
            SchedulePlan::sequential(Tid(1)),
            move |_| o0.lock().push(0),
            move |_| o1.lock().push(1),
        );
        assert_eq!(*order.lock(), vec![1, 0]);
    }

    #[test]
    fn after_breakpoint_switches_midway() {
        let point = iid!();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        let sched = run_two(
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 1,
                }),
            },
            move |sc| {
                o0.lock().push("t0-pre");
                sc.gate_after(Tid(0), point);
                o0.lock().push("t0-post");
            },
            move |sc| {
                o1.lock().push("t1");
                sc.gate_after(Tid(1), iid!());
            },
        );
        assert_eq!(*order.lock(), vec!["t0-pre", "t1", "t0-post"]);
        assert_eq!(sched.switches(), 1);
        assert!(sched.all_finished());
    }

    #[test]
    fn before_breakpoint_switches_before_the_access() {
        let point = iid!();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two(
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::Before,
                    hit: 1,
                }),
            },
            move |sc| {
                o0.lock().push("t0-pre");
                sc.gate_before(Tid(0), point);
                o0.lock().push("t0-access");
            },
            move |_| o1.lock().push("t1"),
        );
        assert_eq!(*order.lock(), vec!["t0-pre", "t1", "t0-access"]);
    }

    #[test]
    fn hit_count_targets_nth_occurrence() {
        let point = iid!();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two(
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 3,
                }),
            },
            move |sc| {
                for i in 0..5 {
                    o0.lock().push(format!("t0-{i}"));
                    sc.gate_after(Tid(0), point);
                }
            },
            move |_| o1.lock().push("t1".to_string()),
        );
        assert_eq!(
            *order.lock(),
            vec!["t0-0", "t0-1", "t0-2", "t1", "t0-3", "t0-4"]
        );
    }

    #[test]
    fn unhit_breakpoint_degrades_to_sequential() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        let sched = run_two(
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: iid!(), // never gated on
                    when: BreakWhen::After,
                    hit: 1,
                }),
            },
            move |_| o0.lock().push(0),
            move |_| o1.lock().push(1),
        );
        assert_eq!(*order.lock(), vec![0, 1]);
        assert_eq!(sched.switches(), 0);
    }

    #[test]
    fn nonmatching_gates_do_not_fire() {
        let point = iid!();
        let other = iid!();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two(
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 1,
                }),
            },
            move |sc| {
                sc.gate_after(Tid(0), other); // different iid
                sc.gate_before(Tid(0), point); // matching iid, wrong phase
                o0.lock().push("t0");
                sc.gate_after(Tid(0), point); // fires here
                o0.lock().push("t0-post");
            },
            move |_| o1.lock().push("t1"),
        );
        assert_eq!(*order.lock(), vec!["t0", "t1", "t0-post"]);
    }

    fn run_two_on(
        sched: &Arc<Scheduler>,
        body0: impl FnOnce(&Scheduler) + Send,
        body1: impl FnOnce(&Scheduler) + Send,
    ) {
        std::thread::scope(|s| {
            let sc = Arc::clone(sched);
            s.spawn(move || {
                sc.thread_start(Tid(0));
                body0(&sc);
                sc.thread_finish(Tid(0));
            });
            let sc = Arc::clone(sched);
            s.spawn(move || {
                sc.thread_start(Tid(1));
                body1(&sc);
                sc.thread_finish(Tid(1));
            });
        });
    }

    #[test]
    fn recorded_switch_log_replays_the_same_interleaving() {
        let point = iid!();
        let body0 = |sc: &Scheduler, ord: &Arc<Mutex<Vec<&'static str>>>| {
            ord.lock().push("t0-a");
            sc.gate_before(Tid(0), point); // counts but does not match
            sc.gate_after(Tid(0), point); // fires on the record side
            ord.lock().push("t0-b");
            sc.gate_after(Tid(0), iid!());
        };
        let body1 = |sc: &Scheduler, ord: &Arc<Mutex<Vec<&'static str>>>| {
            ord.lock().push("t1");
            sc.gate_after(Tid(1), iid!());
        };

        let rec = Arc::new(Scheduler::recording(
            2,
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 1,
                }),
            },
        ));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two_on(&rec, move |sc| body0(sc, &o0), move |sc| body1(sc, &o1));
        assert_eq!(*order.lock(), vec!["t0-a", "t1", "t0-b"]);
        let log = rec.take_switch_log();
        assert_eq!(
            log,
            vec![SwitchPoint {
                tid: Tid(0),
                nth_gate: 2,
                to: Tid(1),
            }]
        );

        // Replay with no breakpoint at all: the log alone must reproduce
        // the interleaving.
        let rep = Arc::new(Scheduler::replaying(2, Tid(0), log));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two_on(&rep, move |sc| body0(sc, &o0), move |sc| body1(sc, &o1));
        assert_eq!(*order.lock(), vec!["t0-a", "t1", "t0-b"]);
        assert_eq!(rep.switches(), 1);
    }

    #[test]
    fn empty_switch_log_replays_sequentially() {
        let rep = Arc::new(Scheduler::replaying(2, Tid(1), Vec::new()));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two_on(
            &rep,
            move |sc| {
                o0.lock().push(0);
                sc.gate_after(Tid(0), iid!());
            },
            move |sc| {
                o1.lock().push(1);
                sc.gate_after(Tid(1), iid!());
            },
        );
        assert_eq!(*order.lock(), vec![1, 0], "first=1 runs to completion");
    }

    #[test]
    fn three_threads_rotate_in_order() {
        let sched = Arc::new(Scheduler::new(3, SchedulePlan::sequential(Tid(0))));
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..3 {
                let sc = Arc::clone(&sched);
                let ord = Arc::clone(&order);
                s.spawn(move || {
                    sc.thread_start(Tid(t));
                    ord.lock().push(t);
                    sc.thread_finish(Tid(t));
                });
            }
        });
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }
}

#[cfg(test)]
mod step_tests {
    use super::*;
    use oemu::iid;
    use std::sync::Arc;

    /// Runs two bodies on a step scheduler the way `kernelsim::exec` does:
    /// wrap each in leg_start/leg_finish, install, run.
    fn run_two_stepped(
        sched: &Arc<StepScheduler>,
        body0: impl FnOnce(&StepScheduler) + Send + 'static,
        body1: impl FnOnce(&StepScheduler) + Send + 'static,
    ) {
        let sc = Arc::clone(sched);
        sched.set_leg(
            Tid(0),
            Box::new(move || {
                sc.leg_start(Tid(0));
                body0(&sc);
                sc.leg_finish(Tid(0));
            }),
        );
        let sc = Arc::clone(sched);
        sched.set_leg(
            Tid(1),
            Box::new(move || {
                sc.leg_start(Tid(1));
                body1(&sc);
                sc.leg_finish(Tid(1));
            }),
        );
        sched.run();
    }

    fn run_two(
        plan: SchedulePlan,
        body0: impl FnOnce(&StepScheduler) + Send + 'static,
        body1: impl FnOnce(&StepScheduler) + Send + 'static,
    ) -> Arc<StepScheduler> {
        let sched = Arc::new(StepScheduler::new(2, plan));
        run_two_stepped(&sched, body0, body1);
        sched
    }

    #[test]
    fn sequential_plan_runs_first_to_completion() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two(
            SchedulePlan::sequential(Tid(1)),
            move |_| o0.lock().push(0),
            move |_| o1.lock().push(1),
        );
        assert_eq!(*order.lock(), vec![1, 0]);
    }

    #[test]
    fn after_breakpoint_runs_peer_nested() {
        let point = iid!();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        let sched = run_two(
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 1,
                }),
            },
            move |sc| {
                o0.lock().push("t0-pre");
                sc.gate_after(Tid(0), point);
                o0.lock().push("t0-post");
            },
            move |sc| {
                o1.lock().push("t1");
                sc.gate_after(Tid(1), iid!());
            },
        );
        assert_eq!(*order.lock(), vec!["t0-pre", "t1", "t0-post"]);
        assert_eq!(sched.switches(), 1);
        assert!(sched.all_finished());
    }

    #[test]
    fn hit_count_targets_nth_occurrence() {
        let point = iid!();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two(
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 3,
                }),
            },
            move |sc| {
                for i in 0..5 {
                    o0.lock().push(format!("t0-{i}"));
                    sc.gate_after(Tid(0), point);
                }
            },
            move |_| o1.lock().push("t1".to_string()),
        );
        assert_eq!(
            *order.lock(),
            vec!["t0-0", "t0-1", "t0-2", "t1", "t0-3", "t0-4"]
        );
    }

    #[test]
    fn unhit_breakpoint_degrades_to_sequential() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        let sched = run_two(
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: iid!(), // never gated on
                    when: BreakWhen::After,
                    hit: 1,
                }),
            },
            move |_| o0.lock().push(0),
            move |_| o1.lock().push(1),
        );
        assert_eq!(*order.lock(), vec![0, 1]);
        assert_eq!(sched.switches(), 0);
    }

    #[test]
    fn recorded_log_matches_threaded_and_replays() {
        let point = iid!();
        // Bodies with a non-matching gate before the firing one, so the
        // nth_gate coordinate is exercised.
        let mk_bodies = |ord: &Arc<Mutex<Vec<&'static str>>>| {
            let (o0, o1) = (Arc::clone(ord), Arc::clone(ord));
            (
                move |sc: &StepScheduler| {
                    o0.lock().push("t0-a");
                    sc.gate_before(Tid(0), point);
                    sc.gate_after(Tid(0), point); // fires
                    o0.lock().push("t0-b");
                    sc.gate_after(Tid(0), iid!());
                },
                move |sc: &StepScheduler| {
                    o1.lock().push("t1");
                    sc.gate_after(Tid(1), iid!());
                },
            )
        };

        let rec = Arc::new(StepScheduler::recording(
            2,
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 1,
                }),
            },
        ));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (b0, b1) = mk_bodies(&order);
        run_two_stepped(&rec, b0, b1);
        assert_eq!(*order.lock(), vec!["t0-a", "t1", "t0-b"]);
        let log = rec.take_switch_log();
        // Byte-identical coordinates to what the threaded recorder logs for
        // the same bodies (see `recorded_switch_log_replays_the_same_
        // interleaving` above).
        assert_eq!(
            log,
            vec![SwitchPoint {
                tid: Tid(0),
                nth_gate: 2,
                to: Tid(1),
            }]
        );

        let rep = Arc::new(StepScheduler::replaying(2, Tid(0), log));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (b0, b1) = mk_bodies(&order);
        run_two_stepped(&rep, b0, b1);
        assert_eq!(*order.lock(), vec!["t0-a", "t1", "t0-b"]);
        assert_eq!(rep.switches(), 1);
    }

    #[test]
    fn empty_switch_log_replays_sequentially() {
        let rep = Arc::new(StepScheduler::replaying(2, Tid(1), Vec::new()));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two_stepped(
            &rep,
            move |sc| {
                o0.lock().push(0);
                sc.gate_after(Tid(0), iid!());
            },
            move |sc| {
                o1.lock().push(1);
                sc.gate_after(Tid(1), iid!());
            },
        );
        assert_eq!(*order.lock(), vec![1, 0], "first=1 runs to completion");
    }

    #[test]
    #[should_panic(expected = "multi-switch logs")]
    fn multi_switch_replay_is_rejected() {
        let sp = |tid, nth_gate, to| SwitchPoint {
            tid: Tid(tid),
            nth_gate,
            to: Tid(to),
        };
        StepScheduler::replaying(2, Tid(0), vec![sp(0, 1, 1), sp(1, 1, 0)]);
    }

    #[test]
    fn self_handoff_when_peer_finished_is_counted() {
        // The breakpoint fires on the *second* thread after the first
        // already finished: next_runnable wraps around to self, the switch
        // is counted and (in record mode) logged — mirroring the threaded
        // scheduler exactly.
        let point = iid!();
        let rec = Arc::new(StepScheduler::recording(
            2,
            SchedulePlan {
                first: Tid(0),
                breakpoint: Some(Breakpoint {
                    iid: point,
                    when: BreakWhen::After,
                    hit: 1,
                }),
            },
        ));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o0, o1) = (Arc::clone(&order), Arc::clone(&order));
        run_two_stepped(
            &rec,
            move |_| o0.lock().push("t0"),
            move |sc| {
                o1.lock().push("t1-pre");
                sc.gate_after(Tid(1), point); // fires; only self is runnable
                o1.lock().push("t1-post");
            },
        );
        assert_eq!(*order.lock(), vec!["t0", "t1-pre", "t1-post"]);
        assert_eq!(rec.switches(), 1);
        assert_eq!(
            rec.take_switch_log(),
            vec![SwitchPoint {
                tid: Tid(1),
                nth_gate: 1,
                to: Tid(1),
            }]
        );
    }
}
