//! Simulated word-granular memory.
//!
//! The paper's OEMU operates on real kernel memory; this reproduction gives
//! the simulated kernel its own sparse address space. All shared kernel state
//! lives here as 64-bit words keyed by simulated address, so that every
//! access is forced through the emulation engine and its reordering
//! machinery. Unwritten words read as zero, matching `kzalloc` semantics.

use std::collections::HashMap;

/// Sparse word-addressed memory. Keys are byte addresses of word slots;
/// the simulated kernel lays out object fields at 8-byte strides.
#[derive(Default, Debug)]
pub struct Memory {
    words: HashMap<u64, u64>,
}

impl Clone for Memory {
    fn clone(&self) -> Self {
        Memory {
            words: self.words.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Keep the existing table allocation: machine resets restore boot
        // memory thousands of times per campaign.
        self.words.clone_from(&source.words);
    }
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr`; unwritten memory reads as zero.
    pub fn read(&self, addr: u64) -> u64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the word at `addr` and returns the previous value (needed by
    /// the store history, which records the value each store overwrites).
    pub fn write(&mut self, addr: u64, value: u64) -> u64 {
        self.words.insert(addr, value).unwrap_or(0)
    }

    /// Zeroes `words` consecutive word slots starting at `addr`
    /// (`kzalloc`-style object clearing, performed outside the reordering
    /// machinery because fresh objects are not yet shared).
    pub fn zero_range(&mut self, addr: u64, words: u64) {
        for i in 0..words {
            self.words.remove(&(addr + i * 8));
        }
    }

    /// Number of distinct words ever written (diagnostics only).
    pub fn footprint(&self) -> usize {
        self.words.len()
    }

    /// Every written word as `(addr, value)` sorted by address — a
    /// deterministic rendering of memory contents for state digests.
    pub fn sorted_words(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.words.iter().map(|(&a, &w)| (a, w)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read(0xdead_beef), 0);
    }

    #[test]
    fn write_returns_previous() {
        let mut mem = Memory::new();
        assert_eq!(mem.write(8, 1), 0);
        assert_eq!(mem.write(8, 2), 1);
        assert_eq!(mem.read(8), 2);
    }

    #[test]
    fn zero_range_clears_words() {
        let mut mem = Memory::new();
        mem.write(0x100, 7);
        mem.write(0x108, 8);
        mem.write(0x110, 9);
        mem.zero_range(0x100, 2);
        assert_eq!(mem.read(0x100), 0);
        assert_eq!(mem.read(0x108), 0);
        assert_eq!(mem.read(0x110), 9);
    }

    #[test]
    fn footprint_counts_distinct_words() {
        let mut mem = Memory::new();
        mem.write(0, 1);
        mem.write(0, 2);
        mem.write(8, 3);
        assert_eq!(mem.footprint(), 2);
    }
}
