//! Simulated word-granular memory.
//!
//! The paper's OEMU operates on real kernel memory; this reproduction gives
//! the simulated kernel its own sparse address space. All shared kernel state
//! lives here as 64-bit words keyed by simulated address, so that every
//! access is forced through the emulation engine and its reordering
//! machinery. Unwritten words read as zero, matching `kzalloc` semantics.
//!
//! # Undo journal
//!
//! Restoring a machine to a snapshot used to `clone_from` the whole word
//! table even when a test touched a handful of slots. The journal makes
//! restore cost proportional to state touched instead: while a frame is
//! armed (one per live snapshot, managed by the engine), `write` and
//! `zero_range` append each slot's pre-image to the top frame, and rollback
//! replays those entries *backwards* — the oldest pre-image of a slot is
//! applied last and therefore wins, so no first-touch dedup set is needed
//! on the hot write path.

use std::collections::HashMap;

/// One undo frame: `(addr, pre-image)` pairs in mutation order. `None`
/// means the slot was absent (reads as zero) before the mutation.
type UndoFrame = Vec<(u64, Option<u64>)>;

/// Sparse word-addressed memory. Keys are byte addresses of word slots;
/// the simulated kernel lays out object fields at 8-byte strides.
#[derive(Default, Debug)]
pub struct Memory {
    words: HashMap<u64, u64>,
    /// Undo journal: one frame per armed snapshot, oldest first. Mutations
    /// append pre-images to the top frame; an empty stack journals nothing.
    /// Deliberately excluded from `Clone`: a snapshot's memory copy is pure
    /// content, and a restored journal would undo the wrong machine.
    journal: Vec<UndoFrame>,
}

impl Clone for Memory {
    fn clone(&self) -> Self {
        Memory {
            words: self.words.clone(),
            journal: Vec::new(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Keep the existing table allocation: machine resets restore boot
        // memory thousands of times per campaign. The journal no longer
        // describes the new contents, so it is cleared; the engine re-arms
        // frames explicitly after a full restore.
        self.words.clone_from(&source.words);
        self.journal.clear();
    }
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr`; unwritten memory reads as zero.
    pub fn read(&self, addr: u64) -> u64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the word at `addr` and returns the previous value (needed by
    /// the store history, which records the value each store overwrites).
    pub fn write(&mut self, addr: u64, value: u64) -> u64 {
        let prev = self.words.insert(addr, value);
        if let Some(frame) = self.journal.last_mut() {
            frame.push((addr, prev));
        }
        prev.unwrap_or(0)
    }

    /// Zeroes `words` consecutive word slots starting at `addr`
    /// (`kzalloc`-style object clearing, performed outside the reordering
    /// machinery because fresh objects are not yet shared). Slots that were
    /// never written journal nothing — removing an absent key is a no-op.
    pub fn zero_range(&mut self, addr: u64, words: u64) {
        for i in 0..words {
            let slot = addr + i * 8;
            if let Some(old) = self.words.remove(&slot) {
                if let Some(frame) = self.journal.last_mut() {
                    frame.push((slot, Some(old)));
                }
            }
        }
    }

    /// Number of distinct words ever written (diagnostics only).
    pub fn footprint(&self) -> usize {
        self.words.len()
    }

    /// Every written word as `(addr, value)` sorted by address — a
    /// deterministic rendering of memory contents for state digests.
    pub fn sorted_words(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.words.iter().map(|(&a, &w)| (a, w)).collect();
        v.sort_unstable();
        v
    }

    // ------------------------------------------------------------------
    // Undo-journal frame management (driven by the engine's snapshot
    // stack; Memory itself never decides when a frame starts or ends).
    // ------------------------------------------------------------------

    /// Arms a new (top) undo frame: subsequent mutations journal their
    /// pre-images into it until the next push or rollback.
    pub fn journal_push(&mut self) {
        self.journal.push(Vec::new());
    }

    /// Rolls memory back to its contents when frame `k` was pushed: frames
    /// above `k` are replayed backwards and popped, then frame `k` itself
    /// is replayed and left armed (empty) for further mutations. Returns
    /// the number of journal entries replayed.
    pub fn journal_rollback_to(&mut self, k: usize) -> u64 {
        debug_assert!(k < self.journal.len());
        let mut replayed = 0u64;
        while self.journal.len() > k + 1 {
            let frame = self.journal.pop().expect("len > k+1");
            replayed += self.replay(frame.into_iter());
        }
        // Replay the target frame in place, keeping its allocation armed.
        let mut frame = std::mem::take(&mut self.journal[k]);
        replayed += self.replay(frame.drain(..));
        self.journal[k] = frame;
        replayed
    }

    fn replay(&mut self, entries: impl DoubleEndedIterator<Item = (u64, Option<u64>)>) -> u64 {
        let mut n = 0u64;
        for (addr, pre) in entries.rev() {
            match pre {
                Some(v) => {
                    self.words.insert(addr, v);
                }
                None => {
                    self.words.remove(&addr);
                }
            }
            n += 1;
        }
        n
    }

    /// Drops the oldest (bottom) frame without replaying it — its snapshot
    /// generation becomes a full-restore fallback.
    pub fn journal_drop_oldest(&mut self) {
        if !self.journal.is_empty() {
            self.journal.remove(0);
        }
    }

    /// Drops every frame (full-restore fallback or journal invalidation).
    pub fn journal_clear(&mut self) {
        self.journal.clear();
    }

    /// Armed frame count.
    pub fn journal_depth(&self) -> usize {
        self.journal.len()
    }

    /// Total journalled entries across all armed frames — the exact number
    /// of replays a rollback to the bottom frame would perform.
    pub fn journal_entries(&self) -> u64 {
        self.journal.iter().map(|f| f.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read(0xdead_beef), 0);
    }

    #[test]
    fn write_returns_previous() {
        let mut mem = Memory::new();
        assert_eq!(mem.write(8, 1), 0);
        assert_eq!(mem.write(8, 2), 1);
        assert_eq!(mem.read(8), 2);
    }

    #[test]
    fn zero_range_clears_words() {
        let mut mem = Memory::new();
        mem.write(0x100, 7);
        mem.write(0x108, 8);
        mem.write(0x110, 9);
        mem.zero_range(0x100, 2);
        assert_eq!(mem.read(0x100), 0);
        assert_eq!(mem.read(0x108), 0);
        assert_eq!(mem.read(0x110), 9);
    }

    #[test]
    fn footprint_counts_distinct_words() {
        let mut mem = Memory::new();
        mem.write(0, 1);
        mem.write(0, 2);
        mem.write(8, 3);
        assert_eq!(mem.footprint(), 2);
    }

    #[test]
    fn rollback_restores_pre_frame_contents() {
        let mut mem = Memory::new();
        mem.write(0x100, 1);
        mem.journal_push();
        mem.write(0x100, 2); // overwrite
        mem.write(0x100, 3); // overwrite again: oldest pre-image must win
        mem.write(0x108, 9); // fresh slot
        mem.zero_range(0x100, 1); // remove journalled slot
        let replayed = mem.journal_rollback_to(0);
        assert_eq!(replayed, 4);
        assert_eq!(mem.read(0x100), 1, "oldest pre-image wins");
        assert_eq!(mem.read(0x108), 0, "fresh slot removed");
        assert_eq!(mem.footprint(), 1);
        // The frame stays armed: further mutations roll back too.
        mem.write(0x118, 5);
        assert_eq!(mem.journal_rollback_to(0), 1);
        assert_eq!(mem.read(0x118), 0);
    }

    #[test]
    fn nested_frames_roll_back_through_each_other() {
        let mut mem = Memory::new();
        mem.journal_push(); // frame 0 (boot)
        mem.write(0x10, 1);
        mem.journal_push(); // frame 1 (post-setup)
        mem.write(0x10, 2);
        mem.write(0x18, 3);
        // Roll back only the top frame.
        assert_eq!(mem.journal_rollback_to(1), 2);
        assert_eq!((mem.read(0x10), mem.read(0x18)), (1, 0));
        assert_eq!(mem.journal_depth(), 2);
        // Roll back to the bottom frame: pops the top.
        mem.write(0x10, 4);
        assert_eq!(mem.journal_rollback_to(0), 2);
        assert_eq!(mem.read(0x10), 0);
        assert_eq!(mem.journal_depth(), 1);
    }

    #[test]
    fn zero_range_over_never_written_words_journals_nothing() {
        let mut mem = Memory::new();
        mem.journal_push();
        mem.zero_range(0x200, 8);
        assert_eq!(mem.journal_entries(), 0);
        assert_eq!(mem.journal_rollback_to(0), 0);
    }

    #[test]
    fn clone_excludes_journal() {
        let mut mem = Memory::new();
        mem.journal_push();
        mem.write(0x10, 1);
        let copy = mem.clone();
        assert_eq!(copy.journal_depth(), 0);
        assert_eq!(copy.read(0x10), 1);
        let mut dst = Memory::new();
        dst.journal_push();
        dst.clone_from(&mem);
        assert_eq!(dst.journal_depth(), 0, "clone_from invalidates the journal");
    }
}
