//! Access and barrier profiling (§4.2).
//!
//! While OZZ runs a single-threaded input, OEMU records every instrumented
//! memory access as a five-tuple — instruction id, accessed address, size,
//! type, timestamp — and every barrier as a three-tuple — instruction id,
//! barrier type, timestamp. The paper shares these records with userspace
//! through an mmap'd region; here the fuzzer simply takes the [`Profile`]
//! after the run. The hint calculator (Algorithm 1) consumes the merged,
//! program-ordered event stream.

use crate::iid::Iid;
use crate::types::{AccessKind, BarrierKind, Tid};

/// The five-tuple recorded for each instrumented memory access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Instruction id (the paper's instruction address).
    pub iid: Iid,
    /// Accessed memory location.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Load, store, or atomic RMW.
    pub kind: AccessKind,
    /// Program-order sequence number within the thread's profile.
    pub ts: u64,
}

/// The three-tuple recorded for each memory barrier.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BarrierRecord {
    /// Instruction id of the barrier site.
    pub iid: Iid,
    /// Barrier type (Table 1).
    pub kind: BarrierKind,
    /// Program-order sequence number within the thread's profile.
    pub ts: u64,
}

/// A profiled event in program order: either an access or a barrier.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A memory access five-tuple.
    Access(AccessRecord),
    /// A memory barrier three-tuple.
    Barrier(BarrierRecord),
}

impl TraceEvent {
    /// Sequence number of the event.
    pub fn ts(&self) -> u64 {
        match self {
            TraceEvent::Access(a) => a.ts,
            TraceEvent::Barrier(b) => b.ts,
        }
    }

    /// Instruction id of the event.
    pub fn iid(&self) -> Iid {
        match self {
            TraceEvent::Access(a) => a.iid,
            TraceEvent::Barrier(b) => b.iid,
        }
    }

    /// The access record, if this event is an access.
    pub fn as_access(&self) -> Option<&AccessRecord> {
        match self {
            TraceEvent::Access(a) => Some(a),
            TraceEvent::Barrier(_) => None,
        }
    }

    /// The barrier record, if this event is a barrier.
    pub fn as_barrier(&self) -> Option<&BarrierRecord> {
        match self {
            TraceEvent::Barrier(b) => Some(b),
            TraceEvent::Access(_) => None,
        }
    }
}

/// Per-thread profile of one instrumented execution.
#[derive(Default, Debug, Clone)]
pub struct Profile {
    /// Thread the profile belongs to.
    pub tid: Tid,
    /// Program-ordered event stream (accesses and barriers interleaved).
    pub events: Vec<TraceEvent>,
}

impl Profile {
    /// Creates an empty profile for `tid`.
    pub fn new(tid: Tid) -> Self {
        Self {
            tid,
            events: Vec::new(),
        }
    }

    /// All access five-tuples in program order.
    pub fn accesses(&self) -> impl Iterator<Item = &AccessRecord> {
        self.events.iter().filter_map(TraceEvent::as_access)
    }

    /// All barrier three-tuples in program order.
    pub fn barriers(&self) -> impl Iterator<Item = &BarrierRecord> {
        self.events.iter().filter_map(TraceEvent::as_barrier)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_splits_accesses_and_barriers() {
        let mut p = Profile::new(Tid(0));
        p.events.push(TraceEvent::Access(AccessRecord {
            iid: Iid::SYNTHETIC,
            addr: 0x10,
            size: 8,
            kind: AccessKind::Store,
            ts: 1,
        }));
        p.events.push(TraceEvent::Barrier(BarrierRecord {
            iid: Iid::SYNTHETIC,
            kind: BarrierKind::Wmb,
            ts: 2,
        }));
        p.events.push(TraceEvent::Access(AccessRecord {
            iid: Iid::SYNTHETIC,
            addr: 0x18,
            size: 8,
            kind: AccessKind::Load,
            ts: 3,
        }));
        assert_eq!(p.accesses().count(), 2);
        assert_eq!(p.barriers().count(), 1);
        assert_eq!(p.len(), 3);
        assert_eq!(p.events[1].ts(), 2);
    }
}
