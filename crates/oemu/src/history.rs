//! The store history (§3.2).
//!
//! A global, timestamped record of every store committed to memory. Each
//! entry remembers the value the store *overwrote*, which is what a
//! versioned load reads when a userspace program instructs OEMU to emulate
//! load-load reordering: reading the pre-image of the earliest in-window
//! store to an address is exactly "the value this location held just after
//! the thread's last load barrier".

use std::collections::BTreeMap;

use crate::iid::Iid;
use crate::types::Tid;

/// One committed store, as recorded in the global history.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StoreRecord {
    /// Address the store wrote.
    pub addr: u64,
    /// Value the location held *before* this store (the old version a
    /// versioned load may observe).
    pub prev: u64,
    /// Value the store committed.
    pub new: u64,
    /// Global commit timestamp (strictly increasing).
    pub ts: u64,
    /// Thread that performed the store.
    pub tid: Tid,
    /// Instruction that issued the store.
    pub iid: Iid,
}

/// Append-only global store history.
///
/// Alongside the flat record log, the history maintains a per-address
/// index (`addr → record positions, ts-ascending`) so a versioned load
/// resolves in O(log n) on the address's own record list instead of two
/// O(n) scans over every store the campaign ever committed — the hot path
/// of every load-load reordering test.
#[derive(Default, Debug)]
pub struct StoreHistory {
    records: Vec<StoreRecord>,
    // NOTE: `Clone` below overrides `clone_from` so machine resets restore
    // the boot history into the existing allocations.
    /// Positions into `records` per address. Within one address the
    /// positions — and therefore the timestamps — are strictly ascending,
    /// which is what makes `partition_point` valid in `old_version_at`.
    by_addr: BTreeMap<u64, Vec<usize>>,
}

impl Clone for StoreHistory {
    fn clone(&self) -> Self {
        StoreHistory {
            records: self.records.clone(),
            by_addr: self.by_addr.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.records.clone_from(&source.records);
        self.by_addr.clone_from(&source.by_addr);
    }
}

impl StoreHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a committed store.
    pub fn record(&mut self, rec: StoreRecord) {
        debug_assert!(
            self.records.last().map_or(true, |last| last.ts < rec.ts),
            "store history timestamps must be strictly increasing"
        );
        self.by_addr
            .entry(rec.addr)
            .or_default()
            .push(self.records.len());
        self.records.push(rec);
    }

    /// The old version a versioned load at `reader` may observe for `addr`
    /// within the window `(window_start, now]`.
    ///
    /// Per §3.2, the versioning window restricts valid past values to those
    /// overwritten *after* the reader's most recent load barrier. Coherence
    /// additionally forbids a thread from reading anything older than its own
    /// most recent committed store to the same location, so stores by
    /// `reader` itself tighten the effective window start.
    ///
    /// Returns `None` when no store to `addr` committed inside the window —
    /// the load then reads current memory as its default behaviour.
    pub fn old_version(&self, reader: Tid, addr: u64, window_start: u64) -> Option<u64> {
        self.old_version_at(reader, addr, window_start)
            .map(|(v, _)| v)
    }

    /// Like [`old_version`](StoreHistory::old_version), additionally
    /// returning the commit timestamp of the store whose pre-image is read.
    /// The value was current during the half-open interval ending at that
    /// timestamp, which the engine uses to maintain per-location read
    /// coherence (a thread never observes values moving backwards in time).
    pub fn old_version_at(&self, reader: Tid, addr: u64, window_start: u64) -> Option<(u64, u64)> {
        let positions = self.by_addr.get(&addr)?;
        // Coherence bound: the reader must not travel back before its own
        // latest committed store to this address. Only this address's
        // records are scanned, newest first.
        let own_bound = positions
            .iter()
            .rev()
            .map(|&p| &self.records[p])
            .find(|r| r.tid == reader)
            .map_or(0, |r| r.ts);
        let start = window_start.max(own_bound);
        // Timestamps ascend within the address's position list: binary
        // search for the earliest store committed after the window start.
        let first_in = positions.partition_point(|&p| self.records[p].ts <= start);
        positions
            .get(first_in)
            .map(|&p| (self.records[p].prev, self.records[p].ts))
    }

    /// All records, oldest first (used by the in-vitro baseline and tests).
    pub fn records(&self) -> &[StoreRecord] {
        &self.records
    }

    /// Number of recorded stores.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether any store has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rolls the append-only log back to its first `len` records — the
    /// incremental-restore analog of `clone_from` against a snapshot taken
    /// when the history held exactly `len` records. The per-address index
    /// is unwound in step: each dropped record pops its (necessarily last)
    /// position from its address list, and emptied lists are removed so the
    /// result is key-for-key identical to a fresh clone of the snapshot.
    ///
    /// Only valid while the log's first `len` records are untouched since
    /// that snapshot — i.e. records were only appended. A
    /// [`truncate_before`](StoreHistory::truncate_before) in between breaks
    /// that invariant, which is why the engine invalidates its whole undo
    /// journal on garbage collection.
    pub fn truncate_to(&mut self, len: usize) {
        debug_assert!(len <= self.records.len());
        for pos in (len..self.records.len()).rev() {
            let addr = self.records[pos].addr;
            let positions = self
                .by_addr
                .get_mut(&addr)
                .expect("indexed record has a position list");
            let last = positions.pop();
            debug_assert_eq!(last, Some(pos), "positions ascend per address");
            if positions.is_empty() {
                self.by_addr.remove(&addr);
            }
        }
        self.records.truncate(len);
    }

    /// Discards records with `ts <= horizon`, bounding memory use during
    /// long fuzzing campaigns. Safe once every thread's versioning window
    /// starts at or after `horizon`.
    pub fn truncate_before(&mut self, horizon: u64) {
        self.records.retain(|r| r.ts > horizon);
        // Record positions shifted; rebuild the per-address index. The
        // retain pass was already O(n), so this keeps truncation linear.
        self.by_addr.clear();
        for (pos, r) in self.records.iter().enumerate() {
            self.by_addr.entry(r.addr).or_default().push(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64, prev: u64, new: u64, ts: u64, tid: usize) -> StoreRecord {
        StoreRecord {
            addr,
            prev,
            new,
            ts,
            tid: Tid(tid),
            iid: Iid::SYNTHETIC,
        }
    }

    #[test]
    fn old_version_reads_earliest_in_window() {
        let mut h = StoreHistory::new();
        h.record(rec(0x10, 0, 1, 1, 0));
        h.record(rec(0x10, 1, 2, 2, 0));
        h.record(rec(0x10, 2, 3, 3, 0));
        // Window (0, now]: earliest store has ts=1, pre-image 0.
        assert_eq!(h.old_version(Tid(1), 0x10, 0), Some(0));
        // Window (1, now]: earliest store after ts=1 has pre-image 1.
        assert_eq!(h.old_version(Tid(1), 0x10, 1), Some(1));
        // Window (3, now]: nothing committed after the barrier.
        assert_eq!(h.old_version(Tid(1), 0x10, 3), None);
    }

    #[test]
    fn old_version_ignores_other_addresses() {
        let mut h = StoreHistory::new();
        h.record(rec(0x10, 0, 1, 1, 0));
        assert_eq!(h.old_version(Tid(1), 0x20, 0), None);
    }

    #[test]
    fn coherence_bound_blocks_reading_before_own_store() {
        let mut h = StoreHistory::new();
        h.record(rec(0x10, 0, 1, 1, 0)); // other thread
        h.record(rec(0x10, 1, 5, 2, 1)); // reader's own store
        h.record(rec(0x10, 5, 9, 3, 0)); // other thread again
                                         // Reader tid=1 wrote 5 at ts=2; it may only see pre-images of stores
                                         // after that, i.e. 5 (pre-image of ts=3), never 0 or 1.
        assert_eq!(h.old_version(Tid(1), 0x10, 0), Some(5));
    }

    #[test]
    fn figure4_scenario() {
        // Figure 4: smp_rmb at t3, stores to &Z (t4: 0->1) and &W (t5: 1->2).
        // With window (t3, now], the versioned load on &Z reads 0.
        let mut h = StoreHistory::new();
        h.record(rec(0x2000, 0, 1, 4, 1)); // &Z at t4
        h.record(rec(0x3000, 1, 2, 5, 1)); // &W at t5
        assert_eq!(h.old_version(Tid(0), 0x2000, 3), Some(0));
        // The non-versioned load on &W reads memory (2) — not modelled here,
        // but its old version would be 1 if requested.
        assert_eq!(h.old_version(Tid(0), 0x3000, 3), Some(1));
    }

    #[test]
    fn truncate_before_drops_stale_records() {
        let mut h = StoreHistory::new();
        h.record(rec(0x10, 0, 1, 1, 0));
        h.record(rec(0x10, 1, 2, 2, 0));
        h.truncate_before(1);
        assert_eq!(h.len(), 1);
        assert_eq!(h.records()[0].ts, 2);
    }

    /// The pre-index reference implementation: two linear scans over the
    /// full record log, exactly as `old_version_at` used to compute it.
    fn reference_old_version_at(
        h: &StoreHistory,
        reader: Tid,
        addr: u64,
        window_start: u64,
    ) -> Option<(u64, u64)> {
        let own_bound = h
            .records()
            .iter()
            .rev()
            .find(|r| r.tid == reader && r.addr == addr)
            .map_or(0, |r| r.ts);
        let start = window_start.max(own_bound);
        h.records()
            .iter()
            .find(|r| r.addr == addr && r.ts > start)
            .map(|r| (r.prev, r.ts))
    }

    /// The index must be a pure acceleration structure: every query agrees
    /// with the two-scan reference, across addresses, readers, windows, and
    /// after truncation rebuilds the index.
    #[test]
    fn indexed_lookup_matches_linear_reference() {
        let mut rng = kutil::DetRng::new(0x0227);
        let mut h = StoreHistory::new();
        let check = |h: &StoreHistory, rng: &mut kutil::DetRng| {
            for _ in 0..200 {
                let addr = 0x10 + 8 * rng.gen_range(0..12u64);
                let reader = Tid(rng.gen_range(0..3usize));
                let window = rng.gen_range(0..600u64);
                assert_eq!(
                    h.old_version_at(reader, addr, window),
                    reference_old_version_at(h, reader, addr, window),
                    "divergence at addr={addr:#x} reader={reader:?} window={window}"
                );
            }
        };
        for ts in 1..=500u64 {
            let addr = 0x10 + 8 * rng.gen_range(0..10u64);
            let tid = rng.gen_range(0..3usize);
            h.record(rec(addr, ts - 1, ts, ts, tid));
        }
        check(&h, &mut rng);
        h.truncate_before(250);
        check(&h, &mut rng);
        h.truncate_before(u64::MAX);
        assert!(h.is_empty());
        check(&h, &mut rng);
    }

    #[test]
    fn truncate_to_unwinds_appends_exactly() {
        let mut h = StoreHistory::new();
        h.record(rec(0x10, 0, 1, 1, 0));
        h.record(rec(0x18, 0, 2, 2, 0));
        let baseline = h.clone();
        h.record(rec(0x10, 1, 3, 3, 1));
        h.record(rec(0x20, 0, 4, 4, 1)); // fresh address
        h.truncate_to(2);
        assert_eq!(h.records(), baseline.records());
        assert_eq!(
            format!("{h:?}"),
            format!("{baseline:?}"),
            "index must match a fresh clone key-for-key"
        );
        // Appending after the rollback keeps the index coherent.
        h.record(rec(0x20, 0, 9, 9, 1));
        assert_eq!(h.old_version_at(Tid(0), 0x20, 0), Some((0, 9)));
        h.truncate_to(0);
        assert!(h.is_empty());
        assert_eq!(h.old_version_at(Tid(0), 0x10, 0), None);
    }

    #[test]
    fn index_survives_interleaved_record_and_truncate() {
        let mut h = StoreHistory::new();
        for ts in 1..=10 {
            h.record(rec(0x10, 0, ts, ts, 0));
        }
        h.truncate_before(5);
        for ts in 11..=15 {
            h.record(rec(0x18, 0, ts, ts, 1));
        }
        // Earliest surviving store to 0x10 is ts=6 (pre-image 0 per `rec`'s
        // prev argument above — we passed prev=0 for all).
        assert_eq!(h.old_version_at(Tid(1), 0x10, 0), Some((0, 6)));
        // Tid(1) made every store to 0x18 itself; its own coherence bound
        // (ts=15, its last store) leaves nothing newer to read.
        assert_eq!(h.old_version_at(Tid(1), 0x18, 0), None, "own store bounds");
        assert_eq!(h.old_version_at(Tid(2), 0x18, 12), Some((0, 13)));
    }
}
