//! Schedule traces: compact, replayable records of one MTI execution.
//!
//! A concurrent pair's outcome under oemu is fully determined by three
//! decision streams: which thread held the scheduler token when (the
//! switch points), which stores entered the virtual store buffer instead
//! of committing (§3.1 delayed stores), and which loads read an old
//! version from the store history (§3.2 versioned loads). A
//! [`ScheduleTrace`] captures exactly those decisions — nothing else —
//! so replaying it against the same kernel state reproduces the original
//! execution bit-for-bit: same commits, same crash report, same
//! `state_digest`.
//!
//! The trace has two layers, mirroring the two sources of nondeterminism:
//!
//! - [`SwitchPoint`]s record the scheduler's token handoffs, keyed by a
//!   per-thread *gate counter* (the n-th time that thread passed a kctx
//!   gate). Only deliberate breakpoint handoffs are recorded; the implicit
//!   handoff when a thread finishes is reproduced by the scheduler's
//!   normal finish path.
//! - [`TraceStep`]s record every instrumented engine event (store delay
//!   decisions, load sources, RMWs, barriers, non-empty buffer flushes)
//!   in global token order. During replay the engine consumes this stream
//!   one event at a time, imposing the recorded decisions and flagging
//!   divergence on any mismatch.
//!
//! Traces serialize to a line-oriented text format (one step per line,
//! instruction ids as `file:line:col`) so golden traces can live in the
//! repository and survive `Iid` hash changes.

use crate::iid::Iid;
use crate::types::{BarrierKind, MemoryModel, Tid};

/// Where a load's value came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadSrc {
    /// Committed memory (the in-order case).
    Memory,
    /// Store-to-load forwarding from the thread's own store buffer.
    Forwarded,
    /// An old version from the store history (§3.2 versioned load).
    Versioned,
}

/// One instrumented engine event, in global execution order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceStep {
    /// A store and its delay decision (`delayed`: entered the buffer).
    Store { tid: Tid, iid: Iid, delayed: bool },
    /// A load and the source of its value.
    Load { tid: Tid, iid: Iid, src: LoadSrc },
    /// An atomic read-modify-write (always in-order).
    Rmw { tid: Tid, iid: Iid },
    /// A memory barrier (explicit or implied by an annotated access).
    Barrier {
        tid: Tid,
        iid: Iid,
        kind: BarrierKind,
    },
    /// A store-buffer flush that committed `committed` > 0 stores.
    Flush { tid: Tid, committed: u32 },
}

impl TraceStep {
    /// The thread that produced this step.
    pub fn tid(&self) -> Tid {
        match *self {
            TraceStep::Store { tid, .. }
            | TraceStep::Load { tid, .. }
            | TraceStep::Rmw { tid, .. }
            | TraceStep::Barrier { tid, .. }
            | TraceStep::Flush { tid, .. } => tid,
        }
    }
}

/// A recorded scheduler handoff: after thread `tid`'s `nth_gate`-th gate
/// call (1-based, counting every gate phase), the token moved to `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchPoint {
    /// The thread that yielded the token.
    pub tid: Tid,
    /// That thread's gate-call count at the handoff (1-based).
    pub nth_gate: u32,
    /// The thread that received the token.
    pub to: Tid,
}

/// Everything needed to replay one concurrent pair execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Memory model of the machine that recorded the trace. Replay must
    /// run under the same model or the recorded decision stream is
    /// meaningless (a TSO trace's whole-buffer flushes never happen on a
    /// PSO machine, and vice versa).
    pub model: MemoryModel,
    /// The thread that ran first.
    pub first: Tid,
    /// Deliberate token handoffs, in occurrence order.
    pub switches: Vec<SwitchPoint>,
    /// Every instrumented engine event, in global order — or, for a
    /// sparse trace, only the ordering *decisions* (see [`sparse`]).
    ///
    /// [`sparse`]: ScheduleTrace::sparse
    pub steps: Vec<TraceStep>,
    /// A sparse trace keeps only the decision steps — delayed stores and
    /// versioned loads — instead of the full instrumented event stream.
    /// Replay then reinstalls those decisions as Table 2 engine controls
    /// and slaves only the *scheduler* to the switch script, instead of
    /// matching every engine event against the trace. Minimized traces
    /// (`ozz::triage`) are sparse: dropping events from a full trace
    /// would make strict stream-matching replay diverge immediately.
    pub sparse: bool,
}

/// Replay fidelity summary returned by the engine after a replay run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayStatus {
    /// The execution departed from the trace (wrong event, leftover or
    /// missing steps); the engine fell back to in-order behavior.
    pub diverged: bool,
    /// Steps consumed before the run ended.
    pub consumed: usize,
    /// Steps in the trace.
    pub total: usize,
}

// Trace serialization of instruction ids is the workspace-wide token form
// (`Iid::to_token` / `Iid::from_token`); these aliases keep the format
// code below compact.
fn fmt_iid(iid: Iid) -> String {
    iid.to_token()
}

fn parse_iid(s: &str) -> Result<Iid, String> {
    Iid::from_token(s)
}

fn fmt_barrier(kind: BarrierKind) -> &'static str {
    match kind {
        BarrierKind::Full => "mb",
        BarrierKind::Rmb => "rmb",
        BarrierKind::Wmb => "wmb",
        BarrierKind::Acquire => "acquire",
        BarrierKind::Release => "release",
        BarrierKind::ReadOnce => "read_once",
    }
}

fn parse_barrier(s: &str) -> Result<BarrierKind, String> {
    Ok(match s {
        "mb" => BarrierKind::Full,
        "rmb" => BarrierKind::Rmb,
        "wmb" => BarrierKind::Wmb,
        "acquire" => BarrierKind::Acquire,
        "release" => BarrierKind::Release,
        "read_once" => BarrierKind::ReadOnce,
        _ => return Err(format!("unknown barrier kind {s:?}")),
    })
}

impl ScheduleTrace {
    /// Whether a step records an ordering *decision*: a store that entered
    /// the virtual store buffer, or a load that read an old version.
    /// Everything else in a full trace (in-order stores, memory/forwarded
    /// loads, RMWs, barriers, flushes) is a consequence of those decisions
    /// plus the switch script.
    pub fn is_decision(step: &TraceStep) -> bool {
        matches!(
            step,
            TraceStep::Store { delayed: true, .. }
                | TraceStep::Load {
                    src: LoadSrc::Versioned,
                    ..
                }
        )
    }

    /// The decision steps of this trace, in recorded order.
    pub fn decision_steps(&self) -> impl Iterator<Item = &TraceStep> {
        self.steps.iter().filter(|s| Self::is_decision(s))
    }

    /// Total replayable events: engine steps plus scheduler switches —
    /// the size a human has to read, and what minimization shrinks.
    pub fn event_count(&self) -> usize {
        self.steps.len() + self.switches.len()
    }

    /// The sparse projection: same model/first/switches, steps reduced to
    /// the decisions. Sparse-replaying it against the same pre-run kernel
    /// state reproduces the full trace's execution — the dropped steps
    /// were consequences, not choices.
    pub fn sparsify(&self) -> ScheduleTrace {
        ScheduleTrace {
            model: self.model,
            first: self.first,
            switches: self.switches.clone(),
            steps: self.decision_steps().cloned().collect(),
            sparse: true,
        }
    }

    /// A copy with `steps` replaced by the subsequence at `keep` indices
    /// (in order). Indices must be valid and ascending.
    pub fn with_step_subset(&self, keep: &[usize]) -> ScheduleTrace {
        let mut t = self.clone();
        t.steps = keep.iter().map(|&i| self.steps[i].clone()).collect();
        t
    }

    /// A copy with `switches` replaced by the subsequence at `keep`
    /// indices (in order). Indices must be valid and ascending.
    pub fn with_switch_subset(&self, keep: &[usize]) -> ScheduleTrace {
        let mut t = self.clone();
        t.switches = keep.iter().map(|&i| self.switches[i]).collect();
        t
    }

    /// Serializes the trace to the line-oriented text format.
    ///
    /// TSO traces keep the original `ozz-trace v1` header byte-for-byte
    /// (golden traces stay pinned); non-TSO traces use `ozz-trace v2`,
    /// which adds a mandatory `model <name>` line after the header.
    /// Sparse traces use `ozz-trace v3`: a mandatory `model` line (any
    /// model, TSO included) followed by a `sparse` marker line — full
    /// traces never carry the marker, so the v1/v2 bytes are untouched.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.sparse {
            out.push_str("ozz-trace v3\n");
            out.push_str(&format!("model {}\n", self.model.name()));
            out.push_str("sparse\n");
        } else if self.model == MemoryModel::Tso {
            out.push_str("ozz-trace v1\n");
        } else {
            out.push_str("ozz-trace v2\n");
            out.push_str(&format!("model {}\n", self.model.name()));
        }
        out.push_str(&format!("first {}\n", self.first.0));
        for sp in &self.switches {
            out.push_str(&format!(
                "switch {} {} {}\n",
                sp.tid.0, sp.nth_gate, sp.to.0
            ));
        }
        for step in &self.steps {
            match step {
                TraceStep::Store { tid, iid, delayed } => {
                    let d = if *delayed { "delayed" } else { "committed" };
                    out.push_str(&format!("store {} {} {}\n", tid.0, fmt_iid(*iid), d));
                }
                TraceStep::Load { tid, iid, src } => {
                    let s = match src {
                        LoadSrc::Memory => "mem",
                        LoadSrc::Forwarded => "fwd",
                        LoadSrc::Versioned => "ver",
                    };
                    out.push_str(&format!("load {} {} {}\n", tid.0, fmt_iid(*iid), s));
                }
                TraceStep::Rmw { tid, iid } => {
                    out.push_str(&format!("rmw {} {}\n", tid.0, fmt_iid(*iid)));
                }
                TraceStep::Barrier { tid, iid, kind } => {
                    out.push_str(&format!(
                        "barrier {} {} {}\n",
                        tid.0,
                        fmt_iid(*iid),
                        fmt_barrier(*kind)
                    ));
                }
                TraceStep::Flush { tid, committed } => {
                    out.push_str(&format!("flush {} {}\n", tid.0, committed));
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format produced by [`ScheduleTrace::to_text`].
    ///
    /// Accepts all three versions: `v1` implies TSO (the format predates
    /// pluggable models); `v2` requires an explicit `model` line; `v3`
    /// additionally requires the `sparse` marker (the version exists only
    /// for sparse traces).
    pub fn parse(text: &str) -> Result<ScheduleTrace, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        let version = match lines.next() {
            Some("ozz-trace v1") => 1,
            Some("ozz-trace v2") => 2,
            Some("ozz-trace v3") => 3,
            other => return Err(format!("bad trace header: {other:?}")),
        };
        let v2 = version >= 2;
        let mut sparse = false;
        let mut model = None;
        let mut first = None;
        let mut switches = Vec::new();
        let mut steps = Vec::new();
        let mut ended = false;
        for line in lines {
            if ended {
                return Err(format!("trailing content after end: {line:?}"));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let ctx = || format!("bad trace line {line:?}");
            let tid_at = |i: usize| -> Result<Tid, String> {
                fields
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .map(Tid)
                    .ok_or_else(ctx)
            };
            let num_at = |i: usize| -> Result<u32, String> {
                fields
                    .get(i)
                    .and_then(|s| s.parse::<u32>().ok())
                    .ok_or_else(ctx)
            };
            let str_at =
                |i: usize| -> Result<&str, String> { fields.get(i).copied().ok_or_else(ctx) };
            match fields[0] {
                "sparse" if version >= 3 => sparse = true,
                "model" if v2 => {
                    let name = str_at(1)?;
                    model = Some(
                        MemoryModel::parse(name)
                            .ok_or_else(|| format!("unknown memory model {name:?}"))?,
                    );
                }
                "first" => first = Some(tid_at(1)?),
                "switch" => switches.push(SwitchPoint {
                    tid: tid_at(1)?,
                    nth_gate: num_at(2)?,
                    to: tid_at(3)?,
                }),
                "store" => steps.push(TraceStep::Store {
                    tid: tid_at(1)?,
                    iid: parse_iid(str_at(2)?)?,
                    delayed: match str_at(3)? {
                        "delayed" => true,
                        "committed" => false,
                        _ => return Err(ctx()),
                    },
                }),
                "load" => steps.push(TraceStep::Load {
                    tid: tid_at(1)?,
                    iid: parse_iid(str_at(2)?)?,
                    src: match str_at(3)? {
                        "mem" => LoadSrc::Memory,
                        "fwd" => LoadSrc::Forwarded,
                        "ver" => LoadSrc::Versioned,
                        _ => return Err(ctx()),
                    },
                }),
                "rmw" => steps.push(TraceStep::Rmw {
                    tid: tid_at(1)?,
                    iid: parse_iid(str_at(2)?)?,
                }),
                "barrier" => steps.push(TraceStep::Barrier {
                    tid: tid_at(1)?,
                    iid: parse_iid(str_at(2)?)?,
                    kind: parse_barrier(str_at(3)?)?,
                }),
                "flush" => steps.push(TraceStep::Flush {
                    tid: tid_at(1)?,
                    committed: num_at(2)?,
                }),
                "end" => ended = true,
                _ => return Err(ctx()),
            }
        }
        if !ended {
            return Err("trace missing end marker".into());
        }
        let model = match (v2, model) {
            (false, _) => MemoryModel::Tso,
            (true, Some(m)) => m,
            (true, None) => return Err(format!("v{version} trace missing model line")),
        };
        if version >= 3 && !sparse {
            return Err("v3 trace missing sparse marker".into());
        }
        Ok(ScheduleTrace {
            model,
            first: first.ok_or("trace missing first line")?,
            switches,
            steps,
            sparse,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iid;

    fn sample() -> ScheduleTrace {
        let a = iid!();
        let b = iid!();
        ScheduleTrace {
            model: MemoryModel::Tso,
            first: Tid(1),
            switches: vec![SwitchPoint {
                tid: Tid(1),
                nth_gate: 4,
                to: Tid(0),
            }],
            steps: vec![
                TraceStep::Barrier {
                    tid: Tid(1),
                    iid: a,
                    kind: BarrierKind::Wmb,
                },
                TraceStep::Store {
                    tid: Tid(1),
                    iid: a,
                    delayed: true,
                },
                TraceStep::Load {
                    tid: Tid(0),
                    iid: b,
                    src: LoadSrc::Versioned,
                },
                TraceStep::Rmw {
                    tid: Tid(0),
                    iid: b,
                },
                TraceStep::Flush {
                    tid: Tid(1),
                    committed: 2,
                },
            ],
            sparse: false,
        }
    }

    #[test]
    fn text_roundtrip_is_identity() {
        let t = sample();
        let parsed = ScheduleTrace::parse(&t.to_text()).expect("parse");
        assert_eq!(t, parsed);
    }

    #[test]
    fn synthetic_and_raw_iids_roundtrip() {
        let t = ScheduleTrace {
            model: MemoryModel::Tso,
            first: Tid(0),
            switches: vec![],
            steps: vec![
                TraceStep::Rmw {
                    tid: Tid(0),
                    iid: Iid::SYNTHETIC,
                },
                TraceStep::Rmw {
                    tid: Tid(0),
                    iid: Iid(0xdead_beef),
                },
            ],
            sparse: false,
        };
        let parsed = ScheduleTrace::parse(&t.to_text()).expect("parse");
        assert_eq!(t, parsed);
    }

    /// TSO traces keep the exact v1 header (golden traces stay pinned);
    /// non-TSO traces carry an explicit model tag and round-trip through
    /// the v2 format.
    #[test]
    fn model_tag_selects_format_version_and_roundtrips() {
        let mut t = sample();
        assert!(t.to_text().starts_with("ozz-trace v1\nfirst 1\n"));
        for model in [MemoryModel::Pso, MemoryModel::Arm] {
            t.model = model;
            let text = t.to_text();
            assert!(text.starts_with(&format!("ozz-trace v2\nmodel {}\n", model.name())));
            assert_eq!(ScheduleTrace::parse(&text).expect("parse"), t);
        }
    }

    /// The sparse projection keeps exactly the decisions (delayed stores,
    /// versioned loads) plus the switch script, and round-trips through
    /// the v3 format under every model — the v1/v2 bytes of full traces
    /// are untouched.
    #[test]
    fn sparsify_keeps_decisions_and_roundtrips_as_v3() {
        let full = sample();
        let sparse = full.sparsify();
        assert!(sparse.sparse);
        assert_eq!(sparse.switches, full.switches);
        assert_eq!(
            sparse.steps.len(),
            2,
            "one delayed store, one versioned load"
        );
        assert!(sparse.steps.iter().all(ScheduleTrace::is_decision));
        assert!(sparse.event_count() < full.event_count());
        for model in [MemoryModel::Tso, MemoryModel::Pso, MemoryModel::Arm] {
            let mut t = sparse.clone();
            t.model = model;
            let text = t.to_text();
            assert!(text.starts_with(&format!("ozz-trace v3\nmodel {}\nsparse\n", model.name())));
            assert_eq!(ScheduleTrace::parse(&text).expect("parse"), t);
        }
        // Sparsifying a sparse trace is the identity.
        assert_eq!(sparse.sparsify(), sparse);
    }

    #[test]
    fn subset_helpers_select_in_order() {
        let t = sample();
        let sub = t.with_step_subset(&[0, 2, 4]);
        assert_eq!(sub.steps.len(), 3);
        assert_eq!(sub.steps[0], t.steps[0]);
        assert_eq!(sub.steps[1], t.steps[2]);
        assert_eq!(sub.steps[2], t.steps[4]);
        assert_eq!(sub.switches, t.switches);
        let none = t.with_switch_subset(&[]);
        assert!(none.switches.is_empty());
        assert_eq!(none.steps, t.steps);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(ScheduleTrace::parse("").is_err());
        assert!(ScheduleTrace::parse("ozz-trace v1\nfirst 0\n").is_err());
        assert!(ScheduleTrace::parse("ozz-trace v1\nfirst 0\nbogus 1 2\nend\n").is_err());
        assert!(
            ScheduleTrace::parse("ozz-trace v2\nfirst 0\nend\n").is_err(),
            "a v2 trace without a model line is rejected"
        );
        assert!(
            ScheduleTrace::parse("ozz-trace v2\nmodel sc\nfirst 0\nend\n").is_err(),
            "an unknown model name is rejected"
        );
        assert!(
            ScheduleTrace::parse("ozz-trace v1\nmodel pso\nfirst 0\nend\n").is_err(),
            "v1 traces predate the model line"
        );
        assert!(
            ScheduleTrace::parse("ozz-trace v3\nmodel tso\nfirst 0\nend\n").is_err(),
            "a v3 trace without the sparse marker is rejected"
        );
        assert!(
            ScheduleTrace::parse("ozz-trace v3\nsparse\nfirst 0\nend\n").is_err(),
            "a v3 trace without a model line is rejected"
        );
        assert!(
            ScheduleTrace::parse("ozz-trace v1\nsparse\nfirst 0\nend\n").is_err(),
            "v1/v2 traces are never sparse"
        );
    }
}
