//! Shared vocabulary types for the emulation engine.

use std::fmt;

/// Index of a simulated CPU/thread (the paper pins each concurrent syscall to
/// its own virtual CPU, so "thread" and "CPU" coincide here).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Tid(pub usize);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Kind of a profiled memory access (the *type* field of the paper's
/// five-tuple access record).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load operation.
    Load,
    /// A store operation.
    Store,
    /// An atomic read-modify-write. RMWs are single memory events in the
    /// LKMM; OEMU never delays or versions them, but they participate in
    /// shared-location detection as both a read and a write.
    Rmw,
}

impl AccessKind {
    /// Whether the access writes memory.
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::Rmw)
    }

    /// Whether the access reads memory.
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Rmw)
    }
}

/// Ordering annotation on a store, mirroring the Linux APIs of Table 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum StoreAnn {
    /// A plain (compiler-visible) store; fully reorderable.
    Plain,
    /// `WRITE_ONCE()`: relaxed — suppresses data-race reports but provides
    /// **no** ordering, so it is just as delayable as a plain store. This is
    /// exactly the mis-fix of the paper's Bug #9 case study.
    WriteOnce,
    /// `smp_store_release()`: all preceding accesses complete before this
    /// store (LKMM Case 5) — OEMU flushes the store buffer first.
    Release,
}

/// Ordering annotation on a load, mirroring the Linux APIs of Table 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LoadAnn {
    /// A plain load; may be versioned even across address dependencies
    /// (the Alpha rule, LKMM Case 6 / Appendix §10.1).
    Plain,
    /// `READ_ONCE()` or an atomic read: treated by OEMU as an implied load
    /// barrier *after* the load (§3.2), so later loads cannot read values
    /// older than it.
    ReadOnce,
    /// `smp_load_acquire()`: no later access may be reordered before it
    /// (LKMM Case 4). Delayed stores only ever move *later*, so the store
    /// half is free; the load half resets the versioning window.
    Acquire,
}

/// Ordering strength of an atomic read-modify-write.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RmwOrder {
    /// No implied barrier (`clear_bit`, `atomic_inc`, ...). The RMW commits
    /// immediately, so it can become visible *before* earlier delayed plain
    /// stores — the exact mechanism of the paper's RDS bug (Figure 8).
    Relaxed,
    /// Acquire semantics (`test_and_set_bit_lock`): resets the versioning
    /// window after the read half.
    Acquire,
    /// Release semantics (`clear_bit_unlock`): flushes the store buffer
    /// before the write half, preventing critical-section stores from
    /// leaking past the unlock.
    Release,
    /// Fully ordered (`test_and_set_bit`, value-returning atomics): flush
    /// before, window reset after — an implied `smp_mb` on both sides.
    Full,
}

/// Barrier kinds of Table 1, as recorded in the three-tuple barrier profile.
///
/// Annotated accesses (`Release`, `Acquire`, `ReadOnce`) double as barrier
/// events because Algorithm 1 groups memory accesses by barrier *type*
/// boundaries, and the LKMM treats those annotations as one-sided fences.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BarrierKind {
    /// `smp_mb()` — orders everything against everything (LKMM Case 1).
    Full,
    /// `smp_rmb()` — orders loads against loads (LKMM Case 3).
    Rmb,
    /// `smp_wmb()` — orders stores against stores (LKMM Case 2).
    Wmb,
    /// `smp_load_acquire()` on the preceding load (LKMM Case 4).
    Acquire,
    /// `smp_store_release()` on the following store (LKMM Case 5).
    Release,
    /// `READ_ONCE()`/atomic read, which OEMU treats as an implied `smp_rmb`
    /// (LKMM Case 6, the Alpha address-dependency rule).
    ReadOnce,
}

impl BarrierKind {
    /// Whether this barrier bounds **store** reordering, i.e. flushes the
    /// virtual store buffer. Used by Algorithm 1 as the group boundary for
    /// the hypothetical *store* barrier test.
    pub fn orders_stores(self) -> bool {
        matches!(
            self,
            BarrierKind::Full | BarrierKind::Wmb | BarrierKind::Release
        )
    }

    /// Whether this barrier bounds **load** reordering, i.e. resets the
    /// versioning window. Used by Algorithm 1 as the group boundary for the
    /// hypothetical *load* barrier test.
    pub fn orders_loads(self) -> bool {
        matches!(
            self,
            BarrierKind::Full | BarrierKind::Rmb | BarrierKind::Acquire | BarrierKind::ReadOnce
        )
    }

    /// Linux API name, for reports.
    pub fn api_name(self) -> &'static str {
        match self {
            BarrierKind::Full => "smp_mb",
            BarrierKind::Rmb => "smp_rmb",
            BarrierKind::Wmb => "smp_wmb",
            BarrierKind::Acquire => "smp_load_acquire",
            BarrierKind::Release => "smp_store_release",
            BarrierKind::ReadOnce => "READ_ONCE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_classification() {
        assert!(AccessKind::Store.writes());
        assert!(!AccessKind::Store.reads());
        assert!(AccessKind::Load.reads());
        assert!(!AccessKind::Load.writes());
        assert!(AccessKind::Rmw.reads() && AccessKind::Rmw.writes());
    }

    #[test]
    fn store_ordering_barriers() {
        for kind in [BarrierKind::Full, BarrierKind::Wmb, BarrierKind::Release] {
            assert!(kind.orders_stores(), "{kind:?} must flush stores");
        }
        for kind in [
            BarrierKind::Rmb,
            BarrierKind::Acquire,
            BarrierKind::ReadOnce,
        ] {
            assert!(!kind.orders_stores(), "{kind:?} must not flush stores");
        }
    }

    #[test]
    fn load_ordering_barriers() {
        for kind in [
            BarrierKind::Full,
            BarrierKind::Rmb,
            BarrierKind::Acquire,
            BarrierKind::ReadOnce,
        ] {
            assert!(kind.orders_loads(), "{kind:?} must reset the window");
        }
        for kind in [BarrierKind::Wmb, BarrierKind::Release] {
            assert!(!kind.orders_loads(), "{kind:?} must not reset the window");
        }
    }

    #[test]
    fn api_names_match_table1() {
        assert_eq!(BarrierKind::Full.api_name(), "smp_mb");
        assert_eq!(BarrierKind::Wmb.api_name(), "smp_wmb");
        assert_eq!(BarrierKind::Rmb.api_name(), "smp_rmb");
        assert_eq!(BarrierKind::Release.api_name(), "smp_store_release");
        assert_eq!(BarrierKind::Acquire.api_name(), "smp_load_acquire");
    }

    #[test]
    fn tid_display() {
        assert_eq!(Tid(1).to_string(), "cpu1");
    }
}
