//! Shared vocabulary types for the emulation engine.

use std::fmt;

/// Index of a simulated CPU/thread (the paper pins each concurrent syscall to
/// its own virtual CPU, so "thread" and "CPU" coincide here).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Tid(pub usize);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Kind of a profiled memory access (the *type* field of the paper's
/// five-tuple access record).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load operation.
    Load,
    /// A store operation.
    Store,
    /// An atomic read-modify-write. RMWs are single memory events in the
    /// LKMM; OEMU never delays or versions them, but they participate in
    /// shared-location detection as both a read and a write.
    Rmw,
}

impl AccessKind {
    /// Whether the access writes memory.
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::Rmw)
    }

    /// Whether the access reads memory.
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Rmw)
    }
}

/// Ordering annotation on a store, mirroring the Linux APIs of Table 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum StoreAnn {
    /// A plain (compiler-visible) store; fully reorderable.
    Plain,
    /// `WRITE_ONCE()`: relaxed — suppresses data-race reports but provides
    /// **no** ordering, so it is just as delayable as a plain store. This is
    /// exactly the mis-fix of the paper's Bug #9 case study.
    WriteOnce,
    /// `smp_store_release()`: all preceding accesses complete before this
    /// store (LKMM Case 5) — OEMU flushes the store buffer first.
    Release,
}

/// Ordering annotation on a load, mirroring the Linux APIs of Table 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LoadAnn {
    /// A plain load; may be versioned even across address dependencies
    /// (the Alpha rule, LKMM Case 6 / Appendix §10.1).
    Plain,
    /// `READ_ONCE()` or an atomic read: treated by OEMU as an implied load
    /// barrier *after* the load (§3.2), so later loads cannot read values
    /// older than it.
    ReadOnce,
    /// `smp_load_acquire()`: no later access may be reordered before it
    /// (LKMM Case 4). Delayed stores only ever move *later*, so the store
    /// half is free; the load half resets the versioning window.
    Acquire,
}

/// Ordering strength of an atomic read-modify-write.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RmwOrder {
    /// No implied barrier (`clear_bit`, `atomic_inc`, ...). The RMW commits
    /// immediately, so it can become visible *before* earlier delayed plain
    /// stores — the exact mechanism of the paper's RDS bug (Figure 8).
    Relaxed,
    /// Acquire semantics (`test_and_set_bit_lock`): resets the versioning
    /// window after the read half.
    Acquire,
    /// Release semantics (`clear_bit_unlock`): flushes the store buffer
    /// before the write half, preventing critical-section stores from
    /// leaking past the unlock.
    Release,
    /// Fully ordered (`test_and_set_bit`, value-returning atomics): flush
    /// before, window reset after — an implied `smp_mb` on both sides.
    Full,
}

/// Barrier kinds of Table 1, as recorded in the three-tuple barrier profile.
///
/// Annotated accesses (`Release`, `Acquire`, `ReadOnce`) double as barrier
/// events because Algorithm 1 groups memory accesses by barrier *type*
/// boundaries, and the LKMM treats those annotations as one-sided fences.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BarrierKind {
    /// `smp_mb()` — orders everything against everything (LKMM Case 1).
    Full,
    /// `smp_rmb()` — orders loads against loads (LKMM Case 3).
    Rmb,
    /// `smp_wmb()` — orders stores against stores (LKMM Case 2).
    Wmb,
    /// `smp_load_acquire()` on the preceding load (LKMM Case 4).
    Acquire,
    /// `smp_store_release()` on the following store (LKMM Case 5).
    Release,
    /// `READ_ONCE()`/atomic read, which OEMU treats as an implied `smp_rmb`
    /// (LKMM Case 6, the Alpha address-dependency rule).
    ReadOnce,
}

impl BarrierKind {
    /// Whether this barrier bounds **store** reordering, i.e. flushes the
    /// virtual store buffer. Used by Algorithm 1 as the group boundary for
    /// the hypothetical *store* barrier test.
    pub fn orders_stores(self) -> bool {
        matches!(
            self,
            BarrierKind::Full | BarrierKind::Wmb | BarrierKind::Release
        )
    }

    /// Whether this barrier bounds **load** reordering, i.e. resets the
    /// versioning window. Used by Algorithm 1 as the group boundary for the
    /// hypothetical *load* barrier test.
    pub fn orders_loads(self) -> bool {
        matches!(
            self,
            BarrierKind::Full | BarrierKind::Rmb | BarrierKind::Acquire | BarrierKind::ReadOnce
        )
    }

    /// Linux API name, for reports.
    pub fn api_name(self) -> &'static str {
        match self {
            BarrierKind::Full => "smp_mb",
            BarrierKind::Rmb => "smp_rmb",
            BarrierKind::Wmb => "smp_wmb",
            BarrierKind::Acquire => "smp_load_acquire",
            BarrierKind::Release => "smp_store_release",
            BarrierKind::ReadOnce => "READ_ONCE",
        }
    }
}

/// The memory model an [`crate::Engine`] emulates.
///
/// The engine's *mechanisms* — the virtual store buffer (§3.1) and
/// versioned loads over the store history (§3.2) — are shared by every
/// model; the model decides which orderings the mechanisms must preserve:
///
/// - [`Tso`](MemoryModel::Tso) (the default): the paper's x86-TSO-shaped
///   point. One FIFO store buffer per thread; any flush drains it whole,
///   and `READ_ONCE` acts as an implied load barrier (the engine's LKMM
///   Case 6 choice). This is bit-for-bit the engine's historical behavior
///   and the one all golden traces are recorded under.
/// - [`Pso`](MemoryModel::Pso): per-address store queues — buffered
///   stores to *different* addresses drain independently, so a relaxed or
///   acquire RMW forces out only the conflicting address's queue and
///   leaves unrelated delayed stores in flight (under TSO the FIFO forces
///   the whole buffer out). Same-address order and every explicit barrier
///   are unchanged.
/// - [`Arm`](MemoryModel::Arm): PSO plus reordered loads gated only by
///   *real* load barriers — `smp_rmb`, `smp_mb`, and acquire reset the
///   versioning window, but `READ_ONCE` no longer does (on Arm a
///   `READ_ONCE` suppresses compiler games and carries the address
///   dependency, it is not a DMB).
///
/// This is deliberately a fieldless `Copy` enum rather than a trait
/// object: the model is part of a machine's identity (it keys the machine
/// pool next to `BugSwitches`, so it needs `Eq + Hash + Ord`), and the
/// per-access hot path stays a branch on a register-sized value instead
/// of a dynamic dispatch.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub enum MemoryModel {
    /// x86-TSO-shaped (the engine's historical behavior; the default).
    #[default]
    Tso,
    /// Partial store order: per-address store queues.
    Pso,
    /// ARM-like: PSO plus load reordering gated by `smp_rmb`/acquire only.
    Arm,
}

impl MemoryModel {
    /// Every model, in strength order (strongest first). Handy for
    /// per-model test sweeps.
    pub const ALL: [MemoryModel; 3] = [MemoryModel::Tso, MemoryModel::Pso, MemoryModel::Arm];

    /// Lower-case name, as accepted by `OZZ_MEMMODEL` and written into
    /// `ozz-trace v2` headers.
    pub fn name(self) -> &'static str {
        match self {
            MemoryModel::Tso => "tso",
            MemoryModel::Pso => "pso",
            MemoryModel::Arm => "arm",
        }
    }

    /// Parses a model name (the inverse of [`name`](MemoryModel::name)).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tso" => Some(MemoryModel::Tso),
            "pso" => Some(MemoryModel::Pso),
            "arm" => Some(MemoryModel::Arm),
            _ => None,
        }
    }

    /// Reads the `OZZ_MEMMODEL` environment variable: unset means TSO, a
    /// recognized name selects that model, and anything else panics — a
    /// typo must not silently test the wrong memory model.
    pub fn from_env() -> Self {
        match std::env::var("OZZ_MEMMODEL") {
            Err(_) => MemoryModel::Tso,
            Ok(v) => MemoryModel::parse(&v).unwrap_or_else(|| {
                panic!("unrecognized OZZ_MEMMODEL value {v:?}: valid values are \"tso\", \"pso\", \"arm\" (unset defaults to tso)")
            }),
        }
    }

    /// Whether `kind` bounds **load** reordering under this model, i.e.
    /// resets the versioning window. Equals [`BarrierKind::orders_loads`]
    /// everywhere except Arm, where `READ_ONCE` is not a load barrier.
    pub fn barrier_orders_loads(self, kind: BarrierKind) -> bool {
        match self {
            MemoryModel::Tso | MemoryModel::Pso => kind.orders_loads(),
            MemoryModel::Arm => kind.orders_loads() && kind != BarrierKind::ReadOnce,
        }
    }

    /// Whether `kind` bounds **store** reordering under this model, i.e.
    /// flushes the store buffer. Identical across models today (every
    /// model honors `smp_wmb`/`smp_mb`/release); kept symmetric with
    /// [`barrier_orders_loads`](MemoryModel::barrier_orders_loads) so
    /// planners query capabilities, not model names.
    pub fn barrier_orders_stores(self, kind: BarrierKind) -> bool {
        kind.orders_stores()
    }

    /// Whether a relaxed/acquire RMW that conflicts with a buffered store
    /// forces the **whole** buffer out (TSO's FIFO drain) or only the
    /// conflicting address's queue (PSO/Arm per-address queues).
    pub fn rmw_drains_whole_buffer(self) -> bool {
        matches!(self, MemoryModel::Tso)
    }

    /// Whether a release store may itself sit in the store buffer after
    /// flushing the accesses *before* it. A release fence is one-way:
    /// everything prior must be visible before the release store, but a
    /// *later* plain store overtaking the release store is legal on
    /// PSO/Arm-class machines — while TSO's single ordered store queue
    /// (x86's total store order) forbids it. This is the store-side
    /// relaxation that gives PSO an outcome set strictly wider than TSO's.
    pub fn release_store_is_delayable(self) -> bool {
        !matches!(self, MemoryModel::Tso)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_classification() {
        assert!(AccessKind::Store.writes());
        assert!(!AccessKind::Store.reads());
        assert!(AccessKind::Load.reads());
        assert!(!AccessKind::Load.writes());
        assert!(AccessKind::Rmw.reads() && AccessKind::Rmw.writes());
    }

    #[test]
    fn store_ordering_barriers() {
        for kind in [BarrierKind::Full, BarrierKind::Wmb, BarrierKind::Release] {
            assert!(kind.orders_stores(), "{kind:?} must flush stores");
        }
        for kind in [
            BarrierKind::Rmb,
            BarrierKind::Acquire,
            BarrierKind::ReadOnce,
        ] {
            assert!(!kind.orders_stores(), "{kind:?} must not flush stores");
        }
    }

    #[test]
    fn load_ordering_barriers() {
        for kind in [
            BarrierKind::Full,
            BarrierKind::Rmb,
            BarrierKind::Acquire,
            BarrierKind::ReadOnce,
        ] {
            assert!(kind.orders_loads(), "{kind:?} must reset the window");
        }
        for kind in [BarrierKind::Wmb, BarrierKind::Release] {
            assert!(!kind.orders_loads(), "{kind:?} must not reset the window");
        }
    }

    #[test]
    fn api_names_match_table1() {
        assert_eq!(BarrierKind::Full.api_name(), "smp_mb");
        assert_eq!(BarrierKind::Wmb.api_name(), "smp_wmb");
        assert_eq!(BarrierKind::Rmb.api_name(), "smp_rmb");
        assert_eq!(BarrierKind::Release.api_name(), "smp_store_release");
        assert_eq!(BarrierKind::Acquire.api_name(), "smp_load_acquire");
    }

    #[test]
    fn tid_display() {
        assert_eq!(Tid(1).to_string(), "cpu1");
    }

    #[test]
    fn memory_model_names_round_trip() {
        for m in MemoryModel::ALL {
            assert_eq!(MemoryModel::parse(m.name()), Some(m));
        }
        assert_eq!(MemoryModel::parse("sc"), None);
        assert_eq!(MemoryModel::default(), MemoryModel::Tso);
    }

    #[test]
    fn tso_and_pso_barrier_predicates_match_the_barrier_kind() {
        for kind in [
            BarrierKind::Full,
            BarrierKind::Rmb,
            BarrierKind::Wmb,
            BarrierKind::Acquire,
            BarrierKind::Release,
            BarrierKind::ReadOnce,
        ] {
            for m in [MemoryModel::Tso, MemoryModel::Pso] {
                assert_eq!(m.barrier_orders_loads(kind), kind.orders_loads());
            }
            for m in MemoryModel::ALL {
                assert_eq!(m.barrier_orders_stores(kind), kind.orders_stores());
            }
        }
    }

    #[test]
    fn arm_read_once_is_not_a_load_barrier() {
        assert!(!MemoryModel::Arm.barrier_orders_loads(BarrierKind::ReadOnce));
        for kind in [BarrierKind::Full, BarrierKind::Rmb, BarrierKind::Acquire] {
            assert!(MemoryModel::Arm.barrier_orders_loads(kind));
        }
    }

    #[test]
    fn only_tso_drains_the_whole_buffer_on_rmw() {
        assert!(MemoryModel::Tso.rmw_drains_whole_buffer());
        assert!(!MemoryModel::Pso.rmw_drains_whole_buffer());
        assert!(!MemoryModel::Arm.rmw_drains_whole_buffer());
    }

    #[test]
    fn release_stores_are_delayable_only_off_tso() {
        assert!(!MemoryModel::Tso.release_store_is_delayable());
        assert!(MemoryModel::Pso.release_store_is_delayable());
        assert!(MemoryModel::Arm.release_store_is_delayable());
    }
}
