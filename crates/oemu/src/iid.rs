//! Instruction identifiers.
//!
//! The paper's OEMU identifies a memory access by the address of the
//! instruction carrying it; the control interfaces of Table 2
//! (`delay_store_at(I)`, `read_old_value_at(I)`) and the five-tuple profiling
//! records of §4.2 all key on that address. In this reproduction the stable
//! analog of an instruction address is a hash of the instrumentation site's
//! source location, produced once per call site by the [`iid!`](crate::iid)
//! macro.

use std::collections::HashMap;
use std::fmt;

use kutil::sync::Mutex;

/// A stable identifier for one instrumented memory access or barrier site.
///
/// Equivalent to the instruction address the paper's LLVM pass records. Two
/// executions of the same program produce identical [`Iid`]s for the same
/// source location, which is what lets a userspace fuzzer profile a
/// single-threaded run and then instruct OEMU to reorder specific accesses in
/// a later multi-threaded run.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iid(pub u64);

/// The source location behind an [`Iid`], used in bug reports to tell the
/// developer *where* the hypothetical memory barrier belongs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Location {
    /// Source file of the instrumented access.
    pub file: &'static str,
    /// Line of the instrumented access.
    pub line: u32,
    /// Column of the instrumented access.
    pub column: u32,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

static REGISTRY: Mutex<Option<HashMap<Iid, Location>>> = Mutex::new(None);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut hash = init;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl Iid {
    /// A sentinel id for accesses synthesised by the runtime itself (e.g.
    /// store-buffer flushes at syscall exit). Never matches a control set.
    pub const SYNTHETIC: Iid = Iid(0);

    /// Registers a source location and returns its stable id.
    ///
    /// Called once per call site through the [`iid!`](crate::iid) macro; the
    /// result is cached in a `OnceLock` so the hot path is a single load.
    ///
    /// # Panics
    ///
    /// Panics if two distinct source locations hash to the same id (an FNV
    /// collision), since that would silently conflate two instructions.
    pub fn register(file: &'static str, line: u32, column: u32) -> Iid {
        let mut hash = fnv1a(FNV_OFFSET, file.as_bytes());
        hash = fnv1a(hash, &line.to_le_bytes());
        hash = fnv1a(hash, &column.to_le_bytes());
        // Reserve 0 for `SYNTHETIC`.
        let iid = Iid(hash.max(1));
        let loc = Location { file, line, column };
        let mut guard = REGISTRY.lock();
        let map = guard.get_or_insert_with(HashMap::new);
        if let Some(prev) = map.insert(iid, loc) {
            assert_eq!(
                prev, loc,
                "Iid hash collision between {prev} and {loc}; widen the hash"
            );
        }
        iid
    }

    /// Looks up the source location registered for this id, if any.
    pub fn location(self) -> Option<Location> {
        REGISTRY.lock().as_ref().and_then(|m| m.get(&self).copied())
    }

    /// Formats the id as `file:line:column` when known, or the raw hash.
    pub fn describe(self) -> String {
        match self.location() {
            Some(loc) => loc.to_string(),
            None => format!("iid#{:016x}", self.0),
        }
    }

    /// Serializes the id to the stable single-token text form used by
    /// every durable artifact (`ozz-trace` files, campaign checkpoints):
    /// `file:line:col` when the location is known, `@synthetic` for
    /// [`Iid::SYNTHETIC`], `@<hex>` for an unregistered raw hash.
    ///
    /// Tokens never contain whitespace (Rust source paths have none), so
    /// they can be embedded in whitespace-separated line formats.
    pub fn to_token(self) -> String {
        match self.location() {
            Some(loc) => format!("{}:{}:{}", loc.file, loc.line, loc.column),
            None if self == Iid::SYNTHETIC => "@synthetic".into(),
            None => format!("@{:016x}", self.0),
        }
    }

    /// Parses a token produced by [`Iid::to_token`].
    ///
    /// A `file:line:col` token is *re-registered*, so the parsed id
    /// resolves to its source location again in this process — that is
    /// what keeps golden traces and checkpoints portable across builds
    /// whose hash registry starts empty. Tokens are parsed rarely, so
    /// leaking the interned file path is fine.
    pub fn from_token(s: &str) -> Result<Iid, String> {
        if s == "@synthetic" {
            return Ok(Iid::SYNTHETIC);
        }
        if let Some(hex) = s.strip_prefix('@') {
            let raw =
                u64::from_str_radix(hex, 16).map_err(|e| format!("bad raw iid {s:?}: {e}"))?;
            return Ok(Iid(raw));
        }
        // `file:line:col` — split from the right; file paths contain no ':'.
        let mut parts = s.rsplitn(3, ':');
        let col = parts.next().ok_or_else(|| format!("bad iid {s:?}"))?;
        let line = parts.next().ok_or_else(|| format!("bad iid {s:?}"))?;
        let file = parts.next().ok_or_else(|| format!("bad iid {s:?}"))?;
        let line: u32 = line
            .parse()
            .map_err(|e| format!("bad iid line {s:?}: {e}"))?;
        let col: u32 = col.parse().map_err(|e| format!("bad iid col {s:?}: {e}"))?;
        let file: &'static str = Box::leak(file.to_string().into_boxed_str());
        Ok(Iid::register(file, line, col))
    }
}

impl fmt::Debug for Iid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.location() {
            Some(loc) => write!(f, "Iid({loc})"),
            None => write!(f, "Iid(#{:016x})", self.0),
        }
    }
}

impl fmt::Display for Iid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// Produces the [`Iid`] of the current source location.
///
/// The analog of the instruction address the paper's LLVM pass attaches to
/// each rewritten memory access. The id is computed and registered once and
/// cached per call site.
///
/// # Examples
///
/// ```
/// let a = oemu::iid!();
/// let b = oemu::iid!();
/// assert_ne!(a, b, "distinct call sites get distinct ids");
/// ```
#[macro_export]
macro_rules! iid {
    () => {{
        static CELL: ::std::sync::OnceLock<$crate::Iid> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::Iid::register(file!(), line!(), column!()))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_site_is_stable() {
        fn site() -> Iid {
            crate::iid!()
        }
        assert_eq!(site(), site());
    }

    #[test]
    fn distinct_sites_differ() {
        let a = crate::iid!();
        let b = crate::iid!();
        assert_ne!(a, b);
    }

    #[test]
    fn location_roundtrip() {
        let iid = Iid::register("foo.rs", 10, 4);
        let loc = iid.location().expect("registered");
        assert_eq!(loc.file, "foo.rs");
        assert_eq!(loc.line, 10);
        assert_eq!(loc.column, 4);
        assert_eq!(loc.to_string(), "foo.rs:10:4");
    }

    #[test]
    fn synthetic_never_registered() {
        assert!(Iid::SYNTHETIC.location().is_none());
        assert!(Iid::SYNTHETIC.describe().starts_with("iid#"));
    }

    #[test]
    fn reregistering_same_location_is_idempotent() {
        let a = Iid::register("bar.rs", 1, 1);
        let b = Iid::register("bar.rs", 1, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn token_roundtrip_for_all_three_forms() {
        let registered = Iid::register("baz.rs", 42, 9);
        assert_eq!(registered.to_token(), "baz.rs:42:9");
        assert_eq!(Iid::from_token("baz.rs:42:9"), Ok(registered));
        assert_eq!(Iid::SYNTHETIC.to_token(), "@synthetic");
        assert_eq!(Iid::from_token("@synthetic"), Ok(Iid::SYNTHETIC));
        let raw = Iid(0xdead_beef);
        assert_eq!(Iid::from_token(&raw.to_token()), Ok(raw));
        assert!(Iid::from_token("@xyzzy").is_err());
        assert!(Iid::from_token("no-colons").is_err());
    }

    /// Parsing re-registers the location, so a token read in a process
    /// with an empty registry resolves back to `file:line:col`.
    #[test]
    fn parsed_tokens_resolve_to_locations() {
        let iid = Iid::from_token("qux.rs:7:3").expect("parse");
        assert_eq!(
            iid.location().expect("registered").to_string(),
            "qux.rs:7:3"
        );
    }
}
