//! The virtual store buffer (§3.1).
//!
//! A per-thread FIFO of store operations whose commit to memory has been
//! deferred. While a value sits in the buffer it is invisible to other
//! threads; subsequent loads by the owning thread *forward* from the buffer
//! (the hierarchical search of §3.1), preserving single-thread semantics.
//! The buffer drains — in issue order, so delayed stores never reorder among
//! themselves — when the thread executes a store-ordering barrier
//! (`smp_wmb`, `smp_mb`, release, a fully-ordered atomic) or at syscall exit
//! (the paper's "interrupt on the processor" condition).

use crate::iid::Iid;

/// One in-flight store held by the virtual store buffer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BufferedStore {
    /// Target address of the delayed store.
    pub addr: u64,
    /// Value waiting to be committed.
    pub value: u64,
    /// Access size in bytes. Semantic, not just profiling metadata: the
    /// forwarding decision compares byte ranges, so a narrow buffered
    /// store must not satisfy a wider load at the same address.
    pub size: u8,
    /// Instruction that issued the store.
    pub iid: Iid,
}

impl BufferedStore {
    /// Whether this entry's byte range intersects `[addr, addr + size)`.
    fn overlaps(&self, addr: u64, size: u8) -> bool {
        let (a0, a1) = (self.addr, self.addr + u64::from(self.size.max(1)));
        let (b0, b1) = (addr, addr + u64::from(size.max(1)));
        a0 < b1 && b0 < a1
    }
}

/// Outcome of a store-to-load forwarding probe ([`StoreBuffer::forward`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Forward {
    /// A buffered entry fully satisfies the load; forward this value.
    Hit(u64),
    /// A buffered entry overlaps the load's byte range but cannot satisfy
    /// it whole (narrower entry, or a wider entry at a different base).
    /// The caller must resolve conservatively — drain the buffer and read
    /// memory — because forwarding either the entry's value or the stale
    /// memory word would be wrong.
    Partial,
    /// No buffered entry touches the load's byte range.
    Miss,
}

/// Per-thread FIFO buffer of delayed stores.
#[derive(Default, Debug)]
pub struct StoreBuffer {
    entries: Vec<BufferedStore>,
}

impl Clone for StoreBuffer {
    fn clone(&self) -> Self {
        StoreBuffer {
            entries: self.entries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.entries.clone_from(&source.entries);
    }
}

impl StoreBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Holds a store in the buffer instead of committing it.
    pub fn push(&mut self, entry: BufferedStore) {
        self.entries.push(entry);
    }

    /// Store-to-load forwarding probe for a load of `size` bytes at `addr`.
    ///
    /// The owning thread must always observe its own program order, so the
    /// *youngest* overlapping entry decides. It forwards only when it can
    /// satisfy the load whole — same base address and at least the load's
    /// width (the engine's memory is word-slot granular, so an entry at a
    /// different base writes a different slot and its bytes cannot be
    /// spliced). Any other overlap is reported as [`Forward::Partial`] for
    /// the caller to resolve conservatively. The old exact-`addr` match
    /// both forwarded narrow entries to wider loads (stale high bytes) and
    /// missed wider entries based below `addr` entirely.
    pub fn forward(&self, addr: u64, size: u8) -> Forward {
        match self.entries.iter().rev().find(|e| e.overlaps(addr, size)) {
            Some(e) if e.addr == addr && e.size >= size => Forward::Hit(e.value),
            Some(_) => Forward::Partial,
            None => Forward::Miss,
        }
    }

    /// Whether any buffered entry's byte range intersects
    /// `[addr, addr + size)` — the coherence test for store joining and
    /// RMW conflicts.
    pub fn overlaps(&self, addr: u64, size: u8) -> bool {
        self.entries.iter().any(|e| e.overlaps(addr, size))
    }

    /// Drains all entries in issue (FIFO) order for committing.
    pub fn drain(&mut self) -> Vec<BufferedStore> {
        std::mem::take(&mut self.entries)
    }

    /// Drains only the entries overlapping `[addr, addr + size)`, in issue
    /// order, leaving the rest buffered — the per-address-queue drain of
    /// the PSO/Arm models (the single `Vec` *is* the set of per-address
    /// queues; selecting by address projects one queue out of it).
    pub fn drain_overlapping(&mut self, addr: u64, size: u8) -> Vec<BufferedStore> {
        let mut drained = Vec::new();
        self.entries.retain(|e| {
            if e.overlaps(addr, size) {
                drained.push(*e);
                false
            } else {
                true
            }
        });
        drained
    }

    /// Whether any store is currently delayed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of in-flight stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Read-only view of the in-flight stores, oldest first.
    pub fn entries(&self) -> &[BufferedStore] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(addr: u64, value: u64) -> BufferedStore {
        BufferedStore {
            addr,
            value,
            size: 8,
            iid: Iid::SYNTHETIC,
        }
    }

    fn sized(addr: u64, value: u64, size: u8) -> BufferedStore {
        BufferedStore {
            addr,
            value,
            size,
            iid: Iid::SYNTHETIC,
        }
    }

    #[test]
    fn forwarding_returns_latest_value() {
        let mut buf = StoreBuffer::new();
        buf.push(entry(0x10, 1));
        buf.push(entry(0x10, 2));
        buf.push(entry(0x20, 9));
        assert_eq!(buf.forward(0x10, 8), Forward::Hit(2));
        assert_eq!(buf.forward(0x20, 8), Forward::Hit(9));
        assert_eq!(buf.forward(0x30, 8), Forward::Miss);
    }

    /// Narrow-over-wide: a 4-byte buffered store must not satisfy an
    /// 8-byte load at the same address — the load's high bytes would be
    /// stale. The old exact-`addr` match forwarded the narrow value whole.
    #[test]
    fn narrow_buffered_store_does_not_satisfy_a_wider_load() {
        let mut buf = StoreBuffer::new();
        buf.push(sized(0x10, 0xabcd, 4));
        assert_eq!(buf.forward(0x10, 8), Forward::Partial);
        assert_eq!(
            buf.forward(0x10, 4),
            Forward::Hit(0xabcd),
            "equal width forwards"
        );
        assert_eq!(
            buf.forward(0x10, 2),
            Forward::Hit(0xabcd),
            "contained width forwards"
        );
    }

    /// Wide-over-narrow at a different base: an 8-byte buffered store at
    /// `0x10` covers a 4-byte load at `0x14` byte-wise; the old code
    /// missed it entirely (exact-`addr` match) and let the load read the
    /// stale memory word. It must now surface as a conflict.
    #[test]
    fn wide_buffered_store_conflicts_with_an_inner_load() {
        let mut buf = StoreBuffer::new();
        buf.push(sized(0x10, 7, 8));
        assert_eq!(buf.forward(0x14, 4), Forward::Partial);
        assert!(buf.overlaps(0x14, 4));
    }

    /// Misaligned overlap: ranges that intersect without containment in
    /// either direction are conflicts; byte-disjoint ranges are misses.
    #[test]
    fn misaligned_overlap_is_partial_and_disjoint_is_miss() {
        let mut buf = StoreBuffer::new();
        buf.push(sized(0x12, 3, 4)); // covers 0x12..0x16
        assert_eq!(buf.forward(0x14, 4), Forward::Partial); // 0x14..0x18
        assert_eq!(buf.forward(0x10, 4), Forward::Partial); // 0x10..0x14
        assert_eq!(buf.forward(0x16, 2), Forward::Miss); // 0x16..0x18
        assert_eq!(buf.forward(0x10, 2), Forward::Miss); // 0x10..0x12
        assert!(!buf.overlaps(0x16, 2));
    }

    /// The youngest overlapping entry decides: a later narrow store to the
    /// same address shadows an older full-width one, so the probe must
    /// report a conflict rather than forward the older wide value.
    #[test]
    fn youngest_overlapping_entry_wins_the_probe() {
        let mut buf = StoreBuffer::new();
        buf.push(sized(0x10, 1, 8));
        buf.push(sized(0x10, 2, 4));
        assert_eq!(buf.forward(0x10, 8), Forward::Partial);
        assert_eq!(buf.forward(0x10, 4), Forward::Hit(2));
    }

    #[test]
    fn drain_overlapping_projects_one_address_queue() {
        let mut buf = StoreBuffer::new();
        buf.push(entry(0x10, 1));
        buf.push(entry(0x20, 2));
        buf.push(entry(0x10, 3));
        let drained = buf.drain_overlapping(0x10, 8);
        assert_eq!(
            drained.iter().map(|e| e.value).collect::<Vec<_>>(),
            vec![1, 3],
            "same-address entries drain in issue order"
        );
        assert_eq!(buf.len(), 1, "the unrelated store stays buffered");
        assert_eq!(buf.forward(0x20, 8), Forward::Hit(2));
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let mut buf = StoreBuffer::new();
        buf.push(entry(0x10, 1));
        buf.push(entry(0x20, 2));
        buf.push(entry(0x10, 3));
        let drained = buf.drain();
        assert_eq!(
            drained.iter().map(|e| e.value).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn len_tracks_entries() {
        let mut buf = StoreBuffer::new();
        assert_eq!(buf.len(), 0);
        buf.push(entry(0, 0));
        assert_eq!(buf.len(), 1);
        buf.drain();
        assert_eq!(buf.len(), 0);
    }
}
