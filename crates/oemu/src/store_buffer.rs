//! The virtual store buffer (§3.1).
//!
//! A per-thread FIFO of store operations whose commit to memory has been
//! deferred. While a value sits in the buffer it is invisible to other
//! threads; subsequent loads by the owning thread *forward* from the buffer
//! (the hierarchical search of §3.1), preserving single-thread semantics.
//! The buffer drains — in issue order, so delayed stores never reorder among
//! themselves — when the thread executes a store-ordering barrier
//! (`smp_wmb`, `smp_mb`, release, a fully-ordered atomic) or at syscall exit
//! (the paper's "interrupt on the processor" condition).

use crate::iid::Iid;

/// One in-flight store held by the virtual store buffer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BufferedStore {
    /// Target address of the delayed store.
    pub addr: u64,
    /// Value waiting to be committed.
    pub value: u64,
    /// Access size in bytes (profiling metadata).
    pub size: u8,
    /// Instruction that issued the store.
    pub iid: Iid,
}

/// Per-thread FIFO buffer of delayed stores.
#[derive(Default, Debug)]
pub struct StoreBuffer {
    entries: Vec<BufferedStore>,
}

impl Clone for StoreBuffer {
    fn clone(&self) -> Self {
        StoreBuffer {
            entries: self.entries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.entries.clone_from(&source.entries);
    }
}

impl StoreBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Holds a store in the buffer instead of committing it.
    pub fn push(&mut self, entry: BufferedStore) {
        self.entries.push(entry);
    }

    /// Store-to-load forwarding: the youngest buffered value for `addr`, if
    /// any. The owning thread must always observe its own program order, so
    /// the *latest* matching entry wins.
    pub fn forward(&self, addr: u64) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.value)
    }

    /// Drains all entries in issue (FIFO) order for committing.
    pub fn drain(&mut self) -> Vec<BufferedStore> {
        std::mem::take(&mut self.entries)
    }

    /// Whether any store is currently delayed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of in-flight stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Read-only view of the in-flight stores, oldest first.
    pub fn entries(&self) -> &[BufferedStore] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(addr: u64, value: u64) -> BufferedStore {
        BufferedStore {
            addr,
            value,
            size: 8,
            iid: Iid::SYNTHETIC,
        }
    }

    #[test]
    fn forwarding_returns_latest_value() {
        let mut buf = StoreBuffer::new();
        buf.push(entry(0x10, 1));
        buf.push(entry(0x10, 2));
        buf.push(entry(0x20, 9));
        assert_eq!(buf.forward(0x10), Some(2));
        assert_eq!(buf.forward(0x20), Some(9));
        assert_eq!(buf.forward(0x30), None);
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let mut buf = StoreBuffer::new();
        buf.push(entry(0x10, 1));
        buf.push(entry(0x20, 2));
        buf.push(entry(0x10, 3));
        let drained = buf.drain();
        assert_eq!(
            drained.iter().map(|e| e.value).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn len_tracks_entries() {
        let mut buf = StoreBuffer::new();
        assert_eq!(buf.len(), 0);
        buf.push(entry(0, 0));
        assert_eq!(buf.len(), 1);
        buf.drain();
        assert_eq!(buf.len(), 0);
    }
}
