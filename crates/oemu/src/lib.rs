//! OEMU: in-vivo out-of-order execution emulation.
//!
//! This crate implements §3 of *OZZ: Identifying Kernel Out-of-Order
//! Concurrency Bugs with In-Vivo Memory Access Reordering* (SOSP '24). It is
//! the runtime mechanism that makes the non-deterministic behaviour of
//! out-of-order execution controllable and observable:
//!
//! - **Delayed store operations** (§3.1) via a per-thread *virtual store
//!   buffer* that holds values before committing them to memory, emulating
//!   store-store and store-load reordering.
//! - **Versioned load operations** (§3.2) via a global *store history* and a
//!   per-thread *versioning window* `(t_rmb, t_cur]`, emulating load-load
//!   reordering.
//! - The Linux memory-barrier API surface of Table 1 (`smp_mb`, `smp_rmb`,
//!   `smp_wmb`, `smp_store_release`, `smp_load_acquire`,
//!   `READ_ONCE`/`WRITE_ONCE`).
//! - The two control interfaces of Table 2: [`Engine::delay_store_at`] and
//!   [`Engine::read_old_value_at`].
//! - LKMM compliance (§3.3, Appendix §10.1): the seven cases in which two
//!   accesses must not be reordered are enforced by construction; load-store
//!   reordering is out of scope, exactly as in the paper.
//! - Access and barrier **profiling** (§4.2): five-tuple access records and
//!   three-tuple barrier records consumed by the OZZ hint calculator.
//!
//! In the paper, an LLVM pass rewrites kernel loads/stores into callback
//! calls (`Figure 2`). Here, instrumented code performs every shared-memory
//! access through [`Engine`] methods tagged with a static instruction id
//! produced by the [`iid!`] macro — the observationally-equivalent routing.
//!
//! # Examples
//!
//! Reproduce Figure 3 (delayed store) of the paper:
//!
//! ```
//! use oemu::{iid, Engine, LoadAnn, StoreAnn, Tid};
//!
//! let engine = Engine::new(2);
//! let (t0, t1) = (Tid(0), Tid(1));
//! let (x, y) = (0x1000, 0x1008);
//! let (i1, i2) = (iid!(), iid!());
//!
//! // (1) delay_store_at(I1).
//! engine.delay_store_at(t0, i1);
//! // (2)(3) I1 executes, but the value is held in the virtual store buffer.
//! engine.store(t0, i1, x, 1, StoreAnn::Plain);
//! // (4) I2 commits immediately: other cores see y == 2 while x == 0.
//! engine.store(t0, i2, y, 2, StoreAnn::Plain);
//! assert_eq!(engine.load(t1, iid!(), x, LoadAnn::Plain), 0);
//! assert_eq!(engine.load(t1, iid!(), y, LoadAnn::Plain), 2);
//! // (5) smp_wmb() flushes the buffer.
//! engine.smp_wmb(t0, iid!());
//! assert_eq!(engine.load(t1, iid!(), x, LoadAnn::Plain), 1);
//! ```

mod engine;
mod history;
mod iid;
mod memory;
mod profile;
mod store_buffer;
mod trace;
mod types;

pub use engine::{Engine, EngineSnapshot, EngineStats};
pub use history::{StoreHistory, StoreRecord};
pub use iid::{Iid, Location};
pub use memory::Memory;
pub use profile::{AccessRecord, BarrierRecord, Profile, TraceEvent};
pub use store_buffer::{BufferedStore, Forward, StoreBuffer};
pub use trace::{LoadSrc, ReplayStatus, ScheduleTrace, SwitchPoint, TraceStep};
pub use types::{AccessKind, BarrierKind, LoadAnn, MemoryModel, RmwOrder, StoreAnn, Tid};
