//! The emulation engine tying together store buffer, history, and windows.
//!
//! One [`Engine`] instance models the memory subsystem of one simulated
//! machine for the duration of one test run. Every instrumented access of
//! the simulated kernel flows through it; the engine decides, based on the
//! per-thread control sets installed through the Table 2 interfaces, whether
//! a store commits or is delayed and whether a load reads memory, a
//! forwarded buffer entry, or an old version from the store history.
//!
//! # LKMM compliance (§3.3 / Appendix §10.1)
//!
//! - **Case 1** (`smp_mb`): [`Engine::smp_mb`] flushes the store buffer and
//!   resets the versioning window, so no access crosses it in either
//!   direction (loads are never delayed; delayed stores commit at the
//!   barrier; later loads cannot read values older than the barrier).
//! - **Case 2** (`smp_wmb`): flushing the buffer commits every delayed store
//!   before any later store can commit.
//! - **Case 3** (`smp_rmb`): resetting the window forbids later loads from
//!   observing pre-images older than the barrier.
//! - **Case 4** (acquire): the load half resets the window; the store half is
//!   free because delayed stores only ever move *later* in time.
//! - **Case 5** (release): the buffer is flushed immediately before the
//!   release store commits, and the release store itself is never delayed.
//! - **Case 6** (address dependency from a `READ_ONCE`): `READ_ONCE` and
//!   atomic reads are treated as an implied `smp_rmb` after the load. Plain
//!   dependent loads remain reorderable — the Alpha rule.
//! - **Case 7** (dependencies into stores): OEMU does not emulate load-store
//!   reordering at all (loads are never delayed past stores and stores are
//!   only delayed *later*), so every load-store dependency is trivially
//!   respected.

use std::collections::{HashMap, HashSet};

use kutil::sync::Mutex;

use crate::history::{StoreHistory, StoreRecord};
use crate::iid::Iid;
use crate::memory::Memory;
use crate::profile::{AccessRecord, BarrierRecord, Profile, TraceEvent};
use crate::store_buffer::{BufferedStore, Forward, StoreBuffer};
use crate::trace::{LoadSrc, ReplayStatus, TraceStep};
use crate::types::{AccessKind, BarrierKind, LoadAnn, MemoryModel, RmwOrder, StoreAnn, Tid};

/// Counters exposed for diagnostics and the ablation benchmarks.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Stores committed to memory (immediately or by a flush).
    pub commits: u64,
    /// Stores that entered the virtual store buffer.
    pub delayed: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub forwards: u64,
    /// Loads that read an old version from the store history.
    pub versioned_reads: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Profile event buffers handed back out by
    /// [`Engine::take_profile`] without a fresh allocation — each one is a
    /// `Vec<TraceEvent>` recycled through the machine-reset path instead of
    /// dropped. Cumulative across resets (a machine-lifetime counter, not
    /// per-run state).
    pub profile_bufs_recycled: u64,
    /// Restores served by the undo journal — only the state mutated since
    /// the target snapshot was rolled back. Machine-lifetime counter.
    pub restores_incremental: u64,
    /// Memory pre-images replayed by incremental restores: the exact work
    /// the journal paid where a full restore would have re-cloned the whole
    /// word table. Machine-lifetime counter.
    pub restore_words_replayed: u64,
    /// Restores that took the full `clone_from` path: the target's
    /// generation was not armed in the journal (cross-machine restore,
    /// superseded snapshot, invalidated journal) or full restore was
    /// forced. Machine-lifetime counter.
    pub restore_full_fallbacks: u64,
    /// Deepest memory undo journal observed at a restore, in entries —
    /// how much reset debt the machine ever accumulated. Machine-lifetime
    /// counter.
    pub journal_peak_words: u64,
}

/// Whether the engine is recording or replaying a schedule trace.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
enum TraceMode {
    #[default]
    Off,
    Record,
    Replay,
}

/// Record/replay state. Deliberately *not* part of [`EngineSnapshot`]
/// (like `spare_events`): a recording or replay spans exactly one pair
/// run, and machine snapshot/restore never happens inside one.
#[derive(Default)]
struct TraceState {
    mode: TraceMode,
    /// Recorded steps (record mode) or the script to impose (replay mode).
    steps: Vec<TraceStep>,
    /// Replay cursor into `steps`.
    pos: usize,
    /// Replay departed from the script; decisions fell back to in-order.
    diverged: bool,
}

/// Per-thread dirty tracking within one undo-journal frame. Flags are set
/// unconditionally on the mutation paths (a plain store, no branch or hash
/// cost); a restore `clone_from`s a collection only when some armed frame
/// at or above the target saw it mutated, and skips it entirely otherwise.
#[derive(Default, Clone)]
struct ThreadFrame {
    /// The store buffer gained or drained entries.
    buffer_dirty: bool,
    /// The per-location coherence floor moved (set on nearly every load —
    /// which is exactly why the floor is flag-tracked, not entry-journaled).
    floor_dirty: bool,
    /// `delay_store_at`/`clear_controls` touched the delay set.
    delay_dirty: bool,
    /// `read_old_value_at`/`clear_controls` touched the read-old set.
    read_old_dirty: bool,
    /// Profile event count when the frame was pushed. Profiling appends
    /// events in order, so rolling back truncates to this length —
    /// unless the buffer was swapped out ([`Engine::take_profile`]), which
    /// sets `profile_replaced` below.
    profile_len: usize,
    /// `take_profile` swapped this thread's event buffer while the frame
    /// held a non-empty baseline: the baseline content is gone, so restore
    /// must `clone_from` the snapshot's events instead of truncating.
    profile_replaced: bool,
}

/// One frame of the engine's undo journal, armed by [`Engine::snapshot`]
/// and keyed by the snapshot's generation id. The memory pre-image frame
/// lives inside [`Memory`] at the same stack position.
struct EngineFrame {
    generation: u64,
    /// Store-history length at the frame push; restore truncates back to it
    /// (the history is append-only between snapshots).
    hist_len: usize,
    threads: Vec<ThreadFrame>,
}

/// Deepest snapshot nesting the undo journal tracks. The campaign loop
/// needs two (boot + post-setup); pushing past the cap drops the oldest
/// frame, whose generation then restores via the full fallback path.
const MAX_FRAMES: usize = 8;

#[derive(Default, Clone)]
struct ThreadState {
    buffer: StoreBuffer,
    /// Start of the versioning window `(window_start, now]` — the commit
    /// clock at this thread's most recent load-ordering barrier.
    window_start: u64,
    /// Per-location read-coherence floor: once this thread observed the
    /// value a location held at time `t`, later loads of that location must
    /// not observe anything older (the CoRR guarantee every architecture —
    /// including Alpha — provides). Keyed by address; values are commit
    /// timestamps.
    obs_floor: HashMap<u64, u64>,
    delay_set: HashSet<Iid>,
    read_old_set: HashSet<Iid>,
    profile: Profile,
}

struct Inner {
    mem: Memory,
    history: StoreHistory,
    /// Commit clock: increments once per committed store.
    clock: u64,
    /// Profiling sequence: increments once per recorded event.
    seq: u64,
    profiling: bool,
    threads: Vec<ThreadState>,
    stats: EngineStats,
    /// Retired profile event buffers awaiting reuse by `take_profile`.
    /// Deliberately *not* part of [`EngineSnapshot`]: the spare pool is an
    /// allocation cache with no semantic content, and it must survive
    /// machine resets for the recycling to pay off.
    spare_events: Vec<Vec<TraceEvent>>,
    /// Schedule-trace record/replay state (see [`TraceState`]).
    trace: TraceState,
    /// Armed undo-journal frames, oldest first — one per live snapshot,
    /// aligned index-for-index with the memory journal's frames.
    /// Deliberately *not* part of [`EngineSnapshot`]: the journal describes
    /// how to get *back* to snapshots, it is not machine state itself.
    frames: Vec<EngineFrame>,
    /// Diagnostics/benchmark knob: every restore takes the full
    /// `clone_from` path and no frames are armed, reproducing the
    /// pre-journal cost model exactly.
    force_full_restore: bool,
    /// The memory model this engine emulates. Machine identity, not
    /// mutable state: fixed at construction, deliberately excluded from
    /// [`EngineSnapshot`] and its digest (machines of different models are
    /// never digest-compared; the pool keys shelves on the model instead).
    model: MemoryModel,
    /// `[base, end)` of the boot-time resident image installed by
    /// [`Engine::install_resident_image`], if any. The image is constant
    /// ballast (the analog of a kernel's static image and slab pools): it
    /// rides through snapshot/restore like any other memory — full
    /// restores pay to copy it, which is exactly the machine-size cost the
    /// undo journal avoids — but its words are excluded from digests,
    /// since identical-by-construction state carries no information.
    resident: Option<(u64, u64)>,
}

/// A full copy of one engine's semantic state — memory words, store
/// history, commit clock, profiling sequence, and every per-thread buffer,
/// window, coherence floor, control set, and in-progress profile.
///
/// Captured by [`Engine::snapshot`] and written back by
/// [`Engine::restore`]; restoring into a live engine reuses its existing
/// allocations, which is what makes a machine reset cheaper than a boot.
#[derive(Clone)]
pub struct EngineSnapshot {
    mem: Memory,
    history: StoreHistory,
    clock: u64,
    seq: u64,
    profiling: bool,
    threads: Vec<ThreadState>,
    stats: EngineStats,
    /// Process-unique id ([`kutil::next_generation`]) keying the undo
    /// journal: a restore whose generation is armed rolls back
    /// incrementally; any other falls back to the full `clone_from`.
    /// Not part of the digest — it names the snapshot, it is not state.
    generation: u64,
    /// The resident-image range captured with the state (see
    /// [`Engine::install_resident_image`]); carried so the snapshot's
    /// digest excludes the same words the live digest does.
    resident: Option<(u64, u64)>,
}

impl EngineSnapshot {
    /// Appends a deterministic rendering of the captured state to `out`.
    ///
    /// Hash-map iteration order never leaks: memory words, coherence
    /// floors, and control sets are sorted first. The [`EngineStats`]
    /// counters are deliberately excluded — they are diagnostics that never
    /// influence execution, and the recycle counter is defined to survive
    /// resets.
    pub fn digest(&self, out: &mut String) {
        digest_state(
            out,
            self.clock,
            self.seq,
            self.profiling,
            &self.mem,
            &self.history,
            &self.threads,
            self.resident,
        );
    }

    /// The snapshot's undo-journal generation id.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The one rendering of engine state both digests share: a snapshot's
/// [`EngineSnapshot::digest`] and the live [`Engine::digest_live`] must be
/// byte-identical for equal state, so they funnel through this function.
fn digest_state(
    out: &mut String,
    clock: u64,
    seq: u64,
    profiling: bool,
    mem: &Memory,
    history: &StoreHistory,
    threads: &[ThreadState],
    resident: Option<(u64, u64)>,
) {
    use std::fmt::Write;
    writeln!(out, "engine clock={clock} seq={seq} profiling={profiling}").unwrap();
    for (addr, value) in mem.sorted_words() {
        if let Some((base, end)) = resident {
            if addr >= base && addr < end {
                continue;
            }
        }
        writeln!(out, "mem {addr:#x}={value:#x}").unwrap();
    }
    for r in history.records() {
        writeln!(out, "hist {r:?}").unwrap();
    }
    for (i, t) in threads.iter().enumerate() {
        writeln!(out, "thread {i} window_start={}", t.window_start).unwrap();
        for e in t.buffer.entries() {
            writeln!(out, "  buffered {e:?}").unwrap();
        }
        let mut floors: Vec<_> = t.obs_floor.iter().collect();
        floors.sort_unstable();
        for (addr, ts) in floors {
            writeln!(out, "  floor {addr:#x}@{ts}").unwrap();
        }
        let mut delays: Vec<_> = t.delay_set.iter().collect();
        delays.sort_unstable();
        writeln!(out, "  delay_set {delays:?}").unwrap();
        let mut read_olds: Vec<_> = t.read_old_set.iter().collect();
        read_olds.sort_unstable();
        writeln!(out, "  read_old_set {read_olds:?}").unwrap();
        for ev in &t.profile.events {
            writeln!(out, "  profiled {ev:?}").unwrap();
        }
    }
}

/// The OEMU engine for one simulated machine.
///
/// Thread-safe: simulated CPUs are real OS threads serialised by the custom
/// scheduler, but the engine protects itself with a lock so it is also sound
/// under unserialised access (e.g. in unit tests).
pub struct Engine {
    inner: Mutex<Inner>,
}

impl Engine {
    /// Creates a TSO engine for `nthreads` simulated CPUs, all with empty
    /// control sets (i.e. in-order execution by default, per §3.1).
    pub fn new(nthreads: usize) -> Self {
        Self::new_with_model(nthreads, MemoryModel::Tso)
    }

    /// [`new`](Engine::new) under an explicit [`MemoryModel`]. The model is
    /// fixed for the engine's lifetime.
    pub fn new_with_model(nthreads: usize, model: MemoryModel) -> Self {
        let threads = (0..nthreads)
            .map(|i| ThreadState {
                profile: Profile::new(Tid(i)),
                ..ThreadState::default()
            })
            .collect();
        Engine {
            inner: Mutex::new(Inner {
                mem: Memory::new(),
                history: StoreHistory::new(),
                clock: 0,
                seq: 0,
                profiling: false,
                threads,
                stats: EngineStats::default(),
                spare_events: Vec::new(),
                trace: TraceState::default(),
                frames: Vec::new(),
                force_full_restore: false,
                model,
                resident: None,
            }),
        }
    }

    /// The memory model this engine was constructed with.
    pub fn memory_model(&self) -> MemoryModel {
        self.inner.lock().model
    }

    // ------------------------------------------------------------------
    // Snapshot / restore (machine reset support).
    // ------------------------------------------------------------------

    /// Captures the engine's full semantic state and arms an undo-journal
    /// frame under the snapshot's fresh generation id, so a later
    /// [`restore`](Engine::restore) to it rolls back only the state mutated
    /// in between. With [`set_force_full_restore`](Engine::set_force_full_restore)
    /// active no frame is armed (the pre-journal cost model).
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut inner = self.inner.lock();
        let generation = kutil::next_generation();
        if !inner.force_full_restore {
            inner.push_frame(generation);
        }
        EngineSnapshot {
            mem: inner.mem.clone(),
            history: inner.history.clone(),
            clock: inner.clock,
            seq: inner.seq,
            profiling: inner.profiling,
            threads: inner.threads.clone(),
            stats: inner.stats,
            generation,
            resident: inner.resident,
        }
    }

    /// Restores a previously captured state, reusing the engine's existing
    /// allocations (memory table, history log, per-thread sets and event
    /// buffers keep their capacity). The spare-buffer pool and the
    /// machine-lifetime counters (`profile_bufs_recycled` and the restore/
    /// journal diagnostics) survive the restore.
    ///
    /// When the snapshot's generation is armed in the undo journal the
    /// restore is *incremental*: memory pre-images replay backwards, the
    /// store history truncates to its frame baseline, and per-thread
    /// collections are copied only if some armed frame saw them mutated.
    /// Otherwise — cross-machine restore, superseded or pre-journal
    /// snapshot, invalidated journal, or forced — the full `clone_from`
    /// path runs and `restore_full_fallbacks` counts it; the journal is
    /// then re-armed at the restored generation (the machine now *is* that
    /// snapshot), so repeat restores to it become incremental.
    pub fn restore(&self, snap: &EngineSnapshot) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let depth = inner.mem.journal_entries();
        inner.stats.journal_peak_words = inner.stats.journal_peak_words.max(depth);
        let armed = (!inner.force_full_restore)
            .then(|| {
                inner
                    .frames
                    .iter()
                    .position(|f| f.generation == snap.generation)
            })
            .flatten();
        match armed {
            Some(k) => inner.restore_incremental(k, snap),
            None => inner.restore_full(snap),
        }
    }

    /// Forces every subsequent restore down the full `clone_from` path and
    /// disarms the undo journal (no frames are pushed while set) — the
    /// pre-journal cost model, for differential tests and the benchmark's
    /// comparison arm. Semantically invisible either way.
    pub fn set_force_full_restore(&self, on: bool) {
        let mut inner = self.inner.lock();
        inner.force_full_restore = on;
        if on {
            inner.frames.clear();
            inner.mem.journal_clear();
        }
    }

    /// Armed undo-journal frames (diagnostics for tests and benches).
    pub fn journal_depth(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Live-state digest, byte-identical to [`EngineSnapshot::digest`] of a
    /// snapshot taken at this instant — without cloning any state or
    /// arming a journal frame.
    pub fn digest_live(&self, out: &mut String) {
        let inner = self.inner.lock();
        digest_state(
            out,
            inner.clock,
            inner.seq,
            inner.profiling,
            &inner.mem,
            &inner.history,
            &inner.threads,
            inner.resident,
        );
    }

    /// Hands a used profile event buffer back for reuse by a later
    /// [`take_profile`](Engine::take_profile), avoiding its reallocation.
    pub fn recycle_profile_events(&self, mut events: Vec<TraceEvent>) {
        events.clear();
        self.inner.lock().spare_events.push(events);
    }

    // ------------------------------------------------------------------
    // Schedule-trace record / replay.
    // ------------------------------------------------------------------

    /// Starts recording every instrumented engine event (store delay
    /// decisions, load sources, RMWs, barriers, non-empty flushes) into a
    /// step trace. Any previous recording is discarded.
    pub fn start_trace_recording(&self) {
        let mut inner = self.inner.lock();
        inner.trace = TraceState {
            mode: TraceMode::Record,
            ..TraceState::default()
        };
    }

    /// Stops recording and returns the recorded steps.
    pub fn take_recorded_trace(&self) -> Vec<TraceStep> {
        let mut inner = self.inner.lock();
        std::mem::take(&mut inner.trace).steps
    }

    /// Arms replay: subsequent instrumented events are checked against
    /// `steps` in order, and the recorded delay/versioning decisions are
    /// imposed in place of the live control sets. On any mismatch the
    /// engine marks the replay diverged, stops consuming steps, and
    /// reverts to default in-order behavior.
    pub fn start_trace_replay(&self, steps: Vec<TraceStep>) {
        let mut inner = self.inner.lock();
        inner.trace = TraceState {
            mode: TraceMode::Replay,
            steps,
            pos: 0,
            diverged: false,
        };
    }

    /// Disarms replay and reports how faithfully the execution followed
    /// the script. An under-consumed script counts as divergence.
    pub fn finish_trace_replay(&self) -> ReplayStatus {
        let mut inner = self.inner.lock();
        let t = std::mem::take(&mut inner.trace);
        ReplayStatus {
            diverged: t.diverged || t.pos != t.steps.len(),
            consumed: t.pos,
            total: t.steps.len(),
        }
    }

    // ------------------------------------------------------------------
    // Table 2 control interfaces.
    // ------------------------------------------------------------------

    /// `delay_store_at(I)`: when thread `tid` executes instruction `iid`, its
    /// store operation will be held in the virtual store buffer.
    pub fn delay_store_at(&self, tid: Tid, iid: Iid) {
        let mut inner = self.inner.lock();
        inner.threads[tid.0].delay_set.insert(iid);
        inner.mark_frame(tid, |f| f.delay_dirty = true);
    }

    /// `read_old_value_at(I)`: when thread `tid` executes instruction `iid`,
    /// its load operation will read an old value from the store history (if
    /// one is valid within the versioning window).
    pub fn read_old_value_at(&self, tid: Tid, iid: Iid) {
        let mut inner = self.inner.lock();
        inner.threads[tid.0].read_old_set.insert(iid);
        inner.mark_frame(tid, |f| f.read_old_dirty = true);
    }

    /// Removes all reordering instructions for `tid` (back to in-order).
    pub fn clear_controls(&self, tid: Tid) {
        let mut inner = self.inner.lock();
        if !inner.threads[tid.0].delay_set.is_empty() {
            inner.threads[tid.0].delay_set.clear();
            inner.mark_frame(tid, |f| f.delay_dirty = true);
        }
        if !inner.threads[tid.0].read_old_set.is_empty() {
            inner.threads[tid.0].read_old_set.clear();
            inner.mark_frame(tid, |f| f.read_old_dirty = true);
        }
    }

    // ------------------------------------------------------------------
    // Instrumented accesses.
    // ------------------------------------------------------------------

    /// An instrumented load of the word at `addr`.
    ///
    /// Hierarchical search per §3.1/§3.2: the thread's own store buffer
    /// first (store-to-load forwarding), then — if `iid` was marked by
    /// [`read_old_value_at`](Engine::read_old_value_at) — an old version from
    /// the store history valid within the versioning window, and finally
    /// memory.
    pub fn load(&self, tid: Tid, iid: Iid, addr: u64, ann: LoadAnn) -> u64 {
        self.load_sized(tid, iid, addr, 8, ann)
    }

    /// [`load`](Engine::load) with an explicit access size recorded in the
    /// profile (the engine's memory is word-granular regardless).
    pub fn load_sized(&self, tid: Tid, iid: Iid, addr: u64, size: u8, ann: LoadAnn) -> u64 {
        let mut inner = self.inner.lock();
        inner.record_access(tid, iid, addr, size, AccessKind::Load);

        // Width-aware forwarding probe. A partial overlap — a buffered
        // store that intersects the load's bytes but cannot satisfy it
        // whole — resolves conservatively: drain the buffer, read memory.
        // This happens *before* the replay step is consumed, so the flush
        // lands at the same script position in record and replay (both
        // make the identical decision from the identical buffer state).
        let (fwd, conflicted) = match inner.threads[tid.0].buffer.forward(addr, size) {
            Forward::Hit(v) => (Some(v), false),
            Forward::Miss => (None, false),
            Forward::Partial => {
                inner.flush_buffer(tid);
                (None, true)
            }
        };

        // In replay mode the recorded source decides whether to attempt a
        // versioned read; store-to-load forwarding stays mandatory (it is
        // per-location coherence, not a choice).
        let replaying = inner.trace.mode == TraceMode::Replay;
        let replay_src = if replaying {
            match inner.replay_next() {
                Some(TraceStep::Load {
                    tid: t,
                    iid: i,
                    src,
                }) if t == tid && i == iid => Some(src),
                _ => {
                    inner.trace.diverged = true;
                    None
                }
            }
        } else {
            None
        };

        let wants_old = inner.threads[tid.0].read_old_set.contains(&iid);
        enum Source {
            Forwarded(u64),
            Versioned(u64, u64),
            Memory,
        }
        let source = if let Some(v) = fwd {
            Source::Forwarded(v)
        } else {
            // After a partial-overlap drain the thread's own store just
            // committed; a versioned read could resurrect its pre-image
            // and break own-program-order coherence, so memory it is.
            let try_versioned = !conflicted
                && if replaying {
                    replay_src == Some(LoadSrc::Versioned)
                } else {
                    wants_old
                };
            if try_versioned {
                // Read coherence: the effective window start is also bounded
                // by this thread's last observation of the location, so two
                // loads of the same address never appear to travel backwards
                // (CoRR).
                let (floor, window_start) = {
                    let t = &inner.threads[tid.0];
                    (t.obs_floor.get(&addr).copied().unwrap_or(0), t.window_start)
                };
                let window = window_start.max(floor);
                match inner.history.old_version_at(tid, addr, window) {
                    Some((old, ts)) => Source::Versioned(old, ts),
                    None => Source::Memory,
                }
            } else {
                Source::Memory
            }
        };
        let actual = match source {
            Source::Forwarded(_) => LoadSrc::Forwarded,
            Source::Versioned(..) => LoadSrc::Versioned,
            Source::Memory => LoadSrc::Memory,
        };
        match inner.trace.mode {
            TraceMode::Off => {}
            TraceMode::Record => inner.trace.steps.push(TraceStep::Load {
                tid,
                iid,
                src: actual,
            }),
            TraceMode::Replay => {
                if replay_src != Some(actual) {
                    inner.trace.diverged = true;
                }
            }
        }
        let value = match source {
            Source::Forwarded(v) => {
                inner.stats.forwards += 1;
                v
            }
            Source::Versioned(old, ts) => {
                inner.stats.versioned_reads += 1;
                // The value read was current until `ts`; later same-address
                // loads may re-read it but nothing older.
                let floor = inner.threads[tid.0].obs_floor.entry(addr).or_insert(0);
                *floor = (*floor).max(ts.saturating_sub(1));
                inner.mark_frame(tid, |f| f.floor_dirty = true);
                old
            }
            Source::Memory => {
                let clock = inner.clock;
                let v = inner.mem.read(addr);
                let floor = inner.threads[tid.0].obs_floor.entry(addr).or_insert(0);
                *floor = (*floor).max(clock);
                inner.mark_frame(tid, |f| f.floor_dirty = true);
                v
            }
        };

        // READ_ONCE / acquire act as an implied load barrier *after* the
        // load (LKMM Cases 4 and 6): later loads cannot observe versions
        // older than this point.
        match ann {
            LoadAnn::Plain => {}
            LoadAnn::ReadOnce => inner.barrier_effect(tid, iid, BarrierKind::ReadOnce),
            LoadAnn::Acquire => inner.barrier_effect(tid, iid, BarrierKind::Acquire),
        }
        value
    }

    /// An instrumented store of `value` to the word at `addr`.
    ///
    /// Commits immediately (the in-order default) unless `iid` was marked by
    /// [`delay_store_at`](Engine::delay_store_at), in which case the value is
    /// held in the virtual store buffer. Release stores flush the buffer
    /// first (LKMM Case 5); whether the release store itself may then be
    /// delayed is a model capability
    /// ([`MemoryModel::release_store_is_delayable`]) — never on TSO.
    pub fn store(&self, tid: Tid, iid: Iid, addr: u64, value: u64, ann: StoreAnn) {
        self.store_sized(tid, iid, addr, value, 8, ann);
    }

    /// [`store`](Engine::store) with an explicit access size.
    pub fn store_sized(&self, tid: Tid, iid: Iid, addr: u64, value: u64, size: u8, ann: StoreAnn) {
        let mut inner = self.inner.lock();
        if ann == StoreAnn::Release {
            // The barrier half precedes the store half in program order.
            inner.barrier_effect(tid, iid, BarrierKind::Release);
        }
        inner.record_access(tid, iid, addr, size, AccessKind::Store);
        // Coherence: two stores by one thread to the same location are never
        // reordered (the LKMM's per-location ordering), so a store whose
        // byte range intersects an in-flight buffered entry must join the
        // buffer behind it even when not explicitly delayed. Overlap — not
        // exact address — is the test: committing a narrow store ahead of a
        // buffered wider one to the same bytes reorders them just the same.
        let must_join = inner.threads[tid.0].buffer.overlaps(addr, size);
        // A release store already flushed everything before it; whether the
        // release store *itself* may now be buffered (one-way barrier) is a
        // model capability — never on TSO, where stores form one total
        // order.
        let delayable = ann != StoreAnn::Release || inner.model.release_store_is_delayable();
        let live = delayable && (inner.threads[tid.0].delay_set.contains(&iid) || must_join);
        // In replay mode the recorded decision replaces the live one; the
        // release rule and coherence join stay mandatory either way.
        let delayed = match inner.trace.mode {
            TraceMode::Off => live,
            TraceMode::Record => {
                inner.trace.steps.push(TraceStep::Store {
                    tid,
                    iid,
                    delayed: live,
                });
                live
            }
            TraceMode::Replay => match inner.replay_next() {
                Some(TraceStep::Store {
                    tid: t,
                    iid: i,
                    delayed,
                }) if t == tid && i == iid => delayable && (delayed || must_join),
                _ => {
                    inner.trace.diverged = true;
                    live
                }
            },
        };
        if delayed {
            inner.stats.delayed += 1;
            inner.threads[tid.0].buffer.push(BufferedStore {
                addr,
                value,
                size,
                iid,
            });
            inner.mark_frame(tid, |f| f.buffer_dirty = true);
        } else {
            inner.commit(tid, iid, addr, value);
        }
    }

    /// An instrumented atomic read-modify-write; returns the old value.
    ///
    /// RMWs are single memory events in the LKMM: they are never delayed or
    /// versioned. Their ordering strength decides the implied barriers:
    /// relaxed RMWs (`clear_bit`) commit immediately *without* flushing the
    /// buffer — which is precisely how the paper's RDS bug (Figure 8) lets a
    /// lock release overtake the critical section's delayed stores.
    pub fn rmw(
        &self,
        tid: Tid,
        iid: Iid,
        addr: u64,
        f: impl FnOnce(u64) -> u64,
        order: RmwOrder,
    ) -> u64 {
        let mut inner = self.inner.lock();
        match order {
            RmwOrder::Full | RmwOrder::Release => {
                let kind = if order == RmwOrder::Full {
                    BarrierKind::Full
                } else {
                    BarrierKind::Release
                };
                inner.barrier_effect(tid, iid, kind);
            }
            RmwOrder::Relaxed | RmwOrder::Acquire => {
                // An overlapping buffered store would make the committed RMW
                // incoherent with the thread's own program order; drain it.
                // (Real hardware resolves the same-line conflict the same
                // way: the store buffer entry is forced out first.) How much
                // drains is the store-side model distinction: TSO's single
                // FIFO buffer can only retire from the front, so forcing one
                // entry out forces everything before it out too; PSO/Arm
                // per-address queues drain just the conflicting address and
                // leave unrelated delayed stores in flight.
                if inner.threads[tid.0].buffer.overlaps(addr, 8) {
                    if inner.model.rmw_drains_whole_buffer() {
                        inner.flush_buffer(tid);
                    } else {
                        inner.flush_overlapping(tid, addr, 8);
                    }
                }
            }
        }
        inner.trace_rmw(tid, iid);
        inner.record_access(tid, iid, addr, 8, AccessKind::Rmw);
        let old = inner.mem.read(addr);
        let new = f(old);
        inner.commit(tid, iid, addr, new);
        match order {
            RmwOrder::Full => inner.window_reset(tid),
            RmwOrder::Acquire => inner.barrier_effect(tid, iid, BarrierKind::Acquire),
            RmwOrder::Relaxed | RmwOrder::Release => {}
        }
        old
    }

    // ------------------------------------------------------------------
    // Barriers (Table 1).
    // ------------------------------------------------------------------

    /// `smp_mb()`: full barrier — flush the store buffer and reset the
    /// versioning window (LKMM Case 1).
    pub fn smp_mb(&self, tid: Tid, iid: Iid) {
        let mut inner = self.inner.lock();
        inner.barrier_effect(tid, iid, BarrierKind::Full);
    }

    /// `smp_wmb()`: store barrier — flush the store buffer (LKMM Case 2).
    pub fn smp_wmb(&self, tid: Tid, iid: Iid) {
        let mut inner = self.inner.lock();
        inner.barrier_effect(tid, iid, BarrierKind::Wmb);
    }

    /// `smp_rmb()`: load barrier — reset the versioning window (LKMM Case 3).
    pub fn smp_rmb(&self, tid: Tid, iid: Iid) {
        let mut inner = self.inner.lock();
        inner.barrier_effect(tid, iid, BarrierKind::Rmb);
    }

    /// Commits all delayed stores of `tid`.
    ///
    /// Called at syscall exit and on simulated interrupts — the paper's
    /// "experiencing an interrupt on the processor executing the thread"
    /// flush condition. A vCPU suspension by the custom scheduler is *not*
    /// an interrupt, so a scheduler-driven context switch deliberately does
    /// not flush (that is what makes Figure 5a's interleaving observable).
    pub fn flush_thread(&self, tid: Tid) {
        self.inner.lock().flush_buffer(tid);
    }

    // ------------------------------------------------------------------
    // Profiling.
    // ------------------------------------------------------------------

    /// Enables or disables five-tuple/three-tuple profiling (§4.2).
    pub fn set_profiling(&self, on: bool) {
        self.inner.lock().profiling = on;
    }

    /// Takes (and clears) the recorded profile of `tid`.
    ///
    /// The replacement profile reuses a buffer previously handed back via
    /// [`recycle_profile_events`](Engine::recycle_profile_events) when one
    /// is available, so steady-state profiling allocates nothing.
    pub fn take_profile(&self, tid: Tid) -> Profile {
        let mut inner = self.inner.lock();
        // The swap discards the thread's current event buffer. A frame
        // whose baseline was non-empty loses its truncate target (those
        // events are gone); one with an empty baseline stays consistent —
        // the fresh buffer is exactly the baseline again.
        for frame in &mut inner.frames {
            let tf = &mut frame.threads[tid.0];
            if tf.profile_len > 0 {
                tf.profile_replaced = true;
            }
        }
        let mut replacement = Profile::new(tid);
        if let Some(buf) = inner.spare_events.pop() {
            debug_assert!(buf.is_empty());
            replacement.events = buf;
            inner.stats.profile_bufs_recycled += 1;
        }
        std::mem::replace(&mut inner.threads[tid.0].profile, replacement)
    }

    // ------------------------------------------------------------------
    // Raw (uninstrumented) access, for the Table 5 overhead baseline and
    // for runtime-internal bookkeeping that must not perturb emulation.
    // ------------------------------------------------------------------

    /// Reads memory directly, bypassing buffer, history, and profiling.
    pub fn raw_load(&self, addr: u64) -> u64 {
        self.inner.lock().mem.read(addr)
    }

    /// Writes memory directly, bypassing buffer, history, and profiling.
    pub fn raw_store(&self, addr: u64, value: u64) {
        self.inner.lock().mem.write(addr, value);
    }

    /// Zeroes a freshly-allocated object's words (`kzalloc` semantics).
    pub fn raw_zero(&self, addr: u64, words: u64) {
        self.inner.lock().mem.zero_range(addr, words);
    }

    /// Installs the machine's boot-time resident image: `words` committed
    /// directly at `base..base + 8*words.len()` under one lock, bypassing
    /// buffers, history, and profiling, exactly like [`raw_store`]
    /// (boot-time initialisation, not emulated execution).
    ///
    /// The image models the state a real kernel carries that tests never
    /// touch — static data, slab pools, page metadata — so full-restore
    /// cost is honestly proportional to machine size, the way reverting a
    /// VM snapshot is. Its words ride through snapshot/restore like all
    /// memory, but are excluded from [`EngineSnapshot::digest`] and
    /// [`digest_live`](Engine::digest_live): the content is fixed at boot
    /// and identical on every machine by construction, so it carries no
    /// semantic information. The range is reserved — emulated code must
    /// not address into it (nothing enforces this; callers pick a range no
    /// subsystem uses).
    ///
    /// Call once, before the first snapshot.
    ///
    /// [`raw_store`]: Engine::raw_store
    pub fn install_resident_image(&self, base: u64, words: &[u64]) {
        let mut inner = self.inner.lock();
        for (i, w) in words.iter().enumerate() {
            inner.mem.write(base + 8 * i as u64, *w);
        }
        inner.resident = Some((base, base + 8 * words.len() as u64));
    }

    /// The `[base, end)` resident-image range, if one is installed.
    pub fn resident_image(&self) -> Option<(u64, u64)> {
        self.inner.lock().resident
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// Number of stores currently delayed in `tid`'s buffer.
    pub fn pending_stores(&self, tid: Tid) -> usize {
        self.inner.lock().threads[tid.0].buffer.len()
    }

    /// Current commit clock.
    pub fn clock(&self) -> u64 {
        self.inner.lock().clock
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> EngineStats {
        self.inner.lock().stats
    }

    /// Copy of the global store history (used by the in-vitro baseline).
    pub fn history_records(&self) -> Vec<StoreRecord> {
        self.inner.lock().history.records().to_vec()
    }

    /// Garbage-collects history entries older than every thread's window.
    pub fn gc_history(&self) {
        let mut inner = self.inner.lock();
        let horizon = inner
            .threads
            .iter()
            .map(|t| t.window_start)
            .min()
            .unwrap_or(0);
        inner.history.truncate_before(horizon);
        // Truncation rewrote record positions, so armed frames' history
        // baselines are meaningless now. Invalidate the whole journal:
        // affected generations simply fall back to a full restore.
        inner.frames.clear();
        inner.mem.journal_clear();
    }
}

impl Inner {
    // ------------------------------------------------------------------
    // Undo-journal plumbing.
    // ------------------------------------------------------------------

    /// Arms a fresh top frame under `generation`, evicting the oldest
    /// frame if the stack is at capacity (its generation becomes a
    /// full-restore fallback).
    fn push_frame(&mut self, generation: u64) {
        if self.frames.len() == MAX_FRAMES {
            self.frames.remove(0);
            self.mem.journal_drop_oldest();
        }
        self.mem.journal_push();
        self.frames.push(EngineFrame {
            generation,
            hist_len: self.history.len(),
            threads: self
                .threads
                .iter()
                .map(|t| ThreadFrame {
                    profile_len: t.profile.events.len(),
                    ..ThreadFrame::default()
                })
                .collect(),
        });
    }

    /// Marks the top frame's per-thread dirty state; a no-op while no
    /// frame is armed.
    #[inline]
    fn mark_frame(&mut self, tid: Tid, f: impl FnOnce(&mut ThreadFrame)) {
        if let Some(frame) = self.frames.last_mut() {
            f(&mut frame.threads[tid.0]);
        }
    }

    /// Rolls back to frame `k` (whose generation matched the snapshot):
    /// replay memory pre-images, truncate the history, copy only the
    /// dirty per-thread collections, pop the frames above `k` and leave
    /// frame `k` armed and clean.
    fn restore_incremental(&mut self, k: usize, snap: &EngineSnapshot) {
        debug_assert_eq!(self.frames[k].hist_len, snap.history.len());
        let words = self.mem.journal_rollback_to(k);
        self.history.truncate_to(self.frames[k].hist_len);
        self.clock = snap.clock;
        self.seq = snap.seq;
        self.profiling = snap.profiling;
        debug_assert_eq!(self.threads.len(), snap.threads.len());
        for (tid, (t, s)) in self.threads.iter_mut().zip(&snap.threads).enumerate() {
            // A collection is copied back iff some frame at or above the
            // target saw it mutated; clean collections still equal the
            // snapshot and are skipped entirely.
            let mut dirty = ThreadFrame::default();
            for frame in &self.frames[k..] {
                let tf = &frame.threads[tid];
                dirty.buffer_dirty |= tf.buffer_dirty;
                dirty.floor_dirty |= tf.floor_dirty;
                dirty.delay_dirty |= tf.delay_dirty;
                dirty.read_old_dirty |= tf.read_old_dirty;
                dirty.profile_replaced |= tf.profile_replaced;
            }
            if dirty.buffer_dirty {
                t.buffer.clone_from(&s.buffer);
            }
            if dirty.floor_dirty {
                t.obs_floor.clone_from(&s.obs_floor);
            }
            if dirty.delay_dirty {
                t.delay_set.clone_from(&s.delay_set);
            }
            if dirty.read_old_dirty {
                t.read_old_set.clone_from(&s.read_old_set);
            }
            t.window_start = s.window_start;
            t.profile.tid = s.profile.tid;
            if dirty.profile_replaced {
                t.profile.events.clone_from(&s.profile.events);
            } else {
                // Profiling appended in order since the frame push; drop
                // the tail. The baseline length was captured at the same
                // instant as the snapshot, so this is exact.
                debug_assert!(t.profile.events.len() >= self.frames[k].threads[tid].profile_len);
                t.profile
                    .events
                    .truncate(self.frames[k].threads[tid].profile_len);
            }
        }
        self.frames.truncate(k + 1);
        let top = self.frames.last_mut().expect("frame k kept");
        for tf in &mut top.threads {
            let profile_len = tf.profile_len;
            *tf = ThreadFrame {
                profile_len,
                ..ThreadFrame::default()
            };
        }
        self.restore_stats(snap.stats);
        self.stats.restores_incremental += 1;
        self.stats.restore_words_replayed += words;
    }

    /// The original whole-machine `clone_from` restore; afterwards the
    /// journal is re-armed at the restored snapshot's generation so the
    /// *next* restore to it takes the incremental path.
    fn restore_full(&mut self, snap: &EngineSnapshot) {
        self.mem.clone_from(&snap.mem); // clears the memory journal
        self.history.clone_from(&snap.history);
        self.clock = snap.clock;
        self.seq = snap.seq;
        self.profiling = snap.profiling;
        debug_assert_eq!(self.threads.len(), snap.threads.len());
        for (t, s) in self.threads.iter_mut().zip(&snap.threads) {
            t.buffer.clone_from(&s.buffer);
            t.window_start = s.window_start;
            t.obs_floor.clone_from(&s.obs_floor);
            t.delay_set.clone_from(&s.delay_set);
            t.read_old_set.clone_from(&s.read_old_set);
            t.profile.tid = s.profile.tid;
            t.profile.events.clone_from(&s.profile.events);
        }
        self.resident = snap.resident;
        self.frames.clear();
        if !self.force_full_restore {
            // The machine now *is* the snapshot: re-arm the journal at its
            // generation so the next restore to it is incremental.
            self.push_frame(snap.generation);
        }
        self.restore_stats(snap.stats);
        self.stats.restore_full_fallbacks += 1;
    }

    /// Adopts the snapshot's per-run counters while preserving the
    /// machine-lifetime ones (they survive restores by definition).
    fn restore_stats(&mut self, snap: EngineStats) {
        let keep = self.stats;
        self.stats = snap;
        self.stats.profile_bufs_recycled = keep.profile_bufs_recycled;
        self.stats.restores_incremental = keep.restores_incremental;
        self.stats.restore_words_replayed = keep.restore_words_replayed;
        self.stats.restore_full_fallbacks = keep.restore_full_fallbacks;
        self.stats.journal_peak_words = keep.journal_peak_words;
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn record_access(&mut self, tid: Tid, iid: Iid, addr: u64, size: u8, kind: AccessKind) {
        if !self.profiling {
            return;
        }
        let ts = self.next_seq();
        self.threads[tid.0]
            .profile
            .events
            .push(TraceEvent::Access(AccessRecord {
                iid,
                addr,
                size,
                kind,
                ts,
            }));
    }

    fn record_barrier(&mut self, tid: Tid, iid: Iid, kind: BarrierKind) {
        if !self.profiling {
            return;
        }
        let ts = self.next_seq();
        self.threads[tid.0]
            .profile
            .events
            .push(TraceEvent::Barrier(BarrierRecord { iid, kind, ts }));
    }

    /// Applies a barrier's flush/window effects and records it.
    fn barrier_effect(&mut self, tid: Tid, iid: Iid, kind: BarrierKind) {
        self.stats.barriers += 1;
        self.record_barrier(tid, iid, kind);
        match self.trace.mode {
            TraceMode::Off => {}
            TraceMode::Record => self.trace.steps.push(TraceStep::Barrier { tid, iid, kind }),
            TraceMode::Replay => match self.replay_next() {
                Some(TraceStep::Barrier {
                    tid: t,
                    iid: i,
                    kind: k,
                }) if t == tid && i == iid && k == kind => {}
                _ => self.trace.diverged = true,
            },
        }
        // The model decides which barriers actually bound reordering: under
        // Arm a READ_ONCE is not a load barrier, so it leaves the
        // versioning window open (loads reorder unless smp_rmb/acquire).
        if self.model.barrier_orders_stores(kind) {
            self.flush_buffer(tid);
        }
        if self.model.barrier_orders_loads(kind) {
            self.window_reset(tid);
        }
    }

    /// Record/replay hook for an RMW (always in-order; verification only).
    fn trace_rmw(&mut self, tid: Tid, iid: Iid) {
        match self.trace.mode {
            TraceMode::Off => {}
            TraceMode::Record => self.trace.steps.push(TraceStep::Rmw { tid, iid }),
            TraceMode::Replay => match self.replay_next() {
                Some(TraceStep::Rmw { tid: t, iid: i }) if t == tid && i == iid => {}
                _ => self.trace.diverged = true,
            },
        }
    }

    /// Next replay step, or `None` once diverged or exhausted. Running past
    /// the script's end is itself a divergence (extra events occurred that
    /// the recording never saw), and after any divergence the cursor
    /// freezes so later events don't consume misaligned steps.
    fn replay_next(&mut self) -> Option<TraceStep> {
        if self.trace.diverged || self.trace.pos >= self.trace.steps.len() {
            self.trace.diverged = true;
            return None;
        }
        let step = self.trace.steps[self.trace.pos].clone();
        self.trace.pos += 1;
        Some(step)
    }

    fn window_reset(&mut self, tid: Tid) {
        let clock = self.clock;
        self.threads[tid.0].window_start = clock;
    }

    fn flush_buffer(&mut self, tid: Tid) {
        let drained = self.threads[tid.0].buffer.drain();
        if !drained.is_empty() {
            self.mark_frame(tid, |f| f.buffer_dirty = true);
        }
        self.commit_drained(tid, drained);
    }

    /// The PSO/Arm per-address-queue drain: commits only the buffered
    /// stores overlapping `[addr, addr + size)`, leaving the rest in
    /// flight.
    fn flush_overlapping(&mut self, tid: Tid, addr: u64, size: u8) {
        let drained = self.threads[tid.0].buffer.drain_overlapping(addr, size);
        if !drained.is_empty() {
            self.mark_frame(tid, |f| f.buffer_dirty = true);
        }
        self.commit_drained(tid, drained);
    }

    fn commit_drained(&mut self, tid: Tid, drained: Vec<BufferedStore>) {
        let committed = drained.len() as u32;
        for e in drained {
            self.commit(tid, e.iid, e.addr, e.value);
        }
        // Empty flushes (e.g. every in-order syscall exit) stay silent so
        // traces record decisions, not no-ops.
        if committed > 0 {
            match self.trace.mode {
                TraceMode::Off => {}
                TraceMode::Record => self.trace.steps.push(TraceStep::Flush { tid, committed }),
                TraceMode::Replay => match self.replay_next() {
                    Some(TraceStep::Flush {
                        tid: t,
                        committed: c,
                    }) if t == tid && c == committed => {}
                    _ => self.trace.diverged = true,
                },
            }
        }
    }

    fn commit(&mut self, tid: Tid, iid: Iid, addr: u64, value: u64) {
        self.clock += 1;
        let ts = self.clock;
        let prev = self.mem.write(addr, value);
        self.stats.commits += 1;
        self.history.record(StoreRecord {
            addr,
            prev,
            new: value,
            ts,
            tid,
            iid,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iid;

    const X: u64 = 0x1000;
    const Y: u64 = 0x1008;
    const Z: u64 = 0x1010;
    const W: u64 = 0x1018;

    #[test]
    fn in_order_by_default() {
        let e = Engine::new(2);
        e.store(Tid(0), iid!(), X, 1, StoreAnn::Plain);
        assert_eq!(e.load(Tid(1), iid!(), X, LoadAnn::Plain), 1);
        assert_eq!(e.pending_stores(Tid(0)), 0);
    }

    #[test]
    fn figure3_delayed_store_walkthrough() {
        // Figure 3: delay I1's store to &X; I2's store to &Y commits
        // immediately; smp_wmb flushes.
        let e = Engine::new(2);
        let i1 = iid!();
        let i2 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain); // held in buffer
        assert_eq!(e.pending_stores(Tid(0)), 1);
        e.store(Tid(0), i2, Y, 2, StoreAnn::Plain); // commits
        assert_eq!(e.raw_load(X), 0);
        assert_eq!(e.raw_load(Y), 2);
        // Other cores observe Y updated before X — store-store reordering.
        assert_eq!(e.load(Tid(1), iid!(), X, LoadAnn::Plain), 0);
        assert_eq!(e.load(Tid(1), iid!(), Y, LoadAnn::Plain), 2);
        e.smp_wmb(Tid(0), iid!());
        assert_eq!(e.load(Tid(1), iid!(), X, LoadAnn::Plain), 1);
        assert_eq!(e.pending_stores(Tid(0)), 0);
    }

    #[test]
    fn store_forwarding_preserves_own_program_order() {
        let e = Engine::new(1);
        let i1 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 42, StoreAnn::Plain);
        // The owning thread must see its own delayed store.
        assert_eq!(e.load(Tid(0), iid!(), X, LoadAnn::Plain), 42);
        assert_eq!(e.stats().forwards, 1);
        // Memory still holds the old value.
        assert_eq!(e.raw_load(X), 0);
    }

    #[test]
    fn forwarding_returns_youngest_buffered_value() {
        let e = Engine::new(1);
        let (i1, i2) = (iid!(), iid!());
        e.delay_store_at(Tid(0), i1);
        e.delay_store_at(Tid(0), i2);
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        e.store(Tid(0), i2, X, 2, StoreAnn::Plain);
        assert_eq!(e.load(Tid(0), iid!(), X, LoadAnn::Plain), 2);
    }

    #[test]
    fn figure4_versioned_load_walkthrough() {
        // Figure 4: syscall A wants to reorder I1 (load &W) and I2 (load &Z).
        // After A's smp_rmb at t3, syscall B stores 1 to &Z (t4) and 2 to &W
        // (t5). A's versioned load on &Z reads the old value 0 while the
        // plain load on &W reads 2.
        let e = Engine::new(2);
        let i2 = iid!();
        e.read_old_value_at(Tid(0), i2); // (1)
        e.smp_rmb(Tid(0), iid!()); // (3) window starts here
        e.store(Tid(1), iid!(), Z, 1, StoreAnn::Plain); // (4)
        e.store(Tid(1), iid!(), W, 2, StoreAnn::Plain); // (5)
        let r1 = e.load(Tid(0), iid!(), W, LoadAnn::Plain); // (6)
        let r2 = e.load(Tid(0), i2, Z, LoadAnn::Plain); // (7)
        assert_eq!((r1, r2), (2, 0));
        assert_eq!(e.stats().versioned_reads, 1);
    }

    #[test]
    fn versioning_window_bounds_old_reads() {
        // A store committed *before* the reader's rmb is not a valid old
        // version (LKMM Case 3).
        let e = Engine::new(2);
        let i = iid!();
        e.read_old_value_at(Tid(0), i);
        e.store(Tid(1), iid!(), X, 1, StoreAnn::Plain); // before the barrier
        e.smp_rmb(Tid(0), iid!());
        e.store(Tid(1), iid!(), X, 2, StoreAnn::Plain); // inside the window
                                                        // Valid pre-image is 1 (overwritten inside the window), never 0.
        assert_eq!(e.load(Tid(0), i, X, LoadAnn::Plain), 1);
    }

    #[test]
    fn versioned_load_defaults_to_memory_without_history() {
        let e = Engine::new(2);
        let i = iid!();
        e.read_old_value_at(Tid(0), i);
        e.smp_rmb(Tid(0), iid!());
        // No store inside the window: default behaviour reads memory.
        assert_eq!(e.load(Tid(0), i, X, LoadAnn::Plain), 0);
        e.store(Tid(1), iid!(), Y, 5, StoreAnn::Plain);
        // A store to a *different* address does not provide a version for X.
        assert_eq!(e.load(Tid(0), i, X, LoadAnn::Plain), 0);
    }

    #[test]
    fn read_once_acts_as_load_barrier() {
        // LKMM Case 6: a READ_ONCE closes the window, so a later versioned
        // load cannot read a value older than the READ_ONCE.
        let e = Engine::new(2);
        let dependent = iid!();
        e.read_old_value_at(Tid(0), dependent);
        e.smp_rmb(Tid(0), iid!());
        e.store(Tid(1), iid!(), X, 1, StoreAnn::Plain);
        // The READ_ONCE observes X == 1 and implies smp_rmb.
        assert_eq!(e.load(Tid(0), iid!(), X, LoadAnn::ReadOnce), 1);
        e.store(Tid(1), iid!(), Y, 7, StoreAnn::Plain);
        // Y's only in-window pre-image (0) is valid — committed after the
        // READ_ONCE — so the versioned load may still read 0 here:
        assert_eq!(e.load(Tid(0), dependent, Y, LoadAnn::Plain), 0);
        // But X's pre-image is now outside the window:
        let dependent2 = iid!();
        e.read_old_value_at(Tid(0), dependent2);
        assert_eq!(e.load(Tid(0), dependent2, X, LoadAnn::Plain), 1);
    }

    #[test]
    fn release_store_flushes_and_is_never_delayed() {
        // LKMM Case 5: everything before smp_store_release is visible before
        // the release store, and the release store itself cannot be delayed.
        let e = Engine::new(2);
        let (i1, i2) = (iid!(), iid!());
        e.delay_store_at(Tid(0), i1);
        e.delay_store_at(Tid(0), i2); // attempt to delay the release store
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        assert_eq!(e.raw_load(X), 0);
        e.store(Tid(0), i2, Y, 2, StoreAnn::Release);
        assert_eq!(e.raw_load(X), 1, "release flushed the buffer");
        assert_eq!(e.raw_load(Y), 2, "release store committed immediately");
    }

    #[test]
    fn acquire_load_resets_window() {
        // LKMM Case 4.
        let e = Engine::new(2);
        let dependent = iid!();
        e.read_old_value_at(Tid(0), dependent);
        e.store(Tid(1), iid!(), X, 1, StoreAnn::Plain);
        e.store(Tid(1), iid!(), Y, 1, StoreAnn::Plain);
        let _flag = e.load(Tid(0), iid!(), X, LoadAnn::Acquire);
        // Y's pre-image was overwritten before the acquire — invalid now.
        assert_eq!(e.load(Tid(0), dependent, Y, LoadAnn::Plain), 1);
    }

    #[test]
    fn smp_mb_orders_everything() {
        let e = Engine::new(2);
        let (i1, dependent) = (iid!(), iid!());
        e.delay_store_at(Tid(0), i1);
        e.read_old_value_at(Tid(0), dependent);
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        e.store(Tid(1), iid!(), Y, 3, StoreAnn::Plain);
        e.smp_mb(Tid(0), iid!());
        // Store flushed (Case 1, store side).
        assert_eq!(e.raw_load(X), 1);
        // Window reset (Case 1, load side): Y's pre-image is stale.
        assert_eq!(e.load(Tid(0), dependent, Y, LoadAnn::Plain), 3);
    }

    #[test]
    fn relaxed_rmw_overtakes_delayed_stores() {
        // The Figure 8 mechanism: a critical section's plain stores are
        // delayed, and a relaxed clear_bit-style RMW commits immediately,
        // releasing the "lock" while the protected data is still stale.
        let e = Engine::new(2);
        let i1 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain); // protected data
        let old = e.rmw(Tid(0), iid!(), Y, |v| v & !1, RmwOrder::Relaxed);
        assert_eq!(old, 0);
        // Lock bit cleared in memory while the data store is still pending.
        assert_eq!(e.raw_load(X), 0);
        assert_eq!(e.pending_stores(Tid(0)), 1);
    }

    #[test]
    fn release_rmw_flushes_first() {
        // clear_bit_unlock: the fix for Figure 8.
        let e = Engine::new(2);
        let i1 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        e.rmw(Tid(0), iid!(), Y, |v| v & !1, RmwOrder::Release);
        assert_eq!(e.raw_load(X), 1, "unlock drains the critical section");
    }

    #[test]
    fn full_rmw_is_two_sided() {
        let e = Engine::new(2);
        let (i1, dependent) = (iid!(), iid!());
        e.delay_store_at(Tid(0), i1);
        e.read_old_value_at(Tid(0), dependent);
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        e.store(Tid(1), iid!(), Y, 4, StoreAnn::Plain);
        let old = e.rmw(Tid(0), iid!(), Z, |v| v | 1, RmwOrder::Full);
        assert_eq!(old, 0);
        assert_eq!(e.raw_load(X), 1, "full RMW flushed the buffer");
        assert_eq!(
            e.load(Tid(0), dependent, Y, LoadAnn::Plain),
            4,
            "full RMW reset the window"
        );
    }

    #[test]
    fn relaxed_rmw_same_address_as_buffered_store_stays_coherent() {
        let e = Engine::new(1);
        let i1 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 2, StoreAnn::Plain);
        let old = e.rmw(Tid(0), iid!(), X, |v| v + 1, RmwOrder::Relaxed);
        assert_eq!(old, 2, "RMW observes the thread's own delayed store");
        assert_eq!(e.raw_load(X), 3);
    }

    #[test]
    fn same_address_stores_never_reorder() {
        // Per-location coherence: a later non-delayed store to a buffered
        // address joins the buffer instead of overtaking the delayed one.
        let e = Engine::new(2);
        let i1 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        e.store(Tid(0), iid!(), X, 2, StoreAnn::Plain); // joins the buffer
        assert_eq!(e.raw_load(X), 0, "neither store visible yet");
        assert_eq!(e.pending_stores(Tid(0)), 2);
        e.smp_wmb(Tid(0), iid!());
        assert_eq!(e.raw_load(X), 2, "FIFO flush preserves program order");
    }

    #[test]
    fn flush_thread_commits_at_syscall_exit() {
        let e = Engine::new(1);
        let i1 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 9, StoreAnn::Plain);
        assert_eq!(e.raw_load(X), 0);
        e.flush_thread(Tid(0));
        assert_eq!(e.raw_load(X), 9);
    }

    #[test]
    fn write_once_is_delayable() {
        // WRITE_ONCE provides no ordering (the Bug #9 mis-fix).
        let e = Engine::new(1);
        let i1 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 5, StoreAnn::WriteOnce);
        assert_eq!(e.raw_load(X), 0);
    }

    #[test]
    fn profiling_records_five_and_three_tuples() {
        let e = Engine::new(1);
        e.set_profiling(true);
        let (i1, i2, ib) = (iid!(), iid!(), iid!());
        e.store_sized(Tid(0), i1, X, 1, 4, StoreAnn::Plain);
        e.smp_wmb(Tid(0), ib);
        e.load(Tid(0), i2, X, LoadAnn::Plain);
        let p = e.take_profile(Tid(0));
        assert_eq!(p.len(), 3);
        let accesses: Vec<_> = p.accesses().collect();
        assert_eq!(accesses.len(), 2);
        assert_eq!(accesses[0].kind, AccessKind::Store);
        assert_eq!(accesses[0].size, 4);
        assert_eq!(accesses[0].addr, X);
        assert_eq!(accesses[1].kind, AccessKind::Load);
        let barriers: Vec<_> = p.barriers().collect();
        assert_eq!(barriers.len(), 1);
        assert_eq!(barriers[0].kind, BarrierKind::Wmb);
        assert_eq!(barriers[0].iid, ib);
        // Timestamps strictly increase in program order.
        assert!(p.events.windows(2).all(|w| w[0].ts() < w[1].ts()));
        // Taking the profile cleared it.
        assert!(e.take_profile(Tid(0)).is_empty());
    }

    #[test]
    fn profile_records_annotation_barriers() {
        let e = Engine::new(1);
        e.set_profiling(true);
        e.store(Tid(0), iid!(), X, 1, StoreAnn::Release);
        e.load(Tid(0), iid!(), X, LoadAnn::ReadOnce);
        e.load(Tid(0), iid!(), X, LoadAnn::Acquire);
        let p = e.take_profile(Tid(0));
        let kinds: Vec<_> = p.barriers().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BarrierKind::Release,
                BarrierKind::ReadOnce,
                BarrierKind::Acquire
            ]
        );
        // Release barrier precedes its store; ReadOnce/Acquire follow theirs.
        assert!(p.events[0].as_barrier().is_some());
        assert!(p.events[1].as_access().is_some());
        assert!(p.events[2].as_access().is_some());
        assert!(p.events[3].as_barrier().is_some());
    }

    #[test]
    fn clear_controls_restores_in_order() {
        let e = Engine::new(1);
        let i1 = iid!();
        e.delay_store_at(Tid(0), i1);
        e.clear_controls(Tid(0));
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        assert_eq!(e.raw_load(X), 1);
    }

    #[test]
    fn gc_history_respects_windows() {
        let e = Engine::new(2);
        e.store(Tid(0), iid!(), X, 1, StoreAnn::Plain);
        e.store(Tid(0), iid!(), X, 2, StoreAnn::Plain);
        assert_eq!(e.history_records().len(), 2);
        // Neither thread has a window yet (start = 0): nothing is collected.
        e.gc_history();
        assert_eq!(e.history_records().len(), 2);
        e.smp_rmb(Tid(0), iid!());
        e.smp_rmb(Tid(1), iid!());
        e.gc_history();
        assert!(e.history_records().is_empty());
    }

    #[test]
    fn replay_imposes_recorded_decisions_without_controls() {
        // Record a Figure-3-style delayed-store run, then replay it on a
        // fresh engine with *empty* control sets: the recorded decisions
        // alone must reproduce the same observations.
        let (i1, i2, i3, i4) = (iid!(), iid!(), iid!(), iid!());
        let run = |e: &Engine| {
            e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
            e.store(Tid(0), i2, Y, 2, StoreAnn::Plain);
            let rx = e.load(Tid(1), i3, X, LoadAnn::Plain);
            let ry = e.load(Tid(1), i4, Y, LoadAnn::Plain);
            e.flush_thread(Tid(0));
            (rx, ry)
        };

        let rec = Engine::new(2);
        rec.delay_store_at(Tid(0), i1);
        rec.start_trace_recording();
        assert_eq!(run(&rec), (0, 2), "store-store reordering observed");
        let steps = rec.take_recorded_trace();
        assert!(steps
            .iter()
            .any(|s| matches!(s, TraceStep::Store { delayed: true, .. })));

        let rep = Engine::new(2);
        rep.start_trace_replay(steps);
        assert_eq!(run(&rep), (0, 2), "replay reproduces the reordering");
        let status = rep.finish_trace_replay();
        assert!(!status.diverged, "replay followed the script");
        assert_eq!(status.consumed, status.total);
    }

    #[test]
    fn replay_divergence_is_detected_and_degrades_to_in_order() {
        let (i1, i2) = (iid!(), iid!());
        let rec = Engine::new(1);
        rec.delay_store_at(Tid(0), i1);
        rec.start_trace_recording();
        rec.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        rec.flush_thread(Tid(0));
        let steps = rec.take_recorded_trace();

        // A different program (different iid) cannot follow the script.
        let rep = Engine::new(1);
        rep.start_trace_replay(steps);
        rep.store(Tid(0), i2, X, 7, StoreAnn::Plain);
        assert_eq!(rep.raw_load(X), 7, "diverged replay falls back in-order");
        assert!(rep.finish_trace_replay().diverged);
    }

    #[test]
    fn replay_forces_versioned_loads() {
        let (ld, st1, st2) = (iid!(), iid!(), iid!());
        let run = |e: &Engine| {
            e.smp_rmb(Tid(0), iid!());
            e.store(Tid(1), st1, Z, 1, StoreAnn::Plain);
            e.store(Tid(1), st2, Z, 2, StoreAnn::Plain);
            e.load(Tid(0), ld, Z, LoadAnn::Plain)
        };
        let rec = Engine::new(2);
        rec.read_old_value_at(Tid(0), ld);
        rec.start_trace_recording();
        let old = run(&rec);
        assert_ne!(old, 2, "versioned load reads an in-window pre-image");
        let steps = rec.take_recorded_trace();

        let rep = Engine::new(2);
        rep.start_trace_replay(steps);
        assert_eq!(run(&rep), old, "replay re-reads the same old version");
        assert!(!rep.finish_trace_replay().diverged);
    }

    #[test]
    fn stats_count_mechanisms() {
        let e = Engine::new(1);
        let (i1, i2) = (iid!(), iid!());
        e.delay_store_at(Tid(0), i1);
        e.store(Tid(0), i1, X, 1, StoreAnn::Plain);
        e.load(Tid(0), iid!(), X, LoadAnn::Plain); // forward
        e.smp_wmb(Tid(0), i2); // flush commits 1
        let s = e.stats();
        assert_eq!(s.delayed, 1);
        assert_eq!(s.forwards, 1);
        assert_eq!(s.commits, 1);
        assert_eq!(s.barriers, 1);
    }

    fn live_digest(e: &Engine) -> String {
        let mut out = String::new();
        e.digest_live(&mut out);
        out
    }

    fn snap_digest(s: &EngineSnapshot) -> String {
        let mut out = String::new();
        s.digest(&mut out);
        out
    }

    /// Exercises every journalled subsystem: memory, history, store buffer,
    /// delay/read-old sets, observation floors, and the profile buffer.
    fn mutate_everything(e: &Engine, salt: u64) {
        let delayed = iid!();
        e.delay_store_at(Tid(0), delayed);
        e.read_old_value_at(Tid(1), iid!());
        e.store(Tid(0), delayed, X, salt, StoreAnn::Plain); // buffered
        e.store(Tid(0), iid!(), Y, salt + 1, StoreAnn::Plain);
        e.store(Tid(1), iid!(), Z, salt + 2, StoreAnn::Plain);
        e.load(Tid(1), iid!(), Y, LoadAnn::Plain); // floor update
        e.smp_rmb(Tid(1), iid!()); // window move
    }

    #[test]
    fn incremental_restore_round_trips_digest() {
        let e = Engine::new(2);
        e.set_profiling(true);
        mutate_everything(&e, 10);
        let snap = e.snapshot();
        let before = live_digest(&e);
        assert_eq!(before, snap_digest(&snap), "live digest matches snapshot");
        mutate_everything(&e, 20);
        e.smp_mb(Tid(0), iid!());
        assert_ne!(live_digest(&e), before);
        e.restore(&snap);
        assert_eq!(live_digest(&e), before, "incremental restore is exact");
        let s = e.stats();
        assert_eq!(s.restores_incremental, 1);
        assert_eq!(s.restore_full_fallbacks, 0);
        assert!(s.restore_words_replayed > 0);
        // The frame stays armed: restore-after-restore is incremental too.
        mutate_everything(&e, 30);
        e.restore(&snap);
        assert_eq!(live_digest(&e), before);
        assert_eq!(e.stats().restores_incremental, 2);
    }

    #[test]
    fn nested_snapshots_restore_through_each_other() {
        let e = Engine::new(2);
        mutate_everything(&e, 1);
        let boot = e.snapshot();
        let boot_d = snap_digest(&boot);
        mutate_everything(&e, 40);
        let post = e.snapshot();
        let post_d = snap_digest(&post);
        assert_eq!(e.journal_depth(), 2);
        mutate_everything(&e, 50);
        e.restore(&post);
        assert_eq!(live_digest(&e), post_d);
        assert_eq!(e.journal_depth(), 2);
        // Restoring the *outer* snapshot pops the inner frame.
        e.restore(&boot);
        assert_eq!(live_digest(&e), boot_d);
        assert_eq!(e.journal_depth(), 1);
        assert_eq!(e.stats().restore_full_fallbacks, 0);
        // The inner generation is no longer armed: full fallback, then
        // re-armed so the next restore to it is incremental again.
        e.restore(&post);
        assert_eq!(live_digest(&e), post_d);
        assert_eq!(e.stats().restore_full_fallbacks, 1);
        mutate_everything(&e, 60);
        e.restore(&post);
        assert_eq!(live_digest(&e), post_d);
        assert_eq!(e.stats().restore_full_fallbacks, 1, "re-armed");
    }

    #[test]
    fn cross_machine_restore_falls_back_to_full() {
        let a = Engine::new(2);
        mutate_everything(&a, 7);
        let snap = a.snapshot();
        let b = Engine::new(2);
        b.restore(&snap);
        assert_eq!(live_digest(&b), snap_digest(&snap));
        assert_eq!(b.stats().restore_full_fallbacks, 1);
        assert_eq!(b.stats().restores_incremental, 0);
    }

    #[test]
    fn force_full_restore_disarms_journal() {
        let e = Engine::new(2);
        e.set_force_full_restore(true);
        let snap = e.snapshot();
        assert_eq!(e.journal_depth(), 0, "no frame armed while forced");
        mutate_everything(&e, 3);
        e.restore(&snap);
        assert_eq!(live_digest(&e), snap_digest(&snap));
        let s = e.stats();
        assert_eq!(s.restore_full_fallbacks, 1);
        assert_eq!(s.restores_incremental, 0);
        assert_eq!(e.journal_depth(), 0, "forced restore does not re-arm");
        // Turning the knob off restores incremental behaviour.
        e.set_force_full_restore(false);
        let snap2 = e.snapshot();
        mutate_everything(&e, 4);
        e.restore(&snap2);
        assert_eq!(e.stats().restores_incremental, 1);
    }

    #[test]
    fn take_profile_after_snapshot_still_restores_exactly() {
        let e = Engine::new(2);
        e.set_profiling(true);
        e.store(Tid(0), iid!(), X, 1, StoreAnn::Plain); // profiled event
        let snap = e.snapshot();
        let before = snap_digest(&snap);
        // Discard the buffer the snapshot's baseline points into.
        let _ = e.take_profile(Tid(0));
        e.store(Tid(0), iid!(), Y, 2, StoreAnn::Plain);
        e.restore(&snap);
        assert_eq!(live_digest(&e), before, "profile restored via clone_from");
        assert_eq!(e.stats().restore_full_fallbacks, 0);
    }

    #[test]
    fn gc_history_invalidates_the_journal() {
        let e = Engine::new(1);
        e.store(Tid(0), iid!(), X, 1, StoreAnn::Plain);
        let snap = e.snapshot();
        e.smp_rmb(Tid(0), iid!());
        e.gc_history();
        assert_eq!(e.journal_depth(), 0);
        e.restore(&snap);
        assert_eq!(live_digest(&e), snap_digest(&snap));
        assert_eq!(e.stats().restore_full_fallbacks, 1);
    }
}
