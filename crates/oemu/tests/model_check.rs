//! Property-based model checking of the OEMU engine.
//!
//! Operation sequences (stores, loads, barriers, flushes across two
//! threads, with delay/version control sets) are executed against the
//! engine, and the observations are checked against the memory-model
//! invariants that §3.3 promises. Case generation is fully deterministic:
//! an enumerated pass over every operation pair, then a seeded [`DetRng`]
//! sweep (the failing case's seed is printed on panic, replacing
//! proptest's failure persistence). The invariants:
//!
//! 1. **No thin-air values**: every load returns the initial zero or a
//!    value some store wrote.
//! 2. **Read-your-writes**: a thread always observes its own most recent
//!    store to a location (store-to-load forwarding, §3.1).
//! 3. **Versioned reads are historical**: a versioned load returns a value
//!    the location actually held at some point.
//! 4. **Per-location coherence (CoRR)**: the sequence of values one thread
//!    reads from one location never moves backwards in that location's
//!    value timeline.
//! 5. **Flush completeness**: after every buffer is flushed, memory holds
//!    each location's last store in program order per thread.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;

use kutil::DetRng;
use oemu::{Engine, Iid, LoadAnn, StoreAnn, Tid};

/// One scripted operation.
#[derive(Copy, Clone, Debug)]
enum Op {
    Store {
        tid: usize,
        addr: u64,
        delayed: bool,
    },
    Load {
        tid: usize,
        addr: u64,
        versioned: bool,
    },
    Wmb {
        tid: usize,
    },
    Rmb {
        tid: usize,
    },
    Mb {
        tid: usize,
    },
    Flush {
        tid: usize,
    },
}

/// One random operation, weighted 4:4:1:1:1:1 (stores and loads dominate,
/// matching the distribution the proptest version of this suite used).
fn arb_op(rng: &mut DetRng) -> Op {
    let tid = rng.gen_range(0..2usize);
    let addr = 0x1000 + rng.gen_range(0u64..4) * 8;
    match rng.gen_range(0..12u32) {
        0..=3 => Op::Store {
            tid,
            addr,
            delayed: rng.gen_bool(0.5),
        },
        4..=7 => Op::Load {
            tid,
            addr,
            versioned: rng.gen_bool(0.5),
        },
        8 => Op::Wmb { tid },
        9 => Op::Rmb { tid },
        10 => Op::Mb { tid },
        _ => Op::Flush { tid },
    }
}

/// A random script of 1..24 operations.
fn arb_ops(rng: &mut DetRng) -> Vec<Op> {
    let len = rng.gen_range(1..24usize);
    (0..len).map(|_| arb_op(rng)).collect()
}

/// Every operation kind over a reduced domain (both threads, one fixed
/// address, both flag values): the alphabet for the enumerated pass.
fn op_alphabet() -> Vec<Op> {
    let mut ops = Vec::new();
    for tid in 0..2 {
        for flag in [false, true] {
            ops.push(Op::Store {
                tid,
                addr: 0x1000,
                delayed: flag,
            });
            ops.push(Op::Load {
                tid,
                addr: 0x1000,
                versioned: flag,
            });
        }
        ops.push(Op::Wmb { tid });
        ops.push(Op::Rmb { tid });
        ops.push(Op::Mb { tid });
        ops.push(Op::Flush { tid });
    }
    ops
}

/// Number of randomized cases per property (the old proptest case count).
const CASES: u64 = 192;

/// Runs `body` against enumerated small scripts (every pair over the op
/// alphabet — 256 cases) and `CASES` randomized scripts. Deterministic:
/// case i of property `salt` is always the same script. On failure, the
/// reproducing seed is printed before the panic propagates, replacing
/// proptest's persisted failure file.
fn check_property(salt: u64, body: impl Fn(&[Op])) {
    let alphabet = op_alphabet();
    for (i, a) in alphabet.iter().enumerate() {
        for (j, b) in alphabet.iter().enumerate() {
            let script = [*a, *b];
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| body(&script)));
            if let Err(e) = r {
                eprintln!("property failed on enumerated pair ({i}, {j}): {script:?}");
                std::panic::resume_unwind(e);
            }
        }
    }
    for case in 0..CASES {
        let seed = salt.wrapping_mul(0x100_0000).wrapping_add(case);
        let ops = arb_ops(&mut DetRng::new(seed));
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| body(&ops)));
        if let Err(e) = r {
            eprintln!("property failed with DetRng seed {seed}: {ops:?}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Result of running a script: per-load observations and final state.
struct RunResult {
    /// (tid, addr, value, was_versioned) per load, in execution order.
    loads: Vec<(usize, u64, u64, bool)>,
    /// Unique value of each store, in issue order per thread per addr.
    stores_by_thread_addr: HashMap<(usize, u64), Vec<u64>>,
    /// All stored values.
    all_values: Vec<u64>,
    /// Value timeline per address (commit order), reconstructed from the
    /// engine's history after a full flush.
    timeline: HashMap<u64, Vec<u64>>,
    /// Final memory value per address.
    final_mem: HashMap<u64, u64>,
}

fn run_script(ops: &[Op]) -> RunResult {
    let engine = Engine::new(2);
    let mut next_val = 1u64;
    let mut loads = Vec::new();
    let mut stores_by_thread_addr: HashMap<(usize, u64), Vec<u64>> = HashMap::new();
    let mut all_values = vec![0];
    let mut op_line = 1u32;
    for op in ops {
        op_line += 1;
        let iid = Iid::register("model_check.rs", op_line, 7);
        match *op {
            Op::Store { tid, addr, delayed } => {
                let val = next_val;
                next_val += 1;
                if delayed {
                    engine.delay_store_at(Tid(tid), iid);
                }
                engine.store(Tid(tid), iid, addr, val, StoreAnn::Plain);
                stores_by_thread_addr
                    .entry((tid, addr))
                    .or_default()
                    .push(val);
                all_values.push(val);
            }
            Op::Load {
                tid,
                addr,
                versioned,
            } => {
                if versioned {
                    engine.read_old_value_at(Tid(tid), iid);
                }
                let v = engine.load(Tid(tid), iid, addr, LoadAnn::Plain);
                loads.push((tid, addr, v, versioned));
            }
            Op::Wmb { tid } => engine.smp_wmb(Tid(tid), iid),
            Op::Rmb { tid } => engine.smp_rmb(Tid(tid), iid),
            Op::Mb { tid } => engine.smp_mb(Tid(tid), iid),
            Op::Flush { tid } => engine.flush_thread(Tid(tid)),
        }
    }
    engine.flush_thread(Tid(0));
    engine.flush_thread(Tid(1));
    // Reconstruct each location's value timeline from the history.
    let mut timeline: HashMap<u64, Vec<u64>> = HashMap::new();
    for rec in engine.history_records() {
        timeline
            .entry(rec.addr)
            .or_insert_with(|| vec![0])
            .push(rec.new);
    }
    let mut final_mem = HashMap::new();
    for addr in (0..4).map(|a| 0x1000 + a * 8) {
        final_mem.insert(addr, engine.raw_load(addr));
    }
    RunResult {
        loads,
        stores_by_thread_addr,
        all_values,
        timeline,
        final_mem,
    }
}

#[test]
fn no_thin_air_values() {
    check_property(1, |ops| {
        let r = run_script(ops);
        for (tid, addr, v, _) in &r.loads {
            assert!(
                r.all_values.contains(v),
                "thread {tid} read thin-air value {v} from {addr:#x}"
            );
        }
    });
}

#[test]
fn read_your_own_writes() {
    // Replay the script tracking each thread's last store per addr;
    // whenever that thread loads the addr, it must see a value at least
    // as new as its own last store (forwarding or the store itself).
    check_property(2, |ops| {
        let r = run_script(ops);
        // Replay, counting stores issued per (thread, addr) so far; the
        // thread's own last store is `list[count - 1]`.
        let mut issued: HashMap<(usize, u64), usize> = HashMap::new();
        let mut load_idx = 0;
        for op in ops {
            match *op {
                Op::Store { tid, addr, .. } => {
                    *issued.entry((tid, addr)).or_insert(0) += 1;
                }
                Op::Load { tid, addr, .. } => {
                    let (ltid, laddr, v, _) = r.loads[load_idx];
                    load_idx += 1;
                    assert_eq!((ltid, laddr), (tid, addr));
                    let count = issued.get(&(tid, addr)).copied().unwrap_or(0);
                    if count > 0 {
                        let list = &r.stores_by_thread_addr[&(tid, addr)];
                        let own_pos = count - 1;
                        // The loaded value must not be one of the thread's
                        // *earlier own* values (read-your-writes); other
                        // threads' values are unconstrained here.
                        if let Some(vpos) = list.iter().position(|x| x == &v) {
                            assert!(
                                vpos >= own_pos,
                                "thread {tid} lost its own store: saw {v} (own pos {vpos} < {own_pos})"
                            );
                        } else {
                            // The value came from another thread's store —
                            // legal once the own store committed. Reading
                            // the initial zero, though, would mean the own
                            // store vanished.
                            assert!(
                                v != 0,
                                "thread {tid} read initial 0 after storing to {addr:#x}"
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    });
}

#[test]
fn versioned_reads_are_historical() {
    check_property(3, |ops| {
        let r = run_script(ops);
        for (tid, addr, v, versioned) in &r.loads {
            if !versioned {
                continue;
            }
            let timeline = r.timeline.get(addr).cloned().unwrap_or_else(|| vec![0]);
            assert!(
                timeline.contains(v)
                    || r.stores_by_thread_addr
                        .get(&(*tid, *addr))
                        .is_some_and(|l| l.contains(v)),
                "versioned load of {addr:#x} returned {v}, never held there"
            );
        }
    });
}

#[test]
fn per_location_reads_are_monotonic() {
    // CoRR: for each (thread, addr), map read values to their position
    // in the location's commit timeline; positions never decrease.
    // (Values still buffered at read time are not in the timeline until
    // flushed; since the final double flush commits everything and
    // values are unique, every read value appears.)
    check_property(4, |ops| {
        let r = run_script(ops);
        let mut last_pos: HashMap<(usize, u64), usize> = HashMap::new();
        for (tid, addr, v, _) in &r.loads {
            let timeline = r.timeline.get(addr).cloned().unwrap_or_else(|| vec![0]);
            let Some(pos) = timeline.iter().position(|x| x == v) else {
                continue; // forwarded-from-buffer value committed later
            };
            let entry = last_pos.entry((*tid, *addr)).or_insert(0);
            assert!(
                pos >= *entry,
                "thread {tid} read {addr:#x} backwards: timeline pos {pos} after {entry}"
            );
            *entry = pos;
        }
    });
}

#[test]
fn flush_completeness() {
    // After the final flushes, memory holds, per location, the last
    // value of *some* thread's program-order store sequence — never an
    // intermediate value of any single thread (FIFO buffers cannot
    // reorder same-thread same-location stores).
    check_property(5, |ops| {
        let r = run_script(ops);
        for (addr, final_v) in &r.final_mem {
            if *final_v == 0 {
                continue;
            }
            let is_last_of_some_thread = (0..2).any(|tid| {
                r.stores_by_thread_addr
                    .get(&(tid, *addr))
                    .is_some_and(|list| list.last() == Some(final_v))
            });
            assert!(
                is_last_of_some_thread,
                "final value {final_v} at {addr:#x} is not any thread's last store"
            );
        }
    });
}
