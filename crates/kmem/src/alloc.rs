//! Slab-style allocator with KASAN-like access checking.
//!
//! Objects are carved from a bump region of the simulated address space with
//! a redzone after each object. Freed objects enter a quarantine and their
//! addresses are never reused, so a dangling pointer dereference is always
//! attributable to the exact freed object — the property KASAN's quarantine
//! buys on real kernels and the reason the paper's in-vivo approach can
//! detect use-after-free and double-free outcomes of reordering (§3,
//! "Benefits of in-vivo emulation").

use std::collections::BTreeMap;

use kutil::sync::Mutex;

use crate::report::{Fault, FaultKind};

/// Addresses below this are the null guard page; any access faults as a
/// NULL pointer dereference.
pub const NULL_GUARD: u64 = 0x1000;

/// Base of the simulated slab heap.
pub const HEAP_BASE: u64 = 0x1_0000_0000;

/// Redzone placed after every object, in bytes.
pub const REDZONE: u64 = 64;

/// Lifecycle state of a slab object.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AllocState {
    /// Live object.
    Allocated,
    /// Freed and quarantined; all accesses fault as use-after-free.
    Freed,
}

/// Metadata of one slab object.
#[derive(Clone, Debug)]
pub struct Object {
    /// Base address.
    pub base: u64,
    /// Usable size in bytes.
    pub size: u64,
    /// Live or quarantined.
    pub state: AllocState,
    /// Allocation-site tag (cache name analog), for reports.
    pub tag: &'static str,
}

/// Allocator counters.
#[derive(Default, Debug, Clone, Copy)]
pub struct KmemStats {
    /// Objects allocated.
    pub allocs: u64,
    /// Objects freed.
    pub frees: u64,
    /// Access checks performed.
    pub checks: u64,
}

struct Inner {
    next: u64,
    objects: BTreeMap<u64, Object>,
    stats: KmemStats,
}

/// A full copy of the allocator's state: bump pointer, every object's
/// lifecycle (including the quarantine), and counters. Restoring the bump
/// pointer matters for determinism — profiles key on simulated addresses,
/// so a reset machine must hand out exactly the addresses a fresh boot
/// would.
#[derive(Clone)]
pub struct KmemSnapshot {
    next: u64,
    objects: BTreeMap<u64, Object>,
    stats: KmemStats,
}

impl KmemSnapshot {
    /// Appends a deterministic rendering of the captured heap to `out`
    /// (BTreeMap iteration is already address-ordered). Stats counters are
    /// excluded — diagnostics only.
    pub fn digest(&self, out: &mut String) {
        use std::fmt::Write;
        writeln!(out, "kmem next={:#x}", self.next).unwrap();
        for o in self.objects.values() {
            writeln!(out, "obj {o:?}").unwrap();
        }
    }
}

/// The simulated slab allocator and KASAN access checker.
pub struct Kmem {
    inner: Mutex<Inner>,
}

impl Default for Kmem {
    fn default() -> Self {
        Self::new()
    }
}

impl Kmem {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Kmem {
            inner: Mutex::new(Inner {
                next: HEAP_BASE,
                objects: BTreeMap::new(),
                stats: KmemStats::default(),
            }),
        }
    }

    /// Allocates a zero-filled object of `size` bytes (`kzalloc`). The
    /// caller is responsible for zeroing the backing words in the engine's
    /// memory (fresh addresses read as zero there anyway, since addresses
    /// are never reused).
    ///
    /// Returns the object base address, always 8-byte aligned.
    pub fn kzalloc(&self, size: u64, tag: &'static str) -> u64 {
        let mut inner = self.inner.lock();
        let size = size.max(8);
        let base = inner.next;
        inner.next = base + ((size + REDZONE + 7) & !7);
        inner.objects.insert(
            base,
            Object {
                base,
                size,
                state: AllocState::Allocated,
                tag,
            },
        );
        inner.stats.allocs += 1;
        base
    }

    /// Frees an object (`kfree`). Freed objects are quarantined forever;
    /// double frees and frees of non-object addresses fault.
    pub fn kfree(&self, addr: u64, in_fn: &'static str) -> Result<(), Fault> {
        let mut inner = self.inner.lock();
        match inner.objects.get_mut(&addr) {
            Some(obj) if obj.state == AllocState::Allocated => {
                obj.state = AllocState::Freed;
                inner.stats.frees += 1;
                Ok(())
            }
            Some(_) => Err(Fault {
                kind: FaultKind::DoubleFree { object: addr },
                addr,
                in_fn,
            }),
            None if addr < NULL_GUARD => {
                // `kfree(NULL)` is a no-op in Linux.
                if addr == 0 {
                    Ok(())
                } else {
                    Err(Fault {
                        kind: FaultKind::NullDeref { write: true },
                        addr,
                        in_fn,
                    })
                }
            }
            None => Err(Fault {
                kind: FaultKind::Wild { write: true },
                addr,
                in_fn,
            }),
        }
    }

    /// KASAN check for an access of `size` bytes at `addr`.
    ///
    /// Fault taxonomy, mirroring the kernel oracles:
    /// - inside the null guard page → NULL pointer dereference;
    /// - inside a live object → OK;
    /// - inside a freed object (or its redzone) → use-after-free;
    /// - inside a live object's redzone or straddling its end → slab
    ///   out-of-bounds;
    /// - anywhere else → general protection fault (wild access).
    pub fn check_access(
        &self,
        addr: u64,
        size: u64,
        write: bool,
        in_fn: &'static str,
    ) -> Result<(), Fault> {
        let mut inner = self.inner.lock();
        inner.stats.checks += 1;
        if addr < NULL_GUARD {
            return Err(Fault {
                kind: FaultKind::NullDeref { write },
                addr,
                in_fn,
            });
        }
        if addr < HEAP_BASE {
            return Err(Fault {
                kind: FaultKind::Wild { write },
                addr,
                in_fn,
            });
        }
        // Find the nearest object at or below `addr`.
        let obj = inner
            .objects
            .range(..=addr)
            .next_back()
            .map(|(_, o)| o.clone());
        let Some(obj) = obj else {
            return Err(Fault {
                kind: FaultKind::Wild { write },
                addr,
                in_fn,
            });
        };
        let end = obj.base + obj.size;
        let guard_end = end + REDZONE;
        if addr + size <= end {
            match obj.state {
                AllocState::Allocated => Ok(()),
                AllocState::Freed => Err(Fault {
                    kind: FaultKind::UseAfterFree {
                        write,
                        object: obj.base,
                    },
                    addr,
                    in_fn,
                }),
            }
        } else if addr < guard_end {
            match obj.state {
                AllocState::Allocated => Err(Fault {
                    kind: FaultKind::OutOfBounds {
                        write,
                        object: obj.base,
                        overflow: addr.saturating_sub(end) + size,
                    },
                    addr,
                    in_fn,
                }),
                AllocState::Freed => Err(Fault {
                    kind: FaultKind::UseAfterFree {
                        write,
                        object: obj.base,
                    },
                    addr,
                    in_fn,
                }),
            }
        } else {
            Err(Fault {
                kind: FaultKind::Wild { write },
                addr,
                in_fn,
            })
        }
    }

    /// Looks up the object containing `addr`, if any.
    pub fn object_at(&self, addr: u64) -> Option<Object> {
        let inner = self.inner.lock();
        inner
            .objects
            .range(..=addr)
            .next_back()
            .map(|(_, o)| o.clone())
            .filter(|o| addr < o.base + o.size + REDZONE)
    }

    /// Captures the allocator's full state.
    pub fn snapshot(&self) -> KmemSnapshot {
        let inner = self.inner.lock();
        KmemSnapshot {
            next: inner.next,
            objects: inner.objects.clone(),
            stats: inner.stats,
        }
    }

    /// Restores a previously captured state, reusing allocations where the
    /// containers support it.
    pub fn restore(&self, snap: &KmemSnapshot) {
        let mut inner = self.inner.lock();
        inner.next = snap.next;
        inner.objects.clone_from(&snap.objects);
        inner.stats = snap.stats;
    }

    /// Allocator counters.
    pub fn stats(&self) -> KmemStats {
        let inner = self.inner.lock();
        inner.stats
    }

    /// Number of live (non-freed) objects, for leak-style diagnostics.
    pub fn live_objects(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .objects
            .values()
            .filter(|o| o.state == AllocState::Allocated)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let k = Kmem::new();
        let a = k.kzalloc(24, "a");
        let b = k.kzalloc(100, "b");
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 24 + REDZONE);
    }

    #[test]
    fn in_bounds_access_passes() {
        let k = Kmem::new();
        let a = k.kzalloc(32, "obj");
        assert!(k.check_access(a, 8, false, "f").is_ok());
        assert!(k.check_access(a + 24, 8, true, "f").is_ok());
    }

    #[test]
    fn null_guard_faults() {
        let k = Kmem::new();
        let fault = k.check_access(0, 8, false, "pipe_read").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::NullDeref { write: false }));
        let fault = k.check_access(0x40, 8, true, "fput").unwrap_err();
        assert_eq!(
            fault.title(),
            "KASAN: null-ptr-deref Write in fput",
            "matches the paper's Bug #10 title"
        );
    }

    #[test]
    fn oob_detected_in_redzone() {
        let k = Kmem::new();
        let a = k.kzalloc(32, "obj");
        let fault = k
            .check_access(a + 32, 8, false, "rds_loop_xmit")
            .unwrap_err();
        assert!(matches!(fault.kind, FaultKind::OutOfBounds { .. }));
        assert_eq!(
            fault.title(),
            "KASAN: slab-out-of-bounds Read in rds_loop_xmit",
            "matches the paper's Bug #1 title"
        );
    }

    #[test]
    fn straddling_end_is_oob() {
        let k = Kmem::new();
        let a = k.kzalloc(12, "obj");
        // Bytes [8, 16) extend past the 12-byte object.
        assert!(k.check_access(a + 8, 8, false, "f").is_err());
    }

    #[test]
    fn uaf_detected_after_free() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "obj");
        k.kfree(a, "kfree").unwrap();
        let fault = k.check_access(a, 8, false, "reader").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::UseAfterFree { .. }));
    }

    #[test]
    fn double_free_detected() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "obj");
        k.kfree(a, "kfree").unwrap();
        let fault = k.kfree(a, "kfree").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::DoubleFree { .. }));
    }

    #[test]
    fn kfree_null_is_noop() {
        let k = Kmem::new();
        assert!(k.kfree(0, "kfree").is_ok());
    }

    #[test]
    fn wild_access_is_gpf() {
        let k = Kmem::new();
        let fault = k
            .check_access(0xdead_0000, 8, false, "add_wait_queue")
            .unwrap_err();
        assert!(matches!(fault.kind, FaultKind::Wild { .. }));
        assert_eq!(
            fault.title(),
            "general protection fault in add_wait_queue",
            "matches the paper's Bug #3 title"
        );
    }

    #[test]
    fn addresses_never_reused() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "a");
        k.kfree(a, "kfree").unwrap();
        let b = k.kzalloc(16, "b");
        assert_ne!(a, b, "quarantine forbids address reuse");
    }

    #[test]
    fn object_lookup_and_stats() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "tls_context");
        let obj = k.object_at(a + 8).expect("found");
        assert_eq!(obj.tag, "tls_context");
        assert_eq!(k.live_objects(), 1);
        k.kfree(a, "kfree").unwrap();
        assert_eq!(k.live_objects(), 0);
        let s = k.stats();
        assert_eq!((s.allocs, s.frees), (1, 1));
    }
}
