//! Slab-style allocator with KASAN-like access checking.
//!
//! Objects are carved from a bump region of the simulated address space with
//! a redzone after each object. Freed objects enter a quarantine and their
//! addresses are never reused, so a dangling pointer dereference is always
//! attributable to the exact freed object — the property KASAN's quarantine
//! buys on real kernels and the reason the paper's in-vivo approach can
//! detect use-after-free and double-free outcomes of reordering (§3,
//! "Benefits of in-vivo emulation").

use std::collections::BTreeMap;

use kutil::sync::Mutex;

use crate::report::{Fault, FaultKind};

/// Addresses below this are the null guard page; any access faults as a
/// NULL pointer dereference.
pub const NULL_GUARD: u64 = 0x1000;

/// Base of the simulated slab heap.
pub const HEAP_BASE: u64 = 0x1_0000_0000;

/// Redzone placed after every object, in bytes.
pub const REDZONE: u64 = 64;

/// Lifecycle state of a slab object.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AllocState {
    /// Live object.
    Allocated,
    /// Freed and quarantined; all accesses fault as use-after-free.
    Freed,
}

/// Metadata of one slab object.
#[derive(Clone, Debug)]
pub struct Object {
    /// Base address.
    pub base: u64,
    /// Usable size in bytes.
    pub size: u64,
    /// Live or quarantined.
    pub state: AllocState,
    /// Allocation-site tag (cache name analog), for reports.
    pub tag: &'static str,
}

/// Allocator counters.
#[derive(Default, Debug, Clone, Copy)]
pub struct KmemStats {
    /// Objects allocated.
    pub allocs: u64,
    /// Objects freed.
    pub frees: u64,
    /// Access checks performed.
    pub checks: u64,
}

/// One undo frame: `(base, pre-image)` pairs in mutation order. `None`
/// means the object did not exist before the mutation (a `kzalloc`);
/// `Some` carries the object's metadata before a `kfree` flipped its state.
/// Rollback replays entries backwards, so the oldest pre-image of an
/// address wins and no dedup set is needed on the allocation path.
struct KmemFrame {
    generation: u64,
    entries: Vec<(u64, Option<Object>)>,
}

/// Deepest snapshot nesting the undo journal tracks; mirrors the engine's
/// frame cap so the whole machine arms and evicts in lockstep.
const MAX_FRAMES: usize = 8;

struct Inner {
    next: u64,
    objects: BTreeMap<u64, Object>,
    stats: KmemStats,
    /// Armed undo frames, oldest first — one per live snapshot.
    frames: Vec<KmemFrame>,
    /// Diagnostics/benchmark knob: disable journaling entirely so restores
    /// reproduce the pre-journal full-`clone_from` cost exactly.
    force_full_restore: bool,
}

impl Inner {
    fn journal(&mut self, base: u64, pre: Option<Object>) {
        if let Some(frame) = self.frames.last_mut() {
            frame.entries.push((base, pre));
        }
    }
}

/// Replays one frame's pre-images backwards so the oldest entry per
/// address is applied last and wins.
fn replay(objects: &mut BTreeMap<u64, Object>, entries: Vec<(u64, Option<Object>)>) {
    for (base, pre) in entries.into_iter().rev() {
        match pre {
            Some(obj) => {
                objects.insert(base, obj);
            }
            None => {
                objects.remove(&base);
            }
        }
    }
}

/// A full copy of the allocator's state: bump pointer, every object's
/// lifecycle (including the quarantine), and counters. Restoring the bump
/// pointer matters for determinism — profiles key on simulated addresses,
/// so a reset machine must hand out exactly the addresses a fresh boot
/// would.
#[derive(Clone)]
pub struct KmemSnapshot {
    next: u64,
    objects: BTreeMap<u64, Object>,
    stats: KmemStats,
    /// Undo-journal generation id ([`kutil::next_generation`]): a restore
    /// whose generation is armed rolls back incrementally. Not part of the
    /// digest — it names the snapshot, it is not state.
    generation: u64,
}

impl KmemSnapshot {
    /// Appends a deterministic rendering of the captured heap to `out`
    /// (BTreeMap iteration is already address-ordered). Stats counters are
    /// excluded — diagnostics only.
    pub fn digest(&self, out: &mut String) {
        digest_state(out, self.next, self.objects.values());
    }

    /// The snapshot's undo-journal generation id.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The one rendering of heap state both digests share: a snapshot's
/// [`KmemSnapshot::digest`] and the live [`Kmem::digest_live`] must be
/// byte-identical for the same state.
fn digest_state<'a>(out: &mut String, next: u64, objects: impl Iterator<Item = &'a Object>) {
    use std::fmt::Write;
    writeln!(out, "kmem next={next:#x}").unwrap();
    for o in objects {
        writeln!(out, "obj {o:?}").unwrap();
    }
}

/// The simulated slab allocator and KASAN access checker.
pub struct Kmem {
    inner: Mutex<Inner>,
}

impl Default for Kmem {
    fn default() -> Self {
        Self::new()
    }
}

impl Kmem {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Kmem {
            inner: Mutex::new(Inner {
                next: HEAP_BASE,
                objects: BTreeMap::new(),
                stats: KmemStats::default(),
                frames: Vec::new(),
                force_full_restore: false,
            }),
        }
    }

    /// Allocates a zero-filled object of `size` bytes (`kzalloc`). The
    /// caller is responsible for zeroing the backing words in the engine's
    /// memory (fresh addresses read as zero there anyway, since addresses
    /// are never reused).
    ///
    /// Returns the object base address, always 8-byte aligned.
    pub fn kzalloc(&self, size: u64, tag: &'static str) -> u64 {
        let mut inner = self.inner.lock();
        let size = size.max(8);
        let base = inner.next;
        inner.next = base + ((size + REDZONE + 7) & !7);
        let prev = inner.objects.insert(
            base,
            Object {
                base,
                size,
                state: AllocState::Allocated,
                tag,
            },
        );
        inner.journal(base, prev);
        inner.stats.allocs += 1;
        base
    }

    /// Frees an object (`kfree`). Freed objects are quarantined forever;
    /// double frees and frees of non-object addresses fault.
    pub fn kfree(&self, addr: u64, in_fn: &'static str) -> Result<(), Fault> {
        let mut inner = self.inner.lock();
        match inner.objects.get_mut(&addr) {
            Some(obj) if obj.state == AllocState::Allocated => {
                let pre = obj.clone();
                obj.state = AllocState::Freed;
                inner.journal(addr, Some(pre));
                inner.stats.frees += 1;
                Ok(())
            }
            Some(_) => Err(Fault {
                kind: FaultKind::DoubleFree { object: addr },
                addr,
                in_fn,
            }),
            None if addr < NULL_GUARD => {
                // `kfree(NULL)` is a no-op in Linux.
                if addr == 0 {
                    Ok(())
                } else {
                    Err(Fault {
                        kind: FaultKind::NullDeref { write: true },
                        addr,
                        in_fn,
                    })
                }
            }
            None => Err(Fault {
                kind: FaultKind::Wild { write: true },
                addr,
                in_fn,
            }),
        }
    }

    /// KASAN check for an access of `size` bytes at `addr`.
    ///
    /// Fault taxonomy, mirroring the kernel oracles:
    /// - inside the null guard page → NULL pointer dereference;
    /// - inside a live object → OK;
    /// - inside a freed object (or its redzone) → use-after-free;
    /// - inside a live object's redzone or straddling its end → slab
    ///   out-of-bounds;
    /// - anywhere else → general protection fault (wild access).
    pub fn check_access(
        &self,
        addr: u64,
        size: u64,
        write: bool,
        in_fn: &'static str,
    ) -> Result<(), Fault> {
        let mut inner = self.inner.lock();
        inner.stats.checks += 1;
        if addr < NULL_GUARD {
            return Err(Fault {
                kind: FaultKind::NullDeref { write },
                addr,
                in_fn,
            });
        }
        if addr < HEAP_BASE {
            return Err(Fault {
                kind: FaultKind::Wild { write },
                addr,
                in_fn,
            });
        }
        // Find the nearest object at or below `addr`.
        let obj = inner
            .objects
            .range(..=addr)
            .next_back()
            .map(|(_, o)| o.clone());
        let Some(obj) = obj else {
            return Err(Fault {
                kind: FaultKind::Wild { write },
                addr,
                in_fn,
            });
        };
        let end = obj.base + obj.size;
        let guard_end = end + REDZONE;
        if addr + size <= end {
            match obj.state {
                AllocState::Allocated => Ok(()),
                AllocState::Freed => Err(Fault {
                    kind: FaultKind::UseAfterFree {
                        write,
                        object: obj.base,
                    },
                    addr,
                    in_fn,
                }),
            }
        } else if addr < guard_end {
            match obj.state {
                AllocState::Allocated => Err(Fault {
                    kind: FaultKind::OutOfBounds {
                        write,
                        object: obj.base,
                        overflow: addr.saturating_sub(end) + size,
                    },
                    addr,
                    in_fn,
                }),
                AllocState::Freed => Err(Fault {
                    kind: FaultKind::UseAfterFree {
                        write,
                        object: obj.base,
                    },
                    addr,
                    in_fn,
                }),
            }
        } else {
            Err(Fault {
                kind: FaultKind::Wild { write },
                addr,
                in_fn,
            })
        }
    }

    /// Looks up the object containing `addr`, if any.
    pub fn object_at(&self, addr: u64) -> Option<Object> {
        let inner = self.inner.lock();
        inner
            .objects
            .range(..=addr)
            .next_back()
            .map(|(_, o)| o.clone())
            .filter(|o| addr < o.base + o.size + REDZONE)
    }

    /// Captures the allocator's full state and arms an undo frame under the
    /// snapshot's fresh generation id, so a later [`restore`](Kmem::restore)
    /// to it rolls back only the objects touched in between.
    pub fn snapshot(&self) -> KmemSnapshot {
        let mut inner = self.inner.lock();
        let generation = kutil::next_generation();
        if !inner.force_full_restore {
            if inner.frames.len() == MAX_FRAMES {
                inner.frames.remove(0);
            }
            inner.frames.push(KmemFrame {
                generation,
                entries: Vec::new(),
            });
        }
        KmemSnapshot {
            next: inner.next,
            objects: inner.objects.clone(),
            stats: inner.stats,
            generation,
        }
    }

    /// Restores a previously captured state. When the snapshot's generation
    /// is armed in the undo journal the object map rolls back incrementally
    /// (pre-images replay backwards); otherwise the full `clone_from` path
    /// runs and the journal is re-armed at the restored generation. The
    /// bump pointer and counters are scalars, restored either way. Returns
    /// `true` when the incremental path was taken.
    pub fn restore(&self, snap: &KmemSnapshot) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let armed = (!inner.force_full_restore)
            .then(|| {
                inner
                    .frames
                    .iter()
                    .position(|f| f.generation == snap.generation)
            })
            .flatten();
        let incremental = match armed {
            Some(k) => {
                while inner.frames.len() > k + 1 {
                    let frame = inner.frames.pop().expect("len > k+1");
                    replay(&mut inner.objects, frame.entries);
                }
                let entries = std::mem::take(&mut inner.frames[k].entries);
                replay(&mut inner.objects, entries);
                true
            }
            None => {
                inner.objects.clone_from(&snap.objects);
                inner.frames.clear();
                if !inner.force_full_restore {
                    // The heap now *is* the snapshot: re-arm at its
                    // generation so the next restore to it is incremental.
                    inner.frames.push(KmemFrame {
                        generation: snap.generation,
                        entries: Vec::new(),
                    });
                }
                false
            }
        };
        inner.next = snap.next;
        inner.stats = snap.stats;
        incremental
    }

    /// Forces every subsequent restore down the full `clone_from` path and
    /// stops journaling (benchmark baseline / diagnostics knob).
    pub fn set_force_full_restore(&self, on: bool) {
        let mut inner = self.inner.lock();
        inner.force_full_restore = on;
        if on {
            inner.frames.clear();
        }
    }

    /// Armed undo-frame count (diagnostics).
    pub fn journal_depth(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Live-state digest, byte-identical to [`KmemSnapshot::digest`] of a
    /// snapshot taken at this instant — without cloning the object map.
    pub fn digest_live(&self, out: &mut String) {
        let inner = self.inner.lock();
        digest_state(out, inner.next, inner.objects.values());
    }

    /// Allocator counters.
    pub fn stats(&self) -> KmemStats {
        let inner = self.inner.lock();
        inner.stats
    }

    /// Number of live (non-freed) objects, for leak-style diagnostics.
    pub fn live_objects(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .objects
            .values()
            .filter(|o| o.state == AllocState::Allocated)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let k = Kmem::new();
        let a = k.kzalloc(24, "a");
        let b = k.kzalloc(100, "b");
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 24 + REDZONE);
    }

    #[test]
    fn in_bounds_access_passes() {
        let k = Kmem::new();
        let a = k.kzalloc(32, "obj");
        assert!(k.check_access(a, 8, false, "f").is_ok());
        assert!(k.check_access(a + 24, 8, true, "f").is_ok());
    }

    #[test]
    fn null_guard_faults() {
        let k = Kmem::new();
        let fault = k.check_access(0, 8, false, "pipe_read").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::NullDeref { write: false }));
        let fault = k.check_access(0x40, 8, true, "fput").unwrap_err();
        assert_eq!(
            fault.title(),
            "KASAN: null-ptr-deref Write in fput",
            "matches the paper's Bug #10 title"
        );
    }

    #[test]
    fn oob_detected_in_redzone() {
        let k = Kmem::new();
        let a = k.kzalloc(32, "obj");
        let fault = k
            .check_access(a + 32, 8, false, "rds_loop_xmit")
            .unwrap_err();
        assert!(matches!(fault.kind, FaultKind::OutOfBounds { .. }));
        assert_eq!(
            fault.title(),
            "KASAN: slab-out-of-bounds Read in rds_loop_xmit",
            "matches the paper's Bug #1 title"
        );
    }

    #[test]
    fn straddling_end_is_oob() {
        let k = Kmem::new();
        let a = k.kzalloc(12, "obj");
        // Bytes [8, 16) extend past the 12-byte object.
        assert!(k.check_access(a + 8, 8, false, "f").is_err());
    }

    #[test]
    fn uaf_detected_after_free() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "obj");
        k.kfree(a, "kfree").unwrap();
        let fault = k.check_access(a, 8, false, "reader").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::UseAfterFree { .. }));
    }

    #[test]
    fn double_free_detected() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "obj");
        k.kfree(a, "kfree").unwrap();
        let fault = k.kfree(a, "kfree").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::DoubleFree { .. }));
    }

    #[test]
    fn kfree_null_is_noop() {
        let k = Kmem::new();
        assert!(k.kfree(0, "kfree").is_ok());
    }

    #[test]
    fn wild_access_is_gpf() {
        let k = Kmem::new();
        let fault = k
            .check_access(0xdead_0000, 8, false, "add_wait_queue")
            .unwrap_err();
        assert!(matches!(fault.kind, FaultKind::Wild { .. }));
        assert_eq!(
            fault.title(),
            "general protection fault in add_wait_queue",
            "matches the paper's Bug #3 title"
        );
    }

    #[test]
    fn addresses_never_reused() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "a");
        k.kfree(a, "kfree").unwrap();
        let b = k.kzalloc(16, "b");
        assert_ne!(a, b, "quarantine forbids address reuse");
    }

    fn live_digest(k: &Kmem) -> String {
        let mut out = String::new();
        k.digest_live(&mut out);
        out
    }

    #[test]
    fn incremental_restore_rolls_back_allocs_and_frees() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "kept");
        let snap = k.snapshot();
        let mut before = String::new();
        snap.digest(&mut before);
        assert_eq!(live_digest(&k), before, "live digest matches snapshot");
        let _b = k.kzalloc(32, "rolled-back");
        k.kfree(a, "kfree").unwrap();
        assert!(k.restore(&snap), "incremental path taken");
        assert_eq!(live_digest(&k), before);
        assert_eq!(k.live_objects(), 1);
        // Frame stays armed: restore-after-restore is incremental too.
        let _c = k.kzalloc(8, "again");
        assert!(k.restore(&snap));
        assert_eq!(live_digest(&k), before);
    }

    #[test]
    fn unarmed_generation_falls_back_to_full_then_rearms() {
        let a = Kmem::new();
        a.kzalloc(16, "obj");
        let snap = a.snapshot();
        let b = Kmem::new();
        assert!(!b.restore(&snap), "cross-machine restore is a fallback");
        let mut d = String::new();
        snap.digest(&mut d);
        assert_eq!(live_digest(&b), d);
        // Re-armed at the restored generation.
        b.kzalloc(64, "extra");
        assert!(b.restore(&snap), "re-armed restore is incremental");
        assert_eq!(live_digest(&b), d);
    }

    #[test]
    fn force_full_restore_disarms_journal() {
        let k = Kmem::new();
        k.set_force_full_restore(true);
        let snap = k.snapshot();
        assert_eq!(k.journal_depth(), 0);
        k.kzalloc(16, "x");
        assert!(!k.restore(&snap));
        assert_eq!(k.journal_depth(), 0, "forced restore does not re-arm");
    }

    #[test]
    fn object_lookup_and_stats() {
        let k = Kmem::new();
        let a = k.kzalloc(16, "tls_context");
        let obj = k.object_at(a + 8).expect("found");
        assert_eq!(obj.tag, "tls_context");
        assert_eq!(k.live_objects(), 1);
        k.kfree(a, "kfree").unwrap();
        assert_eq!(k.live_objects(), 0);
        let s = k.stats();
        assert_eq!((s.allocs, s.frees), (1, 1));
    }
}
