//! Simulated kernel memory management and bug-detecting oracles.
//!
//! The paper's central argument for *in-vivo* emulation (§3) is that
//! reordering memory accesses while the kernel is running lets a testing
//! tool use the kernel's own runtime context — the list of freed objects,
//! the set of held locks — and therefore its deployed bug-detecting oracles
//! (KASAN, lockdep, oops handlers). This crate provides those runtime
//! contexts for the simulated kernel:
//!
//! - [`Kmem`]: a slab-style allocator over the simulated address space with
//!   redzones and a free-quarantine, so out-of-bounds and use-after-free
//!   accesses are detectable exactly when they happen (the KASAN analog);
//! - [`FnRegistry`]: a function-pointer registry that turns indirect calls
//!   through corrupted or uninitialised pointers into faults (the oops/GPF
//!   analog);
//! - [`Lockdep`]: a lock-ordering oracle detecting inversion cycles;
//! - [`OracleSink`]: the crash-report collector the fuzzer harvests,
//!   producing titles in the same format as the paper's Table 3.

mod alloc;
mod fnreg;
mod lockdep;
mod report;

pub use alloc::{
    AllocState, Kmem, KmemSnapshot, KmemStats, Object, HEAP_BASE, NULL_GUARD, REDZONE,
};
pub use fnreg::{FnRegistry, FnRegistrySnapshot, FN_BASE, FN_LIMIT};
pub use lockdep::{LockId, Lockdep, LockdepSnapshot};
pub use report::{CrashReport, Fault, FaultKind, OracleSink, SinkSnapshot};
