//! Lockdep: runtime lock-ordering oracle.
//!
//! A minimal analog of the kernel's lockdep validator (one of the
//! bug-detecting oracles the paper's §4.4 plugs into): it records the
//! "acquired-while-holding" edges between lock classes and reports a fault
//! when a new acquisition would close a cycle — the signature of a
//! potential ABBA deadlock.

use std::collections::{HashMap, HashSet};

use kutil::sync::Mutex;
use oemu::Tid;

use crate::report::{Fault, FaultKind};

/// Identifier of a lock class.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LockId(pub u64);

#[derive(Default)]
struct Inner {
    /// Lock classes currently held, per thread, in acquisition order.
    held: HashMap<Tid, Vec<LockId>>,
    /// Recorded ordering edges: (earlier, later).
    edges: HashSet<(LockId, LockId)>,
    /// Armed undo frames, oldest first — one per live snapshot.
    frames: Vec<LockdepFrame>,
    force_full_restore: bool,
}

/// One undo frame. Edges are only ever *inserted* between snapshots, so
/// rollback removes exactly the edges recorded as newly inserted (in
/// reverse); the held map is tiny and mutated on nearly every acquisition,
/// so it is flag-tracked and `clone_from`d on a dirty rollback instead.
struct LockdepFrame {
    generation: u64,
    edges_added: Vec<(LockId, LockId)>,
    held_dirty: bool,
}

/// Deepest snapshot nesting tracked; mirrors the engine's frame cap.
const MAX_FRAMES: usize = 8;

/// The lock-ordering oracle.
#[derive(Default)]
pub struct Lockdep {
    inner: Mutex<Inner>,
}

/// A full copy of the oracle's state: held locks and learned ordering
/// edges. Restoring the boot snapshot forgets every edge a test run
/// taught the oracle, so a reset machine rediscovers inversions exactly
/// as a fresh boot would.
#[derive(Clone)]
pub struct LockdepSnapshot {
    held: HashMap<Tid, Vec<LockId>>,
    edges: HashSet<(LockId, LockId)>,
    /// Undo-journal generation id; not part of the digest.
    generation: u64,
}

impl LockdepSnapshot {
    /// Appends a deterministic rendering of the captured state to `out`
    /// (hash containers are sorted first).
    pub fn digest(&self, out: &mut String) {
        digest_state(out, &self.held, &self.edges);
    }

    /// The snapshot's undo-journal generation id.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The one rendering of oracle state both digests share: a snapshot's
/// [`LockdepSnapshot::digest`] and the live [`Lockdep::digest_live`] must
/// be byte-identical for the same state.
fn digest_state(
    out: &mut String,
    held: &HashMap<Tid, Vec<LockId>>,
    edges: &HashSet<(LockId, LockId)>,
) {
    use std::fmt::Write;
    let mut held: Vec<_> = held.iter().map(|(t, l)| (t.0, l)).collect();
    held.sort_unstable();
    for (tid, locks) in held {
        writeln!(out, "lockdep held tid={tid} {locks:?}").unwrap();
    }
    let mut edges: Vec<_> = edges.iter().collect();
    edges.sort_unstable();
    writeln!(out, "lockdep edges {edges:?}").unwrap();
}

impl Lockdep {
    /// Captures the oracle's full state and arms an undo frame under the
    /// snapshot's fresh generation id.
    pub fn snapshot(&self) -> LockdepSnapshot {
        let mut inner = self.inner.lock();
        let generation = kutil::next_generation();
        if !inner.force_full_restore {
            if inner.frames.len() == MAX_FRAMES {
                inner.frames.remove(0);
            }
            inner.frames.push(LockdepFrame {
                generation,
                edges_added: Vec::new(),
                held_dirty: false,
            });
        }
        LockdepSnapshot {
            held: inner.held.clone(),
            edges: inner.edges.clone(),
            generation,
        }
    }

    /// Restores a previously captured state. When the snapshot's generation
    /// is armed, the newly learned edges are removed in reverse and the
    /// held map `clone_from`s only if some rolled-back frame dirtied it;
    /// otherwise both containers `clone_from` and the journal is re-armed
    /// at the restored generation. Returns `true` when the incremental path
    /// was taken.
    pub fn restore(&self, snap: &LockdepSnapshot) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let armed = (!inner.force_full_restore)
            .then(|| {
                inner
                    .frames
                    .iter()
                    .position(|f| f.generation == snap.generation)
            })
            .flatten();
        match armed {
            Some(k) => {
                let mut held_dirty = false;
                while inner.frames.len() > k + 1 {
                    let frame = inner.frames.pop().expect("len > k+1");
                    held_dirty |= frame.held_dirty;
                    for edge in frame.edges_added.into_iter().rev() {
                        inner.edges.remove(&edge);
                    }
                }
                let top = &mut inner.frames[k];
                held_dirty |= top.held_dirty;
                top.held_dirty = false;
                for edge in std::mem::take(&mut top.edges_added).into_iter().rev() {
                    inner.edges.remove(&edge);
                }
                if held_dirty {
                    inner.held.clone_from(&snap.held);
                }
                true
            }
            None => {
                inner.held.clone_from(&snap.held);
                inner.edges.clone_from(&snap.edges);
                inner.frames.clear();
                if !inner.force_full_restore {
                    inner.frames.push(LockdepFrame {
                        generation: snap.generation,
                        edges_added: Vec::new(),
                        held_dirty: false,
                    });
                }
                false
            }
        }
    }

    /// Forces every subsequent restore down the full `clone_from` path
    /// (benchmark baseline / diagnostics knob).
    pub fn set_force_full_restore(&self, on: bool) {
        let mut inner = self.inner.lock();
        inner.force_full_restore = on;
        if on {
            inner.frames.clear();
        }
    }

    /// Live-state digest, byte-identical to [`LockdepSnapshot::digest`] of
    /// a snapshot taken at this instant — without cloning the containers.
    pub fn digest_live(&self, out: &mut String) {
        let inner = self.inner.lock();
        digest_state(out, &inner.held, &inner.edges);
    }

    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records acquisition of `lock` by `tid`; reports a fault when the new
    /// ordering edge closes a cycle with previously observed edges.
    pub fn acquire(&self, tid: Tid, lock: LockId, in_fn: &'static str) -> Result<(), Fault> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        // Even a faulting acquire may have inserted the thread's (empty)
        // held entry just below, which is digest-visible state.
        if let Some(frame) = inner.frames.last_mut() {
            frame.held_dirty = true;
        }
        let held = inner.held.entry(tid).or_default().clone();
        for &h in &held {
            if h == lock {
                return Err(Fault {
                    kind: FaultKind::LockInversion {
                        cycle: format!("recursive acquisition of lock {:#x}", lock.0),
                    },
                    addr: lock.0,
                    in_fn,
                });
            }
            if Self::reachable(&inner.edges, lock, h) {
                return Err(Fault {
                    kind: FaultKind::LockInversion {
                        cycle: format!("{:#x} -> {:#x} closes a cycle", h.0, lock.0),
                    },
                    addr: lock.0,
                    in_fn,
                });
            }
        }
        for &h in &held {
            if inner.edges.insert((h, lock)) {
                // Only *newly* learned edges need undoing on rollback.
                if let Some(frame) = inner.frames.last_mut() {
                    frame.edges_added.push((h, lock));
                }
            }
        }
        inner.held.get_mut(&tid).expect("created above").push(lock);
        Ok(())
    }

    /// Records release of `lock` by `tid`.
    pub fn release(&self, tid: Tid, lock: LockId) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(held) = inner.held.get_mut(&tid) {
            if let Some(pos) = held.iter().rposition(|&l| l == lock) {
                held.remove(pos);
                if let Some(frame) = inner.frames.last_mut() {
                    frame.held_dirty = true;
                }
            }
        }
    }

    /// Lock classes currently held by `tid` (diagnostics / syscall-exit
    /// leak checking).
    pub fn held_by(&self, tid: Tid) -> Vec<LockId> {
        self.inner
            .lock()
            .held
            .get(&tid)
            .cloned()
            .unwrap_or_default()
    }

    /// Depth-first reachability over recorded edges.
    fn reachable(edges: &HashSet<(LockId, LockId)>, from: LockId, to: LockId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            for &(a, b) in edges {
                if a == node {
                    if b == to {
                        return true;
                    }
                    stack.push(b);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LockId = LockId(1);
    const B: LockId = LockId(2);
    const C: LockId = LockId(3);

    #[test]
    fn consistent_order_is_fine() {
        let ld = Lockdep::new();
        for _ in 0..3 {
            ld.acquire(Tid(0), A, "f").unwrap();
            ld.acquire(Tid(0), B, "f").unwrap();
            ld.release(Tid(0), B);
            ld.release(Tid(0), A);
        }
    }

    #[test]
    fn abba_inversion_detected() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        ld.acquire(Tid(0), B, "f").unwrap();
        ld.release(Tid(0), B);
        ld.release(Tid(0), A);
        ld.acquire(Tid(1), B, "g").unwrap();
        let fault = ld.acquire(Tid(1), A, "g").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::LockInversion { .. }));
    }

    #[test]
    fn transitive_cycle_detected() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        ld.acquire(Tid(0), B, "f").unwrap();
        ld.release(Tid(0), B);
        ld.release(Tid(0), A);
        ld.acquire(Tid(0), B, "f").unwrap();
        ld.acquire(Tid(0), C, "f").unwrap();
        ld.release(Tid(0), C);
        ld.release(Tid(0), B);
        ld.acquire(Tid(1), C, "g").unwrap();
        assert!(ld.acquire(Tid(1), A, "g").is_err());
    }

    #[test]
    fn recursive_acquisition_detected() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        assert!(ld.acquire(Tid(0), A, "f").is_err());
    }

    #[test]
    fn held_by_tracks_state() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        assert_eq!(ld.held_by(Tid(0)), vec![A]);
        ld.release(Tid(0), A);
        assert!(ld.held_by(Tid(0)).is_empty());
    }

    fn live_digest(ld: &Lockdep) -> String {
        let mut out = String::new();
        ld.digest_live(&mut out);
        out
    }

    #[test]
    fn incremental_restore_forgets_learned_edges() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        ld.acquire(Tid(0), B, "f").unwrap(); // boot learns A -> B
        ld.release(Tid(0), B);
        ld.release(Tid(0), A);
        let snap = ld.snapshot();
        let mut before = String::new();
        snap.digest(&mut before);
        assert_eq!(live_digest(&ld), before);
        // A test run learns B -> C and leaves a lock held.
        ld.acquire(Tid(1), B, "g").unwrap();
        ld.acquire(Tid(1), C, "g").unwrap();
        assert!(ld.restore(&snap), "incremental path taken");
        assert_eq!(live_digest(&ld), before);
        // The rolled-back machine rediscovers inversions like a fresh boot:
        // B -> A is fine again only if A -> B persisted — it did (pre-snap).
        ld.acquire(Tid(0), B, "h").unwrap();
        assert!(ld.acquire(Tid(0), A, "h").is_err(), "A->B edge survived");
    }

    #[test]
    fn re_learned_edge_is_not_unlearned_by_rollback() {
        // An edge that already existed at snapshot time and is re-inserted
        // afterwards must survive the rollback (insert() returning false
        // keeps it out of the frame's undo list).
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        ld.acquire(Tid(0), B, "f").unwrap();
        ld.release(Tid(0), B);
        ld.release(Tid(0), A);
        let snap = ld.snapshot();
        let mut before = String::new();
        snap.digest(&mut before);
        ld.acquire(Tid(0), A, "f").unwrap();
        ld.acquire(Tid(0), B, "f").unwrap(); // re-learns A -> B
        ld.release(Tid(0), B);
        ld.release(Tid(0), A);
        assert!(ld.restore(&snap));
        assert_eq!(live_digest(&ld), before);
    }

    #[test]
    fn cross_machine_restore_falls_back_to_full() {
        let a = Lockdep::new();
        a.acquire(Tid(0), A, "f").unwrap();
        let snap = a.snapshot();
        let b = Lockdep::new();
        assert!(!b.restore(&snap));
        let mut d = String::new();
        snap.digest(&mut d);
        assert_eq!(live_digest(&b), d);
        b.acquire(Tid(1), C, "g").unwrap();
        assert!(b.restore(&snap), "re-armed after fallback");
        assert_eq!(live_digest(&b), d);
    }
}
