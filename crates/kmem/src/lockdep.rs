//! Lockdep: runtime lock-ordering oracle.
//!
//! A minimal analog of the kernel's lockdep validator (one of the
//! bug-detecting oracles the paper's §4.4 plugs into): it records the
//! "acquired-while-holding" edges between lock classes and reports a fault
//! when a new acquisition would close a cycle — the signature of a
//! potential ABBA deadlock.

use std::collections::{HashMap, HashSet};

use kutil::sync::Mutex;
use oemu::Tid;

use crate::report::{Fault, FaultKind};

/// Identifier of a lock class.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LockId(pub u64);

#[derive(Default)]
struct Inner {
    /// Lock classes currently held, per thread, in acquisition order.
    held: HashMap<Tid, Vec<LockId>>,
    /// Recorded ordering edges: (earlier, later).
    edges: HashSet<(LockId, LockId)>,
}

/// The lock-ordering oracle.
#[derive(Default)]
pub struct Lockdep {
    inner: Mutex<Inner>,
}

/// A full copy of the oracle's state: held locks and learned ordering
/// edges. Restoring the boot snapshot forgets every edge a test run
/// taught the oracle, so a reset machine rediscovers inversions exactly
/// as a fresh boot would.
#[derive(Clone)]
pub struct LockdepSnapshot {
    held: HashMap<Tid, Vec<LockId>>,
    edges: HashSet<(LockId, LockId)>,
}

impl LockdepSnapshot {
    /// Appends a deterministic rendering of the captured state to `out`
    /// (hash containers are sorted first).
    pub fn digest(&self, out: &mut String) {
        use std::fmt::Write;
        let mut held: Vec<_> = self.held.iter().map(|(t, l)| (t.0, l)).collect();
        held.sort_unstable();
        for (tid, locks) in held {
            writeln!(out, "lockdep held tid={tid} {locks:?}").unwrap();
        }
        let mut edges: Vec<_> = self.edges.iter().collect();
        edges.sort_unstable();
        writeln!(out, "lockdep edges {edges:?}").unwrap();
    }
}

impl Lockdep {
    /// Captures the oracle's full state.
    pub fn snapshot(&self) -> LockdepSnapshot {
        let inner = self.inner.lock();
        LockdepSnapshot {
            held: inner.held.clone(),
            edges: inner.edges.clone(),
        }
    }

    /// Restores a previously captured state.
    pub fn restore(&self, snap: &LockdepSnapshot) {
        let mut inner = self.inner.lock();
        inner.held.clone_from(&snap.held);
        inner.edges.clone_from(&snap.edges);
    }

    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records acquisition of `lock` by `tid`; reports a fault when the new
    /// ordering edge closes a cycle with previously observed edges.
    pub fn acquire(&self, tid: Tid, lock: LockId, in_fn: &'static str) -> Result<(), Fault> {
        let mut inner = self.inner.lock();
        let held = inner.held.entry(tid).or_default().clone();
        for &h in &held {
            if h == lock {
                return Err(Fault {
                    kind: FaultKind::LockInversion {
                        cycle: format!("recursive acquisition of lock {:#x}", lock.0),
                    },
                    addr: lock.0,
                    in_fn,
                });
            }
            if Self::reachable(&inner.edges, lock, h) {
                return Err(Fault {
                    kind: FaultKind::LockInversion {
                        cycle: format!("{:#x} -> {:#x} closes a cycle", h.0, lock.0),
                    },
                    addr: lock.0,
                    in_fn,
                });
            }
        }
        for &h in &held {
            inner.edges.insert((h, lock));
        }
        inner.held.get_mut(&tid).expect("created above").push(lock);
        Ok(())
    }

    /// Records release of `lock` by `tid`.
    pub fn release(&self, tid: Tid, lock: LockId) {
        let mut inner = self.inner.lock();
        if let Some(held) = inner.held.get_mut(&tid) {
            if let Some(pos) = held.iter().rposition(|&l| l == lock) {
                held.remove(pos);
            }
        }
    }

    /// Lock classes currently held by `tid` (diagnostics / syscall-exit
    /// leak checking).
    pub fn held_by(&self, tid: Tid) -> Vec<LockId> {
        self.inner
            .lock()
            .held
            .get(&tid)
            .cloned()
            .unwrap_or_default()
    }

    /// Depth-first reachability over recorded edges.
    fn reachable(edges: &HashSet<(LockId, LockId)>, from: LockId, to: LockId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            for &(a, b) in edges {
                if a == node {
                    if b == to {
                        return true;
                    }
                    stack.push(b);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LockId = LockId(1);
    const B: LockId = LockId(2);
    const C: LockId = LockId(3);

    #[test]
    fn consistent_order_is_fine() {
        let ld = Lockdep::new();
        for _ in 0..3 {
            ld.acquire(Tid(0), A, "f").unwrap();
            ld.acquire(Tid(0), B, "f").unwrap();
            ld.release(Tid(0), B);
            ld.release(Tid(0), A);
        }
    }

    #[test]
    fn abba_inversion_detected() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        ld.acquire(Tid(0), B, "f").unwrap();
        ld.release(Tid(0), B);
        ld.release(Tid(0), A);
        ld.acquire(Tid(1), B, "g").unwrap();
        let fault = ld.acquire(Tid(1), A, "g").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::LockInversion { .. }));
    }

    #[test]
    fn transitive_cycle_detected() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        ld.acquire(Tid(0), B, "f").unwrap();
        ld.release(Tid(0), B);
        ld.release(Tid(0), A);
        ld.acquire(Tid(0), B, "f").unwrap();
        ld.acquire(Tid(0), C, "f").unwrap();
        ld.release(Tid(0), C);
        ld.release(Tid(0), B);
        ld.acquire(Tid(1), C, "g").unwrap();
        assert!(ld.acquire(Tid(1), A, "g").is_err());
    }

    #[test]
    fn recursive_acquisition_detected() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        assert!(ld.acquire(Tid(0), A, "f").is_err());
    }

    #[test]
    fn held_by_tracks_state() {
        let ld = Lockdep::new();
        ld.acquire(Tid(0), A, "f").unwrap();
        assert_eq!(ld.held_by(Tid(0)), vec![A]);
        ld.release(Tid(0), A);
        assert!(ld.held_by(Tid(0)).is_empty());
    }
}
