//! Function-pointer registry.
//!
//! Most of the paper's Table 3 bugs crash by calling through a function
//! pointer that a reordered publication left uninitialised (`buf->ops` in
//! Figure 1, `ctx->sk_proto` in Figure 7). In the simulated kernel,
//! "function pointers" are addresses in a reserved text segment handed out
//! by this registry; subsystems store them in simulated memory like any
//! other word, and indirect calls validate the target here. A null or
//! garbage target produces the same oops/GPF fault a real kernel would
//! raise.

use std::collections::HashMap;

use kutil::sync::Mutex;

use crate::report::{Fault, FaultKind};

/// Base of the simulated kernel text segment.
pub const FN_BASE: u64 = 0x4000_0000;

/// Exclusive upper bound of the text segment.
pub const FN_LIMIT: u64 = 0x5000_0000;

/// Registry of simulated kernel functions.
#[derive(Default)]
pub struct FnRegistry {
    inner: Mutex<FnRegistryInner>,
}

#[derive(Default)]
struct FnRegistryInner {
    by_addr: HashMap<u64, &'static str>,
    by_name: HashMap<&'static str, u64>,
    next: u64,
}

/// A full copy of the registry's name↔address tables. Registration order
/// decides addresses, so a reset machine must replay the boot-time table
/// exactly for simulated function pointers to stay stable.
#[derive(Clone)]
pub struct FnRegistrySnapshot {
    by_addr: HashMap<u64, &'static str>,
    by_name: HashMap<&'static str, u64>,
    next: u64,
}

impl FnRegistrySnapshot {
    /// Appends a deterministic rendering of the captured table to `out`
    /// (sorted by address).
    pub fn digest(&self, out: &mut String) {
        use std::fmt::Write;
        writeln!(out, "fnreg next={}", self.next).unwrap();
        let mut fns: Vec<_> = self.by_addr.iter().collect();
        fns.sort_unstable();
        for (addr, name) in fns {
            writeln!(out, "fn {addr:#x}={name}").unwrap();
        }
    }
}

impl FnRegistry {
    /// Captures the registry's full state.
    pub fn snapshot(&self) -> FnRegistrySnapshot {
        let inner = self.inner.lock();
        FnRegistrySnapshot {
            by_addr: inner.by_addr.clone(),
            by_name: inner.by_name.clone(),
            next: inner.next,
        }
    }

    /// Restores a previously captured state.
    pub fn restore(&self, snap: &FnRegistrySnapshot) {
        let mut inner = self.inner.lock();
        inner.by_addr.clone_from(&snap.by_addr);
        inner.by_name.clone_from(&snap.by_name);
        inner.next = snap.next;
    }

    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a function by name and returns its simulated
    /// text address. Idempotent: the same name always maps to the same
    /// address within one registry.
    pub fn register(&self, name: &'static str) -> u64 {
        let mut inner = self.inner.lock();
        if let Some(&addr) = inner.by_name.get(name) {
            return addr;
        }
        let addr = FN_BASE + inner.next * 16;
        inner.next += 1;
        assert!(addr < FN_LIMIT, "simulated text segment exhausted");
        inner.by_addr.insert(addr, name);
        inner.by_name.insert(name, addr);
        addr
    }

    /// Resolves an indirect call target to a function name.
    ///
    /// A zero target is the uninitialised-ops-table crash of Figures 1
    /// and 7; any other unregistered target is a general protection fault.
    pub fn resolve(&self, target: u64, in_fn: &'static str) -> Result<&'static str, Fault> {
        if target == 0 {
            return Err(Fault {
                kind: FaultKind::NullFnCall,
                addr: 0,
                in_fn,
            });
        }
        let inner = self.inner.lock();
        inner.by_addr.get(&target).copied().ok_or(Fault {
            kind: FaultKind::WildFnCall { target },
            addr: target,
            in_fn,
        })
    }

    /// Address previously registered for `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.inner.lock().by_name.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let reg = FnRegistry::new();
        let a = reg.register("tls_setsockopt");
        let b = reg.register("tls_setsockopt");
        assert_eq!(a, b);
        assert!(a >= FN_BASE && a < FN_LIMIT);
    }

    #[test]
    fn resolve_roundtrip() {
        let reg = FnRegistry::new();
        let a = reg.register("pipe_buf_confirm");
        assert_eq!(reg.resolve(a, "pipe_read").unwrap(), "pipe_buf_confirm");
        assert_eq!(reg.lookup("pipe_buf_confirm"), Some(a));
    }

    #[test]
    fn null_call_is_null_deref() {
        let reg = FnRegistry::new();
        let fault = reg.resolve(0, "pipe_read").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::NullFnCall));
        assert_eq!(
            fault.title(),
            "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
        );
    }

    #[test]
    fn wild_call_is_gpf() {
        let reg = FnRegistry::new();
        let fault = reg.resolve(0x1234_5678, "smc_connect").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::WildFnCall { .. }));
    }

    #[test]
    fn distinct_names_distinct_addrs() {
        let reg = FnRegistry::new();
        assert_ne!(reg.register("a"), reg.register("b"));
    }
}
