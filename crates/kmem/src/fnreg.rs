//! Function-pointer registry.
//!
//! Most of the paper's Table 3 bugs crash by calling through a function
//! pointer that a reordered publication left uninitialised (`buf->ops` in
//! Figure 1, `ctx->sk_proto` in Figure 7). In the simulated kernel,
//! "function pointers" are addresses in a reserved text segment handed out
//! by this registry; subsystems store them in simulated memory like any
//! other word, and indirect calls validate the target here. A null or
//! garbage target produces the same oops/GPF fault a real kernel would
//! raise.

use std::collections::HashMap;

use kutil::sync::Mutex;

use crate::report::{Fault, FaultKind};

/// Base of the simulated kernel text segment.
pub const FN_BASE: u64 = 0x4000_0000;

/// Exclusive upper bound of the text segment.
pub const FN_LIMIT: u64 = 0x5000_0000;

/// Registry of simulated kernel functions.
#[derive(Default)]
pub struct FnRegistry {
    inner: Mutex<FnRegistryInner>,
}

#[derive(Default)]
struct FnRegistryInner {
    by_addr: HashMap<u64, &'static str>,
    by_name: HashMap<&'static str, u64>,
    next: u64,
    /// Armed undo frames, oldest first. Registration is append-only
    /// (addresses are `FN_BASE + index * 16`, never removed), so a frame
    /// only needs the `next` counter at its push: rollback removes the
    /// registrations `base..next` and nothing can ever invalidate a frame.
    frames: Vec<FnFrame>,
    force_full_restore: bool,
}

struct FnFrame {
    generation: u64,
    next: u64,
}

/// Deepest snapshot nesting tracked; mirrors the engine's frame cap.
const MAX_FRAMES: usize = 8;

/// A full copy of the registry's name↔address tables. Registration order
/// decides addresses, so a reset machine must replay the boot-time table
/// exactly for simulated function pointers to stay stable.
#[derive(Clone)]
pub struct FnRegistrySnapshot {
    by_addr: HashMap<u64, &'static str>,
    by_name: HashMap<&'static str, u64>,
    next: u64,
    /// Undo-journal generation id; not part of the digest.
    generation: u64,
}

impl FnRegistrySnapshot {
    /// Appends a deterministic rendering of the captured table to `out`
    /// (sorted by address).
    pub fn digest(&self, out: &mut String) {
        digest_state(out, self.next, &self.by_addr);
    }

    /// The snapshot's undo-journal generation id.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The one rendering of registry state both digests share: a snapshot's
/// [`FnRegistrySnapshot::digest`] and the live [`FnRegistry::digest_live`]
/// must be byte-identical for the same state.
fn digest_state(out: &mut String, next: u64, by_addr: &HashMap<u64, &'static str>) {
    use std::fmt::Write;
    writeln!(out, "fnreg next={next}").unwrap();
    let mut fns: Vec<_> = by_addr.iter().collect();
    fns.sort_unstable();
    for (addr, name) in fns {
        writeln!(out, "fn {addr:#x}={name}").unwrap();
    }
}

impl FnRegistry {
    /// Captures the registry's full state and arms an undo frame under the
    /// snapshot's fresh generation id.
    pub fn snapshot(&self) -> FnRegistrySnapshot {
        let mut inner = self.inner.lock();
        let generation = kutil::next_generation();
        if !inner.force_full_restore {
            if inner.frames.len() == MAX_FRAMES {
                inner.frames.remove(0);
            }
            let next = inner.next;
            inner.frames.push(FnFrame { generation, next });
        }
        FnRegistrySnapshot {
            by_addr: inner.by_addr.clone(),
            by_name: inner.by_name.clone(),
            next: inner.next,
            generation,
        }
    }

    /// Restores a previously captured state. When the snapshot's generation
    /// is armed, only the registrations made since it are removed (their
    /// addresses are exactly `FN_BASE + idx * 16` for `idx` in
    /// `frame.next..next`); otherwise both tables `clone_from` and the
    /// journal is re-armed at the restored generation. Returns `true` when
    /// the incremental path was taken.
    pub fn restore(&self, snap: &FnRegistrySnapshot) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let armed = (!inner.force_full_restore)
            .then(|| {
                inner
                    .frames
                    .iter()
                    .position(|f| f.generation == snap.generation)
            })
            .flatten();
        match armed {
            Some(k) => {
                debug_assert_eq!(inner.frames[k].next, snap.next);
                for idx in inner.frames[k].next..inner.next {
                    let addr = FN_BASE + idx * 16;
                    let name = inner
                        .by_addr
                        .remove(&addr)
                        .expect("append-only table holds every index below next");
                    inner.by_name.remove(name);
                }
                inner.next = snap.next;
                inner.frames.truncate(k + 1);
                true
            }
            None => {
                inner.by_addr.clone_from(&snap.by_addr);
                inner.by_name.clone_from(&snap.by_name);
                inner.next = snap.next;
                inner.frames.clear();
                if !inner.force_full_restore {
                    inner.frames.push(FnFrame {
                        generation: snap.generation,
                        next: snap.next,
                    });
                }
                false
            }
        }
    }

    /// Forces every subsequent restore down the full `clone_from` path
    /// (benchmark baseline / diagnostics knob).
    pub fn set_force_full_restore(&self, on: bool) {
        let mut inner = self.inner.lock();
        inner.force_full_restore = on;
        if on {
            inner.frames.clear();
        }
    }

    /// Live-state digest, byte-identical to [`FnRegistrySnapshot::digest`]
    /// of a snapshot taken at this instant — without cloning the tables.
    pub fn digest_live(&self, out: &mut String) {
        let inner = self.inner.lock();
        digest_state(out, inner.next, &inner.by_addr);
    }

    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a function by name and returns its simulated
    /// text address. Idempotent: the same name always maps to the same
    /// address within one registry.
    pub fn register(&self, name: &'static str) -> u64 {
        let mut inner = self.inner.lock();
        if let Some(&addr) = inner.by_name.get(name) {
            return addr;
        }
        let addr = FN_BASE + inner.next * 16;
        inner.next += 1;
        assert!(addr < FN_LIMIT, "simulated text segment exhausted");
        inner.by_addr.insert(addr, name);
        inner.by_name.insert(name, addr);
        addr
    }

    /// Resolves an indirect call target to a function name.
    ///
    /// A zero target is the uninitialised-ops-table crash of Figures 1
    /// and 7; any other unregistered target is a general protection fault.
    pub fn resolve(&self, target: u64, in_fn: &'static str) -> Result<&'static str, Fault> {
        if target == 0 {
            return Err(Fault {
                kind: FaultKind::NullFnCall,
                addr: 0,
                in_fn,
            });
        }
        let inner = self.inner.lock();
        inner.by_addr.get(&target).copied().ok_or(Fault {
            kind: FaultKind::WildFnCall { target },
            addr: target,
            in_fn,
        })
    }

    /// Address previously registered for `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.inner.lock().by_name.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let reg = FnRegistry::new();
        let a = reg.register("tls_setsockopt");
        let b = reg.register("tls_setsockopt");
        assert_eq!(a, b);
        assert!(a >= FN_BASE && a < FN_LIMIT);
    }

    #[test]
    fn resolve_roundtrip() {
        let reg = FnRegistry::new();
        let a = reg.register("pipe_buf_confirm");
        assert_eq!(reg.resolve(a, "pipe_read").unwrap(), "pipe_buf_confirm");
        assert_eq!(reg.lookup("pipe_buf_confirm"), Some(a));
    }

    #[test]
    fn null_call_is_null_deref() {
        let reg = FnRegistry::new();
        let fault = reg.resolve(0, "pipe_read").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::NullFnCall));
        assert_eq!(
            fault.title(),
            "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
        );
    }

    #[test]
    fn wild_call_is_gpf() {
        let reg = FnRegistry::new();
        let fault = reg.resolve(0x1234_5678, "smc_connect").unwrap_err();
        assert!(matches!(fault.kind, FaultKind::WildFnCall { .. }));
    }

    #[test]
    fn distinct_names_distinct_addrs() {
        let reg = FnRegistry::new();
        assert_ne!(reg.register("a"), reg.register("b"));
    }

    fn live_digest(reg: &FnRegistry) -> String {
        let mut out = String::new();
        reg.digest_live(&mut out);
        out
    }

    #[test]
    fn incremental_restore_unregisters_exactly() {
        let reg = FnRegistry::new();
        reg.register("boot_fn");
        let snap = reg.snapshot();
        let mut before = String::new();
        snap.digest(&mut before);
        assert_eq!(live_digest(&reg), before);
        reg.register("test_fn_a");
        reg.register("test_fn_b");
        assert!(reg.restore(&snap), "incremental path taken");
        assert_eq!(live_digest(&reg), before);
        assert_eq!(reg.lookup("test_fn_a"), None);
        assert_eq!(reg.lookup("boot_fn"), snap_lookup(&reg, "boot_fn"));
        // Re-registering after rollback hands out the same address again.
        let a1 = reg.register("test_fn_a");
        assert!(reg.restore(&snap));
        assert_eq!(reg.register("test_fn_a"), a1);
    }

    fn snap_lookup(reg: &FnRegistry, name: &str) -> Option<u64> {
        reg.lookup(name)
    }

    #[test]
    fn cross_registry_restore_falls_back_to_full() {
        let a = FnRegistry::new();
        a.register("f");
        let snap = a.snapshot();
        let b = FnRegistry::new();
        assert!(!b.restore(&snap));
        let mut d = String::new();
        snap.digest(&mut d);
        assert_eq!(live_digest(&b), d);
        b.register("g");
        assert!(b.restore(&snap), "re-armed after fallback");
        assert_eq!(live_digest(&b), d);
    }
}
