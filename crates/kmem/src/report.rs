//! Faults and crash reports.
//!
//! When an oracle detects a kernel malfunction it produces a [`Fault`]; the
//! runtime turns the fault into a [`CrashReport`] whose title matches the
//! formats the paper's Table 3 lists (`BUG: unable to handle kernel NULL
//! pointer dereference in ...`, `KASAN: slab-out-of-bounds Read in ...`,
//! `general protection fault in ...`), and raises a simulated kernel oops.
//! The [`OracleSink`] is the per-machine collector the fuzzer harvests and
//! deduplicates by title, like Syzkaller's crash triage.

use std::fmt;

use kutil::sync::Mutex;

/// Classification of a detected kernel malfunction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Access inside the null guard page (`addr < NULL_GUARD`).
    NullDeref {
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// An indirect call through a null function pointer — the classic
    /// symptom of reading an unpublished ops table (Figures 1 and 7).
    NullFnCall,
    /// Access within an object's redzone (KASAN slab-out-of-bounds).
    OutOfBounds {
        /// Whether the faulting access was a write.
        write: bool,
        /// Base address of the overflowed object.
        object: u64,
        /// Byte offset past the object end (or negative conceptually for
        /// the front redzone; reported as distance into the redzone).
        overflow: u64,
    },
    /// Access to a freed (quarantined) object (KASAN use-after-free).
    UseAfterFree {
        /// Whether the faulting access was a write.
        write: bool,
        /// Base address of the freed object.
        object: u64,
    },
    /// `kfree` of an already-freed object.
    DoubleFree {
        /// Base address of the object.
        object: u64,
    },
    /// Access to an address backed by no object at all (a general
    /// protection fault in the paper's Table 3 titles).
    Wild {
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// An indirect call to an address that is not a registered function.
    WildFnCall {
        /// The bogus target.
        target: u64,
    },
    /// Lock-order inversion detected by the lockdep oracle.
    LockInversion {
        /// Human-readable cycle description.
        cycle: String,
    },
    /// A kernel `BUG_ON`-style assertion failed.
    AssertFail {
        /// The violated condition.
        what: String,
    },
}

/// A detected malfunction, before report formatting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Faulting simulated address (0 when not address-related).
    pub addr: u64,
    /// Kernel function in which the fault occurred (for the report title).
    pub in_fn: &'static str,
}

impl Fault {
    /// Formats the crash title in the paper's Table 3 style.
    pub fn title(&self) -> String {
        let f = self.in_fn;
        match &self.kind {
            FaultKind::NullDeref { write: false } | FaultKind::NullFnCall => {
                format!("BUG: unable to handle kernel NULL pointer dereference in {f}")
            }
            FaultKind::NullDeref { write: true } => {
                format!("KASAN: null-ptr-deref Write in {f}")
            }
            FaultKind::OutOfBounds { write, .. } => {
                let dir = if *write { "Write" } else { "Read" };
                format!("KASAN: slab-out-of-bounds {dir} in {f}")
            }
            FaultKind::UseAfterFree { write, .. } => {
                let dir = if *write { "Write" } else { "Read" };
                format!("KASAN: use-after-free {dir} in {f}")
            }
            FaultKind::DoubleFree { .. } => format!("KASAN: double-free in {f}"),
            FaultKind::Wild { .. } | FaultKind::WildFnCall { .. } => {
                format!("general protection fault in {f}")
            }
            FaultKind::LockInversion { .. } => {
                format!("possible circular locking dependency detected in {f}")
            }
            FaultKind::AssertFail { what } => format!("kernel BUG at {f}: {what}"),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (addr={:#x})", self.title(), self.addr)
    }
}

/// A formatted crash harvested by the fuzzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashReport {
    /// Dedup key and headline, Table 3 style.
    pub title: String,
    /// The underlying fault.
    pub fault: Fault,
}

impl CrashReport {
    /// Builds a report from a fault.
    pub fn from_fault(fault: Fault) -> Self {
        CrashReport {
            title: fault.title(),
            fault,
        }
    }
}

/// Collector of crash reports for one simulated machine run.
#[derive(Default)]
pub struct OracleSink {
    inner: Mutex<SinkInner>,
}

#[derive(Default)]
struct SinkInner {
    reports: Vec<CrashReport>,
    /// Armed undo frames, oldest first. The report list is append-only
    /// between snapshots except for [`OracleSink::take`], which drains it
    /// wholesale — so a frame records only the list length at its push and
    /// a validity bit that `take` clears for frames with a non-empty
    /// baseline (an empty baseline survives a drain: truncating to zero is
    /// still exact).
    frames: Vec<SinkFrame>,
    force_full_restore: bool,
}

struct SinkFrame {
    generation: u64,
    base_len: usize,
    valid: bool,
}

/// Deepest snapshot nesting tracked; mirrors the engine's frame cap.
const MAX_FRAMES: usize = 8;

/// The sink's captured state plus its undo-journal generation id.
#[derive(Clone)]
pub struct SinkSnapshot {
    reports: Vec<CrashReport>,
    generation: u64,
}

impl SinkSnapshot {
    /// The captured reports (machine digest support).
    pub fn reports(&self) -> &[CrashReport] {
        &self.reports
    }

    /// The snapshot's undo-journal generation id.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl OracleSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a detected fault.
    pub fn record(&self, fault: Fault) {
        self.inner
            .lock()
            .reports
            .push(CrashReport::from_fault(fault));
    }

    /// Takes all reports recorded so far.
    pub fn take(&self) -> Vec<CrashReport> {
        let mut inner = self.inner.lock();
        // Draining destroys every non-empty baseline a frame might need to
        // truncate back to; empty baselines stay trivially intact.
        for frame in &mut inner.frames {
            if frame.base_len > 0 {
                frame.valid = false;
            }
        }
        std::mem::take(&mut inner.reports)
    }

    /// Copies the reports recorded so far without draining them (machine
    /// snapshot support).
    pub fn snapshot(&self) -> Vec<CrashReport> {
        self.inner.lock().reports.clone()
    }

    /// Replaces the recorded reports with a previously captured copy,
    /// reusing the sink's allocation.
    pub fn restore(&self, reports: &[CrashReport]) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.reports.clear();
        inner.reports.extend_from_slice(reports);
    }

    /// Captures the sink's state and arms an undo frame under the
    /// snapshot's fresh generation id.
    pub fn capture(&self) -> SinkSnapshot {
        let mut inner = self.inner.lock();
        let generation = kutil::next_generation();
        if !inner.force_full_restore {
            if inner.frames.len() == MAX_FRAMES {
                inner.frames.remove(0);
            }
            let base_len = inner.reports.len();
            inner.frames.push(SinkFrame {
                generation,
                base_len,
                valid: true,
            });
        }
        SinkSnapshot {
            reports: inner.reports.clone(),
            generation,
        }
    }

    /// Restores a previously captured state. When the snapshot's generation
    /// is armed and its baseline survived (no intervening [`take`] of a
    /// non-empty list), the list merely truncates back; otherwise it is
    /// rebuilt by `clear` + `extend` and the journal re-arms at the
    /// restored generation. Returns `true` when the truncate path was
    /// taken. Either way is cheap — the sink is almost always empty — so
    /// the fallback is *not* a machine-level full restore.
    ///
    /// [`take`]: OracleSink::take
    pub fn restore_from(&self, snap: &SinkSnapshot) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let armed = (!inner.force_full_restore)
            .then(|| {
                inner
                    .frames
                    .iter()
                    .position(|f| f.generation == snap.generation)
            })
            .flatten();
        match armed {
            Some(k) if inner.frames[k].valid && inner.reports.len() >= inner.frames[k].base_len => {
                debug_assert_eq!(inner.frames[k].base_len, snap.reports.len());
                let base = inner.frames[k].base_len;
                inner.reports.truncate(base);
                inner.frames.truncate(k + 1);
                true
            }
            _ => {
                inner.reports.clear();
                inner.reports.extend_from_slice(&snap.reports);
                inner.frames.clear();
                if !inner.force_full_restore {
                    inner.frames.push(SinkFrame {
                        generation: snap.generation,
                        base_len: snap.reports.len(),
                        valid: true,
                    });
                }
                false
            }
        }
    }

    /// Forces every subsequent restore down the rebuild path (benchmark
    /// baseline / diagnostics knob).
    pub fn set_force_full_restore(&self, on: bool) {
        let mut inner = self.inner.lock();
        inner.force_full_restore = on;
        if on {
            inner.frames.clear();
        }
    }

    /// Whether any fault was recorded.
    pub fn has_reports(&self) -> bool {
        !self.inner.lock().reports.is_empty()
    }

    /// Number of reports recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().reports.len()
    }

    /// Whether no report was recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titles_match_table3_formats() {
        let f = |kind| Fault {
            kind,
            addr: 0,
            in_fn: "tls_setsockopt",
        };
        assert_eq!(
            f(FaultKind::NullFnCall).title(),
            "BUG: unable to handle kernel NULL pointer dereference in tls_setsockopt"
        );
        assert_eq!(
            f(FaultKind::NullDeref { write: true }).title(),
            "KASAN: null-ptr-deref Write in tls_setsockopt"
        );
        assert_eq!(
            f(FaultKind::OutOfBounds {
                write: false,
                object: 0,
                overflow: 8
            })
            .title(),
            "KASAN: slab-out-of-bounds Read in tls_setsockopt"
        );
        assert_eq!(
            f(FaultKind::Wild { write: false }).title(),
            "general protection fault in tls_setsockopt"
        );
    }

    fn some_fault() -> Fault {
        Fault {
            kind: FaultKind::DoubleFree { object: 0x100 },
            addr: 0x100,
            in_fn: "kfree",
        }
    }

    #[test]
    fn capture_restore_truncates_when_baseline_intact() {
        let sink = OracleSink::new();
        sink.record(some_fault());
        let snap = sink.capture();
        sink.record(some_fault());
        sink.record(some_fault());
        assert!(sink.restore_from(&snap), "truncate path");
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.snapshot(), snap.reports());
    }

    #[test]
    fn take_invalidates_nonempty_baselines_only() {
        let sink = OracleSink::new();
        let empty = sink.capture();
        sink.record(some_fault());
        let nonempty = sink.capture();
        let _ = sink.take();
        // The non-empty baseline is gone: rebuild path.
        assert!(!sink.restore_from(&nonempty));
        assert_eq!(sink.len(), 1);
        let _ = sink.take();
        // An empty baseline survives a drain: truncate(0) is exact. The
        // restore_from above re-armed only `nonempty`, so restore to the
        // empty snapshot is a (cheap) rebuild too — but restoring to a
        // freshly captured empty one after a take stays valid:
        assert!(!sink.restore_from(&empty));
        assert!(sink.is_empty());
        let empty2 = sink.capture();
        let _ = sink.take();
        assert!(sink.restore_from(&empty2), "empty baseline survives take");
        assert!(sink.is_empty());
    }

    #[test]
    fn sink_collects_and_drains() {
        let sink = OracleSink::new();
        assert!(sink.is_empty());
        sink.record(Fault {
            kind: FaultKind::DoubleFree { object: 0x100 },
            addr: 0x100,
            in_fn: "kfree",
        });
        assert!(sink.has_reports());
        assert_eq!(sink.len(), 1);
        let reports = sink.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].title, "KASAN: double-free in kfree");
        assert!(sink.is_empty());
    }
}
