//! Faults and crash reports.
//!
//! When an oracle detects a kernel malfunction it produces a [`Fault`]; the
//! runtime turns the fault into a [`CrashReport`] whose title matches the
//! formats the paper's Table 3 lists (`BUG: unable to handle kernel NULL
//! pointer dereference in ...`, `KASAN: slab-out-of-bounds Read in ...`,
//! `general protection fault in ...`), and raises a simulated kernel oops.
//! The [`OracleSink`] is the per-machine collector the fuzzer harvests and
//! deduplicates by title, like Syzkaller's crash triage.

use std::fmt;

use kutil::sync::Mutex;

/// Classification of a detected kernel malfunction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Access inside the null guard page (`addr < NULL_GUARD`).
    NullDeref {
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// An indirect call through a null function pointer — the classic
    /// symptom of reading an unpublished ops table (Figures 1 and 7).
    NullFnCall,
    /// Access within an object's redzone (KASAN slab-out-of-bounds).
    OutOfBounds {
        /// Whether the faulting access was a write.
        write: bool,
        /// Base address of the overflowed object.
        object: u64,
        /// Byte offset past the object end (or negative conceptually for
        /// the front redzone; reported as distance into the redzone).
        overflow: u64,
    },
    /// Access to a freed (quarantined) object (KASAN use-after-free).
    UseAfterFree {
        /// Whether the faulting access was a write.
        write: bool,
        /// Base address of the freed object.
        object: u64,
    },
    /// `kfree` of an already-freed object.
    DoubleFree {
        /// Base address of the object.
        object: u64,
    },
    /// Access to an address backed by no object at all (a general
    /// protection fault in the paper's Table 3 titles).
    Wild {
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// An indirect call to an address that is not a registered function.
    WildFnCall {
        /// The bogus target.
        target: u64,
    },
    /// Lock-order inversion detected by the lockdep oracle.
    LockInversion {
        /// Human-readable cycle description.
        cycle: String,
    },
    /// A kernel `BUG_ON`-style assertion failed.
    AssertFail {
        /// The violated condition.
        what: String,
    },
}

/// A detected malfunction, before report formatting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Faulting simulated address (0 when not address-related).
    pub addr: u64,
    /// Kernel function in which the fault occurred (for the report title).
    pub in_fn: &'static str,
}

impl Fault {
    /// Formats the crash title in the paper's Table 3 style.
    pub fn title(&self) -> String {
        let f = self.in_fn;
        match &self.kind {
            FaultKind::NullDeref { write: false } | FaultKind::NullFnCall => {
                format!("BUG: unable to handle kernel NULL pointer dereference in {f}")
            }
            FaultKind::NullDeref { write: true } => {
                format!("KASAN: null-ptr-deref Write in {f}")
            }
            FaultKind::OutOfBounds { write, .. } => {
                let dir = if *write { "Write" } else { "Read" };
                format!("KASAN: slab-out-of-bounds {dir} in {f}")
            }
            FaultKind::UseAfterFree { write, .. } => {
                let dir = if *write { "Write" } else { "Read" };
                format!("KASAN: use-after-free {dir} in {f}")
            }
            FaultKind::DoubleFree { .. } => format!("KASAN: double-free in {f}"),
            FaultKind::Wild { .. } | FaultKind::WildFnCall { .. } => {
                format!("general protection fault in {f}")
            }
            FaultKind::LockInversion { .. } => {
                format!("possible circular locking dependency detected in {f}")
            }
            FaultKind::AssertFail { what } => format!("kernel BUG at {f}: {what}"),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (addr={:#x})", self.title(), self.addr)
    }
}

/// A formatted crash harvested by the fuzzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashReport {
    /// Dedup key and headline, Table 3 style.
    pub title: String,
    /// The underlying fault.
    pub fault: Fault,
}

impl CrashReport {
    /// Builds a report from a fault.
    pub fn from_fault(fault: Fault) -> Self {
        CrashReport {
            title: fault.title(),
            fault,
        }
    }
}

/// Collector of crash reports for one simulated machine run.
#[derive(Default)]
pub struct OracleSink {
    reports: Mutex<Vec<CrashReport>>,
}

impl OracleSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a detected fault.
    pub fn record(&self, fault: Fault) {
        self.reports.lock().push(CrashReport::from_fault(fault));
    }

    /// Takes all reports recorded so far.
    pub fn take(&self) -> Vec<CrashReport> {
        std::mem::take(&mut self.reports.lock())
    }

    /// Copies the reports recorded so far without draining them (machine
    /// snapshot support).
    pub fn snapshot(&self) -> Vec<CrashReport> {
        self.reports.lock().clone()
    }

    /// Replaces the recorded reports with a previously captured copy,
    /// reusing the sink's allocation.
    pub fn restore(&self, reports: &[CrashReport]) {
        let mut held = self.reports.lock();
        held.clear();
        held.extend_from_slice(reports);
    }

    /// Whether any fault was recorded.
    pub fn has_reports(&self) -> bool {
        !self.reports.lock().is_empty()
    }

    /// Number of reports recorded so far.
    pub fn len(&self) -> usize {
        self.reports.lock().len()
    }

    /// Whether no report was recorded.
    pub fn is_empty(&self) -> bool {
        self.reports.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titles_match_table3_formats() {
        let f = |kind| Fault {
            kind,
            addr: 0,
            in_fn: "tls_setsockopt",
        };
        assert_eq!(
            f(FaultKind::NullFnCall).title(),
            "BUG: unable to handle kernel NULL pointer dereference in tls_setsockopt"
        );
        assert_eq!(
            f(FaultKind::NullDeref { write: true }).title(),
            "KASAN: null-ptr-deref Write in tls_setsockopt"
        );
        assert_eq!(
            f(FaultKind::OutOfBounds {
                write: false,
                object: 0,
                overflow: 8
            })
            .title(),
            "KASAN: slab-out-of-bounds Read in tls_setsockopt"
        );
        assert_eq!(
            f(FaultKind::Wild { write: false }).title(),
            "general protection fault in tls_setsockopt"
        );
    }

    #[test]
    fn sink_collects_and_drains() {
        let sink = OracleSink::new();
        assert!(sink.is_empty());
        sink.record(Fault {
            kind: FaultKind::DoubleFree { object: 0x100 },
            addr: 0x100,
            in_fn: "kfree",
        });
        assert!(sink.has_reports());
        assert_eq!(sink.len(), 1);
        let reports = sink.take();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].title, "KASAN: double-free in kfree");
        assert!(sink.is_empty());
    }
}
