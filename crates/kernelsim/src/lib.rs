//! kernelsim: a miniature Linux-like kernel substrate for OZZ.
//!
//! This crate is the reproduction's stand-in for the instrumented Linux
//! kernel of the paper. It provides:
//!
//! - [`Kctx`]: one booted simulated machine — OEMU engine, slab allocator
//!   and KASAN/lockdep/oops oracles, optional custom scheduler, seeded-bug
//!   switches — exposing Linux-flavoured instrumented access helpers
//!   (`read`/`write`, `READ_ONCE`/`WRITE_ONCE`, `smp_*`, acquire/release,
//!   atomic bitops, `kzalloc`/`kfree`, indirect calls);
//! - [`subsys`]: one module per subsystem in which the paper found (Table
//!   3) or reproduced (Table 4) an OOO bug, each re-implemented from the
//!   cited upstream code/patches with the historical buggy variant behind a
//!   [`BugId`] switch;
//! - [`Syscall`]/[`dispatch`]: the system-call surface the fuzzer drives;
//! - [`run_sti`]/[`execute`]: STI (sequential) and MTI (concurrent,
//!   scheduler-controlled) execution with oops isolation. One MTI run is
//!   an [`ExecRequest`] (pair + live/record/replay drive) handed to the
//!   single dispatch point [`execute`] (or
//!   [`PooledMachine::execute`] for pooled machines).
//!
//! The design invariant, verified by the subsystem test suites: **in-order
//! execution never crashes, even with every bug switch enabled** — the
//! seeded bugs manifest only under memory-access reordering (plus the right
//! interleaving), exactly like their upstream counterparts on weakly-ordered
//! hardware.

mod bitops;
mod bugs;
mod exec;
mod kctx;
mod pool;
pub mod subsys;
mod syscalls;
pub mod testutil;

pub use bitops::{
    clear_bit, clear_bit_unlock, find_first_bit, set_bit, test_and_clear_bit, test_and_set_bit,
    test_bit,
};
pub use bugs::{BugId, BugSwitches, ReorderType};
pub use exec::{
    execute, run_concurrent_closures, run_one, run_sti, ExecDrive, ExecMode, ExecReply,
    ExecRequest, ReplayReport, RunOutcome,
};
#[allow(deprecated)]
pub use exec::{run_concurrent, run_concurrent_recorded, run_concurrent_replay};
pub use kctx::{
    CrashSignal, FnFrame, Globals, Kctx, MachineSnapshot, EAGAIN, EBADF, EBUSY, ECRASH, EINVAL,
    MAX_CPUS,
};
pub use oemu::MemoryModel;
pub use pool::{CpuWorkers, MachinePool, PooledMachine, RestoreCounters};
pub use syscalls::{dispatch, Syscall};
