//! The kernel context: one booted simulated machine.
//!
//! [`Kctx`] bundles everything a run of the simulated kernel needs — the
//! OEMU engine, the slab allocator and oracles, the optional custom
//! scheduler, the seeded-bug switches — and exposes the Linux-flavoured
//! access helpers the subsystems are written against (`read`, `write`,
//! `READ_ONCE`, `smp_*`, `kzalloc`, indirect calls). Every helper routes the
//! access through the scheduler gate, the KASAN check, and the emulation
//! engine, in that order; that composition is the in-vivo property of §3 —
//! reordering decisions see the live allocator state, and the oracles see
//! reordered values.
//!
//! A detected fault records a crash report and unwinds the simulated CPU
//! with a panic carrying [`CrashSignal`] — the analog of a kernel oops that
//! kills the offending task. The executor catches it at the syscall
//! boundary.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use kmem::{
    Fault, FnRegistry, FnRegistrySnapshot, Kmem, KmemSnapshot, LockId, Lockdep, LockdepSnapshot,
    OracleSink, SinkSnapshot,
};
use ksched::{Scheduler, StepScheduler};
use kutil::sync::Mutex;
use oemu::{Engine, EngineSnapshot, Iid, LoadAnn, MemoryModel, RmwOrder, StoreAnn, Tid};

use crate::bugs::{BugId, BugSwitches};
use crate::exec::ExecMode;
use crate::subsys;

/// Number of simulated CPUs per machine (the paper's VMs have four vCPUs).
pub const MAX_CPUS: usize = 4;

/// Base address of the boot-time resident image (see
/// [`oemu::Engine::install_resident_image`]). Reserved: far above the kmem
/// heap (`0x1_0000_0000`+), the function registry (`0x4000_0000`..), and
/// every subsystem global — no emulated code addresses into it.
pub const RESIDENT_BASE: u64 = 0xba11_0000_0000;

/// Size of the resident image in 8-byte words (128 KiB). Large enough that
/// a full restore's `clone_from` visibly costs machine size — the honest
/// stand-in for reverting a VM snapshot — while keeping boot and the
/// per-pair snapshot clone affordable.
pub const RESIDENT_IMAGE_WORDS: u64 = 16384;

/// `EBADF`-style error returns used by the syscall layer.
pub const EBADF: i64 = -9;
/// `EINVAL`.
pub const EINVAL: i64 = -22;
/// `EBUSY`.
pub const EBUSY: i64 = -16;
/// `EAGAIN`.
pub const EAGAIN: i64 = -11;
/// Sentinel return of a syscall that died in a simulated oops.
pub const ECRASH: i64 = -1000;

/// Panic payload of a simulated kernel oops. Carried through `panic_any`
/// and caught by the syscall runner.
#[derive(Clone, Debug)]
pub struct CrashSignal {
    /// Table 3-style crash title.
    pub title: String,
}

/// Boot-time global objects of every subsystem (the simulated kernel's
/// static/global data), built once per machine.
pub struct Globals {
    /// watch_queue + pipe globals.
    pub wq: subsys::watch_queue::WqGlobals,
    /// TLS/socket globals.
    pub tls: subsys::tls::TlsGlobals,
    /// RDS connection-path globals.
    pub rds: subsys::rds::RdsGlobals,
    /// XDP/xsk socket globals.
    pub xsk: subsys::xsk::XskGlobals,
    /// BPF sockmap psock globals.
    pub bpf: subsys::bpf_psock::BpfGlobals,
    /// SMC socket globals.
    pub smc: subsys::smc::SmcGlobals,
    /// VMCI queue-pair broker globals.
    pub vmci: subsys::vmci::VmciGlobals,
    /// GSM mux globals.
    pub gsm: subsys::gsm::GsmGlobals,
    /// vlan group globals.
    pub vlan: subsys::vlan::VlanGlobals,
    /// fd-table globals.
    pub fs: subsys::fs_fdtable::FsGlobals,
    /// nbd device globals.
    pub nbd: subsys::nbd::NbdGlobals,
    /// unix-socket globals.
    pub unix: subsys::unix_sock::UnixGlobals,
    /// sbitmap queue globals.
    pub sbitmap: subsys::sbitmap::SbitmapGlobals,
    /// fs/buffer globals (extended corpus).
    pub buffer: subsys::buffer_head::BufferGlobals,
    /// Tracing ring-buffer globals (extended corpus).
    pub ring_buffer: subsys::ring_buffer::RingBufferGlobals,
    /// mm/filemap globals (extended corpus).
    pub filemap: subsys::filemap::FilemapGlobals,
    /// USB core globals (extended corpus).
    pub usb: subsys::usb::UsbGlobals,
}

/// A full copy of one machine's mutable state — the engine, allocator,
/// registries, oracles, per-CPU frames, and mode flags. Subsystem globals
/// are *not* copied: they are plain structs of simulated addresses fixed at
/// boot, and all state behind those addresses lives in the engine's memory
/// and the allocator, which the snapshot covers.
///
/// Captured by [`Kctx::snapshot`], written back by [`Kctx::restore`]. The
/// boot-time snapshot every machine captures at the end of [`Kctx::new`] is
/// what [`Kctx::reset`] rolls back to.
#[derive(Clone)]
pub struct MachineSnapshot {
    engine: EngineSnapshot,
    kmem: KmemSnapshot,
    fns: FnRegistrySnapshot,
    lockdep: LockdepSnapshot,
    sink: SinkSnapshot,
    raw: bool,
    migration_override: bool,
    frames: [Vec<&'static str>; MAX_CPUS],
}

impl MachineSnapshot {
    /// Deterministic rendering of the captured machine state, for
    /// byte-comparing a reset machine against a fresh boot. Purely
    /// observational counters (engine/allocator stats) are excluded — they
    /// never influence execution — and so are the snapshot generation ids,
    /// which name snapshots rather than state.
    pub fn digest(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "machine raw={} migration_override={}",
            self.raw, self.migration_override
        )
        .unwrap();
        for (cpu, frames) in self.frames.iter().enumerate() {
            writeln!(out, "frames cpu={cpu} {frames:?}").unwrap();
        }
        for r in self.sink.reports() {
            writeln!(out, "report {}", r.title).unwrap();
        }
        self.engine.digest(&mut out);
        self.kmem.digest(&mut out);
        self.fns.digest(&mut out);
        self.lockdep.digest(&mut out);
        out
    }

    /// The engine snapshot's undo-journal generation id — the machine-level
    /// name of this snapshot (each subsystem snapshot carries its own id;
    /// the engine's stands for the set in diagnostics).
    pub fn generation(&self) -> u64 {
        self.engine.generation()
    }
}

/// The scheduler installed for a concurrent phase: one of the two executor
/// variants. The instrumented-access gates dispatch on it.
#[derive(Clone)]
enum SchedSlot {
    /// Token-passing condvar scheduler (one OS thread per simulated CPU).
    Threaded(Arc<Scheduler>),
    /// Threadless step scheduler (both CPUs interleaved on one thread).
    Stepped(Arc<StepScheduler>),
}

/// One booted simulated machine.
pub struct Kctx {
    /// The OEMU emulation engine.
    pub engine: Arc<Engine>,
    /// Slab allocator + KASAN checker.
    pub kmem: Kmem,
    /// Simulated text segment (function pointers).
    pub fns: FnRegistry,
    /// Lock-order oracle.
    pub lockdep: Lockdep,
    /// Crash-report collector.
    pub sink: OracleSink,
    sched: Mutex<Option<SchedSlot>>,
    /// Which executor the `run_concurrent*` entry points use on this
    /// machine. Deliberately *not* part of [`MachineSnapshot`] (or its
    /// digest): the two executors take byte-identical scheduling decisions,
    /// so the mode is an execution-strategy knob, not machine state.
    exec_mode: AtomicU8,
    bugs: BugSwitches,
    /// Instrumentation bypass for the Table 5 overhead baseline.
    raw: AtomicBool,
    /// The paper's §6.2 sbitmap experiment: pretend threads were migrated
    /// so every CPU resolves per-CPU variables to CPU 0's copy.
    migration_override: AtomicBool,
    frames: Mutex<[Vec<&'static str>; MAX_CPUS]>,
    globals: OnceLock<Globals>,
    /// State at the end of boot, captured once by `Kctx::new`; what
    /// [`Kctx::reset`] restores.
    boot: OnceLock<MachineSnapshot>,
}

impl Kctx {
    /// Boots a machine with the given seeded-bug switches under the
    /// default TSO memory model.
    pub fn new(bugs: BugSwitches) -> Arc<Kctx> {
        Self::new_with_model(bugs, MemoryModel::Tso)
    }

    /// Boots a machine whose engine emulates the given memory model. Like
    /// the bug switches, the model is machine identity: fixed for the
    /// machine's lifetime and part of the pool key, never snapshot state.
    pub fn new_with_model(bugs: BugSwitches, model: MemoryModel) -> Arc<Kctx> {
        let k = Arc::new(Kctx {
            engine: Arc::new(Engine::new_with_model(MAX_CPUS, model)),
            kmem: Kmem::new(),
            fns: FnRegistry::new(),
            lockdep: Lockdep::new(),
            sink: OracleSink::new(),
            sched: Mutex::new(None),
            exec_mode: AtomicU8::new(ExecMode::from_env() as u8),
            bugs,
            raw: AtomicBool::new(false),
            migration_override: AtomicBool::new(false),
            frames: Mutex::new(Default::default()),
            globals: OnceLock::new(),
            boot: OnceLock::new(),
        });
        // The resident image goes in first: the boot-time ballast standing
        // in for the static data, slab pools, and page metadata a real
        // kernel carries. It makes a full machine restore cost what
        // reverting a VM snapshot costs — proportional to machine size —
        // which is the baseline the dirty-set undo journal beats. The
        // content is deterministic and identical on every machine; the
        // range is reserved (no subsystem addresses into it) and excluded
        // from semantic digests.
        let image: Vec<u64> = (0..RESIDENT_IMAGE_WORDS)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xba11)
            .collect();
        k.engine.install_resident_image(RESIDENT_BASE, &image);
        let globals = Globals {
            wq: subsys::watch_queue::boot(&k),
            tls: subsys::tls::boot(&k),
            rds: subsys::rds::boot(&k),
            xsk: subsys::xsk::boot(&k),
            bpf: subsys::bpf_psock::boot(&k),
            smc: subsys::smc::boot(&k),
            vmci: subsys::vmci::boot(&k),
            gsm: subsys::gsm::boot(&k),
            vlan: subsys::vlan::boot(&k),
            fs: subsys::fs_fdtable::boot(&k),
            nbd: subsys::nbd::boot(&k),
            unix: subsys::unix_sock::boot(&k),
            sbitmap: subsys::sbitmap::boot(&k),
            buffer: subsys::buffer_head::boot(&k),
            ring_buffer: subsys::ring_buffer::boot(&k),
            filemap: subsys::filemap::boot(&k),
            usb: subsys::usb::boot(&k),
        };
        k.globals.set(globals).ok().expect("boot happens once");
        k.boot
            .set(k.snapshot())
            .ok()
            .expect("boot snapshot happens once");
        k
    }

    // ------------------------------------------------------------------
    // Snapshot / restore / reset.
    // ------------------------------------------------------------------

    /// Captures the machine's full mutable state. Each subsystem arms an
    /// undo-journal frame under the snapshot, so a later [`Kctx::restore`]
    /// to it rolls back only the state mutated in between.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            engine: self.engine.snapshot(),
            kmem: self.kmem.snapshot(),
            fns: self.fns.snapshot(),
            lockdep: self.lockdep.snapshot(),
            sink: self.sink.capture(),
            raw: self.raw.load(Ordering::Relaxed),
            migration_override: self.migration_override.load(Ordering::Relaxed),
            frames: self.frames.lock().clone(),
        }
    }

    /// Restores a previously captured state, reusing the machine's existing
    /// allocations. Any installed scheduler is removed — snapshots are only
    /// taken between runs, never mid-concurrent-phase.
    ///
    /// Each subsystem takes its own incremental path when the snapshot's
    /// generation is still armed in its undo journal (the common case: the
    /// campaign loop restores the snapshot it just took) and falls back to
    /// the full `clone_from` otherwise; `engine.stats()` counts both
    /// outcomes for the machine's dominant subsystem.
    pub fn restore(&self, snap: &MachineSnapshot) {
        self.set_scheduler(None);
        self.engine.restore(&snap.engine);
        self.kmem.restore(&snap.kmem);
        self.fns.restore(&snap.fns);
        self.lockdep.restore(&snap.lockdep);
        self.sink.restore_from(&snap.sink);
        self.raw.store(snap.raw, Ordering::Relaxed);
        self.migration_override
            .store(snap.migration_override, Ordering::Relaxed);
        self.frames.lock().clone_from(&snap.frames);
    }

    /// Rolls the machine back to its exact end-of-boot state without
    /// reallocating — the reproduction's analog of the paper's long-lived
    /// in-vivo VMs, which run test after test without rebooting.
    pub fn reset(&self) {
        let boot = self.boot.get().expect("machine is booted");
        self.restore(boot);
    }

    /// Deterministic rendering of the machine's current semantic state;
    /// two machines with equal digests behave identically on any future
    /// input. Byte-identical to [`MachineSnapshot::digest`] of a snapshot
    /// taken at this instant, but streams over live state — no map is
    /// cloned, no undo-journal frame is armed (the recorded-run paths call
    /// this after every execution; a snapshot here would push stray frames
    /// mid-campaign).
    pub fn state_digest(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "machine raw={} migration_override={}",
            self.raw.load(Ordering::Relaxed),
            self.migration_override.load(Ordering::Relaxed)
        )
        .unwrap();
        for (cpu, frames) in self.frames.lock().iter().enumerate() {
            writeln!(out, "frames cpu={cpu} {frames:?}").unwrap();
        }
        for r in self.sink.snapshot() {
            writeln!(out, "report {}", r.title).unwrap();
        }
        self.engine.digest_live(&mut out);
        self.kmem.digest_live(&mut out);
        self.fns.digest_live(&mut out);
        self.lockdep.digest_live(&mut out);
        out
    }

    /// Forces every subsequent restore of every subsystem down the full
    /// `clone_from` path and disables undo journaling entirely (benchmark
    /// baseline / diagnostics knob — reproduces the pre-journal restore
    /// cost exactly, including zero journaling overhead on the write path).
    pub fn set_force_full_restore(&self, on: bool) {
        self.engine.set_force_full_restore(on);
        self.kmem.set_force_full_restore(on);
        self.fns.set_force_full_restore(on);
        self.lockdep.set_force_full_restore(on);
        self.sink.set_force_full_restore(on);
    }

    /// Boot-time globals.
    pub fn globals(&self) -> &Globals {
        self.globals.get().expect("machine is booted")
    }

    /// Whether `bug`'s buggy variant is compiled into this kernel.
    pub fn bug(&self, bug: BugId) -> bool {
        self.bugs.has(bug)
    }

    /// The bug switches this kernel was built with.
    pub fn switches(&self) -> &BugSwitches {
        &self.bugs
    }

    /// Installs (or removes) the custom scheduler for the concurrent phase
    /// of a test.
    pub fn set_scheduler(&self, sched: Option<Arc<Scheduler>>) {
        *self.sched.lock() = sched.map(SchedSlot::Threaded);
    }

    /// Installs (or removes) the threadless step scheduler for the
    /// concurrent phase of a test — the stepped executor's counterpart of
    /// [`Kctx::set_scheduler`].
    pub fn set_step_scheduler(&self, sched: Option<Arc<StepScheduler>>) {
        *self.sched.lock() = sched.map(SchedSlot::Stepped);
    }

    /// Which executor this machine's `run_concurrent*` entry points use.
    /// Defaults to [`ExecMode::from_env`] at boot.
    pub fn exec_mode(&self) -> ExecMode {
        match self.exec_mode.load(Ordering::Relaxed) {
            x if x == ExecMode::Threaded as u8 => ExecMode::Threaded,
            _ => ExecMode::Stepped,
        }
    }

    /// Selects the executor for this machine. Campaign output is pinned
    /// byte-identical across modes (`tests/exec_equivalence.rs`); only
    /// throughput differs.
    pub fn set_exec_mode(&self, mode: ExecMode) {
        self.exec_mode.store(mode as u8, Ordering::Relaxed);
    }

    /// The memory model this machine's engine emulates (fixed at boot).
    pub fn memory_model(&self) -> MemoryModel {
        self.engine.memory_model()
    }

    /// Enables raw mode: accesses bypass gates, oracles, and the emulation
    /// engine. The `Linux` (uninstrumented) baseline of Table 5.
    pub fn set_raw(&self, raw: bool) {
        self.raw.store(raw, Ordering::Relaxed);
    }

    /// Whether raw mode is active.
    pub fn is_raw(&self) -> bool {
        self.raw.load(Ordering::Relaxed)
    }

    /// Enables the §6.2 manual per-CPU modification: all CPUs resolve
    /// per-CPU variables to CPU 0's slot, emulating the thread migration the
    /// sbitmap bug needs.
    pub fn set_migration_override(&self, on: bool) {
        self.migration_override.store(on, Ordering::Relaxed);
    }

    /// The CPU a thread's per-CPU accesses resolve to. OZZ pins each thread
    /// to its own CPU (§6.2), so without the override this is the thread id.
    pub fn cpu_of(&self, t: Tid) -> usize {
        if self.migration_override.load(Ordering::Relaxed) {
            0
        } else {
            t.0
        }
    }

    // ------------------------------------------------------------------
    // Function-frame tracking (for oops titles).
    // ------------------------------------------------------------------

    /// Pushes a kernel-function frame; the returned guard pops it. Fault
    /// titles name the innermost frame, like a real oops backtrace tip.
    pub fn enter(&self, t: Tid, name: &'static str) -> FnFrame<'_> {
        self.frames.lock()[t.0].push(name);
        FnFrame { k: self, t }
    }

    /// The innermost kernel function currently executing on `t`.
    pub fn current_fn(&self, t: Tid) -> &'static str {
        self.frames.lock()[t.0].last().copied().unwrap_or("kernel")
    }

    // ------------------------------------------------------------------
    // Oops machinery.
    // ------------------------------------------------------------------

    /// Records the fault and unwinds the simulated CPU (kernel oops).
    pub fn oops(&self, fault: Fault) -> ! {
        // A CrashSignal unwind is the simulated oops mechanism, never an
        // error in the harness itself; every raise site is paired with a
        // catch_unwind in `exec`. Silence the default "thread panicked"
        // stderr noise for it (once, process-wide) so campaign output is
        // the crash reports, not panic backtraces.
        static QUIET_CRASH_SIGNALS: std::sync::Once = std::sync::Once::new();
        QUIET_CRASH_SIGNALS.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<CrashSignal>().is_none() {
                    default_hook(info);
                }
            }));
        });
        let title = fault.title();
        self.sink.record(fault);
        std::panic::panic_any(CrashSignal { title });
    }

    /// `BUG_ON`-style assertion oracle.
    pub fn bug_on(&self, t: Tid, cond: bool, what: &'static str) {
        if cond {
            self.oops(Fault {
                kind: kmem::FaultKind::AssertFail {
                    what: what.to_string(),
                },
                addr: 0,
                in_fn: self.current_fn(t),
            });
        }
    }

    fn check(&self, t: Tid, addr: u64, write: bool) {
        if let Err(fault) = self.kmem.check_access(addr, 8, write, self.current_fn(t)) {
            self.oops(fault);
        }
    }

    fn gate_before(&self, t: Tid, iid: Iid) {
        // Clone out of the lock before gating: the gate may block on the
        // threaded scheduler's condvar (or run the peer leg inline, in the
        // stepped executor), and holding the sched slot's mutex across that
        // would deadlock the peer CPU's own gate call.
        let sched = self.sched.lock().clone();
        match sched {
            Some(SchedSlot::Threaded(s)) => s.gate_before(t, iid),
            Some(SchedSlot::Stepped(s)) => s.gate_before(t, iid),
            None => {}
        }
    }

    fn gate_after(&self, t: Tid, iid: Iid) {
        let sched = self.sched.lock().clone();
        match sched {
            Some(SchedSlot::Threaded(s)) => s.gate_after(t, iid),
            Some(SchedSlot::Stepped(s)) => s.gate_after(t, iid),
            None => {}
        }
    }

    // ------------------------------------------------------------------
    // Instrumented accesses (the Figure 2 callbacks).
    // ------------------------------------------------------------------

    fn do_load(&self, t: Tid, iid: Iid, addr: u64, ann: LoadAnn) -> u64 {
        if self.is_raw() {
            return self.engine.raw_load(addr);
        }
        self.gate_before(t, iid);
        self.check(t, addr, false);
        let v = self.engine.load(t, iid, addr, ann);
        self.gate_after(t, iid);
        v
    }

    fn do_store(&self, t: Tid, iid: Iid, addr: u64, val: u64, ann: StoreAnn) {
        if self.is_raw() {
            self.engine.raw_store(addr, val);
            return;
        }
        self.gate_before(t, iid);
        self.check(t, addr, true);
        self.engine.store(t, iid, addr, val, ann);
        self.gate_after(t, iid);
    }

    /// A plain load (`x = *p`).
    pub fn read(&self, t: Tid, iid: Iid, addr: u64) -> u64 {
        self.do_load(t, iid, addr, LoadAnn::Plain)
    }

    /// `READ_ONCE(*p)`.
    pub fn read_once(&self, t: Tid, iid: Iid, addr: u64) -> u64 {
        self.do_load(t, iid, addr, LoadAnn::ReadOnce)
    }

    /// `smp_load_acquire(p)`.
    pub fn load_acquire(&self, t: Tid, iid: Iid, addr: u64) -> u64 {
        self.do_load(t, iid, addr, LoadAnn::Acquire)
    }

    /// A plain store (`*p = v`).
    pub fn write(&self, t: Tid, iid: Iid, addr: u64, val: u64) {
        self.do_store(t, iid, addr, val, StoreAnn::Plain)
    }

    /// `WRITE_ONCE(*p, v)`.
    pub fn write_once(&self, t: Tid, iid: Iid, addr: u64, val: u64) {
        self.do_store(t, iid, addr, val, StoreAnn::WriteOnce)
    }

    /// `smp_store_release(p, v)`.
    pub fn store_release(&self, t: Tid, iid: Iid, addr: u64, val: u64) {
        self.do_store(t, iid, addr, val, StoreAnn::Release)
    }

    /// An instrumented atomic read-modify-write.
    pub fn rmw(
        &self,
        t: Tid,
        iid: Iid,
        addr: u64,
        f: impl FnOnce(u64) -> u64,
        order: RmwOrder,
    ) -> u64 {
        if self.is_raw() {
            let old = self.engine.raw_load(addr);
            self.engine.raw_store(addr, f(old));
            return old;
        }
        self.gate_before(t, iid);
        self.check(t, addr, true);
        let old = self.engine.rmw(t, iid, addr, f, order);
        self.gate_after(t, iid);
        old
    }

    /// `smp_mb()`.
    pub fn smp_mb(&self, t: Tid, iid: Iid) {
        if !self.is_raw() {
            self.engine.smp_mb(t, iid);
        }
    }

    /// `smp_wmb()`.
    pub fn smp_wmb(&self, t: Tid, iid: Iid) {
        if !self.is_raw() {
            self.engine.smp_wmb(t, iid);
        }
    }

    /// `smp_rmb()`.
    pub fn smp_rmb(&self, t: Tid, iid: Iid) {
        if !self.is_raw() {
            self.engine.smp_rmb(t, iid);
        }
    }

    // ------------------------------------------------------------------
    // Memory management and indirect calls.
    // ------------------------------------------------------------------

    /// `kzalloc(size)` — allocates a zeroed object of `size` bytes.
    pub fn kzalloc(&self, size: u64, tag: &'static str) -> u64 {
        self.kmem.kzalloc(size, tag)
    }

    /// `kfree(p)`; double frees and wild frees oops.
    pub fn kfree(&self, t: Tid, addr: u64) {
        if let Err(fault) = self.kmem.kfree(addr, self.current_fn(t)) {
            self.oops(fault);
        }
    }

    /// Resolves an indirect call target; a null or wild pointer oopses —
    /// the `buf->ops->confirm()` crash of Figure 1.
    pub fn call_fn(&self, t: Tid, target: u64) -> &'static str {
        match self.fns.resolve(target, self.current_fn(t)) {
            Ok(name) => name,
            Err(fault) => self.oops(fault),
        }
    }

    /// Lockdep-checked lock acquisition (ordering oracle only; the custom
    /// scheduler already serialises execution, so no blocking is needed).
    pub fn lock(&self, t: Tid, lock: LockId) {
        if let Err(fault) = self.lockdep.acquire(t, lock, self.current_fn(t)) {
            self.oops(fault);
        }
    }

    /// Lockdep-checked lock release.
    pub fn unlock(&self, t: Tid, lock: LockId) {
        self.lockdep.release(t, lock);
    }

    /// Syscall-exit housekeeping: the paper's "interrupt" flush condition —
    /// returning to userspace drains the virtual store buffer.
    pub fn syscall_exit(&self, t: Tid) {
        if !self.is_raw() {
            self.engine.flush_thread(t);
        }
    }
}

/// RAII guard for a kernel-function frame.
pub struct FnFrame<'a> {
    k: &'a Kctx,
    t: Tid,
}

impl Drop for FnFrame<'_> {
    fn drop(&mut self) {
        self.k.frames.lock()[self.t.0].pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oemu::iid;

    #[test]
    fn boot_produces_working_machine() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        let obj = k.kzalloc(32, "test");
        k.write(t, iid!(), obj, 7);
        assert_eq!(k.read(t, iid!(), obj), 7);
    }

    #[test]
    fn frames_nest() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(k.current_fn(t), "kernel");
        {
            let _a = k.enter(t, "outer");
            assert_eq!(k.current_fn(t), "outer");
            {
                let _b = k.enter(t, "inner");
                assert_eq!(k.current_fn(t), "inner");
            }
            assert_eq!(k.current_fn(t), "outer");
        }
        assert_eq!(k.current_fn(t), "kernel");
    }

    #[test]
    fn null_read_oopses_with_frame_name() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _f = k.enter(t, "pipe_read");
            k.read(t, iid!(), 0);
        }));
        let payload = result.expect_err("oops must unwind");
        let sig = payload.downcast_ref::<CrashSignal>().expect("crash signal");
        assert_eq!(
            sig.title,
            "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
        );
        assert!(k.sink.has_reports());
    }

    #[test]
    fn raw_mode_bypasses_engine_and_oracles() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        k.set_raw(true);
        // Null access does not fault in raw mode (no KASAN).
        assert_eq!(k.read(t, iid!(), 0), 0);
        // Stores are direct: no history, no profiling.
        k.write(t, iid!(), 0x9000, 3);
        assert_eq!(k.engine.raw_load(0x9000), 3);
        k.set_raw(false);
    }

    #[test]
    fn cpu_pinning_and_migration_override() {
        let k = Kctx::new(BugSwitches::none());
        assert_eq!(k.cpu_of(Tid(1)), 1);
        k.set_migration_override(true);
        assert_eq!(k.cpu_of(Tid(1)), 0);
    }

    #[test]
    fn call_fn_null_oopses() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        let ok = k.fns.register("tls_setsockopt");
        assert_eq!(k.call_fn(t, ok), "tls_setsockopt");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _f = k.enter(t, "tls_setsockopt");
            k.call_fn(t, 0);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn reset_restores_exact_boot_state() {
        let fresh = Kctx::new(BugSwitches::all());
        let k = Kctx::new(BugSwitches::all());
        let boot_digest = fresh.state_digest();
        assert_eq!(
            k.state_digest(),
            boot_digest,
            "boot is deterministic: two fresh machines agree byte-for-byte"
        );

        // Dirty every state dimension reset() must clear: delayed-store and
        // versioned-load controls, memory + store history, lockdep edges,
        // the oracle sink, per-CPU frames, and the mode flags.
        let t = Tid(0);
        let i = iid!();
        k.engine.delay_store_at(t, i);
        k.engine.read_old_value_at(Tid(1), iid!());
        let obj = k.kzalloc(32, "dirty");
        k.write(t, i, obj, 7); // delayed: sits in the store buffer
        k.write(t, iid!(), obj + 8, 9); // commits: memory + history entry
        k.lock(t, LockId(0x11));
        k.lock(t, LockId(0x22)); // learned ordering edge
        k.unlock(t, LockId(0x22));
        k.unlock(t, LockId(0x11));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _f = k.enter(t, "dirty_fn");
            k.read(t, iid!(), 0); // null deref -> sink report
        }));
        k.set_migration_override(true);
        k.set_raw(true);
        assert_ne!(k.state_digest(), boot_digest, "machine is dirty");
        assert!(k.sink.has_reports());
        assert!(k.engine.pending_stores(t) > 0);

        k.reset();
        assert_eq!(
            k.state_digest(),
            boot_digest,
            "reset() restores the exact boot state"
        );
        assert!(!k.sink.has_reports(), "sink cleared");
        assert_eq!(k.engine.pending_stores(t), 0, "controls + buffer cleared");
        // The cleared delay control stays cleared: a store at the formerly
        // delayed iid now commits immediately.
        let obj2 = k.kzalloc(32, "after");
        k.write(t, i, obj2, 5);
        assert_eq!(k.engine.raw_load(obj2), 5);
        // And the reset machine behaves like the fresh one.
        assert_eq!(k.cpu_of(Tid(1)), 1, "migration override cleared");
        assert!(!k.is_raw(), "raw mode cleared");
    }

    #[test]
    fn state_digest_streams_byte_identical_to_snapshot_digest() {
        let k = Kctx::new(BugSwitches::all());
        let t = Tid(0);
        // Dirty several dimensions so the digest is non-trivial.
        let obj = k.kzalloc(32, "digest");
        k.write(t, iid!(), obj, 7);
        k.lock(t, LockId(0x11));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _f = k.enter(t, "digest_fn");
            k.read(t, iid!(), 0);
        }));
        let live = k.state_digest();
        assert_eq!(live, k.snapshot().digest());
        // And streaming must not have armed a journal frame of its own
        // (one boot frame + the snapshot above are expected).
        assert_eq!(k.engine.journal_depth(), 2);
    }

    #[test]
    fn reset_takes_the_incremental_path_and_counts_it() {
        let k = Kctx::new(BugSwitches::all());
        let boot_digest = k.state_digest();
        let t = Tid(0);
        for round in 0..3u64 {
            let obj = k.kzalloc(32, "round");
            k.write(t, iid!(), obj, round);
            k.lock(t, LockId(0x33));
            k.unlock(t, LockId(0x33));
            k.reset();
            assert_eq!(k.state_digest(), boot_digest);
        }
        let s = k.engine.stats();
        assert_eq!(s.restores_incremental, 3, "every reset was incremental");
        assert_eq!(s.restore_full_fallbacks, 0);
        assert!(s.restore_words_replayed > 0);
    }

    #[test]
    fn force_full_restore_reproduces_the_pre_journal_path() {
        let k = Kctx::new(BugSwitches::all());
        let boot_digest = k.state_digest();
        k.set_force_full_restore(true);
        let t = Tid(0);
        let obj = k.kzalloc(32, "forced");
        k.write(t, iid!(), obj, 1);
        k.reset();
        assert_eq!(k.state_digest(), boot_digest);
        let s = k.engine.stats();
        assert_eq!(s.restores_incremental, 0);
        assert_eq!(s.restore_full_fallbacks, 1);
        assert_eq!(k.engine.journal_depth(), 0, "journal disarmed");
        // Turning the knob back on re-arms on the next snapshot/restore.
        k.set_force_full_restore(false);
        k.reset(); // fallback (boot generation no longer armed) + re-arm
        k.kzalloc(8, "x");
        k.reset(); // incremental again
        let s = k.engine.stats();
        assert_eq!(s.restores_incremental, 1);
        assert_eq!(s.restore_full_fallbacks, 2);
    }

    #[test]
    fn syscall_exit_flushes_delayed_stores() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        let obj = k.kzalloc(16, "o");
        let i = iid!();
        k.engine.delay_store_at(t, i);
        k.write(t, i, obj, 5);
        assert_eq!(k.engine.raw_load(obj), 0);
        k.syscall_exit(t);
        assert_eq!(k.engine.raw_load(obj), 5);
    }
}
