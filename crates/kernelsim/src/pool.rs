//! Machine pool and persistent CPU workers: zero-boot MTI execution.
//!
//! The paper runs tests *in-vivo* inside long-lived QEMU/KVM VMs — a
//! machine boots once and then executes test after test, with the executor
//! processes reused across programs the way Syzkaller reuses them. This
//! module gives the reproduction the same discipline:
//!
//! - [`CpuWorkers`]: two parked OS threads per machine standing in for its
//!   simulated CPUs. A concurrent run hands each one a closure over a
//!   channel instead of spawning fresh threads, while the custom
//!   scheduler's handshake (`thread_start` → gates → `thread_finish`) and
//!   the oops isolation are exactly those of the spawning executor.
//! - [`PooledMachine`]: a booted [`Kctx`] bundled with its workers.
//! - [`MachinePool`]: a shelf of reset machines keyed by [`BugSwitches`].
//!   Checking a machine in rolls it back to its boot snapshot
//!   ([`Kctx::reset`]), so a checkout is always byte-identical to a fresh
//!   boot — verified by the reset-fidelity tests — at a fraction of the
//!   cost.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use ksched::SchedulePlan;
use kutil::chan::{channel, Sender};
use kutil::sync::Mutex;

use crate::bugs::BugSwitches;
use crate::exec::{
    execute, execute_on, ExecMode, ExecReply, ExecRequest, ReplayReport, RunOutcome,
};
use crate::kctx::Kctx;
use crate::syscalls::Syscall;
use oemu::{MemoryModel, ScheduleTrace};

/// A unit of work shipped to a parked CPU worker.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct Lane {
    /// `Some` while the worker runs; dropped to disconnect the channel and
    /// let the worker exit.
    tx: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed set of persistent worker threads, one per simulated CPU lane.
///
/// Workers park on a channel `recv` between jobs; a simulated oops unwinds
/// inside the job (caught at the syscall boundary exactly as on a spawned
/// thread) and never kills the worker.
pub struct CpuWorkers {
    lanes: Vec<Lane>,
}

impl CpuWorkers {
    /// Spawns `nlanes` parked worker threads.
    pub fn new(nlanes: usize) -> Self {
        let lanes = (0..nlanes)
            .map(|i| {
                let (tx, rx) = channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("ozz-cpu-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn cpu worker");
                Lane {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        CpuWorkers { lanes }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Ships a job to lane `lane`. Jobs on one lane run in FIFO order.
    pub(crate) fn submit(&self, lane: usize, job: Job) {
        self.lanes[lane]
            .tx
            .as_ref()
            .expect("worker running")
            .send(job)
            .unwrap_or_else(|_| {
                panic!("cpu worker lane {lane} hung up before its job (SendError)")
            });
    }
}

impl Drop for CpuWorkers {
    fn drop(&mut self) {
        // Disconnect every lane first, then join: a worker exits when its
        // channel drains and hangs up.
        for lane in &mut self.lanes {
            lane.tx = None;
        }
        for lane in &mut self.lanes {
            if let Some(h) = lane.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// A booted machine plus its (lazily spawned) persistent CPU workers,
/// ready to run MTIs without booting or spawning anything.
///
/// [`PooledMachine::execute`] dispatches on the machine's [`ExecMode`]:
/// in stepped mode (the default) both legs run on the calling thread and
/// the worker lanes are never spawned; in threaded mode the first run
/// spawns the two persistent workers and every later run reuses them.
pub struct PooledMachine {
    k: Arc<Kctx>,
    workers: OnceLock<CpuWorkers>,
}

impl PooledMachine {
    /// Boots a fresh TSO machine. Worker lanes are spawned on first
    /// threaded use, so a stepped-mode campaign pays no thread cost at all.
    pub fn boot(bugs: BugSwitches) -> Self {
        Self::boot_with_model(bugs, MemoryModel::Tso)
    }

    /// Boots a fresh machine emulating the given memory model.
    pub fn boot_with_model(bugs: BugSwitches, model: MemoryModel) -> Self {
        PooledMachine {
            k: Kctx::new_with_model(bugs, model),
            workers: OnceLock::new(),
        }
    }

    /// The machine itself.
    pub fn kctx(&self) -> &Arc<Kctx> {
        &self.k
    }

    fn workers(&self) -> &CpuWorkers {
        self.workers.get_or_init(|| CpuWorkers::new(2))
    }

    /// Runs one [`ExecRequest`] on this machine — the pooled counterpart
    /// of [`crate::execute`]. In threaded mode the legs run on the
    /// machine's persistent workers (spawned on first use); in stepped
    /// mode everything stays on the calling thread and no worker threads
    /// are ever created.
    pub fn execute(&self, req: ExecRequest<'_>) -> ExecReply {
        match self.k.exec_mode() {
            // Don't touch the lazy worker lanes in stepped mode: the
            // stepped executor ignores them, and `workers()` would spawn
            // two idle threads per machine for nothing.
            ExecMode::Stepped => execute(&self.k, req),
            ExecMode::Threaded => execute_on(&self.k, self.workers(), req),
        }
    }

    /// Runs two syscalls concurrently.
    #[deprecated(note = "build an ExecRequest::live and call PooledMachine::execute()")]
    pub fn run_pair(&self, plan: SchedulePlan, a: Syscall, b: Syscall) -> RunOutcome {
        self.execute(ExecRequest::live(plan, a, b)).outcome
    }

    /// Runs two syscalls with the decision stream recorded.
    #[deprecated(note = "build an ExecRequest::recorded and call PooledMachine::execute()")]
    pub fn run_pair_recorded(
        &self,
        plan: SchedulePlan,
        a: Syscall,
        b: Syscall,
    ) -> (RunOutcome, ScheduleTrace) {
        self.execute(ExecRequest::recorded(plan, a, b))
            .into_recorded()
    }

    /// Replays a recorded trace.
    #[deprecated(note = "build an ExecRequest::replay and call PooledMachine::execute()")]
    pub fn run_pair_replay(
        &self,
        trace: &ScheduleTrace,
        a: Syscall,
        b: Syscall,
    ) -> (RunOutcome, ReplayReport) {
        self.execute(ExecRequest::replay(trace, a, b))
            .into_replayed()
    }
}

/// A shelf of reset machines keyed by their machine identity: the
/// bug-switch set plus the memory model the engine emulates.
///
/// `checkout` pops a previously reset machine (or boots one on a miss);
/// `checkin` resets the machine back to boot state and shelves it. One
/// pool per fuzzer keeps shards contention-free in parallel campaigns.
#[derive(Default)]
pub struct MachinePool {
    shelves: Mutex<HashMap<(BugSwitches, MemoryModel), Vec<PooledMachine>>>,
    boots: Mutex<u64>,
}

impl MachinePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a TSO machine booted with `bugs`, reusing a shelved one
    /// when available. The returned machine is always in exact boot state.
    pub fn checkout(&self, bugs: &BugSwitches) -> PooledMachine {
        self.checkout_with_model(bugs, MemoryModel::Tso)
    }

    /// Checks out a machine booted with `bugs` under `model`. A machine's
    /// model is part of its identity, so a PSO checkout never returns a
    /// shelved TSO machine (and vice versa).
    pub fn checkout_with_model(&self, bugs: &BugSwitches, model: MemoryModel) -> PooledMachine {
        if let Some(m) = self
            .shelves
            .lock()
            .get_mut(&(bugs.clone(), model))
            .and_then(|shelf| shelf.pop())
        {
            return m;
        }
        *self.boots.lock() += 1;
        PooledMachine::boot_with_model(bugs.clone(), model)
    }

    /// Resets `machine` to boot state and shelves it for the next checkout.
    pub fn checkin(&self, machine: PooledMachine) {
        machine.k.reset();
        self.shelves
            .lock()
            .entry((machine.k.switches().clone(), machine.k.memory_model()))
            .or_default()
            .push(machine);
    }

    /// Machines currently shelved (idle), across all switch sets.
    pub fn idle(&self) -> usize {
        self.shelves.lock().values().map(Vec::len).sum()
    }

    /// Machines booted by this pool over its lifetime — the number a
    /// fresh-boot executor would have multiplied by its test count.
    pub fn boots(&self) -> u64 {
        *self.boots.lock()
    }

    /// Restore-path counters summed over every *shelved* machine (a
    /// machine's engine carries them across resets). Call between steps —
    /// while a machine is checked out its counts are not visible here.
    pub fn restore_counters(&self) -> RestoreCounters {
        let shelves = self.shelves.lock();
        let mut total = RestoreCounters::default();
        for m in shelves.values().flatten() {
            let s = m.k.engine.stats();
            total.incremental += s.restores_incremental;
            total.words_replayed += s.restore_words_replayed;
            total.full_fallbacks += s.restore_full_fallbacks;
            total.journal_peak_words = total.journal_peak_words.max(s.journal_peak_words);
        }
        total
    }
}

/// Machine-restore observability rolled up by [`MachinePool::restore_counters`]:
/// how often resets took the incremental undo-journal path versus the full
/// `clone_from` fallback, and how much replay work the journal did.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreCounters {
    /// Restores that rolled back via the undo journal.
    pub incremental: u64,
    /// Memory pre-images replayed by those incremental restores.
    pub words_replayed: u64,
    /// Restores that fell back to the full `clone_from` path.
    pub full_fallbacks: u64,
    /// Deepest memory undo journal observed on any one machine (words),
    /// i.e. the worst-case replay a single restore could have faced.
    pub journal_peak_words: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kctx::ECRASH;
    use ksched::{BreakWhen, Breakpoint};
    use oemu::{AccessKind, Tid};

    #[test]
    fn checkout_checkin_reuses_the_same_machine() {
        let pool = MachinePool::new();
        let bugs = BugSwitches::all();
        let m = pool.checkout(&bugs);
        let first = Arc::as_ptr(m.kctx());
        pool.checkin(m);
        assert_eq!(pool.idle(), 1);
        let m = pool.checkout(&bugs);
        assert_eq!(Arc::as_ptr(m.kctx()), first, "shelved machine reused");
        assert_eq!(pool.boots(), 1, "one boot serves both checkouts");
        // A different switch set gets its own machine.
        let other = pool.checkout(&BugSwitches::none());
        assert_ne!(Arc::as_ptr(other.kctx()), first);
        assert_eq!(pool.boots(), 2);
    }

    #[test]
    fn shelves_are_keyed_by_memory_model_too() {
        let pool = MachinePool::new();
        let bugs = BugSwitches::all();
        let tso = pool.checkout(&bugs);
        let tso_ptr = Arc::as_ptr(tso.kctx());
        pool.checkin(tso);
        // Same switches, different model: the shelved TSO machine must not
        // be handed out.
        let pso = pool.checkout_with_model(&bugs, MemoryModel::Pso);
        assert_ne!(Arc::as_ptr(pso.kctx()), tso_ptr);
        assert_eq!(pso.kctx().memory_model(), MemoryModel::Pso);
        assert_eq!(pool.boots(), 2);
        pool.checkin(pso);
        assert_eq!(pool.idle(), 2);
        // Each checkout finds its own shelf again.
        let tso = pool.checkout(&bugs);
        assert_eq!(Arc::as_ptr(tso.kctx()), tso_ptr);
        assert_eq!(tso.kctx().memory_model(), MemoryModel::Tso);
        assert_eq!(pool.boots(), 2, "both shelves were reused");
    }

    #[test]
    fn pooled_run_matches_spawned_run() {
        // The Figure 5a store-barrier forcing of the exec tests, executed
        // once on spawned threads and once on persistent workers: same
        // crash title, same return values.
        let profile = {
            let k = Kctx::new(BugSwitches::all());
            k.engine.set_profiling(true);
            crate::exec::run_one(&k, Tid(0), crate::Syscall::WqPost);
            let p = k.engine.take_profile(Tid(0));
            k.engine.set_profiling(false);
            p
        };
        let stores: Vec<_> = profile
            .accesses()
            .filter(|a| a.kind == AccessKind::Store)
            .collect();
        let (last, rest) = stores.split_last().expect("writer has stores");
        let plan = || SchedulePlan {
            first: Tid(0),
            breakpoint: Some(Breakpoint {
                iid: last.iid,
                when: BreakWhen::After,
                hit: 1,
            }),
        };

        let k = Kctx::new(BugSwitches::all());
        for a in rest {
            k.engine.delay_store_at(Tid(0), a.iid);
        }
        let spawned = execute(
            &k,
            ExecRequest::live(plan(), crate::Syscall::WqPost, crate::Syscall::PipeRead),
        )
        .outcome;

        let pool = MachinePool::new();
        let m = pool.checkout(&BugSwitches::all());
        for a in rest {
            m.kctx().engine.delay_store_at(Tid(0), a.iid);
        }
        let pooled = m
            .execute(ExecRequest::live(
                plan(),
                crate::Syscall::WqPost,
                crate::Syscall::PipeRead,
            ))
            .outcome;

        assert_eq!(spawned.title(), pooled.title());
        assert_eq!(spawned.title().unwrap(), pooled.title().unwrap());
        assert_eq!((spawned.ret_a, spawned.ret_b), (pooled.ret_a, pooled.ret_b));
        assert_eq!(pooled.ret_b, ECRASH);
    }

    #[test]
    fn workers_survive_an_oops_and_run_again() {
        let pool = MachinePool::new();
        let bugs = BugSwitches::all();
        let mut m = pool.checkout(&bugs);
        for _ in 0..3 {
            let out = m
                .execute(ExecRequest::live(
                    SchedulePlan::sequential(Tid(0)),
                    crate::Syscall::WqPost,
                    crate::Syscall::PipeRead,
                ))
                .outcome;
            assert!(!out.crashed(), "in-order run is benign: {out:?}");
            pool.checkin(m);
            m = pool.checkout(&bugs);
        }
        assert_eq!(pool.boots(), 1);
    }
}
