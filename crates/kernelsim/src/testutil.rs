//! Test-support helpers: miniature versions of the OZZ forcing pipeline.
//!
//! These helpers let subsystem unit tests exercise the seeded bugs without
//! the full fuzzer: they profile a scenario on a *scratch* machine with the
//! same bug switches (instruction ids are stable across machines, exactly
//! like the paper's instruction addresses across reboots), then install the
//! maximal reordering the hypothetical-barrier test would choose — delay
//! every store but the last (Figure 5a), or version every load but the
//! first (Figure 5b) — and run the scenario for real.

use std::panic::{catch_unwind, AssertUnwindSafe};

use oemu::{AccessKind, Iid, Tid};

use crate::kctx::{CrashSignal, Kctx};

/// Profiles `f` on a scratch machine and returns the iids of the store
/// accesses `t` executed, in program order (duplicates removed).
pub fn profile_store_iids(k: &Kctx, t: Tid, f: impl Fn(&Kctx)) -> Vec<Iid> {
    profile_iids(k, t, AccessKind::Store, |_| {}, f)
}

/// Profiles `f` on a scratch machine and returns the iids of the load
/// accesses `t` executed, in program order (duplicates removed).
pub fn profile_load_iids(k: &Kctx, t: Tid, f: impl Fn(&Kctx)) -> Vec<Iid> {
    profile_iids(k, t, AccessKind::Load, |_| {}, f)
}

/// [`profile_load_iids`] with a setup phase replayed on the scratch machine
/// first, so the profiled reader takes the path it will take for real.
pub fn profile_load_iids_with_setup(
    k: &Kctx,
    t: Tid,
    setup: impl Fn(&Kctx),
    f: impl Fn(&Kctx),
) -> Vec<Iid> {
    profile_iids(k, t, AccessKind::Load, setup, f)
}

fn profile_iids(
    k: &Kctx,
    t: Tid,
    kind: AccessKind,
    setup: impl Fn(&Kctx),
    f: impl Fn(&Kctx),
) -> Vec<Iid> {
    // The scratch machine must reach the same kernel state the real run
    // will profile in, so the setup syscalls run first (unprofiled) — the
    // analog of the STI prefix before the targeted pair.
    let scratch = Kctx::new(k.switches().clone());
    let result = catch_unwind(AssertUnwindSafe(|| setup(&scratch)));
    assert!(result.is_ok(), "setup crashed during profiling");
    scratch.engine.set_profiling(true);
    // The scenario must be benign in order; a scratch crash means the test
    // scenario itself is wrong.
    let result = catch_unwind(AssertUnwindSafe(|| f(&scratch)));
    assert!(result.is_ok(), "scenario crashed during profiling");
    let profile = scratch.engine.take_profile(t);
    let mut seen = std::collections::HashSet::new();
    profile
        .accesses()
        .filter(|a| a.kind == kind)
        .map(|a| a.iid)
        .filter(|iid| seen.insert(*iid))
        .collect()
}

/// The maximal hypothetical **store** barrier forcing: delays every store
/// `t` performs in `f` except the last (which, like `W(d)` in Figure 5a,
/// overtakes them), then runs `f` on the real machine.
pub fn delay_all_plain_stores_during(k: &Kctx, t: Tid, f: impl Fn(&Kctx)) {
    let iids = profile_iids(k, t, AccessKind::Store, |_| {}, &f);
    if let Some((_last, rest)) = iids.split_last() {
        for &iid in rest {
            k.engine.delay_store_at(t, iid);
        }
    }
    f(k);
    k.engine.clear_controls(t);
}

/// The maximal hypothetical **load** barrier forcing: versions every load
/// `t` performs in `f` except the first (which, like `R(w)` in Figure 5b,
/// reads the updated value), then runs `f` on the real machine. `setup`
/// replays the scenario's preceding state changes on the scratch machine so
/// the profiled reader takes the same path it will take for real.
pub fn version_all_plain_loads_with_setup(
    k: &Kctx,
    t: Tid,
    setup: impl Fn(&Kctx),
    f: impl Fn(&Kctx),
) {
    let iids = profile_iids(k, t, AccessKind::Load, setup, &f);
    if let Some((_first, rest)) = iids.split_first() {
        for &iid in rest {
            k.engine.read_old_value_at(t, iid);
        }
    }
    f(k);
    k.engine.clear_controls(t);
}

/// Runs `f`, expecting a simulated kernel oops; returns the crash title.
///
/// # Panics
///
/// Panics if `f` completes without crashing, or panics with something other
/// than a [`CrashSignal`].
pub fn expect_crash(k: &Kctx, f: impl FnOnce(&Kctx)) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| f(k)));
    match result {
        Ok(()) => panic!("expected a kernel oops, but the scenario survived"),
        Err(payload) => match payload.downcast_ref::<CrashSignal>() {
            Some(sig) => {
                assert!(k.sink.has_reports(), "oops must leave a report");
                sig.title.clone()
            }
            None => std::panic::resume_unwind(payload),
        },
    }
}

/// Runs `f`, expecting no oops and an empty report sink.
///
/// # Panics
///
/// Panics if `f` crashes or any oracle recorded a report.
pub fn expect_no_crash(k: &Kctx, f: impl FnOnce(&Kctx)) {
    let result = catch_unwind(AssertUnwindSafe(|| f(k)));
    match result {
        Ok(()) => assert!(
            k.sink.is_empty(),
            "oracles recorded a report in a scenario expected to be benign"
        ),
        Err(payload) => match payload.downcast_ref::<CrashSignal>() {
            Some(sig) => panic!("unexpected kernel oops: {}", sig.title),
            None => std::panic::resume_unwind(payload),
        },
    }
}
