//! Seeded OOO bug switches.
//!
//! Every bug the paper reports (Table 3) or reproduces (Table 4) exists in
//! the simulated kernel as a *variant switch*: with the switch enabled the
//! subsystem compiles in the historical buggy code (memory barrier absent or
//! the wrong API used); with it disabled the upstream fix is in place. This
//! mirrors the paper's §6.2 methodology of reverting fix patches to
//! reintroduce the bugs.

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of one seeded OOO bug.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BugId {
    // ---- Table 3: new bugs found by OZZ -------------------------------
    /// Bug #1 — RDS: `clear_bit` instead of `clear_bit_unlock` in
    /// `release_in_xmit` breaks mutual exclusion (Figure 8).
    RdsClearBit,
    /// Bug #2 — watch_queue: filter bitmap published without `smp_wmb`;
    /// NULL pointer dereference in `_find_first_bit`.
    WatchQueueFilter,
    /// Bug #3 — VMCI: queue pair published before its wait-queue head is
    /// initialised; general protection fault in `add_wait_queue`.
    VmciQueuePair,
    /// Bug #4 — XDP: buffer pool published before its rings; NULL pointer
    /// dereference in `xsk_poll`.
    XskPoolPublish,
    /// Bug #5 — TLS: `tls_getsockopt` reads the context without load
    /// ordering against `sk->sk_prot` (load-load, cross-function).
    TlsGetsockopt,
    /// Bug #6 — BPF: `psock->saved_data_ready` stored after the psock is
    /// published; NULL pointer dereference in `sk_psock_verdict_data_ready`.
    PsockSavedReady,
    /// Bug #7 — XDP: `xs->state = BOUND` visible before `xs->tx`; NULL
    /// pointer dereference in `xsk_generic_xmit`.
    XskStateBound,
    /// Bug #8 — SMC: `smc->clcsock` published before initialisation; NULL
    /// pointer dereference in `connect`.
    SmcClcsock,
    /// Bug #9 — TLS: missing `smp_wmb` in `tls_init` (Figure 7); the
    /// WRITE_ONCE/READ_ONCE mis-fix left the reordering possible.
    TlsSkProt,
    /// Bug #10 — SMC: file pointer and its publication flag stored out of
    /// order; `KASAN: null-ptr-deref Write in fput`.
    SmcFput,
    /// Bug #11 — GSM: reader of the dlci table lacks load ordering; NULL
    /// pointer dereference in `gsm_dlci_config` (load-load).
    GsmDlci,

    // ---- Table 4: previously-reported bugs (fix patches reverted) -----
    /// Known #1 \[120\] — vlan: device published before initialisation (S-S).
    KnownVlan,
    /// Known #2 \[31\] — watch_queue/pipe ring buffer, Figure 1 (S-S).
    KnownWatchQueuePost,
    /// Known #3 \[103\] — xsk: missing write/data-dependency barrier on umem
    /// registration (S-S).
    KnownXskUmem,
    /// Known #4 \[101\] — xsk: state member used for socket synchronisation
    /// without ordering (S-S). Shares the Bug #7 code path pre-fix.
    KnownXskState,
    /// Known #5 \[30\] — fs: `__fget_light` needs acquire ordering (L-L).
    KnownFget,
    /// Known #6 \[60\] — sbitmap: freed-instance publication vs clear bit
    /// (S-S); **not reproducible** under CPU pinning because the race is on
    /// a per-CPU hint reached via thread migration.
    KnownSbitmap,
    /// Known #7 \[78\] — nbd: NULL deref accessing `nbd->config` (L-L).
    KnownNbd,
    /// Known #8 \[50\] — tls: `tls_err_abort` lockless access; the symptom is
    /// a wrong syscall return value, not a crash (the `✓*` row).
    KnownTlsErr,
    /// Known #9 \[106\] — unix: missing barriers on `->addr`/`->path` (L-L).
    KnownUnix,

    // ---- Extended corpus: historical OOO bugs cited in §2.2 -----------
    /// Extended #1 \[82\] — fs/buffer (the 2007 "memorder fix"): a bit-lock
    /// released without ordering lets a stale buffer-head pointer reach a
    /// second freer — a **double free**, the §3 example of a consequence
    /// only in-vivo oracles can classify.
    ExtBufferDoubleFree,
    /// Extended #2 \[115\] — ring-buffer: an event published before its data
    /// is visible; the reader consumes an uninitialised entry.
    ExtRingBuffer,
    /// Extended #3 \[62\] — mm/filemap: buffered read/write race reading
    /// inconsistent data — a silent wrong-value bug, like Table 4's #8.
    ExtFilemap,
    /// Extended #4 \[95\] — USB core: `usb_kill_urb`'s reject store reordered
    /// past its use-count load (**store-load**, the SB shape): the kill
    /// path concludes the URB is idle while a submit is in flight.
    ExtUsbKillUrb,
}

impl BugId {
    /// All Table 3 (newly discovered) bugs, in paper order.
    pub const NEW: [BugId; 11] = [
        BugId::RdsClearBit,
        BugId::WatchQueueFilter,
        BugId::VmciQueuePair,
        BugId::XskPoolPublish,
        BugId::TlsGetsockopt,
        BugId::PsockSavedReady,
        BugId::XskStateBound,
        BugId::SmcClcsock,
        BugId::TlsSkProt,
        BugId::SmcFput,
        BugId::GsmDlci,
    ];

    /// The extended corpus: §2.2-cited historical OOO bugs.
    pub const EXTENDED: [BugId; 4] = [
        BugId::ExtBufferDoubleFree,
        BugId::ExtRingBuffer,
        BugId::ExtFilemap,
        BugId::ExtUsbKillUrb,
    ];

    /// All Table 4 (previously-reported) bugs, in paper order.
    pub const KNOWN: [BugId; 9] = [
        BugId::KnownVlan,
        BugId::KnownWatchQueuePost,
        BugId::KnownXskUmem,
        BugId::KnownXskState,
        BugId::KnownFget,
        BugId::KnownSbitmap,
        BugId::KnownNbd,
        BugId::KnownTlsErr,
        BugId::KnownUnix,
    ];

    /// Paper row label (`Bug #1` ... `Bug #11`, `#1` ... `#9`).
    pub fn label(self) -> &'static str {
        match self {
            BugId::RdsClearBit => "Bug #1",
            BugId::WatchQueueFilter => "Bug #2",
            BugId::VmciQueuePair => "Bug #3",
            BugId::XskPoolPublish => "Bug #4",
            BugId::TlsGetsockopt => "Bug #5",
            BugId::PsockSavedReady => "Bug #6",
            BugId::XskStateBound => "Bug #7",
            BugId::SmcClcsock => "Bug #8",
            BugId::TlsSkProt => "Bug #9",
            BugId::SmcFput => "Bug #10",
            BugId::GsmDlci => "Bug #11",
            BugId::KnownVlan => "#1",
            BugId::KnownWatchQueuePost => "#2",
            BugId::KnownXskUmem => "#3",
            BugId::KnownXskState => "#4",
            BugId::KnownFget => "#5",
            BugId::KnownSbitmap => "#6",
            BugId::KnownNbd => "#7",
            BugId::KnownTlsErr => "#8",
            BugId::KnownUnix => "#9",
            BugId::ExtBufferDoubleFree => "E1",
            BugId::ExtRingBuffer => "E2",
            BugId::ExtFilemap => "E3",
            BugId::ExtUsbKillUrb => "E4",
        }
    }

    /// Affected subsystem, as named in the paper's tables.
    pub fn subsystem(self) -> &'static str {
        match self {
            BugId::RdsClearBit => "RDS",
            BugId::WatchQueueFilter | BugId::KnownWatchQueuePost => "watchqueue",
            BugId::VmciQueuePair => "VMCI",
            BugId::XskPoolPublish | BugId::XskStateBound => "XDP",
            BugId::KnownXskUmem | BugId::KnownXskState => "xsk",
            BugId::TlsGetsockopt | BugId::TlsSkProt => "TLS",
            BugId::KnownTlsErr => "tls",
            BugId::PsockSavedReady => "BPF",
            BugId::SmcClcsock | BugId::SmcFput => "SMC",
            BugId::GsmDlci => "GSM",
            BugId::KnownVlan => "vlan",
            BugId::KnownFget => "fs",
            BugId::KnownSbitmap => "sbitmap",
            BugId::KnownNbd => "nbd",
            BugId::KnownUnix => "unix",
            BugId::ExtBufferDoubleFree => "fs/buffer",
            BugId::ExtRingBuffer => "ring-buffer",
            BugId::ExtFilemap => "mm/filemap",
            BugId::ExtUsbKillUrb => "USB",
        }
    }

    /// Reordering type that triggers the bug: store-store or load-load
    /// (the `Type` columns of Tables 3 and 4).
    pub fn reorder_type(self) -> ReorderType {
        match self {
            BugId::TlsGetsockopt
            | BugId::GsmDlci
            | BugId::KnownFget
            | BugId::KnownNbd
            | BugId::KnownUnix => ReorderType::LoadLoad,
            BugId::ExtUsbKillUrb => ReorderType::StoreLoad,
            _ => ReorderType::StoreStore,
        }
    }

    /// Crash title the bug produces (Table 3 `Summary` column), or the
    /// observable misbehaviour for non-crash bugs.
    pub fn expected_title(self) -> &'static str {
        match self {
            BugId::RdsClearBit => "KASAN: slab-out-of-bounds Read in rds_loop_xmit",
            BugId::WatchQueueFilter => {
                "BUG: unable to handle kernel NULL pointer dereference in _find_first_bit"
            }
            BugId::VmciQueuePair => "general protection fault in add_wait_queue",
            BugId::XskPoolPublish => {
                "BUG: unable to handle kernel NULL pointer dereference in xsk_poll"
            }
            BugId::TlsGetsockopt => {
                "BUG: unable to handle kernel NULL pointer dereference in tls_getsockopt"
            }
            BugId::PsockSavedReady => {
                "BUG: unable to handle kernel NULL pointer dereference in sk_psock_verdict_data_ready"
            }
            BugId::XskStateBound => {
                "BUG: unable to handle kernel NULL pointer dereference in xsk_generic_xmit"
            }
            BugId::SmcClcsock => {
                "BUG: unable to handle kernel NULL pointer dereference in connect"
            }
            BugId::TlsSkProt => {
                "BUG: unable to handle kernel NULL pointer dereference in tls_setsockopt"
            }
            BugId::SmcFput => "KASAN: null-ptr-deref Write in fput",
            BugId::GsmDlci => {
                "BUG: unable to handle kernel NULL pointer dereference in gsm_dlci_config"
            }
            BugId::KnownVlan => {
                "BUG: unable to handle kernel NULL pointer dereference in vlan_dev_ioctl"
            }
            BugId::KnownWatchQueuePost => {
                "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
            }
            BugId::KnownXskUmem => {
                "BUG: unable to handle kernel NULL pointer dereference in xsk_rx"
            }
            BugId::KnownXskState => {
                "BUG: unable to handle kernel NULL pointer dereference in xsk_generic_xmit"
            }
            BugId::KnownFget => {
                "BUG: unable to handle kernel NULL pointer dereference in __fget_light"
            }
            BugId::KnownSbitmap => "KASAN: use-after-free Read in sbitmap_queue_get",
            BugId::KnownNbd => {
                "BUG: unable to handle kernel NULL pointer dereference in nbd_ioctl"
            }
            BugId::KnownTlsErr => "wrong value returned by tls_poll_err",
            BugId::KnownUnix => {
                "BUG: unable to handle kernel NULL pointer dereference in unix_getname"
            }
            BugId::ExtBufferDoubleFree => "KASAN: double-free in bh_evict",
            BugId::ExtRingBuffer => {
                "kernel BUG at ring_buffer_read: consumed uninitialised ring entry"
            }
            BugId::ExtFilemap => "wrong value returned by filemap_read",
            BugId::ExtUsbKillUrb => "kernel BUG at usb_kill_urb: URB killed while in flight",
        }
    }

    /// Every seeded bug, paper order (new, known, extended).
    pub fn all_ids() -> impl Iterator<Item = BugId> {
        BugId::NEW
            .into_iter()
            .chain(BugId::KNOWN)
            .chain(BugId::EXTENDED)
    }

    /// Stable single-word serialization token (the variant name). Part of
    /// the checkpoint / crash-database text formats.
    pub fn token(self) -> &'static str {
        match self {
            BugId::RdsClearBit => "RdsClearBit",
            BugId::WatchQueueFilter => "WatchQueueFilter",
            BugId::VmciQueuePair => "VmciQueuePair",
            BugId::XskPoolPublish => "XskPoolPublish",
            BugId::TlsGetsockopt => "TlsGetsockopt",
            BugId::PsockSavedReady => "PsockSavedReady",
            BugId::XskStateBound => "XskStateBound",
            BugId::SmcClcsock => "SmcClcsock",
            BugId::TlsSkProt => "TlsSkProt",
            BugId::SmcFput => "SmcFput",
            BugId::GsmDlci => "GsmDlci",
            BugId::KnownVlan => "KnownVlan",
            BugId::KnownWatchQueuePost => "KnownWatchQueuePost",
            BugId::KnownXskUmem => "KnownXskUmem",
            BugId::KnownXskState => "KnownXskState",
            BugId::KnownFget => "KnownFget",
            BugId::KnownSbitmap => "KnownSbitmap",
            BugId::KnownNbd => "KnownNbd",
            BugId::KnownTlsErr => "KnownTlsErr",
            BugId::KnownUnix => "KnownUnix",
            BugId::ExtBufferDoubleFree => "ExtBufferDoubleFree",
            BugId::ExtRingBuffer => "ExtRingBuffer",
            BugId::ExtFilemap => "ExtFilemap",
            BugId::ExtUsbKillUrb => "ExtUsbKillUrb",
        }
    }

    /// Parses a [`BugId::token`] back to the id.
    pub fn from_token(s: &str) -> Option<BugId> {
        BugId::all_ids().find(|id| id.token() == s)
    }
}

impl fmt::Display for BugId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.label(), self.subsystem())
    }
}

/// The reordering classes OZZ exercises (load-store is out of scope,
/// §3 "Scope of emulation").
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReorderType {
    /// Store-store via delayed stores.
    StoreStore,
    /// Store-load via delayed stores overtaking a subsequent load (the SB
    /// shape; same OEMU mechanism as store-store, per §3.1).
    StoreLoad,
    /// Load-load via versioned loads.
    LoadLoad,
}

impl fmt::Display for ReorderType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReorderType::StoreStore => write!(f, "S-S"),
            ReorderType::StoreLoad => write!(f, "S-L"),
            ReorderType::LoadLoad => write!(f, "L-L"),
        }
    }
}

impl ReorderType {
    /// Parses the `Display` form (`S-S` / `S-L` / `L-L`) back.
    pub fn parse(s: &str) -> Option<ReorderType> {
        match s {
            "S-S" => Some(ReorderType::StoreStore),
            "S-L" => Some(ReorderType::StoreLoad),
            "L-L" => Some(ReorderType::LoadLoad),
            _ => None,
        }
    }
}

/// The set of bug switches active in one simulated kernel build.
///
/// Ordered and hashable so it can key a machine pool: machines booted with
/// the same switch set are interchangeable.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BugSwitches {
    enabled: BTreeSet<BugId>,
}

impl BugSwitches {
    /// A fully patched kernel (every fix applied).
    pub fn none() -> Self {
        Self::default()
    }

    /// A kernel with every seeded bug present (including the extended
    /// §2.2 corpus).
    pub fn all() -> Self {
        let mut s = Self::default();
        s.enabled.extend(BugId::NEW);
        s.enabled.extend(BugId::KNOWN);
        s.enabled.extend(BugId::EXTENDED);
        s
    }

    /// A kernel with exactly the given bugs present.
    pub fn only(bugs: impl IntoIterator<Item = BugId>) -> Self {
        BugSwitches {
            enabled: bugs.into_iter().collect(),
        }
    }

    /// Whether `bug`'s buggy variant is compiled in.
    pub fn has(&self, bug: BugId) -> bool {
        self.enabled.contains(&bug)
    }

    /// The enabled bugs in sorted (BTreeSet) order.
    pub fn iter(&self) -> impl Iterator<Item = BugId> + '_ {
        self.enabled.iter().copied()
    }

    /// A stable single-word key naming this switch set, for serialization
    /// and per-configuration triage stats: `none`, `all`, or the sorted
    /// `+`-joined bug tokens.
    pub fn key(&self) -> String {
        if self.enabled.is_empty() {
            return "none".into();
        }
        if *self == BugSwitches::all() {
            return "all".into();
        }
        self.iter().map(BugId::token).collect::<Vec<_>>().join("+")
    }

    /// Parses a [`BugSwitches::key`] back into a switch set.
    pub fn parse_key(s: &str) -> Result<BugSwitches, String> {
        match s {
            "none" => Ok(BugSwitches::none()),
            "all" => Ok(BugSwitches::all()),
            _ => {
                let mut set = BugSwitches::none();
                for tok in s.split('+') {
                    let id = BugId::from_token(tok)
                        .ok_or_else(|| format!("unknown bug token {tok:?}"))?;
                    set.enabled.insert(id);
                }
                Ok(set)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_new_nine_known_four_extended() {
        assert_eq!(BugId::NEW.len(), 11);
        assert_eq!(BugId::KNOWN.len(), 9);
        assert_eq!(BugId::EXTENDED.len(), 4);
    }

    #[test]
    fn reorder_types_match_tables() {
        // Table 4: five S-S, three L-L among the reproducible; plus the
        // sbitmap S-S failure case.
        assert_eq!(BugId::KnownVlan.reorder_type(), ReorderType::StoreStore);
        assert_eq!(BugId::KnownFget.reorder_type(), ReorderType::LoadLoad);
        assert_eq!(BugId::KnownNbd.reorder_type(), ReorderType::LoadLoad);
        assert_eq!(BugId::KnownUnix.reorder_type(), ReorderType::LoadLoad);
        // Table 3 case studies.
        assert_eq!(BugId::RdsClearBit.reorder_type(), ReorderType::StoreStore);
        assert_eq!(BugId::TlsGetsockopt.reorder_type(), ReorderType::LoadLoad);
    }

    #[test]
    fn switch_sets() {
        let none = BugSwitches::none();
        assert!(!none.has(BugId::TlsSkProt));
        let all = BugSwitches::all();
        assert!(all.has(BugId::TlsSkProt));
        assert!(all.has(BugId::KnownUnix));
        assert!(all.has(BugId::ExtUsbKillUrb));
        let one = BugSwitches::only([BugId::RdsClearBit]);
        assert!(one.has(BugId::RdsClearBit));
        assert!(!one.has(BugId::TlsSkProt));
    }

    #[test]
    fn tokens_roundtrip_for_every_bug() {
        for id in BugId::all_ids() {
            assert_eq!(BugId::from_token(id.token()), Some(id), "{id}");
        }
        assert_eq!(BugId::from_token("NoSuchBug"), None);
        for rt in [
            ReorderType::StoreStore,
            ReorderType::StoreLoad,
            ReorderType::LoadLoad,
        ] {
            assert_eq!(ReorderType::parse(&rt.to_string()), Some(rt));
        }
        assert_eq!(ReorderType::parse("X-X"), None);
    }

    #[test]
    fn switch_keys_roundtrip() {
        for set in [
            BugSwitches::none(),
            BugSwitches::all(),
            BugSwitches::only([BugId::TlsSkProt]),
            BugSwitches::only([BugId::GsmDlci, BugId::RdsClearBit]),
        ] {
            assert_eq!(BugSwitches::parse_key(&set.key()).as_ref(), Ok(&set));
        }
        assert_eq!(BugSwitches::none().key(), "none");
        assert_eq!(BugSwitches::all().key(), "all");
        assert_eq!(
            BugSwitches::only([BugId::GsmDlci, BugId::RdsClearBit]).key(),
            "RdsClearBit+GsmDlci",
            "keys list bugs in BTreeSet (declaration) order"
        );
        assert!(BugSwitches::parse_key("Nope+GsmDlci").is_err());
    }

    #[test]
    fn labels_and_subsystems() {
        assert_eq!(BugId::RdsClearBit.label(), "Bug #1");
        assert_eq!(BugId::GsmDlci.label(), "Bug #11");
        assert_eq!(BugId::TlsSkProt.subsystem(), "TLS");
        assert_eq!(BugId::KnownSbitmap.subsystem(), "sbitmap");
        assert_eq!(ReorderType::StoreStore.to_string(), "S-S");
        assert_eq!(ReorderType::LoadLoad.to_string(), "L-L");
        assert_eq!(ReorderType::StoreLoad.to_string(), "S-L");
        assert_eq!(BugId::ExtUsbKillUrb.reorder_type(), ReorderType::StoreLoad);
    }
}
