//! The simulated kernel's system-call surface.
//!
//! [`Syscall`] is the value-level form of one invocation (what the paper's
//! Syzlang programs encode); [`dispatch`] is the kernel entry point. The
//! fuzzer-side argument templates (resource kinds, ranges) live in the
//! `ozz` crate; this module only defines what the kernel accepts.

use oemu::Tid;

use crate::kctx::Kctx;
use crate::subsys;

/// One system-call invocation with concrete arguments.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Syscall {
    // watch_queue + pipe.
    /// `ioctl(IOC_WATCH_QUEUE_SET_FILTER)` — install a filter of `nwords`
    /// bitmap words.
    WqSetFilter {
        /// Bitmap words (clamped to 1..=4).
        nwords: u64,
    },
    /// Post one notification into the watch queue's pipe.
    WqPost,
    /// `read` on the notification pipe.
    PipeRead,
    // TLS.
    /// `setsockopt(SOL_TCP, TCP_ULP, "tls")`.
    TlsInit {
        /// Socket index.
        fd: u64,
    },
    /// `setsockopt` routed through the socket's current proto table.
    SetSockOpt {
        /// Socket index.
        fd: u64,
    },
    /// `getsockopt` routed through the socket's current proto table.
    GetSockOpt {
        /// Socket index.
        fd: u64,
    },
    /// Abort the TLS stream with an error.
    TlsErrAbort {
        /// Socket index.
        fd: u64,
    },
    /// Poll the TLS stream for a pending error.
    TlsPollErr {
        /// Socket index.
        fd: u64,
    },
    // RDS.
    /// Requeue transmission onto the next message.
    RdsSendXmit,
    /// Transmit one fragment over the loopback transport.
    RdsLoopXmit,
    // XDP / xsk.
    /// Register a umem on the socket.
    XskRegUmem {
        /// Socket index.
        fd: u64,
    },
    /// Bind the socket (creates pool and TX queue).
    XskBind {
        /// Socket index.
        fd: u64,
    },
    /// `poll` on the socket.
    XskPoll {
        /// Socket index.
        fd: u64,
    },
    /// `sendmsg` on the socket.
    XskSendmsg {
        /// Socket index.
        fd: u64,
    },
    /// RX-path processing on the socket.
    XskRx {
        /// Socket index.
        fd: u64,
    },
    // BPF sockmap.
    /// Attach a psock to the socket.
    PsockInit {
        /// Socket index.
        fd: u64,
    },
    /// Deliver data to the socket (runs `data_ready`).
    SockRecvmsg {
        /// Socket index.
        fd: u64,
    },
    // SMC.
    /// `connect` on the SMC socket.
    SmcConnect {
        /// Socket index.
        fd: u64,
    },
    /// `accept`: install a file and signal the fput worker.
    SmcAccept {
        /// Socket index.
        fd: u64,
    },
    /// The deferred fput worker.
    SmcFputWorker {
        /// Socket index.
        fd: u64,
    },
    // VMCI.
    /// Create and publish the queue pair.
    VmciQpCreate,
    /// Attach to the published queue pair.
    VmciQpAttach,
    // GSM.
    /// Open a DLCI channel.
    GsmDlciAlloc {
        /// Channel index.
        idx: u64,
    },
    /// Read a DLCI channel's configuration.
    GsmDlciConfig {
        /// Channel index.
        idx: u64,
    },
    // vlan.
    /// Register a vlan device.
    VlanAdd {
        /// vlan id.
        id: u64,
    },
    /// `ioctl` on a vlan device.
    VlanGet {
        /// vlan id.
        id: u64,
    },
    // fs.
    /// Install a file into the fd table.
    FdInstall {
        /// Slot index.
        fd: u64,
    },
    /// Lockless `__fget_light` fast path.
    FgetLight {
        /// Slot index.
        fd: u64,
    },
    // nbd.
    /// Allocate and publish the device config.
    NbdAllocConfig,
    /// `ioctl` on the device.
    NbdIoctl,
    // unix.
    /// `bind` the unix socket.
    UnixBind {
        /// Socket index.
        fd: u64,
    },
    /// `getsockname` on the unix socket.
    UnixGetname {
        /// Socket index.
        fd: u64,
    },
    // sbitmap.
    /// Retire and refresh this CPU's slot instance.
    SbitmapClear,
    /// Allocate this CPU's slot.
    SbitmapGet,
    // fs/buffer (extended corpus).
    /// Replace the page's buffer head under the bit lock.
    BhReplace,
    /// Evict and free the page's buffer head under the bit lock.
    BhEvict,
    // Tracing ring buffer (extended corpus).
    /// Reserve, fill, and commit one event.
    RingBufferWrite {
        /// Event payload.
        data: u64,
    },
    /// Consume the next committed event.
    RingBufferRead,
    // mm/filemap (extended corpus).
    /// Buffered write: fill the page, publish uptodate.
    FilemapWrite {
        /// Data value (0 is canonicalised away).
        val: u64,
    },
    /// Lockless buffered-read fast path.
    FilemapRead,
    // USB core (extended corpus).
    /// Submit a transfer on the URB.
    UsbSubmitUrb,
    /// Completion interrupt for the in-flight transfer.
    UsbComplete,
    /// Kill the URB.
    UsbKillUrb,
}

impl Syscall {
    /// The kernel-side entry function name, for reports and dedup.
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::WqSetFilter { .. } => "watch_queue_set_filter",
            Syscall::WqPost => "post_one_notification",
            Syscall::PipeRead => "pipe_read",
            Syscall::TlsInit { .. } => "tls_init",
            Syscall::SetSockOpt { .. } => "sock_common_setsockopt",
            Syscall::GetSockOpt { .. } => "sock_common_getsockopt",
            Syscall::TlsErrAbort { .. } => "tls_err_abort",
            Syscall::TlsPollErr { .. } => "tls_poll_err",
            Syscall::RdsSendXmit => "rds_send_xmit",
            Syscall::RdsLoopXmit => "rds_loop_xmit",
            Syscall::XskRegUmem { .. } => "xdp_umem_reg",
            Syscall::XskBind { .. } => "xsk_bind",
            Syscall::XskPoll { .. } => "xsk_poll",
            Syscall::XskSendmsg { .. } => "xsk_sendmsg",
            Syscall::XskRx { .. } => "xsk_rx",
            Syscall::PsockInit { .. } => "sk_psock_init",
            Syscall::SockRecvmsg { .. } => "sock_recvmsg",
            Syscall::SmcConnect { .. } => "smc_connect",
            Syscall::SmcAccept { .. } => "smc_accept",
            Syscall::SmcFputWorker { .. } => "smc_close_work",
            Syscall::VmciQpCreate => "qp_broker_create",
            Syscall::VmciQpAttach => "qp_broker_attach",
            Syscall::GsmDlciAlloc { .. } => "gsm_dlci_alloc",
            Syscall::GsmDlciConfig { .. } => "gsm_dlci_config",
            Syscall::VlanAdd { .. } => "register_vlan_device",
            Syscall::VlanGet { .. } => "vlan_dev_ioctl",
            Syscall::FdInstall { .. } => "fd_install",
            Syscall::FgetLight { .. } => "__fget_light",
            Syscall::NbdAllocConfig => "nbd_alloc_and_init_config",
            Syscall::NbdIoctl => "nbd_ioctl",
            Syscall::UnixBind { .. } => "unix_bind",
            Syscall::UnixGetname { .. } => "unix_getname",
            Syscall::SbitmapClear => "sbitmap_queue_clear",
            Syscall::SbitmapGet => "sbitmap_queue_get",
            Syscall::BhReplace => "bh_replace",
            Syscall::BhEvict => "bh_evict",
            Syscall::RingBufferWrite { .. } => "ring_buffer_write",
            Syscall::RingBufferRead => "ring_buffer_read",
            Syscall::FilemapWrite { .. } => "filemap_write",
            Syscall::FilemapRead => "filemap_read",
            Syscall::UsbSubmitUrb => "usb_submit_urb",
            Syscall::UsbComplete => "usb_hcd_giveback_urb",
            Syscall::UsbKillUrb => "usb_kill_urb",
        }
    }
}

// Token serialization: `VariantName` for unit variants, `VariantName=N`
// for the single-argument ones. The `to_token` match is exhaustive, so
// adding a syscall without listing it here is a compile error — the
// checkpoint format can never silently lag the syscall surface.
macro_rules! syscall_tokens {
    (
        unit { $($u:ident),* $(,)? }
        arg { $($v:ident { $field:ident }),* $(,)? }
    ) => {
        impl Syscall {
            /// Serializes to a stable, whitespace-free text token
            /// (`VariantName` or `VariantName=arg`) for checkpoints.
            pub fn to_token(&self) -> String {
                match *self {
                    $(Syscall::$u => stringify!($u).to_string(),)*
                    $(Syscall::$v { $field } =>
                        format!(concat!(stringify!($v), "={}"), $field),)*
                }
            }

            /// Parses a [`Syscall::to_token`] token back.
            pub fn from_token(s: &str) -> Result<Syscall, String> {
                if let Some((name, arg)) = s.split_once('=') {
                    let n: u64 = arg
                        .parse()
                        .map_err(|e| format!("bad syscall arg {s:?}: {e}"))?;
                    match name {
                        $(stringify!($v) => Ok(Syscall::$v { $field: n }),)*
                        _ => Err(format!("unknown syscall token {s:?}")),
                    }
                } else {
                    match s {
                        $(stringify!($u) => Ok(Syscall::$u),)*
                        _ => Err(format!("unknown syscall token {s:?}")),
                    }
                }
            }
        }
    };
}

syscall_tokens! {
    unit {
        WqPost, PipeRead, RdsSendXmit, RdsLoopXmit, VmciQpCreate,
        VmciQpAttach, NbdAllocConfig, NbdIoctl, SbitmapClear, SbitmapGet,
        BhReplace, BhEvict, RingBufferRead, FilemapRead, UsbSubmitUrb,
        UsbComplete, UsbKillUrb,
    }
    arg {
        WqSetFilter { nwords }, TlsInit { fd }, SetSockOpt { fd },
        GetSockOpt { fd }, TlsErrAbort { fd }, TlsPollErr { fd },
        XskRegUmem { fd }, XskBind { fd }, XskPoll { fd },
        XskSendmsg { fd }, XskRx { fd }, PsockInit { fd },
        SockRecvmsg { fd }, SmcConnect { fd }, SmcAccept { fd },
        SmcFputWorker { fd }, GsmDlciAlloc { idx }, GsmDlciConfig { idx },
        VlanAdd { id }, VlanGet { id }, FdInstall { fd },
        FgetLight { fd }, UnixBind { fd }, UnixGetname { fd },
        RingBufferWrite { data }, FilemapWrite { val },
    }
}

/// The kernel entry point: dispatches one syscall on simulated CPU `t`.
pub fn dispatch(k: &Kctx, t: Tid, sc: Syscall) -> i64 {
    match sc {
        Syscall::WqSetFilter { nwords } => {
            subsys::watch_queue::watch_queue_set_filter(k, t, nwords)
        }
        Syscall::WqPost => subsys::watch_queue::post_one_notification(k, t),
        Syscall::PipeRead => subsys::watch_queue::pipe_read(k, t),
        Syscall::TlsInit { fd } => subsys::tls::tls_init(k, t, fd),
        Syscall::SetSockOpt { fd } => subsys::tls::sock_setsockopt(k, t, fd),
        Syscall::GetSockOpt { fd } => subsys::tls::sock_getsockopt(k, t, fd),
        Syscall::TlsErrAbort { fd } => subsys::tls::tls_err_abort(k, t, fd),
        Syscall::TlsPollErr { fd } => subsys::tls::tls_poll_err(k, t, fd),
        Syscall::RdsSendXmit => subsys::rds::rds_send_xmit(k, t),
        Syscall::RdsLoopXmit => subsys::rds::rds_loop_xmit(k, t),
        Syscall::XskRegUmem { fd } => subsys::xsk::xsk_reg_umem(k, t, fd),
        Syscall::XskBind { fd } => subsys::xsk::xsk_bind(k, t, fd),
        Syscall::XskPoll { fd } => subsys::xsk::xsk_poll(k, t, fd),
        Syscall::XskSendmsg { fd } => subsys::xsk::xsk_sendmsg(k, t, fd),
        Syscall::XskRx { fd } => subsys::xsk::xsk_rx(k, t, fd),
        Syscall::PsockInit { fd } => subsys::bpf_psock::psock_init(k, t, fd),
        Syscall::SockRecvmsg { fd } => subsys::bpf_psock::sock_recvmsg(k, t, fd),
        Syscall::SmcConnect { fd } => subsys::smc::smc_connect(k, t, fd),
        Syscall::SmcAccept { fd } => subsys::smc::smc_accept(k, t, fd),
        Syscall::SmcFputWorker { fd } => subsys::smc::smc_fput_worker(k, t, fd),
        Syscall::VmciQpCreate => subsys::vmci::vmci_qp_create(k, t),
        Syscall::VmciQpAttach => subsys::vmci::vmci_qp_attach(k, t),
        Syscall::GsmDlciAlloc { idx } => subsys::gsm::gsm_dlci_alloc(k, t, idx),
        Syscall::GsmDlciConfig { idx } => subsys::gsm::gsm_dlci_config(k, t, idx),
        Syscall::VlanAdd { id } => subsys::vlan::vlan_add(k, t, id),
        Syscall::VlanGet { id } => subsys::vlan::vlan_get(k, t, id),
        Syscall::FdInstall { fd } => subsys::fs_fdtable::fd_install(k, t, fd),
        Syscall::FgetLight { fd } => subsys::fs_fdtable::fget_light(k, t, fd),
        Syscall::NbdAllocConfig => subsys::nbd::nbd_alloc_config(k, t),
        Syscall::NbdIoctl => subsys::nbd::nbd_ioctl(k, t),
        Syscall::UnixBind { fd } => subsys::unix_sock::unix_bind(k, t, fd),
        Syscall::UnixGetname { fd } => subsys::unix_sock::unix_getname(k, t, fd),
        Syscall::SbitmapClear => subsys::sbitmap::sbitmap_queue_clear(k, t),
        Syscall::SbitmapGet => subsys::sbitmap::sbitmap_queue_get(k, t),
        Syscall::BhReplace => subsys::buffer_head::bh_replace(k, t),
        Syscall::BhEvict => subsys::buffer_head::bh_evict(k, t),
        Syscall::RingBufferWrite { data } => subsys::ring_buffer::ring_buffer_write(k, t, data),
        Syscall::RingBufferRead => subsys::ring_buffer::ring_buffer_read(k, t),
        Syscall::FilemapWrite { val } => subsys::filemap::filemap_write(k, t, val),
        Syscall::FilemapRead => subsys::filemap::filemap_read(k, t),
        Syscall::UsbSubmitUrb => subsys::usb::usb_submit_urb(k, t),
        Syscall::UsbComplete => subsys::usb::usb_complete(k, t),
        Syscall::UsbKillUrb => subsys::usb::usb_kill_urb(k, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::exec::run_one;

    /// Every syscall, with benign arguments, for smoke testing.
    pub fn all_syscalls() -> Vec<Syscall> {
        vec![
            Syscall::WqSetFilter { nwords: 1 },
            Syscall::WqPost,
            Syscall::PipeRead,
            Syscall::TlsInit { fd: 0 },
            Syscall::SetSockOpt { fd: 0 },
            Syscall::GetSockOpt { fd: 0 },
            Syscall::TlsErrAbort { fd: 0 },
            Syscall::TlsPollErr { fd: 0 },
            Syscall::RdsSendXmit,
            Syscall::RdsLoopXmit,
            Syscall::XskRegUmem { fd: 0 },
            Syscall::XskBind { fd: 0 },
            Syscall::XskPoll { fd: 0 },
            Syscall::XskSendmsg { fd: 0 },
            Syscall::XskRx { fd: 0 },
            Syscall::PsockInit { fd: 0 },
            Syscall::SockRecvmsg { fd: 0 },
            Syscall::SmcConnect { fd: 0 },
            Syscall::SmcAccept { fd: 0 },
            Syscall::SmcFputWorker { fd: 0 },
            Syscall::VmciQpCreate,
            Syscall::VmciQpAttach,
            Syscall::GsmDlciAlloc { idx: 0 },
            Syscall::GsmDlciConfig { idx: 0 },
            Syscall::VlanAdd { id: 0 },
            Syscall::VlanGet { id: 0 },
            Syscall::FdInstall { fd: 0 },
            Syscall::FgetLight { fd: 0 },
            Syscall::NbdAllocConfig,
            Syscall::NbdIoctl,
            Syscall::UnixBind { fd: 0 },
            Syscall::UnixGetname { fd: 0 },
            Syscall::SbitmapClear,
            Syscall::SbitmapGet,
            Syscall::BhReplace,
            Syscall::BhEvict,
            Syscall::RingBufferWrite { data: 0xfeed },
            Syscall::RingBufferRead,
            Syscall::FilemapWrite { val: 7 },
            Syscall::FilemapRead,
            Syscall::UsbSubmitUrb,
            Syscall::UsbComplete,
            Syscall::UsbKillUrb,
        ]
    }

    #[test]
    fn every_syscall_runs_in_order_without_crashing() {
        // Even on the all-bugs kernel, sequential execution is benign: OOO
        // bugs need reordering or interleaving to manifest.
        for switches in [BugSwitches::none(), BugSwitches::all()] {
            let k = crate::kctx::Kctx::new(switches);
            for sc in all_syscalls() {
                run_one(&k, oemu::Tid(0), sc);
            }
            assert!(
                k.sink.is_empty(),
                "in-order execution must never crash: {:?}",
                k.sink.take()
            );
        }
    }

    #[test]
    fn every_syscall_runs_twice_idempotently() {
        let k = crate::kctx::Kctx::new(BugSwitches::all());
        for sc in all_syscalls().into_iter().chain(all_syscalls()) {
            run_one(&k, oemu::Tid(0), sc);
        }
        assert!(k.sink.is_empty());
    }

    #[test]
    fn tokens_roundtrip_for_every_syscall() {
        for sc in all_syscalls() {
            let tok = sc.to_token();
            assert!(
                !tok.contains(char::is_whitespace),
                "token {tok:?} must be whitespace-free"
            );
            assert_eq!(Syscall::from_token(&tok), Ok(sc), "{tok}");
        }
        assert_eq!(
            Syscall::from_token("TlsInit=3"),
            Ok(Syscall::TlsInit { fd: 3 })
        );
        assert!(Syscall::from_token("NoSuchCall").is_err());
        assert!(Syscall::from_token("TlsInit=abc").is_err());
        assert!(Syscall::from_token("WqPost=1").is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Syscall::WqPost.name(), "post_one_notification");
        assert_eq!(Syscall::TlsInit { fd: 1 }.name(), "tls_init");
        assert_eq!(Syscall::SbitmapGet.name(), "sbitmap_queue_get");
    }
}
