//! Test execution: running syscalls on simulated CPUs.
//!
//! The concurrent runner is the machine-level half of OZZ's MTI execution
//! (§4.4): two syscalls run on two simulated CPUs serialised by the custom
//! scheduler, with whatever reordering instructions the caller installed in
//! the engine. A simulated oops ([`CrashSignal`]) terminates the faulting
//! CPU — its syscall returns [`ECRASH`] — while the other CPU keeps running,
//! and the harvested crash reports come back in the [`RunOutcome`].
//!
//! One pair execution is fully described by an [`ExecRequest`]: the two
//! syscalls plus an [`ExecDrive`] saying what steers the interleaving — a
//! live [`SchedulePlan`], the same plan in record mode, or a previously
//! recorded [`ScheduleTrace`] to replay. [`execute`] is the single
//! dispatch point; every mode/executor combination funnels through it, so
//! the record/replay/model flags cannot be combined inconsistently.
//!
//! The dispatch honours the machine's [`ExecMode`]: the *stepped* executor
//! (default) runs both legs interleaved on the calling thread via
//! [`ksched::StepScheduler`], while the *threaded* executor serialises two
//! OS threads (spawned, or the machine pool's persistent workers) through
//! [`ksched::Scheduler`]. The two produce byte-identical outcomes, traces,
//! and state digests — pinned by `tests/exec_equivalence.rs` — and differ
//! only in throughput.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use kmem::CrashReport;
use ksched::{SchedulePlan, Scheduler, StepScheduler};
use kutil::sync::Mutex;
use oemu::{ScheduleTrace, SwitchPoint, Tid};

use crate::kctx::{CrashSignal, Kctx, ECRASH};
use crate::pool::CpuWorkers;
use crate::syscalls::{dispatch, Syscall};

/// Which executor runs the two legs of a concurrent pair.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// One OS thread per simulated CPU, serialised by the token-passing
    /// [`Scheduler`] (spawned threads, or the pool's persistent workers).
    Threaded = 0,
    /// Both simulated CPUs interleaved on the calling thread by the
    /// [`StepScheduler`]; a context switch is a nested function call.
    #[default]
    Stepped = 1,
}

impl ExecMode {
    /// The process-wide default, from the `OZZ_EXEC` environment variable:
    /// `stepped` selects the stepped executor, `threaded` the threaded
    /// one; unset defaults to stepped. Any other value panics: a typo
    /// like `OZZ_EXEC=threded` must not silently test the wrong executor.
    pub fn from_env() -> Self {
        match std::env::var("OZZ_EXEC") {
            Err(_) => ExecMode::Stepped,
            Ok(v) => match v.as_str() {
                "stepped" => ExecMode::Stepped,
                "threaded" => ExecMode::Threaded,
                _ => panic!(
                    "unrecognized OZZ_EXEC value {v:?}: valid values are \"stepped\", \
                     \"threaded\" (unset defaults to stepped)"
                ),
            },
        }
    }
}

/// Result of one concurrent test run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Crash reports harvested from the oracles.
    pub crashes: Vec<CrashReport>,
    /// Return value of the syscall on CPU 0 ([`ECRASH`] if it oopsed).
    pub ret_a: i64,
    /// Return value of the syscall on CPU 1 ([`ECRASH`] if it oopsed).
    pub ret_b: i64,
}

impl RunOutcome {
    /// Whether any oracle fired.
    pub fn crashed(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// Title of the first crash, if any.
    pub fn title(&self) -> Option<&str> {
        self.crashes.first().map(|c| c.title.as_str())
    }
}

/// Fidelity report of a trace-replay run (see [`ExecDrive::Replay`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayReport {
    /// The execution departed from the trace at some point.
    pub diverged: bool,
    /// Engine steps consumed.
    pub steps_consumed: usize,
    /// Engine steps in the trace.
    pub steps_total: usize,
}

/// What steers the interleaving decisions of one pair execution.
#[derive(Clone, Debug)]
pub enum ExecDrive<'t> {
    /// A live run under a schedule plan, with whatever Table 2 reordering
    /// controls the caller installed in the engine.
    Live(SchedulePlan),
    /// A live run under a plan with the full decision stream recorded;
    /// the reply carries the resulting [`ScheduleTrace`].
    Record(SchedulePlan),
    /// A run slaved to a recorded trace (no control sets needed); the
    /// reply carries a [`ReplayReport`]. A sparse trace
    /// ([`ScheduleTrace::sparse`]) replays by reinstalling its decisions
    /// as engine controls and slaving only the scheduler to the switch
    /// script; a full trace slaves the engine to the event stream.
    Replay(&'t ScheduleTrace),
}

/// One concurrent pair execution, fully specified: the two syscalls and
/// what drives their interleaving. Built with [`ExecRequest::live`],
/// [`ExecRequest::recorded`], or [`ExecRequest::replay`] and run by
/// [`execute`] (fresh/spawned) or [`crate::PooledMachine::execute`]
/// (pooled) — the record/replay/model flags all travel together, so they
/// cannot be combined inconsistently.
#[derive(Clone, Debug)]
pub struct ExecRequest<'t> {
    /// Syscall on simulated CPU 0.
    pub a: Syscall,
    /// Syscall on simulated CPU 1.
    pub b: Syscall,
    /// Live / record / replay.
    pub drive: ExecDrive<'t>,
}

impl ExecRequest<'static> {
    /// A live run of `a` ∥ `b` under `plan`.
    pub fn live(plan: SchedulePlan, a: Syscall, b: Syscall) -> Self {
        ExecRequest {
            a,
            b,
            drive: ExecDrive::Live(plan),
        }
    }

    /// A recorded run of `a` ∥ `b` under `plan`.
    pub fn recorded(plan: SchedulePlan, a: Syscall, b: Syscall) -> Self {
        ExecRequest {
            a,
            b,
            drive: ExecDrive::Record(plan),
        }
    }
}

impl<'t> ExecRequest<'t> {
    /// A replay of `a` ∥ `b` slaved to `trace`.
    pub fn replay(trace: &'t ScheduleTrace, a: Syscall, b: Syscall) -> Self {
        ExecRequest {
            a,
            b,
            drive: ExecDrive::Replay(trace),
        }
    }
}

/// Everything one pair execution can produce. Which optional parts are
/// present is determined by the request's [`ExecDrive`]:
/// `trace` is `Some` iff the drive was `Record`, `replay` is `Some` iff
/// the drive was `Replay`.
#[derive(Clone, Debug)]
pub struct ExecReply {
    /// Crash reports and per-CPU return values.
    pub outcome: RunOutcome,
    /// The recorded decision stream (`Record` drives only).
    pub trace: Option<ScheduleTrace>,
    /// Replay fidelity (`Replay` drives only).
    pub replay: Option<ReplayReport>,
}

impl ExecReply {
    /// Unpacks a `Record` reply into `(outcome, trace)`.
    ///
    /// # Panics
    ///
    /// Panics if the request's drive was not [`ExecDrive::Record`].
    pub fn into_recorded(self) -> (RunOutcome, ScheduleTrace) {
        let trace = self.trace.expect("reply to a Record request");
        (self.outcome, trace)
    }

    /// Unpacks a `Replay` reply into `(outcome, report)`.
    ///
    /// # Panics
    ///
    /// Panics if the request's drive was not [`ExecDrive::Replay`].
    pub fn into_replayed(self) -> (RunOutcome, ReplayReport) {
        let report = self.replay.expect("reply to a Replay request");
        (self.outcome, report)
    }
}

/// Runs one syscall on CPU `t` with oops isolation and the syscall-exit
/// store-buffer flush. Returns the syscall's value, or [`ECRASH`].
pub fn run_one(k: &Kctx, t: Tid, sc: Syscall) -> i64 {
    let result = catch_unwind(AssertUnwindSafe(|| dispatch(k, t, sc)));
    match result {
        Ok(ret) => {
            k.syscall_exit(t);
            ret
        }
        Err(payload) => {
            if payload.downcast_ref::<CrashSignal>().is_some() {
                // The CPU oopsed: its task dies without returning to
                // userspace (no exit flush), and the report is in the sink.
                ECRASH
            } else {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Runs a sequence of syscalls single-threaded on CPU 0 (the STI execution
/// of §4.2); returns each syscall's value.
pub fn run_sti(k: &Kctx, calls: &[Syscall]) -> Vec<i64> {
    calls.iter().map(|&sc| run_one(k, Tid(0), sc)).collect()
}

/// Runs two closures concurrently on CPUs 0 and 1 under `plan`.
///
/// The closures receive the [`Kctx`] and must perform their accesses as the
/// thread they were placed on (`a` as `Tid(0)`, `b` as `Tid(1)`). Crash
/// reports are drained into the outcome.
///
/// Always uses the threaded executor: borrowing closures cannot be boxed
/// into the step scheduler's `'static` legs. The syscall-based entry points
/// ([`run_concurrent`] and friends) honour the machine's [`ExecMode`].
pub fn run_concurrent_closures(
    k: &Arc<Kctx>,
    plan: SchedulePlan,
    a: impl FnOnce(&Kctx) -> i64 + Send,
    b: impl FnOnce(&Kctx) -> i64 + Send,
) -> RunOutcome {
    run_closures_with(k, Arc::new(Scheduler::new(2, plan)), a, b)
}

/// [`run_concurrent_closures`] with a caller-supplied scheduler (the
/// record/replay entry points construct theirs in a non-default mode).
fn run_closures_with(
    k: &Arc<Kctx>,
    sched: Arc<Scheduler>,
    a: impl FnOnce(&Kctx) -> i64 + Send,
    b: impl FnOnce(&Kctx) -> i64 + Send,
) -> RunOutcome {
    k.set_scheduler(Some(Arc::clone(&sched)));
    let (ret_a, ret_b) = std::thread::scope(|s| {
        let (kk, sc) = (Arc::clone(k), Arc::clone(&sched));
        let ha = s.spawn(move || run_leg(&kk, &sc, Tid(0), a));
        let (kk, sc) = (Arc::clone(k), Arc::clone(&sched));
        let hb = s.spawn(move || run_leg(&kk, &sc, Tid(1), b));
        (join_leg(ha), join_leg(hb))
    });
    k.set_scheduler(None);
    k.engine.clear_controls(Tid(0));
    k.engine.clear_controls(Tid(1));
    RunOutcome {
        crashes: k.sink.take(),
        ret_a,
        ret_b,
    }
}

/// Runs one [`ExecRequest`] on a fresh (non-pooled) machine — the single
/// public dispatch point for concurrent pair execution. Spawns threads
/// only when the machine's [`ExecMode`] is threaded; use
/// [`crate::PooledMachine::execute`] to run on a pool's persistent
/// workers instead.
///
/// For `Record` drives the reply's trace fully determines the outcome —
/// scheduler switch points plus every engine delay/versioning decision —
/// and replaying it (a `Replay` drive) against the same pre-run kernel
/// state reproduces the identical outcome and `state_digest`.
pub fn execute(k: &Arc<Kctx>, req: ExecRequest<'_>) -> ExecReply {
    dispatch_request(k, Lanes::Spawn, req)
}

/// [`execute`] on the machine pool's persistent CPU workers (threaded
/// mode only; a stepped-mode machine never touches the lanes).
pub(crate) fn execute_on(k: &Arc<Kctx>, workers: &CpuWorkers, req: ExecRequest<'_>) -> ExecReply {
    dispatch_request(k, Lanes::Workers(workers), req)
}

/// Where the threaded executor's two legs run.
enum Lanes<'w> {
    /// Scoped threads spawned for this one pair.
    Spawn,
    /// The machine pool's persistent parked workers.
    Workers(&'w CpuWorkers),
}

/// The one place every mode combination is decided: drive × executor ×
/// lanes. Engine-side record/replay bracketing lives here too, so a
/// request can never, say, start replay consumption without the matching
/// model check or leave a recording dangling.
fn dispatch_request(k: &Arc<Kctx>, lanes: Lanes<'_>, req: ExecRequest<'_>) -> ExecReply {
    let ExecRequest { a, b, drive } = req;
    match drive {
        ExecDrive::Live(plan) => {
            let (outcome, _) = run_pair(k, lanes, PairSched::Live(plan), a, b);
            ExecReply {
                outcome,
                trace: None,
                replay: None,
            }
        }
        ExecDrive::Record(plan) => {
            let first = plan.first;
            k.engine.start_trace_recording();
            let (outcome, switches) = run_pair(k, lanes, PairSched::Record(plan), a, b);
            let trace = ScheduleTrace {
                model: k.engine.memory_model(),
                first,
                switches: switches.expect("record mode logs switches"),
                steps: k.engine.take_recorded_trace(),
                sparse: false,
            };
            ExecReply {
                outcome,
                trace: Some(trace),
                replay: None,
            }
        }
        ExecDrive::Replay(trace) if trace.sparse => {
            check_replay_model(k, trace);
            run_sparse_replay(k, lanes, trace, a, b)
        }
        ExecDrive::Replay(trace) => {
            check_replay_model(k, trace);
            k.engine.start_trace_replay(trace.steps.clone());
            let spec = PairSched::Replay {
                first: trace.first,
                switches: &trace.switches,
            };
            let (outcome, _) = run_pair(k, lanes, spec, a, b);
            let status = k.engine.finish_trace_replay();
            ExecReply {
                outcome,
                trace: None,
                replay: Some(ReplayReport {
                    diverged: status.diverged,
                    steps_consumed: status.consumed,
                    steps_total: status.total,
                }),
            }
        }
    }
}

/// Replays a *sparse* trace: the trace carries only the ordering decisions
/// (delayed stores, versioned loads) plus the switch script, so instead of
/// slaving the engine to an event stream, the decisions are reinstalled as
/// Table 2 controls and only the scheduler follows the script. The run is
/// otherwise live — and internally recorded, so fidelity is still
/// checkable: the replay diverged iff some scripted decision never fired
/// with its scripted effect. (Scheduler fidelity needs no separate check:
/// a switch that fails to fire changes the interleaving, which either
/// suppresses a decision — caught here — or changes the outcome/digest the
/// caller compares.)
fn run_sparse_replay(
    k: &Arc<Kctx>,
    lanes: Lanes<'_>,
    trace: &ScheduleTrace,
    a: Syscall,
    b: Syscall,
) -> ExecReply {
    for step in &trace.steps {
        match *step {
            oemu::TraceStep::Store {
                tid,
                iid,
                delayed: true,
            } => k.engine.delay_store_at(tid, iid),
            oemu::TraceStep::Load {
                tid,
                iid,
                src: oemu::LoadSrc::Versioned,
            } => k.engine.read_old_value_at(tid, iid),
            // A sparse trace holds decisions only; tolerate (and ignore)
            // anything else so a hand-pruned full trace still replays.
            _ => {}
        }
    }
    k.engine.start_trace_recording();
    let spec = PairSched::Replay {
        first: trace.first,
        switches: &trace.switches,
    };
    let (outcome, _) = run_pair(k, lanes, spec, a, b);
    let executed = k.engine.take_recorded_trace();
    let consumed = trace.steps.iter().filter(|s| executed.contains(s)).count();
    ExecReply {
        outcome,
        trace: None,
        replay: Some(ReplayReport {
            diverged: consumed != trace.steps.len(),
            steps_consumed: consumed,
            steps_total: trace.steps.len(),
        }),
    }
}

/// Scheduler construction spec, shared between the two executors.
enum PairSched<'t> {
    Live(SchedulePlan),
    Record(SchedulePlan),
    Replay {
        first: Tid,
        switches: &'t [SwitchPoint],
    },
}

/// Runs `a` ∥ `b` under the given scheduling spec, selecting the executor
/// from the machine's [`ExecMode`]. Returns the switch log for record
/// specs.
///
/// A stepped-mode machine replays trace logs with more than one switch
/// point on the threaded executor: non-LIFO resumption cannot be expressed
/// as nested calls. Recorded logs never exceed one switch (the plan's
/// single breakpoint disarms on firing), so this fallback only triggers on
/// hand-written traces.
fn run_pair(
    k: &Arc<Kctx>,
    lanes: Lanes<'_>,
    spec: PairSched<'_>,
    a: Syscall,
    b: Syscall,
) -> (RunOutcome, Option<Vec<SwitchPoint>>) {
    let record = matches!(spec, PairSched::Record(_));
    let stepped = k.exec_mode() == ExecMode::Stepped
        && !matches!(&spec, PairSched::Replay { switches, .. } if switches.len() > 1);
    if stepped {
        let sched = Arc::new(match spec {
            PairSched::Live(plan) => StepScheduler::new(2, plan),
            PairSched::Record(plan) => StepScheduler::recording(2, plan),
            PairSched::Replay { first, switches } => {
                StepScheduler::replaying(2, first, switches.to_vec())
            }
        });
        let out = run_stepped_with(k, Arc::clone(&sched), a, b);
        (out, record.then(|| sched.take_switch_log()))
    } else {
        let sched = Arc::new(match spec {
            PairSched::Live(plan) => Scheduler::new(2, plan),
            PairSched::Record(plan) => Scheduler::recording(2, plan),
            PairSched::Replay { first, switches } => {
                Scheduler::replaying(2, first, switches.to_vec())
            }
        });
        let out = match lanes {
            Lanes::Spawn => run_closures_with(
                k,
                Arc::clone(&sched),
                move |k| dispatch(k, Tid(0), a),
                move |k| dispatch(k, Tid(1), b),
            ),
            Lanes::Workers(w) => run_on_workers_with(k, w, Arc::clone(&sched), a, b),
        };
        (out, record.then(|| sched.take_switch_log()))
    }
}

/// Runs two syscalls concurrently on CPUs 0 and 1 under `plan`.
#[deprecated(note = "build an ExecRequest::live and call execute()")]
pub fn run_concurrent(k: &Arc<Kctx>, plan: SchedulePlan, a: Syscall, b: Syscall) -> RunOutcome {
    execute(k, ExecRequest::live(plan, a, b)).outcome
}

/// Runs two syscalls under `plan` with the decision stream recorded.
#[deprecated(note = "build an ExecRequest::recorded and call execute()")]
pub fn run_concurrent_recorded(
    k: &Arc<Kctx>,
    plan: SchedulePlan,
    a: Syscall,
    b: Syscall,
) -> (RunOutcome, ScheduleTrace) {
    execute(k, ExecRequest::recorded(plan, a, b)).into_recorded()
}

/// Re-runs a pair slaved to a recorded trace instead of a live plan.
#[deprecated(note = "build an ExecRequest::replay and call execute()")]
pub fn run_concurrent_replay(
    k: &Arc<Kctx>,
    trace: &ScheduleTrace,
    a: Syscall,
    b: Syscall,
) -> (RunOutcome, ReplayReport) {
    execute(k, ExecRequest::replay(trace, a, b)).into_replayed()
}

/// A leg's result slot: filled by the leg closure, settled by the driver.
type LegResult = Result<i64, Box<dyn std::any::Any + Send>>;

/// The stepped executor's core: installs both syscalls as legs on the step
/// scheduler and runs them to completion on the calling thread. The
/// choreography per leg (scheduler start, oops isolation, syscall-exit
/// flush, finish) mirrors [`run_leg`] exactly, and results settle in the
/// same a-then-b order as the threaded joins.
fn run_stepped_with(
    k: &Arc<Kctx>,
    sched: Arc<StepScheduler>,
    a: Syscall,
    b: Syscall,
) -> RunOutcome {
    k.set_step_scheduler(Some(Arc::clone(&sched)));
    let cell_a = install_stepped_leg(k, &sched, Tid(0), a);
    let cell_b = install_stepped_leg(k, &sched, Tid(1), b);
    sched.run();
    k.set_step_scheduler(None);
    k.engine.clear_controls(Tid(0));
    k.engine.clear_controls(Tid(1));
    let ret_a = settle(cell_a.lock().take().expect("leg 0 ran to completion"));
    let ret_b = settle(cell_b.lock().take().expect("leg 1 ran to completion"));
    RunOutcome {
        crashes: k.sink.take(),
        ret_a,
        ret_b,
    }
}

/// Boxes one syscall into a `'static` leg writing its result into the
/// returned cell.
fn install_stepped_leg(
    k: &Arc<Kctx>,
    sched: &Arc<StepScheduler>,
    t: Tid,
    sc: Syscall,
) -> Arc<Mutex<Option<LegResult>>> {
    let cell = Arc::new(Mutex::new(None));
    let (kk, sch, out) = (Arc::clone(k), Arc::clone(sched), Arc::clone(&cell));
    sched.set_leg(
        t,
        Box::new(move || {
            let r = run_leg_stepped(&kk, &sch, t, move |k| dispatch(k, t, sc));
            *out.lock() = Some(r);
        }),
    );
    cell
}

/// [`run_leg`] for the step scheduler: identical oops isolation and
/// syscall-exit flush, with `leg_start`/`leg_finish` in place of the
/// threaded `thread_start`/`thread_finish` handshake.
fn run_leg_stepped(
    k: &Kctx,
    sched: &StepScheduler,
    t: Tid,
    body: impl FnOnce(&Kctx) -> i64,
) -> LegResult {
    sched.leg_start(t);
    let result = catch_unwind(AssertUnwindSafe(|| body(k)));
    let out = match result {
        Ok(ret) => {
            k.syscall_exit(t);
            Ok(ret)
        }
        Err(payload) => {
            if payload.downcast_ref::<CrashSignal>().is_some() {
                Ok(ECRASH)
            } else {
                Err(payload)
            }
        }
    };
    sched.leg_finish(t);
    out
}

/// A trace's decision stream only makes sense on a machine running the
/// model that recorded it — a mismatch would replay garbage and report it
/// as mere divergence, so fail loudly instead.
fn check_replay_model(k: &Kctx, trace: &ScheduleTrace) {
    assert_eq!(
        trace.model,
        k.engine.memory_model(),
        "replaying a {} trace on a {} machine",
        trace.model.name(),
        k.engine.memory_model().name()
    );
}

fn run_on_workers_with(
    k: &Arc<Kctx>,
    workers: &CpuWorkers,
    sched: Arc<Scheduler>,
    a: Syscall,
    b: Syscall,
) -> RunOutcome {
    k.set_scheduler(Some(Arc::clone(&sched)));
    let (tx_a, rx_a) = kutil::chan::channel();
    let (kk, sc) = (Arc::clone(k), Arc::clone(&sched));
    workers.submit(
        0,
        Box::new(move || {
            let r = run_leg(&kk, &sc, Tid(0), move |k| dispatch(k, Tid(0), a));
            let _ = tx_a.send(r);
        }),
    );
    let (tx_b, rx_b) = kutil::chan::channel();
    let (kk, sc) = (Arc::clone(k), Arc::clone(&sched));
    workers.submit(
        1,
        Box::new(move || {
            let r = run_leg(&kk, &sc, Tid(1), move |k| dispatch(k, Tid(1), b));
            let _ = tx_b.send(r);
        }),
    );
    // Collect both legs before settling either, so a harness panic in one
    // leg cannot leave the other lane's worker wedged mid-run.
    let ra = rx_a
        .recv()
        .unwrap_or_else(|e| panic!("cpu worker 0 dropped its result channel mid-run: {e:?}"));
    let rb = rx_b
        .recv()
        .unwrap_or_else(|e| panic!("cpu worker 1 dropped its result channel mid-run: {e:?}"));
    k.set_scheduler(None);
    k.engine.clear_controls(Tid(0));
    k.engine.clear_controls(Tid(1));
    let ret_a = settle(ra);
    let ret_b = settle(rb);
    RunOutcome {
        crashes: k.sink.take(),
        ret_a,
        ret_b,
    }
}

fn settle(r: Result<i64, Box<dyn std::any::Any + Send>>) -> i64 {
    match r {
        Ok(ret) => ret,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn run_leg(
    k: &Kctx,
    sched: &Scheduler,
    t: Tid,
    body: impl FnOnce(&Kctx) -> i64,
) -> Result<i64, Box<dyn std::any::Any + Send>> {
    sched.thread_start(t);
    let result = catch_unwind(AssertUnwindSafe(|| body(k)));
    let out = match result {
        Ok(ret) => {
            k.syscall_exit(t);
            Ok(ret)
        }
        Err(payload) => {
            if payload.downcast_ref::<CrashSignal>().is_some() {
                Ok(ECRASH)
            } else {
                Err(payload)
            }
        }
    };
    sched.thread_finish(t);
    out
}

fn join_leg(
    h: std::thread::ScopedJoinHandle<'_, Result<i64, Box<dyn std::any::Any + Send>>>,
) -> i64 {
    match h.join().expect("simulated CPU thread must not die") {
        Ok(ret) => ret,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::syscalls::Syscall;
    use ksched::{BreakWhen, Breakpoint};
    use oemu::AccessKind;

    #[test]
    fn run_sti_executes_in_order() {
        let k = Kctx::new(BugSwitches::none());
        let rets = run_sti(
            &k,
            &[
                Syscall::WqPost,
                Syscall::PipeRead,
                Syscall::TlsInit { fd: 0 },
                Syscall::SetSockOpt { fd: 0 },
            ],
        );
        assert_eq!(rets.len(), 4);
        assert_eq!(rets[0], 0);
        assert!(rets[1] > 0, "read returns the note length");
        assert_eq!(rets[2], 0);
        assert_eq!(rets[3], 0);
    }

    #[test]
    fn concurrent_sequential_plan_is_benign() {
        let k = Kctx::new(BugSwitches::all());
        let out = execute(
            &k,
            ExecRequest::live(
                SchedulePlan::sequential(Tid(0)),
                Syscall::WqPost,
                Syscall::PipeRead,
            ),
        )
        .outcome;
        assert!(!out.crashed(), "in-order execution never crashes: {out:?}");
        assert_eq!(out.ret_a, 0);
    }

    #[test]
    fn figure5a_store_barrier_test_finds_figure1_bug() {
        // The full MTI pipeline by hand: profile the writer, install the
        // maximal hypothetical-store-barrier hint (delay everything before
        // the last store, break after it), and run concurrently.
        let k = Kctx::new(BugSwitches::all());
        k.engine.set_profiling(true);
        run_one(&k, Tid(0), Syscall::WqPost);
        let profile = k.engine.take_profile(Tid(0));
        k.engine.set_profiling(false);
        let stores: Vec<_> = profile
            .accesses()
            .filter(|a| a.kind == AccessKind::Store)
            .collect();
        let (last, rest) = stores.split_last().expect("writer has stores");
        // Fresh machine: the profiling run consumed a ring slot.
        let k = Kctx::new(BugSwitches::all());
        for a in rest {
            k.engine.delay_store_at(Tid(0), a.iid);
        }
        let plan = SchedulePlan {
            first: Tid(0),
            breakpoint: Some(Breakpoint {
                iid: last.iid,
                when: BreakWhen::After,
                hit: 1,
            }),
        };
        let out = execute(
            &k,
            ExecRequest::live(plan, Syscall::WqPost, Syscall::PipeRead),
        )
        .outcome;
        assert!(out.crashed(), "Figure 1 bug must manifest: {out:?}");
        assert_eq!(
            out.title().unwrap(),
            "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
        );
        assert_eq!(out.ret_b, ECRASH);
        assert_eq!(out.ret_a, 0, "the writer survives");
    }

    #[test]
    fn crash_in_one_cpu_does_not_kill_the_other() {
        let k = Kctx::new(BugSwitches::all());
        let out = run_concurrent_closures(
            &k,
            SchedulePlan::sequential(Tid(0)),
            |k| {
                let _f = k.enter(Tid(0), "explode");
                k.read(Tid(0), oemu::iid!(), 0); // null deref
                unreachable!()
            },
            |_k| 42,
        );
        assert_eq!(out.ret_a, ECRASH);
        assert_eq!(out.ret_b, 42);
        assert_eq!(out.crashes.len(), 1);
    }

    #[test]
    fn fixed_kernel_survives_figure5a_forcing() {
        let k = Kctx::new(BugSwitches::none());
        k.engine.set_profiling(true);
        run_one(&k, Tid(0), Syscall::WqPost);
        let profile = k.engine.take_profile(Tid(0));
        k.engine.set_profiling(false);
        let stores: Vec<_> = profile
            .accesses()
            .filter(|a| a.kind == AccessKind::Store)
            .collect();
        let (last, rest) = stores.split_last().unwrap();
        let k = Kctx::new(BugSwitches::none());
        for a in rest {
            k.engine.delay_store_at(Tid(0), a.iid);
        }
        let plan = SchedulePlan {
            first: Tid(0),
            breakpoint: Some(Breakpoint {
                iid: last.iid,
                when: BreakWhen::After,
                hit: 1,
            }),
        };
        let out = execute(
            &k,
            ExecRequest::live(plan, Syscall::WqPost, Syscall::PipeRead),
        )
        .outcome;
        assert!(!out.crashed(), "patched kernel survives: {out:?}");
    }

    #[test]
    fn bug_on_oracle_reports_assertion() {
        let k = Kctx::new(BugSwitches::none());
        let out = run_concurrent_closures(
            &k,
            SchedulePlan::sequential(Tid(0)),
            |k| {
                let _f = k.enter(Tid(0), "some_fn");
                k.bug_on(Tid(0), true, "invariant broken");
                0
            },
            |_k| 0,
        );
        assert!(out.crashed());
        assert_eq!(
            out.title().unwrap(),
            "kernel BUG at some_fn: invariant broken"
        );
    }
}
