//! Linux-style atomic bit operations over simulated memory.
//!
//! The ordering semantics follow `Documentation/atomic_bitops.txt`:
//! `test_and_set_bit` is fully ordered on success, `clear_bit` is entirely
//! unordered (relaxed), and `clear_bit_unlock` has release semantics. The
//! difference between the last two is exactly the paper's Bug #1 / Figure 8:
//! releasing a custom bit-lock with `clear_bit` lets the critical section's
//! stores drain *after* the lock bit clears.

use oemu::{Iid, RmwOrder, Tid};

use crate::kctx::Kctx;

/// `test_and_set_bit(nr, addr)` — fully ordered; returns the old bit.
pub fn test_and_set_bit(k: &Kctx, t: Tid, iid: Iid, nr: u32, addr: u64) -> bool {
    let mask = 1u64 << nr;
    let old = k.rmw(t, iid, addr, |v| v | mask, RmwOrder::Full);
    old & mask != 0
}

/// `test_and_clear_bit(nr, addr)` — fully ordered; returns the old bit.
pub fn test_and_clear_bit(k: &Kctx, t: Tid, iid: Iid, nr: u32, addr: u64) -> bool {
    let mask = 1u64 << nr;
    let old = k.rmw(t, iid, addr, |v| v & !mask, RmwOrder::Full);
    old & mask != 0
}

/// `set_bit(nr, addr)` — atomic but unordered.
pub fn set_bit(k: &Kctx, t: Tid, iid: Iid, nr: u32, addr: u64) {
    let mask = 1u64 << nr;
    k.rmw(t, iid, addr, |v| v | mask, RmwOrder::Relaxed);
}

/// `clear_bit(nr, addr)` — atomic but **unordered**: it does not wait for
/// earlier stores, which is why it must never release a lock.
pub fn clear_bit(k: &Kctx, t: Tid, iid: Iid, nr: u32, addr: u64) {
    let mask = 1u64 << nr;
    k.rmw(t, iid, addr, |v| v & !mask, RmwOrder::Relaxed);
}

/// `clear_bit_unlock(nr, addr)` — release semantics: every store issued
/// before it is visible before the bit clears. The correct way to release a
/// bit lock (the Figure 8 fix).
pub fn clear_bit_unlock(k: &Kctx, t: Tid, iid: Iid, nr: u32, addr: u64) {
    let mask = 1u64 << nr;
    k.rmw(t, iid, addr, |v| v & !mask, RmwOrder::Release);
}

/// `test_bit(nr, addr)` — a `READ_ONCE` of the containing word.
pub fn test_bit(k: &Kctx, t: Tid, iid: Iid, nr: u32, addr: u64) -> bool {
    k.read_once(t, iid, addr) & (1u64 << nr) != 0
}

/// `_find_first_bit(bitmap, nwords)` — scans a bitmap for the first set
/// bit; returns `nwords * 64` when none is set. Faults (through the KASAN
/// check inside [`Kctx::read`]) when `bitmap` is null or bogus — the crash
/// site of the paper's Bug #2.
pub fn find_first_bit(k: &Kctx, t: Tid, iid: Iid, bitmap: u64, nwords: u64) -> u64 {
    let _f = k.enter(t, "_find_first_bit");
    for w in 0..nwords {
        let word = k.read(t, iid, bitmap + w * 8);
        if word != 0 {
            return w * 64 + word.trailing_zeros() as u64;
        }
    }
    nwords * 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use oemu::iid;

    fn fresh() -> (std::sync::Arc<Kctx>, Tid, u64) {
        let k = Kctx::new(BugSwitches::none());
        let addr = k.kzalloc(8, "flags");
        (k, Tid(0), addr)
    }

    #[test]
    fn test_and_set_acts_as_trylock() {
        let (k, t, addr) = fresh();
        assert!(!test_and_set_bit(&k, t, iid!(), 2, addr), "first wins");
        assert!(test_and_set_bit(&k, t, iid!(), 2, addr), "second loses");
        assert!(test_bit(&k, t, iid!(), 2, addr));
        clear_bit(&k, t, iid!(), 2, addr);
        assert!(!test_bit(&k, t, iid!(), 2, addr));
    }

    #[test]
    fn set_and_clear_are_per_bit() {
        let (k, t, addr) = fresh();
        set_bit(&k, t, iid!(), 0, addr);
        set_bit(&k, t, iid!(), 5, addr);
        clear_bit(&k, t, iid!(), 0, addr);
        assert!(!test_bit(&k, t, iid!(), 0, addr));
        assert!(test_bit(&k, t, iid!(), 5, addr));
    }

    #[test]
    fn test_and_clear_returns_old() {
        let (k, t, addr) = fresh();
        set_bit(&k, t, iid!(), 1, addr);
        assert!(test_and_clear_bit(&k, t, iid!(), 1, addr));
        assert!(!test_and_clear_bit(&k, t, iid!(), 1, addr));
    }

    #[test]
    fn clear_bit_does_not_flush_delayed_stores() {
        let (k, t, addr) = fresh();
        let data = k.kzalloc(8, "data");
        let istore = iid!();
        k.engine.delay_store_at(t, istore);
        set_bit(&k, t, iid!(), 0, addr);
        k.write(t, istore, data, 1); // delayed
        clear_bit(&k, t, iid!(), 0, addr);
        assert_eq!(k.engine.raw_load(data), 0, "clear_bit is unordered");
        assert!(!test_bit(&k, t, iid!(), 0, addr));
    }

    #[test]
    fn clear_bit_unlock_flushes_delayed_stores() {
        let (k, t, addr) = fresh();
        let data = k.kzalloc(8, "data");
        let istore = iid!();
        k.engine.delay_store_at(t, istore);
        set_bit(&k, t, iid!(), 0, addr);
        k.write(t, istore, data, 1); // delayed
        clear_bit_unlock(&k, t, iid!(), 0, addr);
        assert_eq!(k.engine.raw_load(data), 1, "unlock has release semantics");
    }

    #[test]
    fn find_first_bit_scans_words() {
        let (k, t, _) = fresh();
        let bm = k.kzalloc(24, "bitmap");
        assert_eq!(find_first_bit(&k, t, iid!(), bm, 3), 192, "empty bitmap");
        k.write(t, iid!(), bm + 8, 1 << 9);
        assert_eq!(find_first_bit(&k, t, iid!(), bm, 3), 64 + 9);
    }

    #[test]
    fn find_first_bit_on_null_bitmap_oopses() {
        let (k, t, _) = fresh();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            find_first_bit(&k, t, iid!(), 0, 1);
        }));
        assert!(r.is_err());
        let reports = k.sink.take();
        assert_eq!(
            reports[0].title,
            "BUG: unable to handle kernel NULL pointer dereference in _find_first_bit"
        );
    }
}
