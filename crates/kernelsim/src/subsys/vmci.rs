//! VMCI queue pairs: Bug #3 (S-S) — `general protection fault in
//! add_wait_queue`.
//!
//! The queue-pair broker hands out a queue pair whose embedded wait-queue
//! head must be initialised before the pair is published. The broker's
//! debug pattern pre-poisons the head slot (like `CONFIG_DEBUG_LIST`'s
//! `LIST_POISON`), so when the publication overtakes the initialisation the
//! attaching peer walks a poison pointer — a wild, non-canonical address
//! that faults as a general protection fault rather than a NULL
//! dereference, matching the paper's Table 3 row.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN, EBUSY};

/// The `LIST_POISON`-style debug pattern pre-written into wait-queue slots.
pub const WQ_POISON: u64 = 0xdead_4ead_0000_0100;

// struct vmci_qp layout.
const QP_WQ_HEAD: u64 = 0x00;
const QP_HANDLE: u64 = 0x08;
// struct qp_broker layout.
const BROKER_QP: u64 = 0x00;
// wait_queue_head layout.
const WQ_NEXT: u64 = 0x00;

/// Boot-time globals of the VMCI subsystem.
pub struct VmciGlobals {
    /// The queue-pair broker.
    pub broker: u64,
    /// The preallocated queue pair (head slot poisoned at boot).
    pub qp: u64,
}

/// Boots the subsystem: the queue pair exists but is unpublished, with its
/// wait-queue slot poisoned.
pub fn boot(k: &Arc<Kctx>) -> VmciGlobals {
    let broker = k.kzalloc(16, "qp_broker");
    let qp = k.kzalloc(16, "vmci_qp");
    k.engine.raw_store(qp + QP_WQ_HEAD, WQ_POISON);
    VmciGlobals { broker, qp }
}

/// `qp_broker_create`: initialises the queue pair and publishes it (writer
/// of Bug #3).
pub fn vmci_qp_create(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "qp_broker_create");
    let g = k.globals();
    if k.read(t, iid!(), g.vmci.broker + BROKER_QP) != 0 {
        return EBUSY;
    }
    let wq = k.kzalloc(16, "wait_queue_head");
    // Self-linked empty wait queue.
    k.write(t, iid!(), wq + WQ_NEXT, wq);
    k.write(t, iid!(), g.vmci.qp + QP_WQ_HEAD, wq);
    k.write(t, iid!(), g.vmci.qp + QP_HANDLE, 7);
    if !k.bug(BugId::VmciQueuePair) {
        // The pair must be fully initialised before the broker exposes it.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), g.vmci.broker + BROKER_QP, g.vmci.qp);
    0
}

/// `qp_broker_attach`: looks up the published pair and sleeps on its wait
/// queue (reader of Bug #3).
pub fn vmci_qp_attach(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "qp_broker_attach");
    let g = k.globals();
    let qp = k.read_once(t, iid!(), g.vmci.broker + BROKER_QP);
    if qp == 0 {
        return EAGAIN; // not created yet
    }
    let wq = k.read(t, iid!(), qp + QP_WQ_HEAD);
    add_wait_queue(k, t, wq)
}

/// `add_wait_queue`: links the caller onto the wait-queue head. With the
/// poison pattern still in the head slot, the first touch faults wildly.
fn add_wait_queue(k: &Kctx, t: Tid, wq: u64) -> i64 {
    let _f = k.enter(t, "add_wait_queue");
    let first = k.read(t, iid!(), wq + WQ_NEXT);
    k.write(t, iid!(), wq + WQ_NEXT, first);
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{delay_all_plain_stores_during, expect_crash, expect_no_crash};

    #[test]
    fn in_order_create_then_attach_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(vmci_qp_create(&k, t0), 0);
        k.syscall_exit(t0);
        assert_eq!(vmci_qp_attach(&k, t1), 0);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn attach_before_create_is_eagain() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(vmci_qp_attach(&k, Tid(0)), EAGAIN);
    }

    #[test]
    fn double_create_rejected() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(vmci_qp_create(&k, t), 0);
        k.syscall_exit(t);
        assert_eq!(vmci_qp_create(&k, t), EBUSY);
    }

    #[test]
    fn bug3_publish_reorder_is_gpf_in_add_wait_queue() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                vmci_qp_create(k, t0);
            });
            vmci_qp_attach(k, t1);
        });
        assert_eq!(title, "general protection fault in add_wait_queue");
    }

    #[test]
    fn bug3_fixed_kernel_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                vmci_qp_create(k, t0);
            });
            vmci_qp_attach(k, t1);
        });
    }
}
