//! USB core: Extended #4 \[95\] — "Fix hang in usb_kill_urb by adding memory
//! barriers", the suite's **store-load** (SB-shaped) bug.
//!
//! The kill path sets `urb->reject` and then reads `urb->use_count`; the
//! submit path bumps `use_count` and then reads `reject`. This is exactly
//! the store-buffering litmus: without full barriers, each CPU's store can
//! be delayed past its own subsequent load, so *both* read the old value —
//! the killer concludes the URB is idle while the submitter proceeds,
//! historically hanging `usb_kill_urb` forever. The simulated kernel
//! detects the inconsistent joint state with a `BUG_ON` standing in for the
//! hang (a watchdog's view of the deadlock).
//!
//! OEMU reaches this with a *delayed store overtaking a load* — the
//! store-load half of §3.1's mechanism, which none of the Table 3/4 bugs
//! exercises.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EBUSY, EINVAL};

// struct urb layout.
const URB_REJECT: u64 = 0x00;
const URB_USE_COUNT: u64 = 0x08;
const URB_IN_FLIGHT: u64 = 0x10;
const URB_KILLED: u64 = 0x18;

/// Boot-time globals of the USB subsystem.
pub struct UsbGlobals {
    /// The URB the kill and submit paths race on.
    pub urb: u64,
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> UsbGlobals {
    UsbGlobals {
        urb: k.kzalloc(32, "urb"),
    }
}

/// `usb_kill_urb`: reject further submissions, then check for users.
pub fn usb_kill_urb(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "usb_kill_urb");
    let urb = k.globals().usb.urb;
    k.write(t, iid!(), urb + URB_REJECT, 1);
    if !k.bug(BugId::ExtUsbKillUrb) {
        // The [95] fix: the reject store must be visible before the
        // use-count check — a full barrier, since it orders a store
        // against a *load* (neither smp_wmb nor smp_rmb suffices).
        k.smp_mb(t, iid!());
    }
    // The second half of the fix: the use-count read must have acquire
    // semantics, pairing with the completion path's release — otherwise
    // the in-flight check below can be satisfied *before* this load and
    // observe the pre-completion state (a load-load reorder the fuzzer
    // found against an earlier, mb-only version of this function).
    let users = if k.bug(BugId::ExtUsbKillUrb) {
        k.read(t, iid!(), urb + URB_USE_COUNT)
    } else {
        k.load_acquire(t, iid!(), urb + URB_USE_COUNT)
    };
    if users != 0 {
        // Someone is mid-submit: they will observe reject and back out.
        return EBUSY;
    }
    // No users and reject is (supposedly) visible: the URB is dead. A
    // submission in flight at this point means the SB reordering happened —
    // upstream, this is where usb_kill_urb slept forever.
    k.bug_on(
        t,
        k.read(t, iid!(), urb + URB_IN_FLIGHT) == 1,
        "URB killed while in flight",
    );
    k.write_once(t, iid!(), urb + URB_KILLED, 1);
    0
}

/// `usb_submit_urb`: register as a user, then check for rejection. A
/// successful submission leaves the transfer *in flight* — completion is
/// asynchronous ([`usb_complete`], the host controller's IRQ).
pub fn usb_submit_urb(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "usb_submit_urb");
    let urb = k.globals().usb.urb;
    if k.read_once(t, iid!(), urb + URB_KILLED) == 1 {
        return EINVAL; // already dead
    }
    if k.read(t, iid!(), urb + URB_IN_FLIGHT) == 1 {
        return EBUSY; // one transfer at a time on this URB
    }
    k.write(t, iid!(), urb + URB_USE_COUNT, 1);
    if !k.bug(BugId::ExtUsbKillUrb) {
        // The submit half of the [95] pair.
        k.smp_mb(t, iid!());
    }
    let reject = k.read(t, iid!(), urb + URB_REJECT);
    if reject == 1 {
        // Back out: the killer is waiting for use_count to drop.
        k.write(t, iid!(), urb + URB_USE_COUNT, 0);
        return EINVAL;
    }
    // Hand the transfer to the host controller.
    k.write(t, iid!(), urb + URB_IN_FLIGHT, 1);
    0
}

/// `usb_complete`: the host controller's completion interrupt — retires
/// the in-flight transfer and drops the use count.
pub fn usb_complete(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "usb_hcd_giveback_urb");
    let urb = k.globals().usb.urb;
    if k.read(t, iid!(), urb + URB_IN_FLIGHT) == 0 {
        return EINVAL; // nothing in flight
    }
    k.write(t, iid!(), urb + URB_IN_FLIGHT, 0);
    k.store_release(t, iid!(), urb + URB_USE_COUNT, 0);
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::exec::{execute, ExecRequest};
    use crate::syscalls::Syscall;
    use crate::testutil::{expect_no_crash, profile_store_iids};
    use ksched::{BreakWhen, Breakpoint, SchedulePlan};
    use oemu::AccessKind;

    #[test]
    fn in_order_submit_complete_kill() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(usb_submit_urb(&k, t0), 0);
        k.syscall_exit(t0);
        assert_eq!(
            usb_kill_urb(&k, t1),
            EBUSY,
            "in-flight transfer blocks kill"
        );
        k.syscall_exit(t1);
        assert_eq!(usb_complete(&k, t0), 0);
        k.syscall_exit(t0);
        assert_eq!(usb_kill_urb(&k, t1), 0);
        k.syscall_exit(t1);
        assert_eq!(usb_submit_urb(&k, t0), EINVAL, "killed URB rejects");
        assert!(k.sink.is_empty());
    }

    #[test]
    fn double_submit_is_ebusy() {
        let k = Kctx::new(BugSwitches::all());
        let t = Tid(0);
        assert_eq!(usb_submit_urb(&k, t), 0);
        k.syscall_exit(t);
        assert_eq!(usb_submit_urb(&k, t), EBUSY);
        assert_eq!(usb_complete(&k, t), 0);
        k.syscall_exit(t);
        assert_eq!(usb_complete(&k, t), EINVAL, "nothing left in flight");
    }

    #[test]
    fn in_order_kill_then_submit() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(usb_kill_urb(&k, t0), 0);
        k.syscall_exit(t0);
        assert_eq!(usb_submit_urb(&k, t1), EINVAL);
        assert!(k.sink.is_empty());
    }

    /// The SB-shaped MTI: delay the kill path's reject store past its
    /// use-count load (store-load reordering), break after the load, and
    /// let the submit run in the window.
    fn run_sb_mti(k: &std::sync::Arc<Kctx>) -> crate::exec::RunOutcome {
        let trace = {
            let scratch = Kctx::new(k.switches().clone());
            scratch.engine.set_profiling(true);
            usb_kill_urb(&scratch, Tid(0));
            scratch.engine.take_profile(Tid(0))
        };
        let accesses: Vec<_> = trace.accesses().copied().collect();
        let reject_store = accesses
            .iter()
            .find(|a| a.kind == AccessKind::Store)
            .expect("kill stores reject");
        let use_load = accesses
            .iter()
            .find(|a| a.kind == AccessKind::Load)
            .expect("kill loads use_count");
        k.engine.delay_store_at(Tid(0), reject_store.iid);
        let plan = SchedulePlan {
            first: Tid(0),
            breakpoint: Some(Breakpoint {
                iid: use_load.iid,
                when: BreakWhen::After,
                hit: 1,
            }),
        };
        execute(
            k,
            ExecRequest::live(plan, Syscall::UsbKillUrb, Syscall::UsbSubmitUrb),
        )
        .outcome
    }

    #[test]
    fn e4_store_load_reorder_kills_an_in_flight_urb() {
        let k = Kctx::new(BugSwitches::all());
        let out = run_sb_mti(&k);
        assert!(out.crashed(), "the SB outcome must manifest: {out:?}");
        assert_eq!(
            out.title().unwrap(),
            "kernel BUG at usb_kill_urb: URB killed while in flight"
        );
    }

    #[test]
    fn e4_full_barriers_forbid_the_sb_outcome() {
        // With smp_mb in both paths the delayed store flushes at the
        // barrier, before the use-count load executes.
        let k = Kctx::new(BugSwitches::none());
        let out = run_sb_mti(&k);
        assert!(!out.crashed(), "fixed kernel survives: {out:?}");
    }

    #[test]
    fn wmb_would_not_fix_it() {
        // The classic SB lesson: a store barrier does not order a store
        // against a later *load*. Verify via the litmus-style forcing that
        // delaying past an smp_wmb-equivalent flush point is the only thing
        // the fix prevents — i.e. the delayed store really does overtake
        // the load when only store-ordering is at play.
        let k = Kctx::new(BugSwitches::all());
        let (t0, _t1) = (Tid(0), Tid(1));
        let iids = profile_store_iids(&k, t0, |k| {
            usb_kill_urb(k, t0);
        });
        k.engine.delay_store_at(t0, iids[0]);
        expect_no_crash(&k, |k| {
            // Alone (no concurrent submit), the reordering is benign.
            usb_kill_urb(k, t0);
        });
    }
}
