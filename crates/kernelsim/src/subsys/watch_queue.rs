//! watch_queue + pipe: the paper's running example (Figure 1) and Bug #2.
//!
//! Two seeded bugs live here:
//!
//! - **Known #2 \[31\]** (Figure 1, S-S and L-L): `post_one_notification`
//!   initialises a ring-buffer entry and bumps `head`; `pipe_read` checks
//!   `head > tail` and dereferences the entry's `ops`. Without the
//!   `smp_wmb`/`smp_rmb` pair, either store-store reordering in the writer
//!   (order `#8 → #14 → #18 → #6`) or load-load reordering in the reader
//!   (order `#18 → #6 → #8 → #14`) exposes the uninitialised function
//!   pointer.
//! - **Bug #2** (Table 3, S-S): `watch_queue_set_filter` publishes the
//!   filter before its bitmap pointer is visible; the post path then hands
//!   a NULL bitmap to `_find_first_bit`.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bitops::find_first_bit;
use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN};

/// Ring size (power of two).
pub const RING: u64 = 8;
/// Byte length recorded per posted notification.
pub const NOTE_LEN: u64 = 24;

// struct pipe_inode_info layout (words).
const PIPE_HEAD: u64 = 0x00;
const PIPE_TAIL: u64 = 0x08;
const PIPE_BUFS: u64 = 0x40;
// struct pipe_buffer layout (3 words per ring slot).
const BUF_LEN: u64 = 0x00;
const BUF_OPS: u64 = 0x08;
const BUF_STRIDE: u64 = 24;
// struct watch_queue layout.
const WQ_FILTER: u64 = 0x00;
// struct watch_filter layout.
const FILT_BITMAP: u64 = 0x00;
const FILT_NWORDS: u64 = 0x08;
// struct pipe_buf_operations layout.
const OPS_CONFIRM: u64 = 0x00;

/// Boot-time globals of the watch_queue subsystem.
pub struct WqGlobals {
    /// The pipe backing the watch queue.
    pub pipe: u64,
    /// The watch_queue object.
    pub wqueue: u64,
    /// The `wq_pipe_ops` operations table.
    pub wq_pipe_ops: u64,
}

/// Boots the subsystem: allocates the pipe, the queue, and the ops table.
pub fn boot(k: &Arc<Kctx>) -> WqGlobals {
    let pipe = k.kzalloc(PIPE_BUFS + RING * BUF_STRIDE, "pipe_inode_info");
    let wqueue = k.kzalloc(16, "watch_queue");
    let wq_pipe_ops = k.kzalloc(16, "pipe_buf_operations");
    let confirm = k.fns.register("wq_pipe_buf_confirm");
    k.engine.raw_store(wq_pipe_ops + OPS_CONFIRM, confirm);
    WqGlobals {
        pipe,
        wqueue,
        wq_pipe_ops,
    }
}

/// `watch_queue_set_filter`: installs a notification filter (Bug #2 writer).
pub fn watch_queue_set_filter(k: &Kctx, t: Tid, nwords: u64) -> i64 {
    let _f = k.enter(t, "watch_queue_set_filter");
    let g = k.globals();
    let nwords = nwords.clamp(1, 4);
    let filt = k.kzalloc(16, "watch_filter");
    let bitmap = k.kzalloc(nwords * 8, "filter_bitmap");
    // Accept type 2 events (arbitrary but non-empty).
    k.write(t, iid!(), bitmap, 0b100);
    k.write(t, iid!(), filt + FILT_BITMAP, bitmap);
    k.write(t, iid!(), filt + FILT_NWORDS, nwords);
    if !k.bug(BugId::WatchQueueFilter) {
        // Upstream fix: the filter contents must be visible before the
        // filter pointer is published.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), g.wq.wqueue + WQ_FILTER, filt);
    0
}

/// `post_one_notification`: Figure 1's left-hand side, preceded by the
/// filter check that crashes for Bug #2.
pub fn post_one_notification(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "post_one_notification");
    let g = k.globals();
    // Filter check (Bug #2 reader): an unpublished bitmap pointer reaches
    // `_find_first_bit` as NULL.
    let filt = k.read_once(t, iid!(), g.wq.wqueue + WQ_FILTER);
    if filt != 0 {
        let bitmap = k.read(t, iid!(), filt + FILT_BITMAP);
        let nwords = k.read(t, iid!(), filt + FILT_NWORDS);
        let first = find_first_bit(k, t, iid!(), bitmap, nwords.max(1));
        if first == nwords.max(1) * 64 {
            // Filter accepts nothing.
            return 0;
        }
    }
    // Figure 1, lines 4-8.
    let pipe = g.wq.pipe;
    let head = k.read(t, iid!(), pipe + PIPE_HEAD);
    let tail = k.read(t, iid!(), pipe + PIPE_TAIL);
    if head.wrapping_sub(tail) >= RING {
        return EAGAIN; // ring full
    }
    let buf = pipe + PIPE_BUFS + (head % RING) * BUF_STRIDE;
    k.write(t, iid!(), buf + BUF_LEN, NOTE_LEN);
    k.write(t, iid!(), buf + BUF_OPS, g.wq.wq_pipe_ops);
    if !k.bug(BugId::KnownWatchQueuePost) {
        // Figure 1, line 7: complete the entry before `head` moves.
        k.smp_wmb(t, iid!());
    }
    k.write(t, iid!(), pipe + PIPE_HEAD, head + 1);
    0
}

/// `pipe_read`: Figure 1's right-hand side.
pub fn pipe_read(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "pipe_read");
    let g = k.globals();
    let pipe = g.wq.pipe;
    // Figure 1, line 14.
    let head = k.read(t, iid!(), pipe + PIPE_HEAD);
    let tail = k.read(t, iid!(), pipe + PIPE_TAIL);
    if head == tail {
        return EAGAIN; // empty
    }
    if !k.bug(BugId::KnownWatchQueuePost) {
        // Figure 1, line 15: do not speculate entry reads past the
        // emptiness check.
        k.smp_rmb(t, iid!());
    }
    // Figure 1, lines 16-18.
    let buf = pipe + PIPE_BUFS + (tail % RING) * BUF_STRIDE;
    let len = k.read(t, iid!(), buf + BUF_LEN);
    let ops = k.read(t, iid!(), buf + BUF_OPS);
    let confirm = k.read(t, iid!(), ops + OPS_CONFIRM);
    k.call_fn(t, confirm);
    // A committed `ops` with a still-delayed `len` is equally fatal in the
    // real kernel (a zero-length read of a posted notification).
    k.bug_on(t, len == 0, "uninitialised pipe_buffer length");
    k.write(t, iid!(), pipe + PIPE_TAIL, tail + 1);
    len as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::kctx::Kctx;
    use crate::testutil::{expect_crash, expect_no_crash};
    use oemu::Tid;

    #[test]
    fn in_order_post_then_read_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(post_one_notification(&k, t0), 0);
        k.syscall_exit(t0);
        assert_eq!(pipe_read(&k, t1), NOTE_LEN as i64);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn empty_ring_returns_eagain() {
        let k = Kctx::new(BugSwitches::none());
        assert_eq!(pipe_read(&k, Tid(0)), EAGAIN);
    }

    #[test]
    fn ring_full_returns_eagain() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        for _ in 0..RING {
            assert_eq!(post_one_notification(&k, t), 0);
        }
        assert_eq!(post_one_notification(&k, t), EAGAIN);
    }

    #[test]
    fn figure1_store_store_reorder_crashes_buggy_kernel() {
        // Order #8 -> #14 -> #18 -> #6: delay the entry-init stores, let
        // `head += 1` commit, then read from another CPU.
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            crate::testutil::delay_all_plain_stores_during(k, t0, |k| {
                post_one_notification(k, t0);
            });
            pipe_read(k, t1);
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
        );
    }

    #[test]
    fn figure1_fixed_kernel_survives_same_forcing() {
        // With smp_wmb in place the delayed stores flush at the barrier, so
        // the same control choices cannot expose the entry.
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            crate::testutil::delay_all_plain_stores_during(k, t0, |k| {
                post_one_notification(k, t0);
            });
            let r = pipe_read(k, t1);
            assert!(r == NOTE_LEN as i64 || r == EAGAIN);
        });
    }

    #[test]
    fn figure1_load_load_reorder_crashes_buggy_kernel() {
        // Order #18 -> #6 -> #8 -> #14: the reader's entry loads are
        // versioned so they read pre-publication values even though `head`
        // reads the updated value.
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            post_one_notification(k, t0);
            k.syscall_exit(t0);
            crate::testutil::version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    post_one_notification(k, t0);
                    k.syscall_exit(t0);
                },
                |k| {
                    pipe_read(k, t1);
                },
            );
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
        );
    }

    #[test]
    fn bug2_filter_publish_reorder_crashes_in_find_first_bit() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            crate::testutil::delay_all_plain_stores_during(k, t0, |k| {
                watch_queue_set_filter(k, t0, 2);
            });
            post_one_notification(k, t1);
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in _find_first_bit"
        );
    }

    #[test]
    fn bug2_fixed_kernel_survives() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            crate::testutil::delay_all_plain_stores_during(k, t0, |k| {
                watch_queue_set_filter(k, t0, 2);
            });
            post_one_notification(k, t1);
        });
    }

    #[test]
    fn filter_accepting_event_still_posts() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        watch_queue_set_filter(&k, t, 1);
        k.syscall_exit(t);
        assert_eq!(post_one_notification(&k, t), 0);
        assert_eq!(pipe_read(&k, t), NOTE_LEN as i64);
    }
}
