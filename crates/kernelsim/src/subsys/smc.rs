//! SMC sockets: Bug #8 and Bug #10 (both S-S).
//!
//! - **Bug #8**: the first `connect` on an SMC socket creates the internal
//!   TCP socket (`smc->clcsock`) and then marks the socket active. Without
//!   a barrier the state store can become visible first, and a concurrent
//!   `connect` observing the active state dereferences a NULL `clcsock` —
//!   the `NULL pointer dereference in connect` of Table 3.
//! - **Bug #10**: the accept path hands a `struct file` to a deferred-fput
//!   worker by storing the file pointer and then raising a pending flag.
//!   With the stores reordered, the worker sees the flag with a NULL file
//!   and `fput` writes through it — `KASAN: null-ptr-deref Write in fput`.

use std::sync::Arc;

use oemu::{iid, RmwOrder, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN, EBADF};

/// Number of SMC sockets.
pub const NSOCKS: usize = 2;
/// `smc->sk_state` value once connected.
pub const SMC_ACTIVE: u64 = 1;

// struct smc_sock layout.
const SMC_STATE: u64 = 0x00;
const SMC_CLCSOCK: u64 = 0x08;
const SMC_FILE: u64 = 0x10;
const SMC_PENDING_FPUT: u64 = 0x18;
// struct socket (clcsock) layout.
const CLC_OPS: u64 = 0x00;
// struct file layout.
const FILE_COUNT: u64 = 0x00;

/// Boot-time globals of the SMC subsystem.
pub struct SmcGlobals {
    /// The SMC sockets.
    pub socks: [u64; NSOCKS],
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> SmcGlobals {
    k.fns.register("kernel_connect");
    SmcGlobals {
        socks: std::array::from_fn(|_| k.kzalloc(32, "smc_sock")),
    }
}

fn sock(k: &Kctx, fd: u64) -> Option<u64> {
    k.globals().smc.socks.get(fd as usize).copied()
}

/// `smc_connect`: first caller creates and publishes the clcsock; later
/// callers route through it (writer *and* reader of Bug #8 — the race is
/// between two concurrent connects on the same socket).
pub fn smc_connect(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(smc) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "connect");
    let state = k.read_once(t, iid!(), smc + SMC_STATE);
    if state == SMC_ACTIVE {
        // Fast path: the socket is connected; use the internal socket. The
        // reader half of the barrier pair is present — the historical bug
        // is that the *writer* half below is missing, so this rmb alone
        // cannot prevent the reordering (§2.2: both barriers are needed).
        k.smp_rmb(t, iid!());
        let clc = k.read(t, iid!(), smc + SMC_CLCSOCK);
        let ops = k.read(t, iid!(), clc + CLC_OPS);
        k.call_fn(t, ops);
        return 0;
    }
    // Slow path: build the internal TCP socket and activate.
    let clc = k.kzalloc(16, "socket(clc)");
    k.write(
        t,
        iid!(),
        clc + CLC_OPS,
        k.fns.lookup("kernel_connect").expect("registered at boot"),
    );
    k.write(t, iid!(), smc + SMC_CLCSOCK, clc);
    if !k.bug(BugId::SmcClcsock) {
        // The clcsock must be visible before the socket looks active.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), smc + SMC_STATE, SMC_ACTIVE);
    0
}

/// Accept path: publishes a freshly installed file for the deferred fput
/// worker (writer of Bug #10).
pub fn smc_accept(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(smc) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "smc_accept");
    if k.read(t, iid!(), smc + SMC_PENDING_FPUT) != 0 {
        return EAGAIN; // previous file still pending
    }
    let file = k.kzalloc(16, "file");
    k.write(t, iid!(), file + FILE_COUNT, 1);
    k.write(t, iid!(), smc + SMC_FILE, file);
    if !k.bug(BugId::SmcFput) {
        // The file pointer must be visible before the worker is signalled.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), smc + SMC_PENDING_FPUT, 1);
    0
}

/// Deferred-fput worker (reader of Bug #10): drops the published file's
/// reference.
pub fn smc_fput_worker(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(smc) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "smc_close_work");
    let pending = k.read_once(t, iid!(), smc + SMC_PENDING_FPUT);
    if pending == 0 {
        return EAGAIN;
    }
    let file = k.read(t, iid!(), smc + SMC_FILE);
    fput(k, t, file);
    k.write(t, iid!(), smc + SMC_FILE, 0);
    k.write_once(t, iid!(), smc + SMC_PENDING_FPUT, 0);
    0
}

/// `fput`: atomically drops the file refcount — a *write* access, so a NULL
/// file produces exactly the paper's `KASAN: null-ptr-deref Write in fput`.
fn fput(k: &Kctx, t: Tid, file: u64) {
    let _f = k.enter(t, "fput");
    let old = k.rmw(
        t,
        iid!(),
        file + FILE_COUNT,
        |v| v.wrapping_sub(1),
        RmwOrder::Full,
    );
    if old == 1 {
        k.kfree(t, file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{delay_all_plain_stores_during, expect_crash, expect_no_crash};

    #[test]
    fn in_order_double_connect_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(smc_connect(&k, t0, 0), 0);
        k.syscall_exit(t0);
        assert_eq!(smc_connect(&k, t1, 0), 0, "fast path through clcsock");
        assert!(k.sink.is_empty());
    }

    #[test]
    fn in_order_accept_then_worker_frees_file() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(smc_accept(&k, t0, 0), 0);
        k.syscall_exit(t0);
        assert_eq!(smc_fput_worker(&k, t1, 0), 0);
        assert!(k.sink.is_empty());
        assert_eq!(k.kmem.stats().frees, 1, "refcount dropped to zero");
    }

    #[test]
    fn worker_without_pending_file_is_quiet() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(smc_fput_worker(&k, Tid(0), 0), EAGAIN);
    }

    #[test]
    fn bug8_state_reorder_crashes_concurrent_connect() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                smc_connect(k, t0, 0);
            });
            smc_connect(k, t1, 0);
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in connect"
        );
    }

    #[test]
    fn bug8_fixed_kernel_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                smc_connect(k, t0, 0);
            });
            smc_connect(k, t1, 0);
        });
    }

    #[test]
    fn bug10_fput_reorder_is_null_write() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                smc_accept(k, t0, 0);
            });
            smc_fput_worker(k, t1, 0);
        });
        assert_eq!(title, "KASAN: null-ptr-deref Write in fput");
    }

    #[test]
    fn bug10_fixed_kernel_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                smc_accept(k, t0, 0);
            });
            smc_fput_worker(k, t1, 0);
        });
    }
}
