//! sbitmap: Known #6 \[60\] (S-S) — the bug OZZ **cannot** reproduce (§6.2).
//!
//! "sbitmap: order READ/WRITE freed instance and setting clear bit": the
//! wake-up path frees the old per-slot instance, installs a fresh one, and
//! clears the slot's allocation bit. Without the write barrier the bit
//! clear can become visible before the new instance pointer, so a
//! concurrent allocator reuses the slot and reads the *freed* instance.
//!
//! The trap — and the reason the paper reports this row as not reproduced —
//! is that the slot is reached through a **per-CPU** hint. OZZ pins each
//! concurrent thread to its own CPU before running syscalls, so the writer
//! and the reader always resolve different per-CPU slots and never collide;
//! in the deployed kernel the collision needed a thread *migration* after
//! the per-CPU address was taken. [`Kctx::set_migration_override`] applies
//! the paper's manual kernel modification (force both threads to CPU 0's
//! slot), after which OZZ reproduces the bug — exactly the verification
//! experiment described in §6.2.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bitops::{test_and_set_bit, test_bit};
use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN, MAX_CPUS};

// struct sbitmap_queue layout.
const SBQ_WORD: u64 = 0x00;
const SBQ_SLOTS: u64 = 0x08; // per-CPU instance pointers, one word per CPU

/// Boot-time globals of the sbitmap subsystem.
pub struct SbitmapGlobals {
    /// The sbitmap queue (bit word + per-CPU slot array).
    pub sbq: u64,
}

/// Boots the subsystem: every per-CPU slot starts with a live instance and
/// its allocation bit set (slot busy).
pub fn boot(k: &Arc<Kctx>) -> SbitmapGlobals {
    let sbq = k.kzalloc(SBQ_SLOTS + (MAX_CPUS as u64) * 8, "sbitmap_queue");
    let mut word = 0u64;
    for cpu in 0..MAX_CPUS as u64 {
        let inst = k.kmem.kzalloc(16, "sbq_wait_state");
        k.engine.raw_store(inst, 0x5b + cpu);
        k.engine.raw_store(sbq + SBQ_SLOTS + cpu * 8, inst);
        word |= 1 << cpu;
    }
    k.engine.raw_store(sbq + SBQ_WORD, word);
    SbitmapGlobals { sbq }
}

/// `sbitmap_queue_clear` (the `sbq_wake_up` path): retire the current
/// instance of this CPU's slot, install a fresh one, and clear the
/// allocation bit (Known #6 writer).
pub fn sbitmap_queue_clear(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "sbitmap_queue_clear");
    let g = k.globals();
    let sbq = g.sbitmap.sbq;
    let cpu = k.cpu_of(t) as u64;
    let slot = sbq + SBQ_SLOTS + cpu * 8;
    if !test_bit(k, t, iid!(), cpu as u32, sbq + SBQ_WORD) {
        return EAGAIN; // slot is already free
    }
    let old = k.read(t, iid!(), slot);
    if old != 0 {
        k.kfree(t, old);
    }
    let fresh = k.kzalloc(16, "sbq_wait_state");
    k.write(t, iid!(), fresh, 0x6c);
    k.write(t, iid!(), slot, fresh);
    if !k.bug(BugId::KnownSbitmap) {
        // The [60] fix: the new instance must be visible before the bit
        // clear makes the slot allocatable.
        k.smp_wmb(t, iid!());
    }
    // clear_bit is atomic but unordered — the same shape as Figure 8.
    crate::bitops::clear_bit(k, t, iid!(), cpu as u32, sbq + SBQ_WORD);
    0
}

/// `sbitmap_queue_get`: allocate this CPU's slot and read its instance
/// (Known #6 reader).
pub fn sbitmap_queue_get(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "sbitmap_queue_get");
    let g = k.globals();
    let sbq = g.sbitmap.sbq;
    let cpu = k.cpu_of(t) as u64;
    if test_and_set_bit(k, t, iid!(), cpu as u32, sbq + SBQ_WORD) {
        return EAGAIN; // slot busy
    }
    let inst = k.read(t, iid!(), sbq + SBQ_SLOTS + cpu * 8);
    // Touch the instance: a stale pointer here is a read of a freed object.
    let tag = k.read(t, iid!(), inst);
    tag as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{expect_crash, expect_no_crash, profile_store_iids};

    #[test]
    fn in_order_clear_then_get_works() {
        let k = Kctx::new(BugSwitches::all());
        let t = Tid(0);
        assert_eq!(sbitmap_queue_clear(&k, t), 0);
        k.syscall_exit(t);
        assert_eq!(sbitmap_queue_get(&k, t), 0x6c);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn get_of_busy_slot_is_eagain() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(sbitmap_queue_get(&k, Tid(0)), EAGAIN, "boot slots busy");
    }

    #[test]
    fn clear_of_free_slot_is_eagain() {
        let k = Kctx::new(BugSwitches::all());
        let t = Tid(0);
        sbitmap_queue_clear(&k, t);
        k.syscall_exit(t);
        assert_eq!(sbitmap_queue_clear(&k, t), EAGAIN);
    }

    /// Delays the writer's instance-install store, letting the relaxed
    /// clear_bit overtake it — the Known #6 reordering.
    fn delay_instance_install(k: &Kctx, t: Tid) {
        let iids = profile_store_iids(k, t, |k| {
            sbitmap_queue_clear(k, t);
        });
        // Stores in program order: fresh-instance tag, slot install.
        k.engine.delay_store_at(t, iids[1]);
    }

    #[test]
    fn known6_not_reproducible_under_cpu_pinning() {
        // OZZ pins thread 0 to CPU 0 and thread 1 to CPU 1: the writer
        // retires slot 0 while the reader allocates slot 1, so the
        // reordering never reaches shared state — the ✗ row of Table 4.
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_instance_install(&k, t0);
        expect_no_crash(&k, |k| {
            sbitmap_queue_clear(k, t0);
            let r = sbitmap_queue_get(k, t1);
            assert_eq!(r, EAGAIN, "cpu1's slot is still busy from boot");
        });
    }

    #[test]
    fn known6_reproducible_with_migration_override() {
        // §6.2's verification: force both threads onto CPU 0's per-CPU
        // slot (the manual kernel modification), and the UAF manifests.
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        k.set_migration_override(true);
        delay_instance_install(&k, t0);
        let title = expect_crash(&k, |k| {
            sbitmap_queue_clear(k, t0);
            sbitmap_queue_get(k, t1);
        });
        assert_eq!(title, "KASAN: use-after-free Read in sbitmap_queue_get");
    }

    #[test]
    fn known6_fixed_kernel_survives_even_with_migration() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        k.set_migration_override(true);
        delay_instance_install(&k, t0);
        expect_no_crash(&k, |k| {
            sbitmap_queue_clear(k, t0);
            let r = sbitmap_queue_get(k, t1);
            assert_eq!(r, 0x6c);
        });
    }
}
