//! GSM 0710 multiplexer: Bug #11 (L-L) — `NULL pointer dereference in
//! gsm_dlci_config`.
//!
//! The mux publishes DLCI channel objects into a table with correct *store*
//! ordering, but the buggy reader fetches the table entry with a plain load
//! and then dereferences the channel's config pointer. On a weakly-ordered
//! machine (and under OEMU's versioned loads) the dependent config load can
//! be satisfied with the pre-initialisation value even though the table
//! entry itself reads as published — the Alpha-permitted address-dependency
//! reordering of LKMM Case 6. The fix annotates the table read with
//! `READ_ONCE`, which OEMU honours as an implied load barrier (§3.2).

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EBADF, EBUSY, EINVAL};

/// Number of DLCI slots on the mux.
pub const NUM_DLCI: u64 = 4;

// struct gsm_mux layout: the dlci table starts at offset 0.
const GSM_DLCI: u64 = 0x00;
// struct gsm_dlci layout.
const DLCI_CONFIG: u64 = 0x00;
const DLCI_STATE: u64 = 0x08;
// struct gsm_config layout.
const CFG_K: u64 = 0x00;

/// Boot-time globals of the GSM subsystem.
pub struct GsmGlobals {
    /// The mux object (holding the DLCI table).
    pub gsm: u64,
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> GsmGlobals {
    GsmGlobals {
        gsm: k.kzalloc(NUM_DLCI * 8, "gsm_mux"),
    }
}

/// `gsm_dlci_alloc`: creates a channel and publishes it in the table
/// (writer side — correctly ordered; the bug is in the reader).
pub fn gsm_dlci_alloc(k: &Kctx, t: Tid, idx: u64) -> i64 {
    if idx >= NUM_DLCI {
        return EBADF;
    }
    let _f = k.enter(t, "gsm_dlci_alloc");
    let g = k.globals();
    let slot = g.gsm.gsm + GSM_DLCI + idx * 8;
    if k.read(t, iid!(), slot) != 0 {
        return EBUSY;
    }
    let dlci = k.kzalloc(16, "gsm_dlci");
    let cfg = k.kzalloc(8, "gsm_config");
    k.write(t, iid!(), cfg + CFG_K, 3);
    k.write(t, iid!(), dlci + DLCI_CONFIG, cfg);
    k.write(t, iid!(), dlci + DLCI_STATE, 1);
    // Writer-side publication is correct: release-ordered table store.
    k.store_release(t, iid!(), slot, dlci);
    0
}

/// `gsm_dlci_config`: reads a channel's configuration (reader of Bug #11).
pub fn gsm_dlci_config(k: &Kctx, t: Tid, idx: u64) -> i64 {
    if idx >= NUM_DLCI {
        return EBADF;
    }
    let _f = k.enter(t, "gsm_dlci_config");
    let g = k.globals();
    let slot = g.gsm.gsm + GSM_DLCI + idx * 8;
    let dlci = if k.bug(BugId::GsmDlci) {
        // Buggy: a plain load does not order the dependent config load.
        k.read(t, iid!(), slot)
    } else {
        // Fixed: READ_ONCE implies a load barrier in OEMU (LKMM Case 6).
        k.read_once(t, iid!(), slot)
    };
    if dlci == 0 {
        return EINVAL; // channel not open
    }
    let cfg = k.read(t, iid!(), dlci + DLCI_CONFIG);
    let kval = k.read(t, iid!(), cfg + CFG_K);
    kval as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{expect_crash, expect_no_crash, version_all_plain_loads_with_setup};

    #[test]
    fn in_order_alloc_then_config_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(gsm_dlci_alloc(&k, t0, 1), 0);
        k.syscall_exit(t0);
        assert_eq!(gsm_dlci_config(&k, t1, 1), 3);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn config_of_closed_channel_is_einval() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(gsm_dlci_config(&k, Tid(0), 2), EINVAL);
    }

    #[test]
    fn out_of_range_slot_rejected() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(gsm_dlci_alloc(&k, Tid(0), 9), EBADF);
        assert_eq!(gsm_dlci_config(&k, Tid(0), 9), EBADF);
    }

    #[test]
    fn double_alloc_rejected() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(gsm_dlci_alloc(&k, t, 0), 0);
        k.syscall_exit(t);
        assert_eq!(gsm_dlci_alloc(&k, t, 0), EBUSY);
    }

    #[test]
    fn bug11_load_reorder_crashes_config() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            gsm_dlci_alloc(k, t0, 1);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    gsm_dlci_alloc(k, t0, 1);
                    k.syscall_exit(t0);
                },
                |k| {
                    gsm_dlci_config(k, t1, 1);
                },
            );
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in gsm_dlci_config"
        );
    }

    #[test]
    fn bug11_fixed_reader_survives_same_forcing() {
        // READ_ONCE on the table entry closes the versioning window, so the
        // dependent load cannot observe the pre-initialisation value.
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            gsm_dlci_alloc(k, t0, 1);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    gsm_dlci_alloc(k, t0, 1);
                    k.syscall_exit(t0);
                },
                |k| {
                    let r = gsm_dlci_config(k, t1, 1);
                    assert!(r == 3 || r == EINVAL);
                },
            );
        });
    }
}
