//! mm/filemap: Extended #3 \[62\] — "avoid buffered read/write race to read
//! inconsistent data".
//!
//! The buffered-write path fills the page and then marks it up-to-date;
//! the lockless read fast path checks the flag and copies the data.
//! Without the barrier pair, the flag can become visible before the data —
//! the reader returns stale bytes for a page the kernel claims is
//! up-to-date. Like the paper's Table 4 #8 (`✓*`), the symptom is a
//! **wrong value**, not a crash: no oracle fires, and only a harness
//! checking syscall results can see it.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN};

// struct page (filemap view) layout.
const PAGE_UPTODATE: u64 = 0x00;
const PAGE_DATA: u64 = 0x08;

/// Boot-time globals of the filemap subsystem.
pub struct FilemapGlobals {
    /// The page cache page the paths race on.
    pub page: u64,
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> FilemapGlobals {
    FilemapGlobals {
        page: k.kzalloc(16, "page(filemap)"),
    }
}

/// `filemap_write`: fill the page, then publish it up-to-date.
pub fn filemap_write(k: &Kctx, t: Tid, val: u64) -> i64 {
    let _f = k.enter(t, "filemap_write");
    let page = k.globals().filemap.page;
    let val = if val == 0 { 0x5eed } else { val };
    k.write(t, iid!(), page + PAGE_DATA, val);
    if !k.bug(BugId::ExtFilemap) {
        // The [62] fix: data before the uptodate flag.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), page + PAGE_UPTODATE, 1);
    0
}

/// `filemap_read`: the lockless fast path — returns the page data if the
/// page is up-to-date, `EAGAIN` otherwise. Returning 0 *with* the flag set
/// is the inconsistent-data symptom.
pub fn filemap_read(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "filemap_read");
    let page = k.globals().filemap.page;
    let uptodate = k.read_once(t, iid!(), page + PAGE_UPTODATE);
    if uptodate == 0 {
        return EAGAIN;
    }
    k.read(t, iid!(), page + PAGE_DATA) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::delay_all_plain_stores_during;

    #[test]
    fn in_order_write_then_read_returns_data() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(filemap_write(&k, t0, 0x1234), 0);
        k.syscall_exit(t0);
        assert_eq!(filemap_read(&k, t1), 0x1234);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn read_before_write_is_eagain() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(filemap_read(&k, Tid(0)), EAGAIN);
    }

    #[test]
    fn zero_writes_are_canonicalised() {
        // A data value of zero would be indistinguishable from "stale";
        // the writer never stores it, keeping the wrong-value detection
        // unambiguous.
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        filemap_write(&k, t, 0);
        k.syscall_exit(t);
        assert_eq!(filemap_read(&k, t), 0x5eed);
    }

    #[test]
    fn e3_reorder_returns_inconsistent_data() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_all_plain_stores_during(&k, t0, |k| {
            filemap_write(k, t0, 0x1234);
        });
        assert_eq!(
            filemap_read(&k, t1),
            0,
            "uptodate observed with stale data — the wrong-value symptom"
        );
        assert!(k.sink.is_empty(), "no oracle fires for wrong values");
    }

    #[test]
    fn e3_fixed_kernel_returns_consistent_data() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_all_plain_stores_during(&k, t0, |k| {
            filemap_write(k, t0, 0x1234);
        });
        let r = filemap_read(&k, t1);
        assert!(r == 0x1234 || r == EAGAIN, "never inconsistent: {r}");
    }
}
