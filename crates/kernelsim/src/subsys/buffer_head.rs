//! fs/buffer: Extended #1 \[82\] — the 2007 "buffer: memorder fix" and the
//! double-free consequence the paper's §3 uses to motivate in-vivo testing.
//!
//! A page's buffer-head slot is protected by a bit lock. The replace path
//! frees the old head, installs a fresh one, and drops the lock; the
//! historical bug released the lock with an unordered bit clear, so the
//! install store could still be in the store buffer when another CPU
//! acquired the lock — which then freed the *stale* (already freed)
//! pointer. Only an oracle that knows the allocator's runtime state can
//! classify that second `kfree` as a double free, which is exactly the
//! §3 argument against in-vitro trace analysis.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bitops::{clear_bit, clear_bit_unlock, test_and_set_bit};
use crate::bugs::BugId;
use crate::kctx::{Kctx, EBUSY};

/// Bit index of the buffer lock in the page flags.
pub const BH_LOCK: u32 = 4;

// struct page (buffer view) layout.
const PAGE_FLAGS: u64 = 0x00;
const PAGE_BH: u64 = 0x08;
// struct buffer_head layout.
const BH_DATA: u64 = 0x00;

/// Boot-time globals of the buffer subsystem.
pub struct BufferGlobals {
    /// The page whose buffer-head slot the paths race on.
    pub page: u64,
}

/// Boots the subsystem: the page starts with a live buffer head attached.
pub fn boot(k: &Arc<Kctx>) -> BufferGlobals {
    let page = k.kzalloc(16, "page");
    let bh = k.kmem.kzalloc(16, "buffer_head");
    k.engine.raw_store(bh + BH_DATA, 0xb0);
    k.engine.raw_store(page + PAGE_BH, bh);
    BufferGlobals { page }
}

fn lock_page_buffers(k: &Kctx, t: Tid, page: u64) -> bool {
    !test_and_set_bit(k, t, iid!(), BH_LOCK, page + PAGE_FLAGS)
}

fn unlock_page_buffers(k: &Kctx, t: Tid, page: u64) {
    if k.bug(BugId::ExtBufferDoubleFree) {
        // The pre-2007 code: an unordered release.
        clear_bit(k, t, iid!(), BH_LOCK, page + PAGE_FLAGS);
    } else {
        // Piggin's memorder fix: release semantics on the unlock.
        clear_bit_unlock(k, t, iid!(), BH_LOCK, page + PAGE_FLAGS);
    }
}

/// `bh_replace`: under the lock, free the current buffer head and install
/// a fresh one (the writeback path's re-allocation).
pub fn bh_replace(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "bh_replace");
    let page = k.globals().buffer.page;
    if !lock_page_buffers(k, t, page) {
        return EBUSY;
    }
    let old = k.read(t, iid!(), page + PAGE_BH);
    if old != 0 {
        k.kfree(t, old);
    }
    let fresh = k.kzalloc(16, "buffer_head");
    k.write(t, iid!(), fresh + BH_DATA, 0xb1);
    // Invariant: page->bh never points at a freed head outside the lock.
    // Only a release-ordered unlock upholds it.
    k.write(t, iid!(), page + PAGE_BH, fresh);
    unlock_page_buffers(k, t, page);
    0
}

/// `bh_evict`: under the lock, detach and free the page's buffer head
/// (the memory-pressure path). The crash site of Extended #1: with the
/// stale pointer still visible, this frees an already-freed head.
pub fn bh_evict(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "bh_evict");
    let page = k.globals().buffer.page;
    if !lock_page_buffers(k, t, page) {
        return EBUSY;
    }
    let bh = k.read(t, iid!(), page + PAGE_BH);
    if bh != 0 {
        k.kfree(t, bh);
        k.write(t, iid!(), page + PAGE_BH, 0);
    }
    unlock_page_buffers(k, t, page);
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{expect_crash, expect_no_crash, profile_store_iids};

    #[test]
    fn in_order_replace_then_evict_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(bh_replace(&k, t0), 0);
        k.syscall_exit(t0);
        assert_eq!(bh_evict(&k, t1), 0);
        k.syscall_exit(t1);
        assert_eq!(bh_evict(&k, t1), 0, "empty slot is a no-op");
        assert!(k.sink.is_empty());
    }

    #[test]
    fn lock_excludes_concurrent_paths() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let page = k.globals().buffer.page;
        assert!(lock_page_buffers(&k, t0, page));
        assert_eq!(bh_replace(&k, t1), EBUSY);
        assert_eq!(bh_evict(&k, t1), EBUSY);
        unlock_page_buffers(&k, t0, page);
        assert_eq!(bh_evict(&k, t1), 0);
    }

    /// Delays the install store inside `bh_replace`'s critical section so
    /// the unordered bit clear overtakes it.
    fn delay_install(k: &Kctx, t: Tid) {
        let iids = profile_store_iids(k, t, |k| {
            bh_replace(k, t);
        });
        // Stores in program order: fresh->data, page->bh install.
        k.engine.delay_store_at(t, iids[1]);
    }

    #[test]
    fn e1_unordered_unlock_is_a_double_free() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_install(&k, t0);
        let title = expect_crash(&k, |k| {
            bh_replace(k, t0);
            // The stale page->bh (freed inside t0's critical section) is
            // what t1's evict observes and frees again.
            bh_evict(k, t1);
        });
        assert_eq!(title, "KASAN: double-free in bh_evict");
    }

    #[test]
    fn e1_memorder_fix_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_install(&k, t0);
        expect_no_crash(&k, |k| {
            bh_replace(k, t0);
            bh_evict(k, t1);
        });
    }
}
