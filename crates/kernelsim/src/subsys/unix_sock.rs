//! AF_UNIX sockets: Known #9 \[106\] (L-L) — "missing barriers in some of
//! unix_sock ->addr and ->path accesses".
//!
//! `unix_bind` builds the address object and publishes `u->addr` with
//! release ordering; the lockless readers (`unix_getname` and friends) must
//! pair it with an acquire load. The reverted fix is exactly that pairing:
//! with a plain load of `u->addr`, the dependent name-buffer load can be
//! satisfied with its pre-publication (NULL) value.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EBADF, EBUSY, EINVAL};

/// Number of unix sockets.
pub const NSOCKS: usize = 2;

// struct unix_sock layout.
const U_ADDR: u64 = 0x00;
// struct unix_address layout.
const ADDR_LEN: u64 = 0x00;
const ADDR_NAME: u64 = 0x08;

/// Boot-time globals of the unix subsystem.
pub struct UnixGlobals {
    /// The unix sockets.
    pub socks: [u64; NSOCKS],
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> UnixGlobals {
    UnixGlobals {
        socks: std::array::from_fn(|_| k.kzalloc(8, "unix_sock")),
    }
}

fn sock(k: &Kctx, fd: u64) -> Option<u64> {
    k.globals().unix.socks.get(fd as usize).copied()
}

/// `unix_bind`: builds and publishes the socket address (writer side —
/// correctly release-ordered).
pub fn unix_bind(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(u) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "unix_bind");
    if k.read(t, iid!(), u + U_ADDR) != 0 {
        return EBUSY; // already bound
    }
    let addr = k.kzalloc(16, "unix_address");
    let name = k.kzalloc(16, "sun_path");
    k.write(t, iid!(), name, 0x2f746d70); // "/tmp"
    k.write(t, iid!(), addr + ADDR_NAME, name);
    k.write(t, iid!(), addr + ADDR_LEN, 4);
    k.store_release(t, iid!(), u + U_ADDR, addr);
    0
}

/// `unix_getname`: lockless read of the bound address (Known #9 reader).
pub fn unix_getname(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(u) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "unix_getname");
    let addr = if k.bug(BugId::KnownUnix) {
        // Buggy: plain load, unpaired with the writer's release.
        k.read(t, iid!(), u + U_ADDR)
    } else {
        // The [106] fix: acquire load pairing.
        k.load_acquire(t, iid!(), u + U_ADDR)
    };
    if addr == 0 {
        return EINVAL; // autobind: no name yet
    }
    let name = k.read(t, iid!(), addr + ADDR_NAME);
    let first = k.read(t, iid!(), name);
    let len = k.read(t, iid!(), addr + ADDR_LEN);
    let _ = first;
    len as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{expect_crash, expect_no_crash, version_all_plain_loads_with_setup};

    #[test]
    fn in_order_bind_then_getname_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(unix_bind(&k, t0, 0), 0);
        k.syscall_exit(t0);
        assert_eq!(unix_getname(&k, t1, 0), 4);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn getname_before_bind_is_einval() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(unix_getname(&k, Tid(0), 0), EINVAL);
        assert_eq!(unix_getname(&k, Tid(0), 9), EBADF);
    }

    #[test]
    fn double_bind_rejected() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(unix_bind(&k, t, 1), 0);
        k.syscall_exit(t);
        assert_eq!(unix_bind(&k, t, 1), EBUSY);
    }

    #[test]
    fn known9_load_reorder_crashes_getname() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            unix_bind(k, t0, 0);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    unix_bind(k, t0, 0);
                    k.syscall_exit(t0);
                },
                |k| {
                    unix_getname(k, t1, 0);
                },
            );
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in unix_getname"
        );
    }

    #[test]
    fn known9_acquire_fix_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            unix_bind(k, t0, 0);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    unix_bind(k, t0, 0);
                    k.syscall_exit(t0);
                },
                |k| {
                    let r = unix_getname(k, t1, 0);
                    assert!(r == 4 || r == EINVAL);
                },
            );
        });
    }
}
