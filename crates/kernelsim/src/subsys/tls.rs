//! TLS sockets: Figure 7 (Bug #9), Bug #5, and the `tls_err_abort`
//! wrong-value bug (Table 4 #8).
//!
//! - **Bug #9** (S-S, Figure 7): `tls_init` allocates the TLS context,
//!   saves the original `sk->sk_prot` into `ctx->sk_proto`, and swaps the
//!   socket's proto table for `tls_prots`. The historical "fix" annotated
//!   the swap with `WRITE_ONCE`/`READ_ONCE` — which silences KCSAN but
//!   provides no ordering — so the swap can still become visible before the
//!   context is initialised, and a concurrent `setsockopt` calls through a
//!   NULL `ctx->sk_proto` (execution order `#9 → #20 → #28 → #6`).
//! - **Bug #5** (L-L): `tls_getsockopt` reads the context pointer and then
//!   its fields with no load ordering; a speculated field load observes the
//!   pre-initialisation value across the function boundary (one of the bugs
//!   §7 notes KCSAN cannot model).
//! - **Known #8 \[50\]** (S-S, `✓*` in Table 4): `tls_err_abort` publishes
//!   the done flag before the error code is visible, so the reader returns
//!   a *wrong value* rather than crashing.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN, EBADF, EBUSY};

/// Number of TLS-capable sockets.
pub const NSOCKS: usize = 2;
/// Error code `tls_err_abort` publishes (`EPIPE`).
pub const TLS_ERR: u64 = 32;

// struct sock layout.
const SK_PROT: u64 = 0x00;
const SK_DATA: u64 = 0x08;
const SK_ERR: u64 = 0x10;
const SK_DONE: u64 = 0x18;
// struct tls_context layout.
const CTX_SK_PROTO: u64 = 0x00;
const CTX_TX_CONF: u64 = 0x08;
// struct proto layout (ops table).
const PROT_SETSOCKOPT: u64 = 0x00;
const PROT_GETSOCKOPT: u64 = 0x08;

/// Boot-time globals of the TLS subsystem.
pub struct TlsGlobals {
    /// The TLS-capable sockets.
    pub socks: [u64; NSOCKS],
    /// The base (TCP) proto table.
    pub base_prots: u64,
    /// The TLS proto table (`tls_prots` in Figure 7).
    pub tls_prots: u64,
}

/// Boots the subsystem: sockets start with the TCP proto table installed.
pub fn boot(k: &Arc<Kctx>) -> TlsGlobals {
    let base_prots = k.kzalloc(16, "proto(tcp)");
    k.engine.raw_store(
        base_prots + PROT_SETSOCKOPT,
        k.fns.register("tcp_setsockopt"),
    );
    k.engine.raw_store(
        base_prots + PROT_GETSOCKOPT,
        k.fns.register("tcp_getsockopt"),
    );
    let tls_prots = k.kzalloc(16, "proto(tls)");
    k.engine.raw_store(
        tls_prots + PROT_SETSOCKOPT,
        k.fns.register("tls_setsockopt"),
    );
    k.engine.raw_store(
        tls_prots + PROT_GETSOCKOPT,
        k.fns.register("tls_getsockopt"),
    );
    let socks = std::array::from_fn(|_| {
        let sk = k.kzalloc(32, "sock");
        k.engine.raw_store(sk + SK_PROT, base_prots);
        sk
    });
    TlsGlobals {
        socks,
        base_prots,
        tls_prots,
    }
}

fn sock(k: &Kctx, fd: u64) -> Option<u64> {
    k.globals().tls.socks.get(fd as usize).copied()
}

/// `tls_init`: Figure 7 lines 3-11 (Thread A).
pub fn tls_init(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(sk) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "tls_init");
    let g = k.globals();
    if k.read(t, iid!(), sk + SK_DATA) != 0 {
        return EBUSY; // TLS already initialised on this socket
    }
    let ctx = k.kzalloc(16, "tls_context"); // line 4: kzalloc
    k.write(t, iid!(), sk + SK_DATA, ctx); // line 5
    let prot = k.read_once(t, iid!(), sk + SK_PROT); // line 7
    k.write(t, iid!(), ctx + CTX_SK_PROTO, prot); // line 6
    k.write(t, iid!(), ctx + CTX_TX_CONF, 1);
    if !k.bug(BugId::TlsSkProt) {
        // Line 8: the barrier the mis-fix omitted.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), sk + SK_PROT, g.tls.tls_prots); // lines 9-10
    0
}

/// `sock_common_setsockopt`: Figure 7 lines 18-22 (Thread B).
pub fn sock_setsockopt(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(sk) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "sock_common_setsockopt");
    let prot = k.read_once(t, iid!(), sk + SK_PROT); // line 20
    let f = k.read(t, iid!(), prot + PROT_SETSOCKOPT);
    match k.call_fn(t, f) {
        "tls_setsockopt" => tls_setsockopt(k, t, sk),
        _ => 0, // tcp_setsockopt: benign
    }
}

/// `tls_setsockopt`: Figure 7 lines 25-30.
fn tls_setsockopt(k: &Kctx, t: Tid, sk: u64) -> i64 {
    let _f = k.enter(t, "tls_setsockopt");
    let ctx = k.read(t, iid!(), sk + SK_DATA); // line 26-27
    let sk_proto = k.read(t, iid!(), ctx + CTX_SK_PROTO); // line 28
    let f = k.read(t, iid!(), sk_proto + PROT_SETSOCKOPT);
    k.call_fn(t, f); // line 29
    0
}

/// `sock_common_getsockopt`, dispatching to `tls_getsockopt` (Bug #5, L-L).
///
/// The setsockopt path got its `READ_ONCE(sk->sk_prot)` annotation in the
/// historical data-race fix, but this getsockopt path missed it: with a
/// plain load of `sk_prot`, the dependent loads deep inside
/// `tls_getsockopt` can be satisfied before it — a reordering that crosses
/// a function boundary, which §7 highlights as beyond KCSAN's single-access
/// model. The fix annotates the dispatch load, which OEMU honours as an
/// implied load barrier (§3.2, LKMM Case 6).
pub fn sock_getsockopt(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(sk) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "sock_common_getsockopt");
    let prot = if k.bug(BugId::TlsGetsockopt) {
        k.read(t, iid!(), sk + SK_PROT)
    } else {
        k.read_once(t, iid!(), sk + SK_PROT)
    };
    let f = k.read(t, iid!(), prot + PROT_GETSOCKOPT);
    match k.call_fn(t, f) {
        "tls_getsockopt" => tls_getsockopt(k, t, sk),
        _ => 0, // tcp_getsockopt: benign
    }
}

/// `tls_getsockopt`: reads the TLS context published by [`tls_init`]; the
/// crash site of Bug #5.
fn tls_getsockopt(k: &Kctx, t: Tid, sk: u64) -> i64 {
    let _f = k.enter(t, "tls_getsockopt");
    let ctx = k.read(t, iid!(), sk + SK_DATA);
    let sk_proto = k.read(t, iid!(), ctx + CTX_SK_PROTO);
    let f = k.read(t, iid!(), sk_proto + PROT_GETSOCKOPT);
    k.call_fn(t, f);
    0
}

/// `tls_err_abort` (Known #8 \[50\], S-S): record the error, then publish
/// completion. Without the barrier the done flag can become visible first.
pub fn tls_err_abort(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(sk) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "tls_err_abort");
    k.write(t, iid!(), sk + SK_ERR, TLS_ERR);
    if !k.bug(BugId::KnownTlsErr) {
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), sk + SK_DONE, 1);
    0
}

/// Poll side of Known #8: returns the error once done, `EAGAIN` before.
/// The buggy reordering makes this return 0 — a wrong value, the paper's
/// `✓*` symptom — instead of [`TLS_ERR`].
pub fn tls_poll_err(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(sk) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "tls_poll_err");
    let done = k.read_once(t, iid!(), sk + SK_DONE);
    if done == 0 {
        return EAGAIN;
    }
    k.read(t, iid!(), sk + SK_ERR) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{
        delay_all_plain_stores_during, expect_crash, expect_no_crash,
        version_all_plain_loads_with_setup,
    };

    #[test]
    fn in_order_init_then_setsockopt_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(tls_init(&k, t0, 0), 0);
        k.syscall_exit(t0);
        assert_eq!(sock_setsockopt(&k, t1, 0), 0);
        assert_eq!(sock_getsockopt(&k, t1, 0), 0);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn setsockopt_before_init_uses_tcp_path() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(sock_setsockopt(&k, Tid(0), 0), 0);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn double_init_returns_ebusy() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(tls_init(&k, t, 0), 0);
        k.syscall_exit(t);
        assert_eq!(tls_init(&k, t, 0), EBUSY);
    }

    #[test]
    fn bad_fd_rejected() {
        let k = Kctx::new(BugSwitches::none());
        assert_eq!(tls_init(&k, Tid(0), 99), EBADF);
        assert_eq!(sock_setsockopt(&k, Tid(0), 99), EBADF);
    }

    #[test]
    fn bug9_figure7_store_reorder_crashes() {
        // Order #9 -> #20 -> #28 -> #6: the proto swap overtakes the
        // context initialisation.
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                tls_init(k, t0, 0);
            });
            sock_setsockopt(k, t1, 0);
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in tls_setsockopt"
        );
    }

    #[test]
    fn bug9_fixed_kernel_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                tls_init(k, t0, 0);
            });
            sock_setsockopt(k, t1, 0);
        });
    }

    #[test]
    fn bug5_load_reorder_crashes_getsockopt() {
        // With the dispatch load unannotated, the reader's window stays
        // open and every dependent load may be versioned to its
        // pre-publication value — the cross-function L-L reorder.
        let k = Kctx::new(BugSwitches::only([BugId::TlsGetsockopt]));
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            tls_init(k, t0, 0);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    tls_init(k, t0, 0);
                    k.syscall_exit(t0);
                },
                |k| {
                    sock_getsockopt(k, t1, 0);
                },
            );
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in tls_getsockopt"
        );
    }

    #[test]
    fn bug5_fixed_kernel_survives_same_forcing() {
        // READ_ONCE on the dispatch load closes the versioning window, so
        // the same forcing cannot observe pre-publication values.
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            tls_init(k, t0, 0);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    tls_init(k, t0, 0);
                    k.syscall_exit(t0);
                },
                |k| {
                    sock_getsockopt(k, t1, 0);
                },
            );
        });
    }

    #[test]
    fn known8_err_abort_reorder_returns_wrong_value() {
        // The ✓* row of Table 4: no crash, but the reader observes done
        // without the error code.
        let k = Kctx::new(BugSwitches::only([BugId::KnownTlsErr]));
        let (t0, t1) = (Tid(0), Tid(1));
        delay_all_plain_stores_during(&k, t0, |k| {
            tls_err_abort(k, t0, 0);
        });
        assert_eq!(tls_poll_err(&k, t1, 0), 0, "wrong value: error lost");
        assert!(k.sink.is_empty(), "no oracle fires for wrong values");
    }

    #[test]
    fn known8_fixed_kernel_returns_error() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_all_plain_stores_during(&k, t0, |k| {
            tls_err_abort(k, t0, 0);
        });
        assert_eq!(tls_poll_err(&k, t1, 0), TLS_ERR as i64);
    }

    #[test]
    fn poll_before_abort_is_eagain() {
        let k = Kctx::new(BugSwitches::none());
        assert_eq!(tls_poll_err(&k, Tid(0), 0), EAGAIN);
    }
}
