//! RDS transmit path: Bug #1 (Figure 8) — the incorrect customised lock.
//!
//! `acquire_in_xmit`/`release_in_xmit` implement a try-lock with atomic bit
//! operations. The buggy variant releases with `clear_bit`, which carries
//! **no ordering**: the critical section's stores can drain from the store
//! buffer *after* the lock bit clears, so a second CPU acquires the lock and
//! observes a torn protected state. Here the protected invariant is
//! `xmit_sg < current message length`; the torn state pairs a freshly
//! switched (smaller) message with a stale scatter-gather cursor, and the
//! reader's fragment fetch walks off the end of the message — the paper's
//! `KASAN: slab-out-of-bounds Read in rds_loop_xmit`.
//!
//! The fix is `clear_bit_unlock`, whose release semantics flush the critical
//! section before the bit clears. Note that this bug contains **no data
//! race** — every access is inside the custom lock — which is why the paper
//! singles it out as undetectable by data-race detectors (§6.1, case study
//! 2).

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bitops::{clear_bit, clear_bit_unlock, test_and_set_bit};
use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN, EBUSY};

/// Bit index of the transmit lock in `cp_flags`.
pub const IN_XMIT: u32 = 2;

// struct rds_conn_path layout.
const CP_FLAGS: u64 = 0x00;
const CP_XMIT_SG: u64 = 0x08;
const CP_XMIT_MSG: u64 = 0x10;
// struct rds_message layout.
const MSG_LEN: u64 = 0x00;
const MSG_DATA: u64 = 0x08;

/// Fragment count of the large message.
pub const BIG_FRAGS: u64 = 8;
/// Fragment count of the small message.
pub const SMALL_FRAGS: u64 = 1;

/// Boot-time globals of the RDS subsystem.
pub struct RdsGlobals {
    /// The connection path.
    pub cp: u64,
    /// A queued message with [`BIG_FRAGS`] fragments.
    pub msg_big: u64,
    /// A queued message with [`SMALL_FRAGS`] fragment (its data array is
    /// exactly one word, so any stale cursor overruns it).
    pub msg_small: u64,
}

/// Boots the subsystem: the connection starts pointed at the big message
/// with the cursor at zero.
pub fn boot(k: &Arc<Kctx>) -> RdsGlobals {
    let cp = k.kzalloc(24, "rds_conn_path");
    let msg_big = alloc_msg(k, BIG_FRAGS);
    let msg_small = alloc_msg(k, SMALL_FRAGS);
    k.engine.raw_store(cp + CP_XMIT_MSG, msg_big);
    RdsGlobals {
        cp,
        msg_big,
        msg_small,
    }
}

fn alloc_msg(k: &Kctx, frags: u64) -> u64 {
    let msg = k.kzalloc(MSG_DATA + frags * 8, "rds_message");
    k.engine.raw_store(msg + MSG_LEN, frags);
    for i in 0..frags {
        k.engine.raw_store(msg + MSG_DATA + i * 8, 0xAA00 + i);
    }
    msg
}

/// `acquire_in_xmit`: Figure 8 left — fully ordered try-lock.
fn acquire_in_xmit(k: &Kctx, t: Tid, cp: u64) -> bool {
    !test_and_set_bit(k, t, iid!(), IN_XMIT, cp + CP_FLAGS)
}

/// `release_in_xmit`: Figure 8 right — the seeded bug is using the
/// unordered `clear_bit` instead of `clear_bit_unlock`.
fn release_in_xmit(k: &Kctx, t: Tid, cp: u64) {
    if k.bug(BugId::RdsClearBit) {
        clear_bit(k, t, iid!(), IN_XMIT, cp + CP_FLAGS);
    } else {
        clear_bit_unlock(k, t, iid!(), IN_XMIT, cp + CP_FLAGS);
    }
}

/// `rds_send_xmit`: under the lock, requeue transmission onto the *other*
/// message — reset the cursor, then switch the message pointer.
pub fn rds_send_xmit(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "rds_send_xmit");
    let g = k.globals();
    let cp = g.rds.cp;
    if !acquire_in_xmit(k, t, cp) {
        return EBUSY;
    }
    let cur = k.read(t, iid!(), cp + CP_XMIT_MSG);
    let next = if cur == g.rds.msg_big {
        g.rds.msg_small
    } else {
        g.rds.msg_big
    };
    // Invariant: `xmit_sg < msg->m_len`. The reset must be visible no later
    // than the message switch — which only the release-ordered unlock
    // guarantees.
    k.write(t, iid!(), cp + CP_XMIT_SG, 0);
    k.write(t, iid!(), cp + CP_XMIT_MSG, next);
    release_in_xmit(k, t, cp);
    0
}

/// `rds_loop_xmit`: under the lock, transmit the next fragment of the
/// current message and advance the cursor (wrapping at the end).
pub fn rds_loop_xmit(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "rds_loop_xmit");
    let g = k.globals();
    let cp = g.rds.cp;
    if !acquire_in_xmit(k, t, cp) {
        return EBUSY;
    }
    let msg = k.read(t, iid!(), cp + CP_XMIT_MSG);
    if msg == 0 {
        release_in_xmit(k, t, cp);
        return EAGAIN;
    }
    let sg = k.read(t, iid!(), cp + CP_XMIT_SG);
    // The loopback transport trusts the under-lock invariant and fetches
    // the fragment without a bounds check, like the upstream code did.
    let frag = k.read(t, iid!(), msg + MSG_DATA + sg * 8);
    let m_len = k.read(t, iid!(), msg + MSG_LEN);
    let next_sg = if sg + 1 >= m_len { 0 } else { sg + 1 };
    k.write(t, iid!(), cp + CP_XMIT_SG, next_sg);
    release_in_xmit(k, t, cp);
    frag as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::kctx::Kctx;
    use crate::testutil::{expect_crash, expect_no_crash, profile_store_iids};

    #[test]
    fn in_order_xmit_cycles_through_messages() {
        let k = Kctx::new(BugSwitches::all());
        let t = Tid(0);
        // Advance the cursor on the big message, then requeue twice.
        assert_eq!(rds_loop_xmit(&k, t), 0xAA00);
        assert_eq!(rds_loop_xmit(&k, t), 0xAA01);
        assert_eq!(rds_send_xmit(&k, t), 0); // switch to small
        assert_eq!(rds_loop_xmit(&k, t), 0xAA00);
        assert_eq!(rds_send_xmit(&k, t), 0); // back to big
        assert_eq!(rds_loop_xmit(&k, t), 0xAA00);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn lock_excludes_concurrent_entry() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let cp = k.globals().rds.cp;
        assert!(acquire_in_xmit(&k, t0, cp));
        assert_eq!(rds_loop_xmit(&k, t1), EBUSY);
        assert_eq!(rds_send_xmit(&k, t1), EBUSY);
        release_in_xmit(&k, t0, cp);
        assert_eq!(rds_send_xmit(&k, t1), 0);
    }

    /// Installs the bug-triggering forcing: delay the cursor reset inside
    /// `rds_send_xmit`'s critical section so the (relaxed) `clear_bit`
    /// overtakes it.
    fn delay_cursor_reset(k: &Kctx, t: Tid) {
        let iids = profile_store_iids(k, t, |k| {
            rds_send_xmit(k, t);
        });
        // Stores in program order: xmit_sg reset, xmit_msg switch. Delay
        // only the reset — the second-largest scheduling hint Algorithm 1
        // would produce for this group.
        k.engine.delay_store_at(t, iids[0]);
    }

    #[test]
    fn bug1_clear_bit_breaks_mutual_exclusion() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        // Pump the cursor to 1 on the big message.
        assert_eq!(rds_loop_xmit(&k, t0), 0xAA00);
        k.syscall_exit(t0);
        delay_cursor_reset(&k, t0);
        let title = expect_crash(&k, |k| {
            // The requeue's cursor reset stays in t0's store buffer, but
            // clear_bit commits: the lock looks free with a torn state.
            rds_send_xmit(k, t0);
            // t1 acquires the "free" lock and fetches fragment 1 of the
            // one-fragment message.
            rds_loop_xmit(k, t1);
        });
        assert_eq!(title, "KASAN: slab-out-of-bounds Read in rds_loop_xmit");
    }

    #[test]
    fn bug1_clear_bit_unlock_fixes_it() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(rds_loop_xmit(&k, t0), 0xAA00);
        k.syscall_exit(t0);
        delay_cursor_reset(&k, t0);
        expect_no_crash(&k, |k| {
            rds_send_xmit(k, t0);
            rds_loop_xmit(k, t1);
        });
    }

    #[test]
    fn no_crash_without_cursor_progress() {
        // With the cursor still at zero, the torn state is within bounds of
        // the small message, so the same reordering is benign.
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_cursor_reset(&k, t0);
        expect_no_crash(&k, |k| {
            rds_send_xmit(k, t0);
            rds_loop_xmit(k, t1);
        });
    }
}
