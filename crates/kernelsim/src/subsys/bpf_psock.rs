//! BPF sockmap psock: Bug #6 (S-S).
//!
//! `sk_psock_init` saves the socket's original `data_ready` callback into
//! `psock->saved_data_ready` before installing the verdict hook. Without a
//! write barrier the hook installation (and the psock publication) can
//! become visible first, so the hook runs, finds the psock, and calls a
//! NULL `saved_data_ready` — the paper's `NULL pointer dereference in
//! sk_psock_verdict_data_ready`.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EBADF, EBUSY};

/// Number of sockmap-capable sockets.
pub const NSOCKS: usize = 2;

// struct sock layout (bpf view).
const SK_PSOCK: u64 = 0x00;
const SK_DATA_READY: u64 = 0x08;
// struct sk_psock layout.
const PSOCK_SAVED_READY: u64 = 0x00;
const PSOCK_VERDICT: u64 = 0x08;

/// Boot-time globals of the sockmap subsystem.
pub struct BpfGlobals {
    /// The sockets.
    pub socks: [u64; NSOCKS],
}

/// Boots the subsystem: sockets start with the default `data_ready`.
pub fn boot(k: &Arc<Kctx>) -> BpfGlobals {
    let default_ready = k.fns.register("sock_def_readable");
    k.fns.register("sk_psock_verdict_data_ready");
    k.fns.register("sk_psock_verdict_recv");
    BpfGlobals {
        socks: std::array::from_fn(|_| {
            let sk = k.kzalloc(16, "sock(bpf)");
            k.engine.raw_store(sk + SK_DATA_READY, default_ready);
            sk
        }),
    }
}

fn sock(k: &Kctx, fd: u64) -> Option<u64> {
    k.globals().bpf.socks.get(fd as usize).copied()
}

/// `sk_psock_init` + `sk_psock_start_verdict`: attach a psock to the socket
/// (writer of Bug #6).
pub fn psock_init(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(sk) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "sk_psock_init");
    if k.read(t, iid!(), sk + SK_PSOCK) != 0 {
        return EBUSY;
    }
    let psock = k.kzalloc(16, "sk_psock");
    let saved = k.read(t, iid!(), sk + SK_DATA_READY);
    k.write(t, iid!(), psock + PSOCK_SAVED_READY, saved);
    k.write(
        t,
        iid!(),
        psock + PSOCK_VERDICT,
        k.fns
            .lookup("sk_psock_verdict_recv")
            .expect("registered at boot"),
    );
    if !k.bug(BugId::PsockSavedReady) {
        // The psock must be fully initialised before the hook can find it.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), sk + SK_PSOCK, psock);
    k.write_once(
        t,
        iid!(),
        sk + SK_DATA_READY,
        k.fns
            .lookup("sk_psock_verdict_data_ready")
            .expect("registered at boot"),
    );
    0
}

/// Data arrival on the socket: invokes the current `data_ready` callback
/// (reader of Bug #6).
pub fn sock_recvmsg(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(sk) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "sock_recvmsg");
    let ready = k.read_once(t, iid!(), sk + SK_DATA_READY);
    match k.call_fn(t, ready) {
        "sk_psock_verdict_data_ready" => sk_psock_verdict_data_ready(k, t, sk),
        _ => 0, // sock_def_readable: benign
    }
}

fn sk_psock_verdict_data_ready(k: &Kctx, t: Tid, sk: u64) -> i64 {
    let _f = k.enter(t, "sk_psock_verdict_data_ready");
    let psock = k.read_once(t, iid!(), sk + SK_PSOCK);
    if psock == 0 {
        return 0; // hook raced with detach: nothing to do
    }
    let verdict = k.read(t, iid!(), psock + PSOCK_VERDICT);
    k.call_fn(t, verdict);
    let saved = k.read(t, iid!(), psock + PSOCK_SAVED_READY);
    // Chain to the original callback — NULL when the init stores were
    // reordered past the hook installation.
    k.call_fn(t, saved);
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{expect_crash, expect_no_crash, profile_store_iids};

    #[test]
    fn in_order_attach_then_recv_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(psock_init(&k, t0, 0), 0);
        k.syscall_exit(t0);
        assert_eq!(sock_recvmsg(&k, t1, 0), 0);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn recv_without_psock_uses_default_path() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(sock_recvmsg(&k, Tid(0), 0), 0);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn double_attach_rejected() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(psock_init(&k, t, 0), 0);
        k.syscall_exit(t);
        assert_eq!(psock_init(&k, t, 0), EBUSY);
    }

    /// The Bug #6 hint: delay the psock field initialisation but let both
    /// publication stores commit (Algorithm 1's third-largest hint for this
    /// group).
    fn delay_psock_init_stores(k: &Kctx, t: Tid) {
        let iids = profile_store_iids(k, t, |k| {
            psock_init(k, t, 0);
        });
        // Program order: saved_ready, verdict, psock publish, hook install.
        k.engine.delay_store_at(t, iids[0]);
        k.engine.delay_store_at(t, iids[1]);
    }

    #[test]
    fn bug6_reorder_crashes_verdict_data_ready() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_psock_init_stores(&k, t0);
        let title = expect_crash(&k, |k| {
            psock_init(k, t0, 0);
            sock_recvmsg(k, t1, 0);
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in sk_psock_verdict_data_ready"
        );
    }

    #[test]
    fn bug6_fixed_kernel_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        delay_psock_init_stores(&k, t0);
        expect_no_crash(&k, |k| {
            psock_init(k, t0, 0);
            sock_recvmsg(k, t1, 0);
        });
    }

    #[test]
    fn hook_races_with_unpublished_psock_benignly() {
        // Delaying the psock publication itself (the maximal hint) hits the
        // hook's NULL-psock guard — no crash, matching the kernel.
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let iids = profile_store_iids(&k, t0, |k| {
            psock_init(k, t0, 0);
        });
        for &iid in &iids[..3] {
            k.engine.delay_store_at(t0, iid);
        }
        expect_no_crash(&k, |k| {
            psock_init(k, t0, 0);
            sock_recvmsg(k, t1, 0);
        });
    }
}
