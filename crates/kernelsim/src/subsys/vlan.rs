//! 802.1Q vlan: Known #1 \[120\] (S-S) — "fix a data race when get vlan
//! device".
//!
//! Registering a vlan device publishes the device pointer into the group
//! array. The reverted fix added the write barrier ensuring the device is
//! fully initialised (in particular its ops table) before it is reachable;
//! without it, a concurrent ioctl path fetches the device and calls through
//! a NULL ops pointer.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EBADF, EBUSY, EINVAL};

/// Number of vlan ids on the group.
pub const NUM_VLANS: u64 = 4;

// struct vlan_group layout: the device array starts at offset 0.
const GRP_ARR: u64 = 0x00;
// struct net_device layout.
const DEV_OPS: u64 = 0x00;
const DEV_MTU: u64 = 0x08;

/// Boot-time globals of the vlan subsystem.
pub struct VlanGlobals {
    /// The vlan group.
    pub grp: u64,
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> VlanGlobals {
    k.fns.register("vlan_dev_open");
    VlanGlobals {
        grp: k.kzalloc(NUM_VLANS * 8, "vlan_group"),
    }
}

/// `register_vlan_device`: initialises and publishes a vlan device (Known
/// #1 writer).
pub fn vlan_add(k: &Kctx, t: Tid, id: u64) -> i64 {
    if id >= NUM_VLANS {
        return EBADF;
    }
    let _f = k.enter(t, "register_vlan_device");
    let g = k.globals();
    let slot = g.vlan.grp + GRP_ARR + id * 8;
    if k.read(t, iid!(), slot) != 0 {
        return EBUSY;
    }
    let dev = k.kzalloc(16, "net_device");
    k.write(
        t,
        iid!(),
        dev + DEV_OPS,
        k.fns.lookup("vlan_dev_open").expect("registered at boot"),
    );
    k.write(t, iid!(), dev + DEV_MTU, 1500);
    if !k.bug(BugId::KnownVlan) {
        // The [120] fix: the device must be complete before it is visible
        // through the group array.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), slot, dev);
    0
}

/// `vlan_ioctl` → `vlan_dev_ioctl`: looks up the device and calls its ops
/// (Known #1 reader).
pub fn vlan_get(k: &Kctx, t: Tid, id: u64) -> i64 {
    if id >= NUM_VLANS {
        return EBADF;
    }
    let _f = k.enter(t, "vlan_dev_ioctl");
    let g = k.globals();
    let dev = k.read_once(t, iid!(), g.vlan.grp + GRP_ARR + id * 8);
    if dev == 0 {
        return EINVAL; // no such vlan
    }
    let ops = k.read(t, iid!(), dev + DEV_OPS);
    k.call_fn(t, ops);
    k.read(t, iid!(), dev + DEV_MTU) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{delay_all_plain_stores_during, expect_crash, expect_no_crash};

    #[test]
    fn in_order_add_then_get_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(vlan_add(&k, t0, 2), 0);
        k.syscall_exit(t0);
        assert_eq!(vlan_get(&k, t1, 2), 1500);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn get_of_missing_vlan_is_einval() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(vlan_get(&k, Tid(0), 1), EINVAL);
    }

    #[test]
    fn duplicate_id_rejected() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(vlan_add(&k, t, 1), 0);
        k.syscall_exit(t);
        assert_eq!(vlan_add(&k, t, 1), EBUSY);
        assert_eq!(vlan_add(&k, t, 99), EBADF);
    }

    #[test]
    fn known1_publish_reorder_crashes_ioctl() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                vlan_add(k, t0, 2);
            });
            vlan_get(k, t1, 2);
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in vlan_dev_ioctl"
        );
    }

    #[test]
    fn known1_fixed_kernel_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                vlan_add(k, t0, 2);
            });
            let r = vlan_get(k, t1, 2);
            assert!(r == 1500 || r == EINVAL);
        });
    }
}
