//! Network block device: Known #7 \[78\] (L-L) — "nbd: fix
//! null-ptr-dereference while accessing 'nbd->config'".
//!
//! The config refcount and the config pointer are published by the
//! allocation path in the right order, but the lockless ioctl path checked
//! the refcount and then loaded the pointer with no load ordering between
//! them; a speculated pointer load could observe NULL even though the
//! refcount read as live. The fix orders the two reads.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EBUSY, EINVAL};

// struct nbd_device layout.
const NBD_CONFIG: u64 = 0x00;
const NBD_CONFIG_REFS: u64 = 0x08;
// struct nbd_config layout.
const CFG_SOCKS: u64 = 0x00;
const CFG_BLKSIZE: u64 = 0x08;

/// Boot-time globals of the nbd subsystem.
pub struct NbdGlobals {
    /// The nbd device.
    pub nbd: u64,
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> NbdGlobals {
    NbdGlobals {
        nbd: k.kzalloc(16, "nbd_device"),
    }
}

/// `nbd_alloc_and_init_config`: builds the config and takes the first
/// reference (writer side — correctly ordered).
pub fn nbd_alloc_config(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "nbd_alloc_and_init_config");
    let g = k.globals();
    let nbd = g.nbd.nbd;
    if k.read(t, iid!(), nbd + NBD_CONFIG_REFS) != 0 {
        return EBUSY;
    }
    let cfg = k.kzalloc(16, "nbd_config");
    let socks = k.kzalloc(32, "nbd_socks");
    k.write(t, iid!(), cfg + CFG_SOCKS, socks);
    k.write(t, iid!(), cfg + CFG_BLKSIZE, 4096);
    k.write(t, iid!(), nbd + NBD_CONFIG, cfg);
    // Writer publication is correct: the refcount store releases the
    // config pointer and contents.
    k.store_release(t, iid!(), nbd + NBD_CONFIG_REFS, 1);
    0
}

/// `nbd_ioctl`: lockless fast path checking the refcount before using the
/// config (Known #7 reader).
pub fn nbd_ioctl(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "nbd_ioctl");
    let g = k.globals();
    let nbd = g.nbd.nbd;
    let refs = k.read(t, iid!(), nbd + NBD_CONFIG_REFS);
    if refs == 0 {
        return EINVAL; // not configured
    }
    if !k.bug(BugId::KnownNbd) {
        // The [78] fix: order the config load after the refcount check.
        k.smp_rmb(t, iid!());
    }
    let cfg = k.read(t, iid!(), nbd + NBD_CONFIG);
    let socks = k.read(t, iid!(), cfg + CFG_SOCKS);
    let nconn = k.read(t, iid!(), socks);
    let _ = nconn;
    k.read(t, iid!(), cfg + CFG_BLKSIZE) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{expect_crash, expect_no_crash, version_all_plain_loads_with_setup};

    #[test]
    fn in_order_alloc_then_ioctl_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(nbd_alloc_config(&k, t0), 0);
        k.syscall_exit(t0);
        assert_eq!(nbd_ioctl(&k, t1), 4096);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn ioctl_before_config_is_einval() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(nbd_ioctl(&k, Tid(0)), EINVAL);
    }

    #[test]
    fn double_alloc_rejected() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(nbd_alloc_config(&k, t), 0);
        k.syscall_exit(t);
        assert_eq!(nbd_alloc_config(&k, t), EBUSY);
    }

    #[test]
    fn known7_load_reorder_crashes_ioctl() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            nbd_alloc_config(k, t0);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    nbd_alloc_config(k, t0);
                    k.syscall_exit(t0);
                },
                |k| {
                    nbd_ioctl(k, t1);
                },
            );
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in nbd_ioctl"
        );
    }

    #[test]
    fn known7_rmb_fix_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            nbd_alloc_config(k, t0);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    nbd_alloc_config(k, t0);
                    k.syscall_exit(t0);
                },
                |k| {
                    let r = nbd_ioctl(k, t1);
                    assert!(r == 4096 || r == EINVAL);
                },
            );
        });
    }
}
