//! Tracing ring buffer: Extended #2 \[115\] — "Fix race while reader and
//! writer are on the same page".
//!
//! The writer reserves a slot, fills the event payload, and publishes by
//! advancing the commit cursor; the reader consumes entries strictly below
//! the cursor. The reverted fix is the barrier pair making the payload
//! visible before the cursor moves — without it, the reader on the same
//! page consumes an entry whose payload store is still in flight. The
//! kernel's own invariant (`event->type != 0` for committed events) is the
//! oracle here, standing in for the ring-buffer self-checks that caught the
//! upstream bug.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN};

/// Ring capacity in events (power of two).
pub const RB_SIZE: u64 = 8;

// struct ring_buffer_per_cpu layout.
const RB_COMMIT: u64 = 0x00;
const RB_READER: u64 = 0x08;
const RB_EVENTS: u64 = 0x10;
const EVENT_STRIDE: u64 = 16;
// struct ring_buffer_event layout.
const EV_TYPE: u64 = 0x00;
const EV_DATA: u64 = 0x08;

/// Boot-time globals of the ring-buffer subsystem.
pub struct RingBufferGlobals {
    /// The per-CPU buffer the paths race on.
    pub rb: u64,
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> RingBufferGlobals {
    RingBufferGlobals {
        rb: k.kzalloc(RB_EVENTS + RB_SIZE * EVENT_STRIDE, "ring_buffer_per_cpu"),
    }
}

/// `ring_buffer_write`: reserve, fill, commit.
pub fn ring_buffer_write(k: &Kctx, t: Tid, data: u64) -> i64 {
    let _f = k.enter(t, "ring_buffer_write");
    let rb = k.globals().ring_buffer.rb;
    let commit = k.read(t, iid!(), rb + RB_COMMIT);
    let reader = k.read(t, iid!(), rb + RB_READER);
    if commit.wrapping_sub(reader) >= RB_SIZE {
        return EAGAIN; // ring full
    }
    let ev = rb + RB_EVENTS + (commit % RB_SIZE) * EVENT_STRIDE;
    k.write(t, iid!(), ev + EV_TYPE, 1); // TYPE_DATA: committed marker
    k.write(t, iid!(), ev + EV_DATA, data);
    if !k.bug(BugId::ExtRingBuffer) {
        // The [115] fix: the payload must be visible before the commit
        // cursor exposes the entry to a same-page reader.
        k.smp_wmb(t, iid!());
    }
    k.write(t, iid!(), rb + RB_COMMIT, commit + 1);
    0
}

/// `ring_buffer_read`: consume the next committed entry.
pub fn ring_buffer_read(k: &Kctx, t: Tid) -> i64 {
    let _f = k.enter(t, "ring_buffer_read");
    let rb = k.globals().ring_buffer.rb;
    let commit = k.read(t, iid!(), rb + RB_COMMIT);
    let reader = k.read(t, iid!(), rb + RB_READER);
    if reader == commit {
        return EAGAIN; // empty
    }
    if !k.bug(BugId::ExtRingBuffer) {
        // Reader half of the pair: no speculation past the cursor check.
        k.smp_rmb(t, iid!());
    }
    let ev = rb + RB_EVENTS + (reader % RB_SIZE) * EVENT_STRIDE;
    let ty = k.read(t, iid!(), ev + EV_TYPE);
    let data = k.read(t, iid!(), ev + EV_DATA);
    // The ring buffer's self-check: an entry below the commit cursor must
    // carry a committed type. Consuming a zero type is the upstream crash.
    k.bug_on(t, ty == 0, "consumed uninitialised ring entry");
    k.write(t, iid!(), rb + RB_READER, reader + 1);
    data as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{delay_all_plain_stores_during, expect_crash, expect_no_crash};

    #[test]
    fn in_order_write_then_read_roundtrips() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(ring_buffer_write(&k, t0, 0xfeed), 0);
        k.syscall_exit(t0);
        assert_eq!(ring_buffer_read(&k, t1), 0xfeed);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn empty_and_full_conditions() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(ring_buffer_read(&k, t), EAGAIN, "empty ring");
        for i in 0..RB_SIZE {
            assert_eq!(ring_buffer_write(&k, t, i), 0);
            k.syscall_exit(t);
        }
        assert_eq!(ring_buffer_write(&k, t, 99), EAGAIN, "full ring");
    }

    #[test]
    fn wraparound_preserves_fifo() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        for round in 0..3 {
            for i in 0..RB_SIZE {
                let v = round * 100 + i;
                assert_eq!(ring_buffer_write(&k, t, v), 0);
                k.syscall_exit(t);
                assert_eq!(ring_buffer_read(&k, t), v as i64);
                k.syscall_exit(t);
            }
        }
    }

    #[test]
    fn e2_commit_reorder_exposes_uninitialised_entry() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                ring_buffer_write(k, t0, 0xfeed);
            });
            ring_buffer_read(k, t1);
        });
        assert_eq!(
            title,
            "kernel BUG at ring_buffer_read: consumed uninitialised ring entry"
        );
    }

    #[test]
    fn e2_fixed_kernel_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                ring_buffer_write(k, t0, 0xfeed);
            });
            let r = ring_buffer_read(k, t1);
            assert!(r == 0xfeed || r == EAGAIN);
        });
    }
}
