//! XDP sockets (xsk): Bugs #4 and #7, and the two previously-reported xsk
//! bugs of Table 4 (#3 \[103\] and #4 \[101\]).
//!
//! Three publication races live on the xsk socket:
//!
//! - **Known #3 \[103\]** (S-S): umem registration publishes `xs->umem`
//!   before the page array is visible (`xsk: add missing write- and
//!   data-dependency barrier`); the RX path then walks a NULL page array.
//! - **Bug #4** (S-S): the buffer pool is published before its fill ring;
//!   `xsk_poll` dereferences a NULL ring.
//! - **Bug #7 / Known #4 \[101\]** (S-S): `xs->state = XSK_BOUND` becomes
//!   visible before `xs->tx`, and `xsk_generic_xmit` dereferences a NULL
//!   TX queue. Bug #7 is the modern regression of the same publication the
//!   5.3-era patch \[101\] fixed, so they share this code path with separate
//!   switches.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EAGAIN, EBADF, EBUSY};

/// Number of xsk sockets.
pub const NSOCKS: usize = 2;
/// `xs->state` value once bound.
pub const XSK_BOUND: u64 = 2;

// struct xdp_sock layout.
const XS_STATE: u64 = 0x00;
const XS_TX: u64 = 0x08;
const XS_POOL: u64 = 0x10;
const XS_UMEM: u64 = 0x18;
// struct xsk_buff_pool layout.
const POOL_FQ: u64 = 0x00;
const POOL_SIZE: u64 = 0x08;
// struct xsk_queue layout.
const Q_NENTRIES: u64 = 0x00;
const Q_PROD: u64 = 0x08;
// struct xdp_umem layout.
const UMEM_PGS: u64 = 0x00;
const UMEM_NPGS: u64 = 0x08;

/// Boot-time globals of the xsk subsystem.
pub struct XskGlobals {
    /// The xsk sockets.
    pub socks: [u64; NSOCKS],
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> XskGlobals {
    XskGlobals {
        socks: std::array::from_fn(|_| k.kzalloc(32, "xdp_sock")),
    }
}

fn sock(k: &Kctx, fd: u64) -> Option<u64> {
    k.globals().xsk.socks.get(fd as usize).copied()
}

/// `xdp_umem_reg`: registers a umem on the socket (Known #3 writer).
pub fn xsk_reg_umem(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(xs) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "xdp_umem_reg");
    if k.read(t, iid!(), xs + XS_UMEM) != 0 {
        return EBUSY;
    }
    let umem = k.kzalloc(16, "xdp_umem");
    let pgs = k.kzalloc(64, "umem_pgs");
    k.write(t, iid!(), umem + UMEM_PGS, pgs);
    k.write(t, iid!(), umem + UMEM_NPGS, 8);
    if !k.bug(BugId::KnownXskUmem) {
        // The [103] fix: publish only after the page array is visible.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), xs + XS_UMEM, umem);
    0
}

/// RX fast path: walks the umem page array (Known #3 reader).
pub fn xsk_rx(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(xs) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "xsk_rx");
    let umem = k.read_once(t, iid!(), xs + XS_UMEM);
    if umem == 0 {
        return EAGAIN;
    }
    let pgs = k.read(t, iid!(), umem + UMEM_PGS);
    let npgs = k.read(t, iid!(), umem + UMEM_NPGS);
    // Touch the first page descriptor; a NULL page array oopses here.
    let first = k.read(t, iid!(), pgs);
    k.bug_on(t, npgs == 0, "umem registered with zero pages");
    first as i64
}

/// `xsk_bind`: creates the pool and TX queue and publishes the socket as
/// bound (writer of Bugs #4 and #7 / Known #4).
pub fn xsk_bind(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(xs) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "xsk_bind");
    if k.read(t, iid!(), xs + XS_STATE) != 0 {
        return EBUSY;
    }
    // Pool setup (Bug #4).
    let pool = k.kzalloc(16, "xsk_buff_pool");
    let fq = k.kzalloc(16, "xsk_queue(fill)");
    k.write(t, iid!(), fq + Q_NENTRIES, 64);
    k.write(t, iid!(), pool + POOL_FQ, fq);
    k.write(t, iid!(), pool + POOL_SIZE, 64);
    if !k.bug(BugId::XskPoolPublish) {
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), xs + XS_POOL, pool);
    // TX queue setup and bind publication (Bug #7 / Known #4).
    let tx = k.kzalloc(16, "xsk_queue(tx)");
    k.write(t, iid!(), tx + Q_NENTRIES, 16);
    k.write(t, iid!(), xs + XS_TX, tx);
    if !k.bug(BugId::XskStateBound) && !k.bug(BugId::KnownXskState) {
        // The [101] fix: `smp_wmb` between the queue stores and the state
        // store, paired with the readers' dependent ordering.
        k.smp_wmb(t, iid!());
    }
    k.write_once(t, iid!(), xs + XS_STATE, XSK_BOUND);
    0
}

/// `xsk_poll`: checks readiness through the buffer pool (Bug #4 reader).
pub fn xsk_poll(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(xs) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "xsk_poll");
    let pool = k.read_once(t, iid!(), xs + XS_POOL);
    if pool == 0 {
        return 0; // not bound yet: no events
    }
    let fq = k.read(t, iid!(), pool + POOL_FQ);
    let prod = k.read(t, iid!(), fq + Q_PROD);
    prod as i64
}

/// `sendmsg` on a bound socket → `xsk_generic_xmit` (reader of Bug #7 /
/// Known #4).
pub fn xsk_sendmsg(k: &Kctx, t: Tid, fd: u64) -> i64 {
    let Some(xs) = sock(k, fd) else { return EBADF };
    let _f = k.enter(t, "xsk_sendmsg");
    let state = k.read_once(t, iid!(), xs + XS_STATE);
    if state != XSK_BOUND {
        return EAGAIN;
    }
    xsk_generic_xmit(k, t, xs)
}

fn xsk_generic_xmit(k: &Kctx, t: Tid, xs: u64) -> i64 {
    let _f = k.enter(t, "xsk_generic_xmit");
    let tx = k.read(t, iid!(), xs + XS_TX);
    let nentries = k.read(t, iid!(), tx + Q_NENTRIES);
    let prod = k.read(t, iid!(), tx + Q_PROD);
    k.write(t, iid!(), tx + Q_PROD, (prod + 1) % nentries.max(1));
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{delay_all_plain_stores_during, expect_crash, expect_no_crash};

    #[test]
    fn in_order_bind_then_io_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(xsk_reg_umem(&k, t0, 0), 0);
        assert_eq!(xsk_bind(&k, t0, 0), 0);
        k.syscall_exit(t0);
        assert_eq!(xsk_poll(&k, t1, 0), 0);
        assert_eq!(xsk_sendmsg(&k, t1, 0), 0);
        assert_eq!(xsk_rx(&k, t1, 0), 0);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn unbound_socket_is_quiet() {
        let k = Kctx::new(BugSwitches::all());
        let t = Tid(0);
        assert_eq!(xsk_poll(&k, t, 0), 0);
        assert_eq!(xsk_sendmsg(&k, t, 0), EAGAIN);
        assert_eq!(xsk_rx(&k, t, 0), EAGAIN);
    }

    #[test]
    fn double_bind_rejected() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(xsk_bind(&k, t, 0), 0);
        k.syscall_exit(t);
        assert_eq!(xsk_bind(&k, t, 0), EBUSY);
        assert_eq!(xsk_reg_umem(&k, t, 0), 0);
        k.syscall_exit(t);
        assert_eq!(xsk_reg_umem(&k, t, 0), EBUSY);
    }

    #[test]
    fn bug4_pool_publish_reorder_crashes_poll() {
        // Bug #4 needs a mid-syscall interleaving: xsk_bind's later TX
        // barrier (present when only Bug #4 is seeded) would flush the
        // delayed pool stores, so the reader must run right after the pool
        // publication — the Figure 5a schedule with a breakpoint.
        use crate::exec::{execute, ExecRequest};
        use crate::syscalls::Syscall;
        use crate::testutil::profile_store_iids;
        use ksched::{BreakWhen, Breakpoint, SchedulePlan};

        let k = Kctx::new(BugSwitches::only([BugId::XskPoolPublish]));
        let t0 = Tid(0);
        let stores = profile_store_iids(&k, t0, |k| {
            xsk_bind(k, t0, 0);
        });
        // Program order: fq nentries, pool fq, pool size, pool publish, ...
        for &iid in &stores[..3] {
            k.engine.delay_store_at(t0, iid);
        }
        let plan = SchedulePlan {
            first: t0,
            breakpoint: Some(Breakpoint {
                iid: stores[3],
                when: BreakWhen::After,
                hit: 1,
            }),
        };
        let out = execute(
            &k,
            ExecRequest::live(plan, Syscall::XskBind { fd: 0 }, Syscall::XskPoll { fd: 0 }),
        )
        .outcome;
        assert!(out.crashed(), "Bug #4 must manifest: {out:?}");
        assert_eq!(
            out.title().unwrap(),
            "BUG: unable to handle kernel NULL pointer dereference in xsk_poll"
        );
    }

    #[test]
    fn bug7_state_publish_reorder_crashes_xmit() {
        let k = Kctx::new(BugSwitches::only([BugId::XskStateBound]));
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                xsk_bind(k, t0, 0);
            });
            xsk_sendmsg(k, t1, 0);
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in xsk_generic_xmit"
        );
    }

    #[test]
    fn known3_umem_publish_reorder_crashes_rx() {
        let k = Kctx::new(BugSwitches::only([BugId::KnownXskUmem]));
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                xsk_reg_umem(k, t0, 0);
            });
            xsk_rx(k, t1, 0);
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in xsk_rx"
        );
    }

    #[test]
    fn fixed_kernel_survives_all_three_forcings() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                xsk_reg_umem(k, t0, 0);
            });
            xsk_rx(k, t1, 0);
        });
        let k = Kctx::new(BugSwitches::none());
        expect_no_crash(&k, |k| {
            delay_all_plain_stores_during(k, t0, |k| {
                xsk_bind(k, t0, 0);
            });
            xsk_poll(k, t1, 0);
            xsk_sendmsg(k, t1, 0);
        });
    }

    #[test]
    fn separate_sockets_do_not_interfere() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(xsk_bind(&k, t0, 0), 0);
        k.syscall_exit(t0);
        assert_eq!(xsk_sendmsg(&k, t1, 1), EAGAIN, "fd 1 is not bound");
    }
}
