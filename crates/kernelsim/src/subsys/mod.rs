//! The simulated kernel's subsystems.
//!
//! Each module re-implements, from the upstream patches and code the paper
//! cites, the minimal slice of a Linux subsystem in which OZZ found or
//! reproduced an out-of-order bug. Every shared-memory access goes through
//! the instrumented [`Kctx`](crate::kctx::Kctx) helpers, so OEMU can delay
//! stores and version loads exactly as it would with the paper's LLVM
//! instrumentation. Each historical bug is guarded by a
//! [`BugId`](crate::bugs::BugId) switch selecting the pre-fix variant.

pub mod bpf_psock;
pub mod buffer_head;
pub mod filemap;
pub mod fs_fdtable;
pub mod gsm;
pub mod nbd;
pub mod rds;
pub mod ring_buffer;
pub mod sbitmap;
pub mod smc;
pub mod tls;
pub mod unix_sock;
pub mod usb;
pub mod vlan;
pub mod vmci;
pub mod watch_queue;
pub mod xsk;
