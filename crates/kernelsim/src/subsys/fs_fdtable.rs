//! File-descriptor table: Known #5 \[30\] (L-L) — "fs: use acquire ordering
//! in `__fget_light`".
//!
//! `fd_install` publishes a fully-constructed `struct file` into the fd
//! table with release ordering. The lockless fast path `__fget_light` must
//! read the table slot with *acquire* ordering; with a plain load, the
//! dependent reads of the file's fields (here `f_op`) can be satisfied
//! before the slot read, observing the pre-construction state.

use std::sync::Arc;

use oemu::{iid, Tid};

use crate::bugs::BugId;
use crate::kctx::{Kctx, EBADF, EBUSY};

/// Number of fd slots.
pub const NUM_FDS: u64 = 4;

// struct fdtable layout: fd array at offset 0.
const FDT_FD: u64 = 0x00;
// struct file layout.
const FILE_F_OP: u64 = 0x00;
const FILE_F_MODE: u64 = 0x08;

/// Boot-time globals of the fs subsystem.
pub struct FsGlobals {
    /// The fd table.
    pub fdt: u64,
}

/// Boots the subsystem.
pub fn boot(k: &Arc<Kctx>) -> FsGlobals {
    k.fns.register("generic_file_read_iter");
    FsGlobals {
        fdt: k.kzalloc(NUM_FDS * 8, "fdtable"),
    }
}

/// `fd_install`: publishes a new file into the table (writer side —
/// correctly release-ordered; the bug is in the reader).
pub fn fd_install(k: &Kctx, t: Tid, fd: u64) -> i64 {
    if fd >= NUM_FDS {
        return EBADF;
    }
    let _f = k.enter(t, "fd_install");
    let g = k.globals();
    let slot = g.fs.fdt + FDT_FD + fd * 8;
    if k.read(t, iid!(), slot) != 0 {
        return EBUSY;
    }
    let file = k.kzalloc(16, "file");
    k.write(
        t,
        iid!(),
        file + FILE_F_OP,
        k.fns
            .lookup("generic_file_read_iter")
            .expect("registered at boot"),
    );
    k.write(t, iid!(), file + FILE_F_MODE, 0o666);
    k.store_release(t, iid!(), slot, file);
    0
}

/// `__fget_light` + a read through the file ops (Known #5 reader).
pub fn fget_light(k: &Kctx, t: Tid, fd: u64) -> i64 {
    if fd >= NUM_FDS {
        return EBADF;
    }
    let _f = k.enter(t, "__fget_light");
    let g = k.globals();
    let slot = g.fs.fdt + FDT_FD + fd * 8;
    let file = if k.bug(BugId::KnownFget) {
        // Buggy: plain load; dependent field loads may be satisfied early.
        k.read(t, iid!(), slot)
    } else {
        // The [30] fix: acquire ordering on the slot read.
        k.load_acquire(t, iid!(), slot)
    };
    if file == 0 {
        return EBADF; // empty slot
    }
    let f_op = k.read(t, iid!(), file + FILE_F_OP);
    k.call_fn(t, f_op);
    k.read(t, iid!(), file + FILE_F_MODE) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugSwitches;
    use crate::testutil::{expect_crash, expect_no_crash, version_all_plain_loads_with_setup};

    #[test]
    fn in_order_install_then_fget_works() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        assert_eq!(fd_install(&k, t0, 1), 0);
        k.syscall_exit(t0);
        assert_eq!(fget_light(&k, t1, 1), 0o666);
        assert!(k.sink.is_empty());
    }

    #[test]
    fn empty_slot_is_ebadf() {
        let k = Kctx::new(BugSwitches::all());
        assert_eq!(fget_light(&k, Tid(0), 0), EBADF);
        assert_eq!(fget_light(&k, Tid(0), 99), EBADF);
    }

    #[test]
    fn duplicate_install_rejected() {
        let k = Kctx::new(BugSwitches::none());
        let t = Tid(0);
        assert_eq!(fd_install(&k, t, 0), 0);
        k.syscall_exit(t);
        assert_eq!(fd_install(&k, t, 0), EBUSY);
    }

    #[test]
    fn known5_load_reorder_crashes_fget() {
        let k = Kctx::new(BugSwitches::all());
        let (t0, t1) = (Tid(0), Tid(1));
        let title = expect_crash(&k, |k| {
            fd_install(k, t0, 1);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    fd_install(k, t0, 1);
                    k.syscall_exit(t0);
                },
                |k| {
                    fget_light(k, t1, 1);
                },
            );
        });
        assert_eq!(
            title,
            "BUG: unable to handle kernel NULL pointer dereference in __fget_light"
        );
    }

    #[test]
    fn known5_acquire_fix_survives_same_forcing() {
        let k = Kctx::new(BugSwitches::none());
        let (t0, t1) = (Tid(0), Tid(1));
        expect_no_crash(&k, |k| {
            fd_install(k, t0, 1);
            k.syscall_exit(t0);
            version_all_plain_loads_with_setup(
                k,
                t1,
                |k| {
                    fd_install(k, t0, 1);
                    k.syscall_exit(t0);
                },
                |k| {
                    let r = fget_light(k, t1, 1);
                    assert!(r == 0o666 || r == EBADF);
                },
            );
        });
    }
}
